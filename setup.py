"""Setup shim: enables legacy editable installs (no wheel needed)."""
from setuptools import setup

setup()
