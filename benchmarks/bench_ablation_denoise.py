"""Ablation (Section 4.4): what outlier rejection + Kalman buy.

Runs the contour output through (a) the full de-noising chain and
(b) nothing, and compares round-trip accuracy. The raw contour's
impractical jumps (Fig. 3c, blue) dominate its tail error. The kernel
is the full de-noising chain.
"""

import numpy as np

from repro.core.background import background_subtract
from repro.core.contour import track_bottom_contour
from repro.core.interpolation import interpolate_gaps
from repro.core.kalman import smooth_series
from repro.core.outliers import reject_outliers
from repro.core.spectrogram import spectrogram_from_sweeps

from conftest import print_header


def test_denoising_chain_value(benchmark, config, cached_walk):
    out = cached_walk
    spec = spectrogram_from_sweeps(
        out.spectra[0], config.fmcw.sweep_duration_s, out.range_bin_m, 5
    ).crop(30.0)
    sub = background_subtract(spec)
    contour = track_bottom_contour(sub.power, out.range_bin_m)
    raw = contour.round_trip_m

    def denoise():
        cleaned = reject_outliers(raw, max_jump_m=0.15, confirmation_frames=4)
        cleaned = interpolate_gaps(cleaned)
        return smooth_series(cleaned, 0.0125, 10.0, 1e-3)

    denoised = benchmark(denoise)

    n = len(raw)
    truth = (
        out.true_round_trips[0][: (n + 1) * 5]
        .reshape(-1, 5)
        .mean(axis=1)[1 : n + 1]
    )
    raw_err = np.abs(raw - truth)
    clean_err = np.abs(denoised - truth)
    raw_p95 = float(np.nanpercentile(raw_err, 95))
    clean_p95 = float(np.nanpercentile(clean_err, 95))

    # What the chain buys: physically-plausible frame-to-frame motion
    # (no impractical jumps), full coverage through silences, and a
    # median no worse than the raw contour's.
    raw_jumps = np.abs(np.diff(raw))
    clean_jumps = np.abs(np.diff(denoised))
    assert np.nanmax(clean_jumps) < np.nanmax(raw_jumps)
    assert np.isfinite(denoised).mean() >= np.isfinite(raw).mean()
    # The Kalman trades a little median accuracy (lag) for smoothness
    # and full coverage; it must stay in the same accuracy class.
    assert np.nanmedian(clean_err) <= 3.0 * np.nanmedian(raw_err)

    print_header("Ablation — Section 4.4 de-noising chain")
    print("                      median      p95      coverage")
    print(f"  raw contour       {100 * np.nanmedian(raw_err):6.1f} cm  "
          f"{100 * raw_p95:6.1f} cm   {100 * np.isfinite(raw).mean():4.0f}%")
    print(f"  + reject/interp/KF{100 * np.nanmedian(clean_err):6.1f} cm  "
          f"{100 * clean_p95:6.1f} cm   "
          f"{100 * np.isfinite(denoised).mean():4.0f}%")
