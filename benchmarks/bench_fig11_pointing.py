"""Fig. 11: CDF of the pointing-direction error.

Paper: median 11.2 degrees, 90th percentile 37.9 degrees. Asserted
shape: gestures are reliably detected and the error distribution lives
in the paper's band (single-digit-to-tens of degrees median, tail under
~60 degrees). The kernel is the robust-regression endpoint extraction.
"""

import numpy as np

from repro import constants
from repro.core.regression import robust_endpoints
from repro.eval.figures import fig11_pointing_cdf

from conftest import print_header


def test_fig11_pointing_error_cdf(benchmark, config):
    rng = np.random.default_rng(0)
    t = np.linspace(0, 0.8, 64)
    noisy = 9.0 + 0.9 * t + rng.normal(0, 0.05, 64)

    benchmark(lambda: robust_endpoints(t, noisy))

    data = fig11_pointing_cdf(config=config)

    assert data.detected_fraction >= 0.75, "gestures must usually segment"
    median = data.cdf.median
    p90 = data.cdf.p90
    # Same order as the paper (11.2 / 37.9 deg); our synthetic arm is a
    # little cleaner than a real one, so allow a broad band.
    assert 1.0 < median < 25.0
    assert p90 < 65.0
    assert p90 >= median

    print_header("Fig. 11 — pointing-direction error CDF")
    print(f"gestures detected : {100 * data.detected_fraction:.0f}%")
    print(f"median error      : {median:5.1f} deg "
          f"(paper {constants.PAPER_POINTING_MEDIAN_DEG})")
    print(f"90th percentile   : {p90:5.1f} deg "
          f"(paper {constants.PAPER_POINTING_P90_DEG})")
    print("quantiles:")
    for q in (25, 50, 75, 90):
        print(f"  p{q}: {data.cdf.percentile(q):5.1f} deg")
