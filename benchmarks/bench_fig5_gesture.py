"""Fig. 5: whole-body motion vs arm motion in the spectrogram.

The paper distinguishes an arm from a whole body by the spatial variance
of the reflected power along the range axis. This bench regenerates the
walk -> stop -> point session and asserts the separation the Section 6.1
detector relies on. The kernel is the extent computation.
"""

import numpy as np

from repro.core.contour import motion_extent
from repro.eval.figures import fig5_gesture

from conftest import print_header


def test_fig5_body_vs_arm_extent(benchmark, config):
    data = fig5_gesture(seed=2, config=config)

    benchmark(
        lambda: motion_extent(
            data.subtracted.power, data.subtracted.range_bin_m
        )
    )

    extent = data.extent_m
    walk_extent = np.nanmedian(extent[data.walk_frames])
    arm_vals = extent[data.gesture_frames]
    arm_vals = arm_vals[np.isfinite(arm_vals)]
    arm_extent = float(np.median(arm_vals)) if arm_vals.size else np.nan

    assert np.isfinite(walk_extent) and np.isfinite(arm_extent)
    assert walk_extent > 2.0 * arm_extent, (
        "whole-body reflections must spread over far more range bins "
        "than an arm (Fig. 5)"
    )

    print_header("Fig. 5 — reflection extent: whole body vs arm")
    print(f"median extent while walking : {walk_extent:.2f} m")
    print(f"median extent during gesture: {arm_extent:.2f} m")
    print(f"ratio                       : {walk_extent / arm_extent:.1f}x")
    print("(the Section 6.1 body-part detector thresholds this extent)")
