"""Ablation (Section 4.3): bottom contour vs dominant-peak tracking.

"this approach has proved to be more robust than tracking the dominant
frequency in each sweep ... the point of maximum reflection may abruptly
shift due to different indirect paths."

Same spectra, same denoising, same solver — only the contour stage
differs. The kernel is one dominant-peak TOF pass.
"""

import numpy as np

from repro.baselines.peak_tracker import (
    DominantPeakTOFEstimator,
    DominantPeakTracker,
)
from repro.core.tracker import WiTrack
from repro.sim.vicon import DepthCalibration

from conftest import print_header


def test_contour_beats_dominant_peak(benchmark, config, cached_walk):
    out = cached_walk
    estimator = DominantPeakTOFEstimator(
        config.fmcw.sweep_duration_s, out.range_bin_m, config.pipeline
    )
    benchmark(lambda: estimator.estimate(out.spectra[0]))

    truth = DepthCalibration().compensate(
        out.truth_at(np.arange(2, out.num_sweeps // 5) * 0.0125),
        out.body.torso_depth_m,
    )

    def median_error(track):
        valid = track.valid_mask
        n = min(len(truth), track.num_frames)
        v = valid[:n]
        return float(
            np.median(
                np.linalg.norm(
                    track.positions[:n][v] - truth[:n][v], axis=1
                )
            )
        )

    contour_err = median_error(
        WiTrack(config).track(out.spectra, out.range_bin_m)
    )
    peak_err = median_error(
        DominantPeakTracker(config).track(out.spectra, out.range_bin_m)
    )

    assert contour_err < peak_err, (
        "bottom-contour tracking must beat dominant-peak tracking"
    )

    print_header("Ablation — contour vs dominant-peak TOF tracking")
    print(f"bottom contour (paper design): median {100 * contour_err:6.1f} cm")
    print(f"dominant peak  (strawman)    : median {100 * peak_err:6.1f} cm")
    print(f"contour advantage            : {peak_err / contour_err:5.2f}x")
