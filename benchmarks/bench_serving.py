"""Serving benchmark: session-multiplexed lockstep vs N independent pipelines.

The claim under test (see ISSUE/ROADMAP "serving engine"): advancing N
concurrent sessions through *one* session-vectorized pipeline — one
``Pipeline.tick`` per frame step, stage state structure-of-arrays over
the session axis — amortizes the per-frame numpy dispatch cost that N
independent frame-at-a-time pipelines each pay in full. The baseline is
exactly that counterfactual: N private ``Pipeline`` instances pushed
round-robin in the same frame order.

For each session count the benchmark reports aggregate frames/s for
both executions, the speedup, per-session p95 latency against the
paper's 75 ms budget (§7), and an exact-equality check of every
session's outputs against its own serial ``run_stream`` reference.

With ``--workers N`` (default ``REPRO_WORKERS``) a third execution runs
per session count: the **distributed tier** — the same engine fronting
N long-lived shard worker processes — recording shard count, per-shard
tick p50/p95, mean IPC overhead, and the same exact-equality check.
Results land in ``benchmarks/serving.json`` so CI runs leave a
comparable artifact alongside ``throughput.json`` (the workers matrix
uploads it as the ``serving-distributed`` artifact).

With ``--multi`` the benchmark switches to K-person cohorts: every
session is a 2-person stream (plus a mixed row where 3-person sessions
ride alongside, so one tick serves two cohorts), timed staged vs fused
through the multi-person tick plan and bit-checked including track
identities. Results land in ``benchmarks/serving_multi.json``.

Run:
    python benchmarks/bench_serving.py [--sessions 8] [--duration 8] \\
        [--workers 2] [--multi]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # fresh checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import WiTrack, default_config
from repro.exec import (
    cache_stats,
    pool_available,
    resolve_workers,
    results_identical,
    shm_available,
    synthesize,
)
from repro.kernels import backend_name, set_backend
from repro.kernels.tick import enable_fusion, reset_fusion_override
from repro.serve import ServingEngine, single_session
from repro.sim import CohortFrameSource, Scenario, random_walk, through_wall_room


def synthesize_sessions(n_sessions: int, duration_s: float) -> tuple:
    """N independent single-person session recordings, pre-synthesized."""
    config = default_config()
    room = through_wall_room()
    outputs = []
    for seed in range(n_sessions):
        walk = random_walk(
            room, np.random.default_rng(seed), duration_s=duration_s
        )
        # Through the cache seam: a warm REPRO_CACHE rerun skips the
        # synthesis cost entirely and the JSON's counters show it.
        outputs.append(
            synthesize(
                Scenario(walk, room=room, config=config, seed=seed + 100)
            )
        )
    spf = config.pipeline.sweeps_per_frame
    n_frames = min(o.num_sweeps // spf for o in outputs)
    blocks = [
        [o.spectra[:, f * spf : (f + 1) * spf, :] for f in range(n_frames)]
        for o in outputs
    ]
    return config, outputs[0].range_bin_m, blocks, n_frames


def run_baseline(config, range_bin_m, blocks, n_frames) -> dict:
    """N private pipelines, frame-at-a-time, round-robin (today's way)."""
    pipelines = [
        WiTrack(config).pipeline(range_bin_m) for _ in range(len(blocks))
    ]
    start = time.perf_counter()
    for f in range(n_frames):
        for session, pipeline in zip(blocks, pipelines):
            pipeline.push(session[f])
    wall_s = time.perf_counter() - start
    p95s = [p.latency.p95_s for p in pipelines]
    return {"wall_s": wall_s, "p95_latency_ms": 1e3 * float(np.max(p95s))}


def run_lockstep(
    config, range_bin_m, blocks, n_frames, workers=0, transport=None
) -> dict:
    """One engine, N admitted sessions, one vectorized tick per step.

    ``workers=0`` is the in-process engine; ``workers>=1`` fronts that
    many shard worker processes (the distributed tier) and additionally
    reports per-shard tick times, IPC overhead, and per-transport byte
    counters (``transport`` picks the shard data plane: pipe or shm).
    """
    with ServingEngine(workers=workers, transport=transport) as engine:
        spec = single_session(config, range_bin_m)
        sessions = [engine.admit(spec) for _ in blocks]
        start = time.perf_counter()
        for f in range(n_frames):
            for session, stream in zip(sessions, blocks):
                session.offer(stream[f])
            engine.tick()
        wall_s = time.perf_counter() - start
        results = [engine.close(s) for s in sessions]
        p95s = [r.latency.p95_s for r in results]
        p99s = [r.latency.p99_s for r in results]
        out = {
            "wall_s": wall_s,
            "p95_latency_ms": 1e3 * float(np.max(p95s)),
            "p99_latency_ms": 1e3 * float(np.max(p99s)),
            "results": results,
        }
        profile = _stage_profile(engine)
        if profile is not None:
            out["stage_profile"] = profile
        if engine.distributed:
            shards = engine.scheduler.shard_report()
            out["shards"] = shards
            out["num_shards"] = engine.scheduler.num_shards
            out["transport"] = engine.transport
            out["transport_stats"] = engine.transport_stats()
            with np.errstate(all="ignore"):
                out["tick_p95_ms"] = float(
                    np.nanmax([s["tick_p95_ms"] for s in shards])
                )
                out["tick_p99_ms"] = float(
                    np.nanmax([s["tick_p99_ms"] for s in shards])
                )
                out["ipc_overhead_mean_ms"] = float(
                    np.nanmean([s["ipc_overhead_mean_ms"] for s in shards])
                )
    return out


def _transports() -> list[str]:
    """Transports to benchmark: always pipe, plus shm when the host has it."""
    return ["pipe", "shm"] if shm_available() else ["pipe"]


def _transport_comparison(by_transport: dict) -> dict:
    """Pipe-vs-shm IPC overhead delta for the trajectory JSON."""
    pipe_ms = by_transport["pipe"]["ipc_overhead_mean_ms"]
    shm_ms = by_transport["shm"]["ipc_overhead_mean_ms"]
    return {
        "ipc_overhead_pipe_ms": pipe_ms,
        "ipc_overhead_shm_ms": shm_ms,
        "ipc_overhead_pipe_over_shm": (
            pipe_ms / shm_ms if shm_ms > 0 else float("nan")
        ),
        "bytes_shm": by_transport["shm"]["transport_stats"]["bytes_shm"],
        "bytes_pickled_pipe": (
            by_transport["pipe"]["transport_stats"]["bytes_pickled"]
        ),
        "bytes_pickled_shm": (
            by_transport["shm"]["transport_stats"]["bytes_pickled"]
        ),
        "arena_overflows": (
            by_transport["shm"]["transport_stats"]["arena_overflows"]
        ),
    }


def serial_references(config, range_bin_m, blocks) -> list:
    """Each session's untimed ``run_stream`` reference (identity check)."""
    refs = []
    for stream in blocks:
        pipeline = WiTrack(config).pipeline(range_bin_m)
        refs.append(
            pipeline.run_stream(np.concatenate(stream, axis=1))
        )
    return refs


def bench_serving(n_sessions: int, duration_s: float, workers: int = 0) -> dict:
    config, range_bin_m, all_blocks, n_frames = synthesize_sessions(
        n_sessions, duration_s
    )
    rows = []
    counts = sorted({1, max(n_sessions // 2, 1), n_sessions})
    for n in counts:
        blocks = all_blocks[:n]
        baseline = run_baseline(config, range_bin_m, blocks, n_frames)
        lockstep = run_lockstep(config, range_bin_m, blocks, n_frames)
        refs = serial_references(config, range_bin_m, blocks)
        identical = all(
            results_identical(result, ref)
            for result, ref in zip(lockstep["results"], refs)
        )
        total = n * n_frames
        row = {
            "sessions": n,
            "frames_per_session": n_frames,
            "baseline_s": baseline["wall_s"],
            "lockstep_s": lockstep["wall_s"],
            "baseline_fps": total / baseline["wall_s"],
            "lockstep_fps": total / lockstep["wall_s"],
            "speedup": baseline["wall_s"] / lockstep["wall_s"],
            "baseline_p95_latency_ms": baseline["p95_latency_ms"],
            "lockstep_p95_latency_ms": lockstep["p95_latency_ms"],
            "lockstep_p99_latency_ms": lockstep["p99_latency_ms"],
            "within_75ms_budget": lockstep["p95_latency_ms"] <= 75.0,
            "identical_to_serial": identical,
        }
        if "stage_profile" in lockstep:
            row["stage_profile"] = lockstep["stage_profile"]
        if workers > 0:
            # One distributed run per available transport: "distributed"
            # stays the pipe row (artifact continuity across PRs) and
            # "distributed_shm" rides alongside, with a comparison row
            # so the trajectory JSON tracks the IPC delta directly.
            by_transport = {}
            for transport in _transports():
                dist = run_lockstep(
                    config, range_bin_m, blocks, n_frames,
                    workers=workers, transport=transport,
                )
                by_transport[transport] = {
                    "workers": workers,
                    "transport": transport,
                    "num_shards": dist["num_shards"],
                    "wall_s": dist["wall_s"],
                    "fps": total / dist["wall_s"],
                    "speedup_vs_lockstep": lockstep["wall_s"] / dist["wall_s"],
                    "p95_latency_ms": dist["p95_latency_ms"],
                    "p99_latency_ms": dist["p99_latency_ms"],
                    "within_75ms_budget": dist["p95_latency_ms"] <= 75.0,
                    "tick_p95_ms": dist["tick_p95_ms"],
                    "tick_p99_ms": dist["tick_p99_ms"],
                    "ipc_overhead_mean_ms": dist["ipc_overhead_mean_ms"],
                    "transport_stats": dist["transport_stats"],
                    "shards": dist["shards"],
                    "identical_to_serial": all(
                        results_identical(result, ref)
                        for result, ref in zip(dist["results"], refs)
                    ),
                }
            row["distributed"] = by_transport["pipe"]
            if "shm" in by_transport:
                row["distributed_shm"] = by_transport["shm"]
                row["transport_comparison"] = _transport_comparison(
                    by_transport
                )
        rows.append(row)
    return {
        "duration_s": duration_s,
        "max_sessions": n_sessions,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "scaling": rows,
        "cache": cache_stats(),
    }


def _stage_profile(engine: ServingEngine) -> dict | None:
    """The engine's merged per-stage counters, or None when profiling
    is off — so disabled runs leave no trace in the JSON artifact."""
    profile = engine.stage_profile().as_dict()
    return profile or None


def _synthetic_scenarios(n_sessions: int, duration_s: float) -> list:
    config = default_config()
    room = through_wall_room()
    return [
        Scenario(
            random_walk(room, np.random.default_rng(seed),
                        duration_s=duration_s),
            room=room, config=config, seed=seed + 100,
        )
        for seed in range(n_sessions)
    ]


def _serve_streams(
    config, range_bin_m, streams, n_frames,
    workers=0, transport=None, keep_results=False,
) -> dict:
    """Feed per-session block iterators through one lockstep engine."""
    with ServingEngine(workers=workers, transport=transport) as engine:
        spec = single_session(config, range_bin_m)
        sessions = [engine.admit(spec) for _ in streams]
        start = time.perf_counter()
        for _ in range(n_frames):
            for session, stream in zip(sessions, streams):
                engine.submit(session, next(stream))
            engine.tick()
        engine.drain()
        wall_s = time.perf_counter() - start
        results = [engine.close(s) for s in sessions]
        profile = _stage_profile(engine)
        shards = (
            engine.scheduler.shard_report() if engine.distributed else None
        )
        transport_stats = engine.transport_stats()
    p95s = [r.latency.p95_s for r in results]
    out = {"wall_s": wall_s, "p95_latency_ms": 1e3 * float(np.max(p95s))}
    if keep_results:
        out["results"] = results
    if profile is not None:
        out["stage_profile"] = profile
    if shards is not None:
        out["shards"] = shards
        out["transport_stats"] = transport_stats
        with np.errstate(all="ignore"):
            out["tick_p95_ms"] = float(
                np.nanmax([s["tick_p95_ms"] for s in shards])
            )
            out["ipc_overhead_mean_ms"] = float(
                np.nanmean([s["ipc_overhead_mean_ms"] for s in shards])
            )
    return out


def _fused_parity(scenarios, check_frames: int = 8) -> bool:
    """Noise-free fused synthesis == per-session synthesis, bitwise."""
    from repro.sim import ScenarioStream

    source = CohortFrameSource(scenarios, chunk_frames=check_frames,
                               noise=False)
    fused = next(source.ticks())
    ok = True
    for k, scenario in enumerate(scenarios):
        st = ScenarioStream(scenario)
        block = st.synthesize(0, check_frames, *st.advance(0, check_frames))
        per_session = block[:, : source.spf, :]
        ok = ok and bool(np.array_equal(fused[k], per_session))
    return ok


def _synthetic_distributed(
    config, range_bin_m, scenarios, chunk_frames, n_frames, workers
) -> dict:
    """Distributed synthetic serving, once per transport, bit-checked.

    Streams regenerate deterministically from the scenarios, so the
    in-process run and each transport's distributed run consume
    identical frames; any output divergence is a transport bug.
    """
    def build_streams():
        return CohortFrameSource(
            scenarios, chunk_frames=chunk_frames
        ).session_streams()

    reference = _serve_streams(
        config, range_bin_m, build_streams(), n_frames, keep_results=True
    )
    total = len(scenarios) * n_frames
    transports = {}
    for transport in _transports():
        dist = _serve_streams(
            config, range_bin_m, build_streams(), n_frames,
            workers=workers, transport=transport, keep_results=True,
        )
        transports[transport] = {
            "wall_s": dist["wall_s"],
            "fps": total / dist["wall_s"],
            "p95_latency_ms": dist["p95_latency_ms"],
            "tick_p95_ms": dist["tick_p95_ms"],
            "ipc_overhead_mean_ms": dist["ipc_overhead_mean_ms"],
            "transport_stats": dist["transport_stats"],
            "identical_to_in_process": all(
                results_identical(result, ref)
                for result, ref in zip(dist["results"], reference["results"])
            ),
        }
    out = {
        "workers": workers,
        "in_process_wall_s": reference["wall_s"],
        "transports": transports,
    }
    if "shm" in transports:
        pipe_ms = transports["pipe"]["ipc_overhead_mean_ms"]
        shm_ms = transports["shm"]["ipc_overhead_mean_ms"]
        out["ipc_overhead_pipe_over_shm"] = (
            pipe_ms / shm_ms if shm_ms > 0 else float("nan")
        )
    return out


def _tick_fusion_comparison(config, range_bin_m, scenarios,
                            repeats: int = 9,
                            max_frames: int = 240) -> dict:
    """Compiled tick plans vs the staged loop, same backend, same frames.

    Pre-materializes every session's frames (synthesis out of the
    loop), then times the engine's tick path twice — fusion forced off
    (the staged per-stage loop) and on (one fused kernel call per
    cohort tick) — best-of-``repeats`` each, and bit-checks the two
    runs' session outputs against each other. The frames/s here is the
    pure serving-tick surface the tick compiler optimizes; ingestion
    and synthesis are identical on both sides and excluded.
    """
    source = CohortFrameSource(scenarios, chunk_frames=min(max_frames, 64))
    n_frames = min(source.n_frames, max_frames)
    frames = [[] for _ in scenarios]
    for f, streams in enumerate(zip(*source.session_streams())):
        if f >= n_frames:
            break
        for k, block in enumerate(streams):
            frames[k].append(block)

    def run_once(fused: bool):
        enable_fusion(fused)
        ticks = np.empty(n_frames)
        with ServingEngine() as engine:
            spec = single_session(config, range_bin_m)
            sessions = [engine.admit(spec) for _ in frames]
            for f in range(n_frames):
                for session, stream in zip(sessions, frames):
                    engine.submit(session, stream[f])
                start = time.perf_counter()
                engine.tick()
                ticks[f] = time.perf_counter() - start
            results = [engine.close(s) for s in sessions]
        return ticks, results

    # Alternate staged/fused passes within each repeat so environmental
    # drift (a shared-core VM getting busy mid-benchmark) lands on both
    # sides equally, and keep the elementwise per-tick minimum across
    # repeats: tick f's floor is its real cost, and an OS hiccup during
    # one repeat no longer pollutes the aggregate the way best-of-run
    # does (every repeat carries some noise; no single run is clean).
    staged_ticks = fused_ticks = None
    staged_results = fused_results = None
    try:
        for _ in range(max(repeats, 1)):
            s, staged_results = run_once(False)
            staged_ticks = (
                s if staged_ticks is None else np.minimum(staged_ticks, s)
            )
            f, fused_results = run_once(True)
            fused_ticks = (
                f if fused_ticks is None else np.minimum(fused_ticks, f)
            )
    finally:
        reset_fusion_override()
    staged_s = float(staged_ticks.sum())
    fused_s = float(fused_ticks.sum())
    total = len(frames) * n_frames
    return {
        "sessions": len(frames),
        "frames_per_session": n_frames,
        "backend": backend_name(),
        "staged_s": staged_s,
        "fused_s": fused_s,
        "staged_fps": total / staged_s,
        "fused_fps": total / fused_s,
        "speedup": staged_s / fused_s,
        "identical": all(
            results_identical(a, b)
            for a, b in zip(staged_results, fused_results)
        ),
    }


def bench_multi(n_sessions: int, duration_s: float,
                repeats: int = 3, seed: int = 0) -> dict:
    """K-person serving: staged per-slot loop vs fused multi tick plans.

    The acceptance row is K=2 at the top session count — the workload
    the multi-person tick compiler targets — plus smaller counts for
    scaling and one mixed-cohort row (3-person sessions alongside the
    2-person majority) exercising several cohorts per tick. Each row
    carries the staged-vs-fused bitwise-identity verdict over every
    session's outputs, track identities included.
    """
    from repro.serve.bench import multi_person_comparison

    rows = []
    counts = sorted({1, max(n_sessions // 2, 1), n_sessions})
    for n in counts:
        rows.append(
            multi_person_comparison(
                [2] * n, duration_s, seed=seed, repeats=repeats
            )
        )
    mixed = None
    if n_sessions >= 4:
        mixed = multi_person_comparison(
            [2] * (n_sessions - 2) + [3] * 2, duration_s,
            seed=seed, repeats=repeats,
        )
    payload = {
        "mode": "multi",
        "duration_s": duration_s,
        "max_sessions": n_sessions,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "backend": backend_name(),
        "scaling": rows,
    }
    if mixed is not None:
        payload["mixed_cohorts"] = mixed
    return payload


def bench_synthetic(n_sessions: int, duration_s: float,
                    chunk_frames: int = 64, repeats: int = 3,
                    workers: int = 0) -> dict:
    """Synthesis-inclusive serving: fused cohort source vs per-session.

    The baseline is the pre-kernel-tier cost model: the ``reference``
    backend (the original math, verbatim) synthesizing each session
    through its own :meth:`Scenario.frames` generator. The fused row is
    the kernel tier end to end: the ``numpy`` backend synthesizing all
    N sessions per chunk through one :class:`CohortFrameSource` batch
    call. Both feed the identical lockstep engine, so the ratio is the
    serving-tier frames/s gain a deployment sees.

    With ``workers >= 1`` the top session count also runs distributed
    once per available transport (pipe, shm) — fused synthesis feeding
    shard workers — recording per-transport IPC overhead, byte
    counters, and a bit-exactness check against the in-process run.
    """
    restore = backend_name()
    rows = []
    counts = sorted({1, max(n_sessions // 2, 1), n_sessions})

    def best_of(config, range_bin_m, build_streams, n_frames) -> dict:
        # Each repeat rebuilds the stream stack (the generators are
        # stateful), times the serving loop, and the best wall clock
        # wins — the standard guard against scheduler/thermal noise.
        best = None
        for _ in range(max(repeats, 1)):
            res = _serve_streams(
                config, range_bin_m, build_streams(), n_frames
            )
            if best is None or res["wall_s"] < best["wall_s"]:
                best = res
        return best

    try:
        for n in counts:
            scenarios = _synthetic_scenarios(n, duration_s)
            config = scenarios[0].config
            range_bin_m = scenarios[0].range_bin_m

            set_backend("numpy")
            n_frames = CohortFrameSource(
                scenarios, chunk_frames=chunk_frames
            ).n_frames
            fused = best_of(
                config, range_bin_m,
                lambda: CohortFrameSource(
                    scenarios, chunk_frames=chunk_frames
                ).session_streams(),
                n_frames,
            )
            identical = _fused_parity(scenarios)

            set_backend("reference")
            baseline = best_of(
                config, range_bin_m,
                lambda: [
                    s.frames(chunk_frames=chunk_frames) for s in scenarios
                ],
                n_frames,
            )

            total = n * n_frames
            row = {
                "sessions": n,
                "frames_per_session": n_frames,
                "baseline_s": baseline["wall_s"],
                "fused_s": fused["wall_s"],
                "baseline_fps": total / baseline["wall_s"],
                "fused_fps": total / fused["wall_s"],
                "speedup": baseline["wall_s"] / fused["wall_s"],
                "fused_p95_latency_ms": fused["p95_latency_ms"],
                "noise_free_parity": identical,
            }
            if "stage_profile" in fused:
                row["stage_profile"] = fused["stage_profile"]
            if n == counts[-1]:
                # Compiled tick plans vs the staged loop on the numpy
                # backend — same frames, same backend, bit-checked.
                set_backend("numpy")
                row["tick_fusion"] = _tick_fusion_comparison(
                    config, range_bin_m, scenarios, repeats=max(repeats, 3)
                )
            if workers > 0 and n == counts[-1]:
                set_backend("numpy")
                row["distributed"] = _synthetic_distributed(
                    config, range_bin_m, scenarios, chunk_frames,
                    n_frames, workers,
                )
            rows.append(row)
    finally:
        set_backend(restore)
    return {
        "mode": "synthetic",
        "duration_s": duration_s,
        "max_sessions": n_sessions,
        "chunk_frames": chunk_frames,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "scaling": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8,
                        help="maximum concurrent sessions")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="seconds of scenario per session")
    parser.add_argument("--synthetic", action="store_true",
                        help="synthesis-inclusive mode: fused cohort "
                             "source (numpy backend) vs per-session "
                             "frames() (reference backend)")
    parser.add_argument("--multi", action="store_true",
                        help="K-person cohorts: staged per-slot "
                             "association vs fused multi-person tick "
                             "plans, bit-checked incl. track identities")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (multi mode)")
    parser.add_argument("--chunk", type=int, default=64,
                        help="synthesis chunk frames (synthetic mode)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timed row "
                             "(synthetic mode)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard worker processes for the distributed "
                             "rows (default: REPRO_WORKERS, else skip; "
                             "0 disables)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "serving.json")
    args = parser.parse_args()

    if args.workers is not None:
        if args.workers < 0:
            parser.error("--workers must be >= 0")
        workers = args.workers
    else:
        # REPRO_WORKERS=1 still measures the distributed tier (one
        # shard: the pure-IPC-overhead baseline); unset or explicitly
        # 0 skips it — 0 means "no parallelism" everywhere else too.
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = resolve_workers() if raw and raw != "0" else 0
    if workers and not pool_available():
        print("fork unavailable; skipping the distributed rows")
        workers = 0

    if args.multi:
        payload = bench_multi(
            args.sessions, args.duration, repeats=args.repeats,
            seed=args.seed,
        )
        out = args.output
        if out == parser.get_default("output"):
            out = out.with_name("serving_multi.json")
        print("\nmulti-person serving (aggregate frames/s)")
        print(f"{'N':>4}{'people':>8}{'staged':>12}{'fused':>12}"
              f"{'speedup':>10}{'p95 (ms)':>10}{'identical':>11}")

        def print_row(row):
            people = "+".join(
                f"{k}x{row['people_per_session'].count(k)}"
                for k in sorted(set(row["people_per_session"]))
            )
            print(f"{row['sessions']:>4}{people:>8}"
                  f"{row['staged_fps']:>12.0f}{row['fused_fps']:>12.0f}"
                  f"{row['speedup']:>9.2f}x"
                  f"{row['fused_p95_latency_ms']:>10.2f}"
                  f"{'yes' if row['identical'] else 'NO':>11}")

        for row in payload["scaling"]:
            print_row(row)
        if "mixed_cohorts" in payload:
            print_row(payload["mixed_cohorts"])
        top = payload["scaling"][-1]
        print(f"\nat N={top['sessions']} (K=2, {top['backend']} backend): "
              f"{top['speedup']:.2f}x fused over staged, identical "
              f"{'yes' if top['identical'] else 'NO'}")
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        checked = payload["scaling"] + (
            [payload["mixed_cohorts"]] if "mixed_cohorts" in payload else []
        )
        return 0 if all(row["identical"] for row in checked) else 1

    if args.synthetic:
        payload = bench_synthetic(
            args.sessions, args.duration, chunk_frames=args.chunk,
            repeats=args.repeats, workers=workers,
        )
        print("\nsynthesis-inclusive serving (aggregate frames/s)")
        print(f"{'N':>4}{'per-session':>13}{'fused':>12}{'speedup':>10}"
              f"{'p95 (ms)':>10}{'parity':>8}")
        for row in payload["scaling"]:
            print(f"{row['sessions']:>4}{row['baseline_fps']:>13.0f}"
                  f"{row['fused_fps']:>12.0f}{row['speedup']:>9.2f}x"
                  f"{row['fused_p95_latency_ms']:>10.2f}"
                  f"{'yes' if row['noise_free_parity'] else 'NO':>8}")
        top = payload["scaling"][-1]
        print(f"\nat N={top['sessions']}: {top['speedup']:.2f}x over "
              f"per-session synthesis (reference backend)")
        fusion_ok = True
        if "tick_fusion" in top:
            tf = top["tick_fusion"]
            fusion_ok = tf["identical"]
            print(f"tick fusion ({tf['backend']} backend, "
                  f"N={tf['sessions']}): staged "
                  f"{tf['staged_fps']:.0f} frames/s, fused "
                  f"{tf['fused_fps']:.0f} frames/s "
                  f"({tf['speedup']:.2f}x), identical "
                  f"{'yes' if tf['identical'] else 'NO'}")
            fused_path = args.output.with_name("serving_fused.json")
            fused_path.write_text(json.dumps(tf, indent=2) + "\n")
            print(f"wrote {fused_path}")
        dist_ok = True
        if "distributed" in top:
            dist = top["distributed"]
            for name, t in dist["transports"].items():
                dist_ok = dist_ok and t["identical_to_in_process"]
                print(f"distributed/{name} ({dist['workers']} workers): "
                      f"{t['fps']:.0f} frames/s, "
                      f"ipc {t['ipc_overhead_mean_ms']:.2f} ms, "
                      f"{t['transport_stats']['bytes_shm'] / 1e6:.1f} MB shm / "
                      f"{t['transport_stats']['bytes_pickled'] / 1e6:.1f} MB "
                      f"pickled, identical "
                      f"{'yes' if t['identical_to_in_process'] else 'NO'}")
            ratio = dist.get("ipc_overhead_pipe_over_shm")
            if ratio is not None:
                print(f"ipc overhead pipe/shm: {ratio:.2f}x")
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if dist_ok and fusion_ok and all(
            r["noise_free_parity"] for r in payload["scaling"]
        ) else 1

    print(f"synthesizing {args.sessions} sessions of "
          f"{args.duration:.0f} s each...")
    payload = bench_serving(args.sessions, args.duration, workers=workers)

    print("\nserving throughput (aggregate frames/s across sessions)")
    header = (f"{'N':>4}{'baseline':>12}{'lockstep':>12}{'speedup':>10}"
              f"{'p95 (ms)':>10}{'identical':>11}")
    if workers:
        header += f"{'distrib':>12}{'shard p95':>11}{'ipc (ms)':>10}"
    print(header)
    for row in payload["scaling"]:
        line = (f"{row['sessions']:>4}{row['baseline_fps']:>12.0f}"
                f"{row['lockstep_fps']:>12.0f}{row['speedup']:>9.2f}x"
                f"{row['lockstep_p95_latency_ms']:>10.2f}"
                f"{'yes' if row['identical_to_serial'] else 'NO':>11}")
        if "distributed" in row:
            dist = row["distributed"]
            line += (f"{dist['fps']:>12.0f}"
                     f"{dist['tick_p95_ms']:>11.2f}"
                     f"{dist['ipc_overhead_mean_ms']:>10.2f}")
        print(line)

    top = payload["scaling"][-1]
    print(f"\nat N={top['sessions']}: {top['speedup']:.2f}x over "
          f"{top['sessions']} independent pipelines, per-session p95 "
          f"{top['lockstep_p95_latency_ms']:.2f} ms "
          f"(75 ms budget "
          f"{'MET' if top['within_75ms_budget'] else 'EXCEEDED'})")
    if "distributed" in top:
        dist = top["distributed"]
        print(f"distributed ({dist['workers']} workers, "
              f"{dist['num_shards']} shards): "
              f"{dist['fps']:.0f} frames/s "
              f"({dist['speedup_vs_lockstep']:.2f}x vs in-process), "
              f"shard tick p95 {dist['tick_p95_ms']:.2f} ms, "
              f"mean IPC overhead {dist['ipc_overhead_mean_ms']:.2f} ms, "
              f"identical "
              f"{'yes' if dist['identical_to_serial'] else 'NO'}")
        comparison = top.get("transport_comparison")
        if comparison is not None:
            shm = top["distributed_shm"]
            print(f"transport pipe vs shm: ipc "
                  f"{comparison['ipc_overhead_pipe_ms']:.2f} ms vs "
                  f"{comparison['ipc_overhead_shm_ms']:.2f} ms "
                  f"({comparison['ipc_overhead_pipe_over_shm']:.2f}x), "
                  f"shm moved {comparison['bytes_shm'] / 1e6:.1f} MB "
                  f"({comparison['arena_overflows']} overflows), "
                  f"identical "
                  f"{'yes' if shm['identical_to_serial'] else 'NO'}")
        cores = payload["cpu_count"] or 1
        if cores <= dist["workers"]:
            print(f"NOTE: only {cores} CPU core(s) — shard workers are "
                  "time-slicing, so distributed throughput cannot "
                  "exceed in-process here; scaling needs >= workers+1 "
                  "cores")

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    ok = all(
        row["identical_to_serial"] and row["within_75ms_budget"]
        for row in payload["scaling"]
    )
    ok = ok and all(
        row["distributed"]["identical_to_serial"]
        and row["distributed"]["within_75ms_budget"]
        for row in payload["scaling"]
        if "distributed" in row
    )
    ok = ok and all(
        row["distributed_shm"]["identical_to_serial"]
        for row in payload["scaling"]
        if "distributed_shm" in row
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
