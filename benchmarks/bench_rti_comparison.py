"""Section 2: WiTrack vs radio tomographic imaging (RTI).

"[WiTrack's] technique extends to 3D, and its 2D accuracy is more than
5x higher than the state of the art radio tomographic networks [23]."

Both systems track the *same* trajectories: WiTrack through the full RF
pipeline, RTI through its RSSI shadowing network and regularized image
reconstruction. The kernel is one RTI locate (measure + reconstruct).
"""

import numpy as np

from repro import constants
from repro.baselines.rti import RTITracker, perimeter_network, simulate_rti_tracking
from repro.core.tracker import WiTrack
from repro.sim.vicon import DepthCalibration

from conftest import print_header


def test_witrack_beats_rti_in_2d(benchmark, config, cached_walk):
    network = perimeter_network()
    tracker = RTITracker(network)
    rng = np.random.default_rng(0)
    body = np.array([1.0, 5.0])
    benchmark(lambda: tracker.locate(network.measure(body, rng)))

    out = cached_walk
    track = WiTrack(config).track(out.spectra, out.range_bin_m)
    valid = track.valid_mask
    truth = DepthCalibration().compensate(
        out.truth_at(track.frame_times_s), out.body.torso_depth_m
    )
    witrack_2d = np.linalg.norm(
        track.positions[valid, :2] - truth[valid, :2], axis=1
    )

    # RTI at a comparable measurement rate on the same trajectory.
    rti_times = track.frame_times_s[::20]
    rti = simulate_rti_tracking(
        out.truth_at(rti_times)[:, :2], seed=1, network=network,
        tracker=tracker,
    )

    witrack_median = float(np.median(witrack_2d))
    rti_median = float(np.median(rti.errors_m))
    advantage = rti_median / witrack_median

    assert advantage > 2.0, "WiTrack must clearly beat RTI in 2D"

    print_header("Section 2 — WiTrack vs radio tomographic imaging (2D)")
    print(f"WiTrack 2D median error : {100 * witrack_median:6.1f} cm")
    print(f"RTI 2D median error     : {100 * rti_median:6.1f} cm "
          f"({network.num_nodes} nodes, {len(network.links)} links)")
    print(f"advantage               : {advantage:4.1f}x "
          f"(paper claims > {constants.PAPER_RTI_ADVANTAGE_FACTOR:.0f}x)")
