"""Section 9.5: the fall-detection results table.

Paper, over 132 experiments (33 per activity): no walk/chair false
alarms, 1 floor-sit misread as a fall, 2 falls missed; precision 96.9%,
recall 93.9%, F = 94.4%. Asserted shape: high precision and recall, no
false alarms from the non-ground activities. The kernel is one
classifier pass.
"""

import numpy as np

from repro import constants
from repro.core.falls import FallDetector
from repro.eval.figures import FALL_ACTIVITIES, fall_detection_table

from conftest import print_header


def test_fall_detection_table(benchmark, config):
    rng = np.random.default_rng(0)
    t = np.arange(0, 24.0, 0.0125)
    u = np.clip((t - 8.0) / 0.5, 0, 1)
    trace = 1.0 - 0.88 * u * u * (3 - 2 * u) + rng.normal(0, 0.08, len(t))
    detector = FallDetector()
    benchmark(lambda: detector.classify(t, trace))

    data = fall_detection_table(config=config)
    scores = data.scores

    assert scores.recall >= 0.7, "most falls must be detected"
    assert scores.precision >= 0.7, "false alarms must be rare"
    assert scores.f_measure >= 0.7

    # Walking and chair-sitting must never alarm (the paper saw zero).
    walk_alarms = sum(
        count
        for (truth, predicted), count in data.confusion.items()
        if truth in ("walk", "sit_chair") and predicted == "fall"
    )
    total_non_ground = 2 * data.per_activity_runs
    assert walk_alarms <= max(1, total_non_ground // 8)

    print_header("Section 9.5 — fall detection")
    print(f"runs per activity : {data.per_activity_runs}")
    print(f"precision         : {100 * scores.precision:5.1f}% "
          f"(paper {100 * constants.PAPER_FALL_PRECISION:.1f}%)")
    print(f"recall            : {100 * scores.recall:5.1f}% "
          f"(paper {100 * constants.PAPER_FALL_RECALL:.1f}%)")
    print(f"F-measure         : {100 * scores.f_measure:5.1f}% "
          f"(paper {100 * constants.PAPER_FALL_F_MEASURE:.1f}%)")
    print("\nconfusion (true -> predicted):")
    for truth in FALL_ACTIVITIES:
        row = {
            predicted: count
            for (t_label, predicted), count in data.confusion.items()
            if t_label == truth
        }
        cells = "  ".join(
            f"{predicted}:{row.get(predicted, 0):2d}"
            for predicted in FALL_ACTIVITIES
        )
        print(f"  {truth:9s} {cells}")
