"""Shared benchmark fixtures: canonical cached scenario data.

Heavy figure generation happens once per session in fixtures; the
``benchmark`` fixture then times a representative computational kernel,
and the test body asserts the paper's qualitative shape and prints the
same rows/series the paper reports.

Scale: set ``REPRO_SCALE=paper`` for the full 100 x 1-minute protocol
(see DESIGN.md Section 4); the default CI scale finishes in minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_config
from repro.sim.motion import random_walk
from repro.sim.room import through_wall_room
from repro.sim.scenario import Scenario


@pytest.fixture(scope="session")
def config():
    """The paper's default configuration."""
    return default_config()


@pytest.fixture(scope="session")
def cached_walk(config):
    """One 12 s through-wall walk shared by kernel benchmarks."""
    room = through_wall_room()
    walk = random_walk(room, np.random.default_rng(123), duration_s=12.0)
    return Scenario(walk, room=room, config=config, seed=124).run()


def print_header(title: str) -> None:
    """Uniform banner for the printed paper-series."""
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
