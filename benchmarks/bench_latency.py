"""Section 7: real-time operation under the 75 ms latency budget.

"Software processing has a total delay less than 75 ms between when the
signal is received and a corresponding 3D location is output."

The benchmarked kernel is one streaming frame (5 sweeps -> average ->
subtract -> contour -> denoise -> solve), i.e. exactly the work between
signal arrival and location output.
"""

import numpy as np

from repro import constants
from repro.apps.realtime import RealtimeTracker

from conftest import print_header


def test_streaming_latency_budget(benchmark, config, cached_walk):
    out = cached_walk
    tracker = RealtimeTracker(config, range_bin_m=out.range_bin_m)
    spf = tracker.sweeps_per_frame

    # Warm up state (background frame, Kalman) on real data first.
    for f in range(40):
        tracker.process_frame(out.spectra[:, f * spf : (f + 1) * spf, :])

    frame_index = [40]

    def one_frame():
        f = frame_index[0]
        frame_index[0] = 40 + (f - 39) % 400
        return tracker.process_frame(
            out.spectra[:, f * spf : (f + 1) * spf, :]
        )

    benchmark(one_frame)

    # Full-session latency statistics.
    tracker2 = RealtimeTracker(config, range_bin_m=out.range_bin_m)
    tracker2.run(out.spectra)
    report = tracker2.latency

    budget = constants.PAPER_LATENCY_BOUND_S
    assert report.within_budget(budget)
    assert report.median_s < budget / 10, (
        "software processing should be far inside the 75 ms budget"
    )

    print_header("Section 7 — streaming latency per 12.5 ms frame")
    print(f"median : {1e3 * report.median_s:7.3f} ms")
    print(f"p95    : {1e3 * report.p95_s:7.3f} ms")
    print(f"max    : {1e3 * report.max_s:7.3f} ms")
    print(f"budget : {1e3 * budget:7.1f} ms (paper: 'less than 75 ms')")
