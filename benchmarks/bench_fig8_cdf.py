"""Fig. 8: CDFs of the 3D location error, line-of-sight and through-wall.

Paper medians: LOS (9.9, 8.6, 17.7) cm; through-wall (13.1, 10.3, 21.0)
cm along (x, y, z). Asserted shape: y best, z worst, through-wall no
better than LOS, and medians within a generous band of the paper's.
The kernel is one full tracking pass over cached spectra.
"""

import numpy as np

from repro import constants
from repro.core.tracker import WiTrack
from repro.eval.figures import fig8_error_cdf

from conftest import print_header


def _print_panel(name, data, paper_medians):
    print(f"\n{name}")
    print("  dim   median     p90      paper median")
    for axis, (summary, paper) in enumerate(
        zip((data.summary_x, data.summary_y, data.summary_z), paper_medians)
    ):
        print(
            f"   {'xyz'[axis]}   {100 * summary.median:5.1f} cm  "
            f"{100 * summary.p90:6.1f} cm   {100 * paper:5.1f} cm"
        )


def test_fig8_location_error_cdfs(benchmark, config, cached_walk):
    tracker = WiTrack(config)
    benchmark(
        lambda: tracker.track(cached_walk.spectra, cached_walk.range_bin_m)
    )

    los = fig8_error_cdf(through_wall=False, config=config)
    tw = fig8_error_cdf(through_wall=True, config=config)

    for data in (los, tw):
        # Dimension ordering of Section 9.1: y best, z worst.
        assert data.summary_y.median <= data.summary_x.median + 0.02
        assert data.summary_z.median >= data.summary_y.median
        # Medians in the right decimeter band (not meters, not mm).
        for summary in (data.summary_x, data.summary_y, data.summary_z):
            assert 0.02 < summary.median < 0.45

    # Through-wall is no better than line of sight (extra attenuation).
    assert tw.summary_x.median >= los.summary_x.median - 0.02
    assert tw.summary_z.median >= los.summary_z.median - 0.02

    # The paper's 90th-percentile claim: within ~1 ft on x/y, 2 ft on z.
    assert tw.summary_x.p90 < 0.45
    assert tw.summary_y.p90 < 0.45
    assert tw.summary_z.p90 < 0.75

    print_header("Fig. 8 — 3D location-error CDFs")
    _print_panel(
        "(a) line of sight", los, constants.PAPER_MEDIAN_ERROR_LOS_M
    )
    _print_panel(
        "(b) through-wall", tw, constants.PAPER_MEDIAN_ERROR_TW_M
    )
    print("\nCDF quantiles, through-wall x (cm):")
    for q in (25, 50, 75, 90):
        print(f"  p{q}: {100 * tw.cdf_x.percentile(q):5.1f}")
