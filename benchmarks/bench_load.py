"""Load benchmark: the serving tier under open-loop, traffic-shaped load.

Where ``bench_serving.py`` measures *throughput* (closed-loop, every
frame waits its turn), this measures *behavior under load the engine
does not control*: sessions arrive by a seeded arrival process, stream
frames on their own clock, and leave — so offered load above capacity
produces real queueing, frame drops, and (with a memory budget armed)
admission rejections. Each scenario row reports the SLO ledger:
p50/p95/p99 virtual latency against the paper's 75 ms budget (§7),
goodput vs offered load, rejection and drop rates, peak queue depth,
and the memory governor's committed-bytes ledger.

Every number in the per-scenario ``slo`` blocks is a pure function of
(seed, scenario, engine configuration) — wall-clock stays in the
separate ``wall_s`` field — so CI can diff the artifact run over run.
Results land in ``benchmarks/load.json`` (uploaded by CI as the
``load-slo`` artifact).

Run:
    python benchmarks/bench_load.py [--horizon 6] [--seed 0] \\
        [--workers 2] [--scenario poisson flash]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # fresh checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import default_config
from repro.exec import pool_available, resolve_workers
from repro.loadgen import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    LoadHarness,
    MemoryGovernor,
    PoissonArrivals,
    SpecMemoryModel,
    build_workload,
)
from repro.rf.fmcw import range_axis
from repro.serve import ServingEngine, multi_session, single_session

QUEUE_CAPACITY = 16

#: Total predicted-memory budget the governor enforces in every
#: scenario. Sized (at ~0.7 MB predicted per session with a 16-frame
#: queue) so steady load fits with room to spare and a flash crowd
#: overshoots it — the rejection path must actually fire.
MEMORY_BUDGET_MB = 16.0


def scenario_processes(horizon_s: float) -> dict:
    """The benchmark's arrival scenarios, scaled to the horizon."""
    return {
        "poisson": PoissonArrivals(rate_hz=3.0),
        "diurnal": DiurnalArrivals(base_rate_hz=3.0, period_s=horizon_s),
        "flash": FlashCrowdArrivals(
            base_rate_hz=2.0,
            flash_rate_hz=20.0,
            flash_start_s=0.25 * horizon_s,
            flash_duration_s=0.25 * horizon_s,
        ),
    }


def run_scenario(
    name: str,
    process,
    horizon_s: float,
    seed: int,
    workers: int,
    capacity: int,
    transport: str | None = None,
) -> dict:
    """One (scenario, workers) cell: harness run + SLO artifact."""
    config = default_config()
    range_bin_m = float(range_axis(config.fmcw).round_trip_per_bin_m)
    frame_dt_s = (
        config.pipeline.sweeps_per_frame * config.fmcw.sweep_duration_s
    )
    workload = build_workload(
        process,
        horizon_s=horizon_s,
        frame_dt_s=frame_dt_s,
        seed=seed,
        lifetime_mean_s=0.4 * horizon_s,
        mix={"single": 0.8, "multi": 0.2},
    )
    specs = {
        "single": single_session(config, range_bin_m),
        "multi": multi_session(config, range_bin_m, max_people=2),
    }
    model = SpecMemoryModel(queue_capacity=QUEUE_CAPACITY)
    governor = MemoryGovernor(int(MEMORY_BUDGET_MB * 1e6), model=model)
    arena_bytes = None
    if workers:
        # Predict-before-allocate: size each shard's shm arena off the
        # dominant spec's calibrated footprint (see SpecMemoryModel).
        arena_bytes = max(
            model.arena_estimate(spec, int(MEMORY_BUDGET_MB * 1e6))
            for spec in specs.values()
        )
    start = time.perf_counter()
    with ServingEngine(
        queue_capacity=QUEUE_CAPACITY,
        workers=workers,
        admission=governor,
        memory_model=model,
        transport=transport,
        arena_bytes=arena_bytes,
    ) as engine:
        transport_name = engine.transport
        harness = LoadHarness(
            engine, workload, specs, capacity_frames_per_step=capacity
        )
        slo = harness.run()
    wall_s = time.perf_counter() - start
    return {
        "scenario": name,
        "workers": workers,
        "transport": transport_name,
        "wall_s": wall_s,
        "slo": slo,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=6.0,
                        help="arrival-generation window in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--capacity", type=int, default=10,
                        help="frames served per 12.5 ms virtual step")
    parser.add_argument("--scenario", nargs="+", default=None,
                        choices=["poisson", "diurnal", "flash"],
                        help="scenarios to run (default: all)")
    parser.add_argument("--workers", type=int, default=None,
                        help="also run each scenario distributed across "
                             "this many shard workers (default: "
                             "REPRO_WORKERS, else in-process only)")
    parser.add_argument("--transport", choices=["pipe", "shm"],
                        default=None,
                        help="shard IPC data plane for the distributed "
                             "rows (default: REPRO_TRANSPORT, else pipe)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "load.json")
    args = parser.parse_args()

    if args.workers is not None:
        workers = max(args.workers, 0)
    else:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = resolve_workers() if raw and raw != "0" else 0
    if workers and not pool_available():
        print("fork unavailable; skipping the distributed rows")
        workers = 0

    processes = scenario_processes(args.horizon)
    names = args.scenario or sorted(processes)
    worker_counts = [0] + ([workers] if workers else [])

    rows = []
    for name in names:
        for w in worker_counts:
            print(f"running {name} (workers={w})...")
            rows.append(
                run_scenario(
                    name, processes[name], args.horizon, args.seed, w,
                    args.capacity, transport=args.transport,
                )
            )

    print("\nload scenarios (virtual-clock SLO against the 75 ms budget)")
    print(f"{'scenario':>10}{'wrk':>5}{'tpt':>6}{'sessions':>10}{'rej%':>7}"
          f"{'drop%':>7}{'p50':>8}{'p99':>9}{'goodput':>10}{'offered':>10}")
    for row in rows:
        slo = row["slo"]
        s, f, t = slo["sessions"], slo["frames"], slo["throughput"]
        print(f"{row['scenario']:>10}{row['workers']:>5}"
              f"{row['transport']:>6}"
              f"{s['arrived']:>10}"
              f"{100 * s['rejection_rate']:>6.1f}%"
              f"{100 * f['drop_rate']:>6.1f}%"
              f"{slo['latency']['p50_ms']:>8.1f}"
              f"{slo['latency']['p99_ms']:>9.1f}"
              f"{t['goodput_fps']:>10.1f}{t['offered_fps']:>10.1f}")

    payload = {
        "horizon_s": args.horizon,
        "seed": args.seed,
        "capacity_frames_per_step": args.capacity,
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "queue_capacity": QUEUE_CAPACITY,
        "cpu_count": os.cpu_count(),
        "scenarios": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    # The artifact is useful only if the regime is real: under the flash
    # crowd the governor (or queue bound) must actually have refused
    # something, and every in-process run must stay deterministic in its
    # virtual-clock numbers (pinned harder by tests/test_loadgen.py).
    flash_rows = [r for r in rows if r["scenario"] == "flash"]
    pressured = all(
        r["slo"]["sessions"]["rejected"] > 0
        or r["slo"]["frames"]["dropped"] > 0
        for r in flash_rows
    )
    if flash_rows and not pressured:
        print("WARNING: flash crowd produced no rejections or drops — "
              "overload regime not reached")
    return 0 if (not flash_rows or pressured) else 1


if __name__ == "__main__":
    sys.exit(main())
