"""Fig. 6: tracked elevation vs time for the four activities.

Regenerates the four traces through the full RF pipeline and asserts the
figure's story: walking and chair-sitting end well above the floor,
floor-sitting and falling end near it, and only the fall gets there
fast. The kernel is the fall classifier on a cached trace.
"""

import numpy as np

from repro.core.falls import FallDetector
from repro.eval.figures import fig6_fall_elevations

from conftest import print_header


def test_fig6_elevation_traces(benchmark, config):
    data = fig6_fall_elevations(seed=3, config=config)
    traces = data.traces

    times, fall_elev = traces["fall"]
    detector = FallDetector()
    benchmark(lambda: detector.classify(times, fall_elev))

    def final_elevation(label):
        t, e = traces[label]
        finite = np.isfinite(e)
        tail = e[finite][t[finite] >= t[finite][-1] - 3.0]
        return float(np.median(tail))

    walk_final = final_elevation("walk")
    chair_final = final_elevation("sit_chair")
    floor_final = final_elevation("sit_floor")
    fall_final = final_elevation("fall")

    # Fig. 6's separation: non-ground activities end high...
    assert walk_final > 0.55
    assert chair_final > 0.45
    # ...ground activities end low.
    assert floor_final < 0.45
    assert fall_final < 0.45

    # And the fall reaches the ground much faster than the floor-sit.
    fall_verdict = detector.classify(*traces["fall"])
    sit_verdict = detector.classify(*traces["sit_floor"])
    assert fall_verdict.drop_duration_s < sit_verdict.drop_duration_s

    print_header("Fig. 6 — elevation traces (final elevation, drop time)")
    for label in ("walk", "sit_chair", "sit_floor", "fall"):
        verdict = detector.classify(*traces[label])
        duration = (
            f"{verdict.drop_duration_s:.2f} s"
            if np.isfinite(verdict.drop_duration_s)
            else "  -   "
        )
        print(f"  {label:9s} final {final_elevation(label):5.2f} m  "
              f"drop {duration}  -> classified {verdict.activity}")
