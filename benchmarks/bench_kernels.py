"""Kernel-tier microbenchmark: each hot kernel under each backend.

Where the serving benchmarks (``bench_serving.py``, ``bench_load.py``)
measure the tiers end to end, this one isolates the four kernels behind
the array-backend seam and times each under every backend selectable on
this machine (``numpy``, ``reference``, and ``numba`` when importable).
Workload shapes are the real serving shapes at N=8 sessions: the sweep
synthesis call is the exact ``(paths, sweeps) -> (rows, bins)`` scatter
a ``CohortFrameSource`` chunk issues, and the per-tick kernels see the
row counts one lockstep ``ServingEngine.tick`` sees.

Per kernel x backend the table reports wall time per call, the
per-session-frame cost in nanoseconds, and the ratio against the numpy
backend (``1.00x`` = numpy; ``>1`` = slower). Results land in
``benchmarks/kernels.json`` so CI legs leave a comparable artifact
(the numba matrix leg uploads it as ``kernels-numba``).

Run:
    python benchmarks/bench_kernels.py [--repeats 5] [--out kernels.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # fresh checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.localize import TGeometrySolver
from repro.geometry.antennas import t_array
from repro.kernels import (
    accumulate_spectra,
    available_backends,
    background_power,
    backend_name,
    first_local_max_above,
    kalman_tick,
    row_median,
    set_backend,
)
from repro.multi.cancellation import successive_contours
from repro.multi.tracks import Track, TrackBank, TrackManager

# Serving shapes at N=8 sessions, 3 antennas, 171 range bins: the
# synthesis call covers one 64-frame cohort chunk (320 sweeps per
# stream); the per-tick kernels cover one lockstep engine tick.
N_SESSIONS = 8
N_RX = 3
N_BINS = 171
SWEEPS_PER_FRAME = 5
CHUNK_FRAMES = 64


def _workloads() -> list[dict]:
    rng = np.random.default_rng(7)
    streams = N_SESSIONS * N_RX
    sweeps = CHUNK_FRAMES * SWEEPS_PER_FRAME
    paths_per_stream = 5
    n_paths = paths_per_stream * streams
    frac = rng.uniform(5.0, N_BINS - 5.0, (n_paths, sweeps))
    coeff = rng.standard_normal((n_paths, sweeps)) + 1j * rng.standard_normal(
        (n_paths, sweeps)
    )
    row_base = np.repeat(
        np.arange(streams, dtype=np.int64) * sweeps, paths_per_stream
    )
    synth_out = np.zeros((streams * sweeps, N_BINS), dtype=np.complex128)

    diff = rng.standard_normal(
        (N_SESSIONS * SWEEPS_PER_FRAME * N_RX, N_BINS)
    ) + 1j * rng.standard_normal((N_SESSIONS * SWEEPS_PER_FRAME * N_RX, N_BINS))
    power_out = np.empty(diff.shape)

    power = rng.uniform(0.0, 1.0, (N_SESSIONS * N_RX, N_BINS))
    threshold = np.full(N_SESSIONS * N_RX, 0.7)

    values = rng.uniform(1.0, 9.0, (N_SESSIONS, N_RX))
    values[rng.uniform(size=values.shape) < 0.2] = np.nan
    mean = rng.standard_normal((N_SESSIONS, N_RX, 2))
    cov = np.broadcast_to(np.eye(2), (N_SESSIONS, N_RX, 2, 2)).copy()
    live = rng.uniform(size=values.shape) < 0.8

    # Multi-person tick shapes: successive cancellation sees one frame
    # row per (session, antenna), with a couple of reflector peaks per
    # row; the track bank steps N_SESSIONS two-track managers against
    # steady candidate sets (claims stay claimed, the spare candidate
    # stays an excluded birth attempt, so repeated calls keep the
    # workload size fixed).
    range_bin_m = 0.05
    cancel_power = rng.uniform(0.0, 0.05, (N_SESSIONS * N_RX, N_BINS))
    bins = np.arange(N_BINS, dtype=np.float64)
    for r in range(cancel_power.shape[0]):
        for center in (45.0 + 3.0 * (r % 5), 95.0 - 2.0 * (r % 7)):
            cancel_power[r] += 4.0 * np.exp(
                -0.5 * ((bins - center) / 1.5) ** 2
            )

    solver = TGeometrySolver(t_array())
    dt_s = 0.0125
    bank = TrackBank()
    bank_managers: list[TrackManager] = []
    people = [np.array([-1.0, 3.0, -0.3]), np.array([1.2, 5.0, -0.2])]
    ghost = people[0] + np.array([0.25, 0.2, 0.0])
    bank_candidates = np.full((N_SESSIONS, N_RX, 6), np.nan)
    bank_powers = np.full((N_SESSIONS, N_RX, 6), np.nan)
    for s in range(N_SESSIONS):
        manager = TrackManager(dt_s, solver)
        for i, p in enumerate(people):
            tofs = solver.array.round_trip_distances(p)
            manager.tracks.append(
                Track(manager._next_id, dt_s, tofs, p, manager.config)
            )
            manager._next_id += 1
            bank_candidates[s, :, i] = tofs
            bank_powers[s, :, i] = 1.0 - 0.1 * i
        bank_candidates[s, :, 2] = solver.array.round_trip_distances(ghost)
        bank_powers[s, :, 2] = 0.5
        bank_managers.append(manager)

    chunk_session_frames = N_SESSIONS * CHUNK_FRAMES
    tick_session_frames = N_SESSIONS
    return [
        {
            "kernel": "accumulate_spectra",
            "shape": f"paths {frac.shape} -> rows {synth_out.shape}",
            "frames": chunk_session_frames,
            "inner": 1,
            "run": lambda: (
                synth_out.fill(0.0),
                accumulate_spectra(
                    synth_out, frac, coeff, row_base, 8, 2500, True
                ),
            ),
        },
        {
            "kernel": "background_power",
            "shape": f"diff {diff.shape}",
            "frames": tick_session_frames,
            "inner": 100,
            "run": lambda: background_power(diff, power_out),
        },
        {
            "kernel": "first_local_max_above",
            "shape": f"power {power.shape}",
            "frames": tick_session_frames,
            "inner": 100,
            "run": lambda: first_local_max_above(power, threshold, 4),
        },
        {
            "kernel": "row_median",
            "shape": f"power {power.shape}",
            "frames": tick_session_frames,
            "inner": 100,
            "run": lambda: row_median(power),
        },
        {
            "kernel": "kalman_tick",
            "shape": f"bank {values.shape}",
            "frames": tick_session_frames,
            "inner": 100,
            "run": lambda: kalman_tick(
                values, mean, cov, live, 0.0125, 1e-4, 1e-3, 1e-2, 0.05
            ),
        },
        {
            "kernel": "successive_contours",
            "shape": f"power {cancel_power.shape}",
            "frames": tick_session_frames,
            "inner": 20,
            "run": lambda: successive_contours(
                cancel_power, range_bin_m, max_targets=6
            ),
        },
        {
            "kernel": "track_bank_step",
            "shape": f"candidates {bank_candidates.shape}",
            "frames": tick_session_frames,
            "inner": 20,
            "run": lambda: bank.step(
                bank_managers, bank_candidates, bank_powers
            ),
        },
    ]


def _time_call(run, inner: int, repeats: int) -> float:
    """Best wall time of one kernel call (seconds), `inner` calls/rep."""
    run()  # warm up: allocator, scratch caches, numba JIT compilation
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        for _ in range(inner):
            run()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def bench(repeats: int) -> dict:
    restore = backend_name()
    backends = available_backends()
    rows = []
    try:
        for work in _workloads():
            timings = {}
            for name in backends:
                set_backend(name)
                timings[name] = _time_call(
                    work["run"], work["inner"], repeats
                )
            base = timings["numpy"]
            rows.append(
                {
                    "kernel": work["kernel"],
                    "shape": work["shape"],
                    "session_frames_per_call": work["frames"],
                    "backends": {
                        name: {
                            "call_us": 1e6 * t,
                            "ns_per_frame": 1e9 * t / work["frames"],
                            "vs_numpy": t / base,
                        }
                        for name, t in timings.items()
                    },
                }
            )
    finally:
        set_backend(restore)
    return {
        "benchmark": "kernels",
        "repeats": repeats,
        "backends": backends,
        "numpy_version": np.__version__,
        "kernels": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "kernels.json",
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    payload = bench(args.repeats)
    names = payload["backends"]
    print(f"kernel microbenchmarks ({', '.join(names)})")
    header = f"{'kernel':>22}" + "".join(f"{n:>14}" for n in names)
    print(header + f"{'ratio':>10}")
    for row in payload["kernels"]:
        cells = "".join(
            f"{row['backends'][n]['call_us']:>11.1f} us" for n in names
        )
        worst = max(row["backends"][n]["vs_numpy"] for n in names)
        print(f"{row['kernel']:>22}{cells}{worst:>9.2f}x")
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
