"""Throughput benchmark: frames/sec for stream, batch, and sharded runs.

Runs the same synthesized session through the unified pipeline engine's
two execution modes — ``run_batch`` (block-vectorized, the offline
evaluation path) and ``run_stream`` (frame-at-a-time, the realtime
path) — for the single-person and the K=2 multi-person stage graphs,
and reports frames per second for each. A third, sharded workload fans
one long lazily-synthesized stream across a process pool
(``repro.exec.ShardedStreamRunner``) and records workers, speedup, and
the serial-vs-parallel identity check. Results land in
``benchmarks/throughput.json`` so CI runs leave a comparable artifact.

Run:
    python benchmarks/bench_throughput.py [--duration 10] [--repeats 3]
        [--workers N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # fresh checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import MultiScenario, MultiWiTrack, WiTrack, default_config
from repro.apps.realtime import RealtimeMultiTracker, RealtimeTracker
from repro.exec import (
    cache_stats,
    default_cache,
    resolve_workers,
    sharded_speedup_benchmark,
    synthesize,
)
from repro.sim import Scenario, random_walk, through_wall_room
from repro.sim.body import HumanBody
from repro.sim.motion import non_colliding_walks


def _best(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_single(duration_s: float, repeats: int) -> dict:
    config = default_config()
    room = through_wall_room()
    walk = random_walk(room, np.random.default_rng(0), duration_s=duration_s)
    # Through the cache seam: with REPRO_CACHE enabled, the warm/cold
    # difference shows up in the JSON's cache counters.
    out = synthesize(Scenario(walk, room=room, config=config, seed=1))
    tracker = WiTrack(config)
    n_frames = out.num_sweeps // config.pipeline.sweeps_per_frame

    batch_s = _best(
        lambda: tracker.track(out.spectra, out.range_bin_m), repeats
    )

    def stream() -> None:
        RealtimeTracker(config, range_bin_m=out.range_bin_m).run(out.spectra)

    stream_s = _best(stream, repeats)
    rt = RealtimeTracker(config, range_bin_m=out.range_bin_m)
    rt.run(out.spectra)
    return {
        "n_frames": n_frames,
        "batch_s": batch_s,
        "stream_s": stream_s,
        "batch_fps": n_frames / batch_s,
        "stream_fps": n_frames / stream_s,
        "stream_p95_latency_ms": 1e3 * rt.latency.p95_s,
        "within_75ms_budget": rt.latency.within_budget(0.075),
    }


def bench_multi(duration_s: float, repeats: int, people: int = 2) -> dict:
    config = default_config()
    room = through_wall_room()
    walks = non_colliding_walks(
        room, np.random.default_rng(7), count=people,
        duration_s=duration_s, min_separation_m=1.0,
    )
    pairs = [(HumanBody(name=f"p{i}"), w) for i, w in enumerate(walks)]
    out = synthesize(MultiScenario(pairs, room=room, config=config, seed=7))
    tracker = MultiWiTrack(config, max_people=people, room=room)
    n_frames = out.num_sweeps // config.pipeline.sweeps_per_frame

    batch_s = _best(
        lambda: tracker.track(out.spectra, out.range_bin_m), repeats
    )

    def stream() -> None:
        RealtimeMultiTracker(
            config, range_bin_m=out.range_bin_m, max_people=people, room=room
        ).run(out.spectra)

    stream_s = _best(stream, repeats)
    return {
        "people": people,
        "n_frames": n_frames,
        "batch_s": batch_s,
        "stream_s": stream_s,
        "batch_fps": n_frames / batch_s,
        "stream_fps": n_frames / stream_s,
    }


def bench_sharded(duration_s: float, repeats: int, workers: int) -> dict:
    """Synthesis + tracking of one long stream, serial vs sharded pool.

    Unlike the other workloads this times *end-to-end* throughput
    (lazy synthesis included), because that is the work the shards fan
    out; the shard plan is identical in both runs, so the merged
    results must match bitwise.
    """
    room = through_wall_room()
    walk = random_walk(room, np.random.default_rng(3), duration_s=duration_s)
    scenario = Scenario(walk, room=room, seed=4)
    return sharded_speedup_benchmark(
        scenario, workers=workers, repeats=repeats
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of scenario per workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the sharded workload "
                             "(default: REPRO_WORKERS, else serial)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "throughput.json")
    args = parser.parse_args()
    workers = resolve_workers(args.workers)

    print(f"synthesizing and timing ({args.duration:.0f} s scenarios, "
          f"best of {args.repeats})...")
    single = bench_single(args.duration, args.repeats)
    multi = bench_multi(args.duration, args.repeats)
    sharded = bench_sharded(args.duration, args.repeats, workers)

    realtime_fps = 80.0  # 12.5 ms frame cadence
    print("\npipeline throughput (frames/sec; realtime needs "
          f"{realtime_fps:.0f})")
    print(f"{'workload':<16}{'batch':>12}{'stream':>12}")
    print(f"{'single-person':<16}{single['batch_fps']:>12.0f}"
          f"{single['stream_fps']:>12.0f}")
    print(f"{'multi (K=2)':<16}{multi['batch_fps']:>12.0f}"
          f"{multi['stream_fps']:>12.0f}")
    print(f"\nstream p95 latency: {single['stream_p95_latency_ms']:.2f} ms "
          f"(75 ms budget "
          f"{'MET' if single['within_75ms_budget'] else 'EXCEEDED'})")
    print(f"\nsharded end-to-end (synthesis + tracking, "
          f"{sharded['num_shards']} shards, {sharded['workers']} workers): "
          f"{sharded['serial_fps']:.0f} -> {sharded['sharded_fps']:.0f} "
          f"frames/s ({sharded['speedup']:.2f}x, results "
          f"{'identical' if sharded['identical'] else 'DIVERGED'})")

    cache = cache_stats()
    if default_cache() is None:
        print("\ncache: disabled (set REPRO_CACHE=1 or REPRO_CACHE_DIR)")
    else:
        for kind, counts in cache.items():
            print(f"cache ({kind}): {counts['hits']} hits  "
                  f"{counts['misses']} misses  "
                  f"{counts['evictions']} evicted")

    payload = {
        "duration_s": args.duration,
        "repeats": args.repeats,
        "single_person": single,
        "multi_person": multi,
        "sharded": sharded,
        "cache": cache,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    ok = (
        single["within_75ms_budget"]
        and single["batch_fps"] > realtime_fps
        and single["stream_fps"] > realtime_fps
        and sharded["identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
