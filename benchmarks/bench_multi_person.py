"""Multi-person tracking: accuracy, identity, and latency vs K.

WiTrack is single-person by design (Section 8); ``repro.multi`` extends
it with successive echo cancellation and a per-target Kalman track bank.
This benchmark sweeps K in {1, 2, 3} well-separated walkers and reports
per-person median / 90th-percentile 3D error, identity switches, MOTA,
and mean OSPA — and checks the subsystem's acceptance bar: with K=2
well-separated walkers each person is tracked to within 2x the
single-person median error with zero identity switches, and the
streaming multi-tracker still meets the paper's 75 ms latency budget.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import constants
from repro.apps.realtime import RealtimeMultiTracker
from repro.config import default_config
from repro.eval.figures import multi_person_sweep
from repro.eval.harness import (
    MultiTrackingOutcome,
    TrackingExperiment,
    run_tracking_experiment,
)
from repro.eval.metrics import mot_metrics, ospa_series
from repro.exec import default_runner
from repro.kernels import backend_name
from repro.kernels.tick import enable_fusion, reset_fusion_override
from repro.multi import MultiScenario, MultiWiTrack
from repro.sim import (
    DepthCalibration,
    HumanBody,
    ViconSystem,
    non_colliding_walks,
    through_wall_room,
    waypoint_walk,
)
from repro.sim.body import sample_population

from conftest import print_header

DURATION_S = 12.0
SEED = 0
CROSSING_OUT = Path(__file__).parent / "multi_person.json"


@pytest.fixture(scope="module")
def single_person_median_m():
    """Median 3D error of the classic single-person pipeline."""
    outcome = run_tracking_experiment(
        TrackingExperiment(seed=SEED, duration_s=DURATION_S)
    )
    errors = np.linalg.norm(outcome.errors_xyz, axis=1)
    return float(np.nanmedian(errors))


@pytest.fixture(scope="module")
def multi_outcomes():
    """One scored K-person experiment per K in {1, 2, 3}, one plan.

    Runs serially by default; set ``REPRO_WORKERS`` to fan the three
    K-points across a process pool (the scores are identical either
    way — the runner-equivalence invariant).
    """
    return multi_person_sweep(
        ks=(1, 2, 3), seed=SEED, duration_s=DURATION_S,
        runner=default_runner(),
    )


def _person_rows(k: int, outcome: MultiTrackingOutcome):
    rows = []
    for p in range(k):
        errors = outcome.mot.per_truth_errors[p]
        finite = errors[np.isfinite(errors)]
        med = 100 * np.median(finite) if finite.size else float("nan")
        p90 = 100 * np.percentile(finite, 90) if finite.size else float("nan")
        rows.append((p, med, p90, outcome.mot.per_truth_switches[p]))
    return rows


def test_multi_person_accuracy(multi_outcomes, single_person_median_m):
    print_header(
        "Multi-person extension - per-person accuracy vs K "
        "(well-separated walkers)"
    )
    print(f"single-person baseline median: "
          f"{100 * single_person_median_m:.1f} cm")
    for k, outcome in multi_outcomes.items():
        mot = outcome.mot
        print(f"\nK={k}:  MOTA {mot.mota:.3f}  "
              f"misses {mot.misses}  false positives {mot.false_positives}  "
              f"ID switches {mot.id_switches}  "
              f"mean OSPA {100 * outcome.ospa_mean_m:.1f} cm")
        for p, med, p90, switches in _person_rows(k, outcome):
            print(f"  person {p + 1}: median {med:6.1f} cm   "
                  f"p90 {p90:6.1f} cm   switches {switches}")

    # Acceptance: K=2 well-separated - every person within 2x the
    # single-person median, and identity held for the whole session.
    k2 = multi_outcomes[2]
    for p, med, _, switches in _person_rows(2, k2):
        assert np.isfinite(med), f"person {p + 1} was never matched"
        assert med / 100.0 <= 2.0 * single_person_median_m, (
            f"person {p + 1} median {med:.1f} cm exceeds 2x the "
            f"single-person median {100 * single_person_median_m:.1f} cm"
        )
    assert k2.mot.id_switches == 0, (
        "well-separated walkers must keep their identities"
    )
    # Every person is matched most of the session.
    matched = np.isfinite(k2.mot.per_truth_errors).mean(axis=1)
    assert np.all(matched > 0.5), f"match fractions too low: {matched}"


def crossing_walks(room):
    """Two walkers whose round-trip ranges cross mid-session.

    One walks near-to-far, the other far-to-near, on x lanes 2.2+ m
    apart: their *ranges* sweep through each other (the per-antenna TOF
    candidates collide) while the people themselves never come close —
    the workload where identity is won or lost in association, not in
    geometry.
    """
    y0 = room.front_wall_y or 0.0
    near, far = y0 + 2.0, y0 + 7.0
    return [
        waypoint_walk(
            np.array([[-2.2, near], [-1.0, far]]),
            speed_mps=1.2,
            torso_z=-0.2,
            label="near-to-far",
        ),
        waypoint_walk(
            np.array([[2.2, far], [1.0, near]]),
            speed_mps=1.2,
            torso_z=-0.3,
            label="far-to-near",
        ),
    ]


def _identity_fields(truths: np.ndarray, result) -> dict:
    mot = mot_metrics(truths, result.positions, match_threshold_m=1.0)
    ospa = ospa_series(truths, result.positions)
    return {
        "mota": round(float(mot.mota), 4),
        "id_switches": int(mot.id_switches),
        "misses": int(mot.misses),
        "false_positives": int(mot.false_positives),
        "mean_ospa_cm": round(100.0 * float(np.mean(ospa)), 2),
        "tracks": int(result.num_tracks),
    }


def crossing_benchmark(seed: int = SEED) -> dict:
    """Score the crossing workload staged and fused, on one synthesis.

    Synthesizes the two-walker crossing scene once, tracks it twice —
    fusion forced off and on — and scores both against the VICON truth
    protocol. The fused run must be bitwise the staged run (positions,
    identities, coasting flags), so its MOTA/ID-switch numbers gate in
    CI exactly like the throughput artifacts do.
    """
    room = through_wall_room()
    config = default_config()
    walks = crossing_walks(room)
    rng = np.random.default_rng(seed)
    bodies = tuple(sample_population(rng, count=11)[:2])
    out = MultiScenario(
        list(zip(bodies, walks)), room=room, config=config, seed=seed + 1
    ).run()

    def run(fused: bool):
        enable_fusion(fused)
        tracker = MultiWiTrack(config, max_people=2, room=room)
        return tracker.track(out.spectra, out.range_bin_m)

    try:
        staged = run(False)
        fused = run(True)
    finally:
        reset_fusion_override()

    # Ground truth per person: the Section 8(a) protocol applied per
    # target (same stream seeds as the eval harness).
    vicon = ViconSystem()
    calibration = DepthCalibration()
    truths = np.empty((2, staged.num_frames, 3))
    for p, (body, walk) in enumerate(zip(bodies, walks)):
        captured = vicon.capture(walk, np.random.default_rng(seed + 2 + 7 * p))
        centers = captured.resample(staged.frame_times_s)
        depth = calibration.measure_depth(
            body, np.random.default_rng(seed + 3 + 7 * p)
        )
        truths[p] = calibration.compensate(centers, depth)

    identical = (
        staged.track_ids == fused.track_ids
        and np.array_equal(staged.positions, fused.positions, equal_nan=True)
        and np.array_equal(staged.coasting, fused.coasting)
    )
    return {
        "workload": "crossing",
        "seed": seed,
        "num_people": 2,
        "frames": int(staged.num_frames),
        "backend": backend_name(),
        "staged": _identity_fields(truths, staged),
        "fused": _identity_fields(truths, fused),
        "fused_identical": bool(identical),
    }


def test_crossing_identity():
    print_header(
        "Crossing-heavy workload (K=2, ranges cross) - "
        "identity, staged vs fused"
    )
    payload = crossing_benchmark()
    for leg in ("staged", "fused"):
        f = payload[leg]
        print(f"{leg:>6}:  MOTA {f['mota']:.3f}  "
              f"ID switches {f['id_switches']}  misses {f['misses']}  "
              f"false positives {f['false_positives']}  "
              f"mean OSPA {f['mean_ospa_cm']:.1f} cm  "
              f"tracks {f['tracks']}")
    print(f"fused identical to staged: "
          f"{'yes' if payload['fused_identical'] else 'NO'}")
    CROSSING_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {CROSSING_OUT}")

    # The CI identity gate: fusing the K-person tick must not change
    # tracking output at all, so MOTA and ID switches are unchanged by
    # construction — and the JSON artifact records the absolute values
    # so workload regressions show up in run-over-run diffs.
    assert payload["fused_identical"], (
        "fused multi-person tracking diverged from staged"
    )
    assert payload["fused"] == payload["staged"]
    staged = payload["staged"]
    assert staged["mota"] > 0.75, f"crossing MOTA collapsed: {staged}"
    assert staged["id_switches"] == 0, (
        f"crossing workload lost identity: {staged}"
    )


def test_streaming_multi_latency(benchmark):
    room = through_wall_room()
    rng = np.random.default_rng(SEED)
    walks = non_colliding_walks(
        room, rng, 2, duration_s=DURATION_S, min_separation_m=1.0
    )
    people = [(HumanBody(name=f"p{i}"), w) for i, w in enumerate(walks)]
    measured = MultiScenario(people, room=room, seed=SEED + 1).run()

    tracker = RealtimeMultiTracker(
        measured.config,
        range_bin_m=measured.range_bin_m,
        max_people=2,
        room=room,
    )
    spf = tracker.sweeps_per_frame
    for f in range(40):
        tracker.process_frame(measured.spectra[:, f * spf : (f + 1) * spf, :])

    frame_index = [40]

    def one_frame():
        f = frame_index[0]
        frame_index[0] = 40 + (f - 39) % 400
        return tracker.process_frame(
            measured.spectra[:, f * spf : (f + 1) * spf, :]
        )

    benchmark(one_frame)

    tracker2 = RealtimeMultiTracker(
        measured.config,
        range_bin_m=measured.range_bin_m,
        max_people=2,
        room=room,
    )
    tracker2.run(measured.spectra)
    report = tracker2.latency

    budget = constants.PAPER_LATENCY_BOUND_S
    assert report.within_budget(budget)

    print_header("Streaming multi-person latency per 12.5 ms frame (K=2)")
    print(f"median : {1e3 * report.median_s:7.3f} ms")
    print(f"p95    : {1e3 * report.p95_s:7.3f} ms")
    print(f"max    : {1e3 * report.max_s:7.3f} ms")
    print(f"budget : {1e3 * budget:7.1f} ms (paper: 'less than 75 ms')")
