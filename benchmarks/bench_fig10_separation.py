"""Fig. 10: localization error vs antenna separation (0.25-2 m).

Paper shape: error decreases monotonically-ish as the T grows, because a
wider focal distance squashes the ellipsoids and shrinks the feasible
region. Even at 25 cm the system stays usable (medians < 17/12/31 cm in
the paper). The kernel is the solver across separations.
"""

import numpy as np

from repro.config import ArrayConfig
from repro.core.localize import TGeometrySolver
from repro.eval.figures import fig10_error_vs_separation
from repro.geometry.antennas import t_array

from conftest import print_header


def test_fig10_error_vs_separation(benchmark, config):
    rng = np.random.default_rng(0)
    p = np.array([0.5, 5.0, 0.0])

    def kernel():
        medians = []
        for sep in (0.25, 1.0, 2.0):
            arr = t_array(ArrayConfig(separation_m=sep))
            solver = TGeometrySolver(arr)
            k = arr.round_trip_distances(p) + rng.normal(0, 0.02, (200, 3))
            result = solver.solve(k)
            err = np.linalg.norm(
                result.positions[result.valid] - p[None, :], axis=1
            )
            medians.append(np.median(err))
        return medians

    geometric = benchmark(kernel)
    assert geometric[0] > geometric[-1], "wider T must be geometrically better"

    data = fig10_error_vs_separation(config=config)

    # End-to-end: the smallest T is worse than the largest on x and z
    # (the dimensions the geometry amplifies).
    assert data.median_cm[0, 0] > data.median_cm[-1, 0]
    assert data.median_cm[0, 2] > data.median_cm[-1, 2]

    # Even the 25 cm T stays usable (paper: 17/12/31 cm medians).
    assert np.all(data.median_cm[0] < 80.0)

    print_header("Fig. 10 — error vs antenna separation (through-wall)")
    print("  sep      x med / p90      y med / p90      z med / p90  (cm)")
    for i, s in enumerate(data.separations_m):
        m, p90 = data.median_cm[i], data.p90_cm[i]
        print(
            f"  {s:4.2f} m  {m[0]:5.1f} / {p90[0]:5.1f}   "
            f"{m[1]:5.1f} / {p90[1]:5.1f}   {m[2]:5.1f} / {p90[2]:5.1f}"
        )
    print("(paper @0.25 m: 17/12/31 cm medians; improves with separation)")
