"""Fig. 9: localization error vs distance from the device (3-11 m).

Paper shape: median errors grow by roughly 5-10 cm from 3 m to 11 m,
with y best and z worst throughout. The kernel is the geometric solver
on noisy round trips at increasing range — the mechanism the paper gives
for the trend (the ellipsoid grows with TOF at fixed focal distance).
"""

import numpy as np

from repro.core.localize import TGeometrySolver
from repro.eval.figures import fig9_error_vs_distance
from repro.geometry.antennas import t_array

from conftest import print_header


def test_fig9_error_vs_distance(benchmark, config):
    array = t_array(config.array)
    solver = TGeometrySolver(array)
    rng = np.random.default_rng(0)

    def kernel():
        out = []
        for depth in (3.0, 7.0, 11.0):
            p = np.array([0.5, depth, 0.0])
            k = array.round_trip_distances(p) + rng.normal(0, 0.02, (200, 3))
            out.append(solver.solve(k))
        return out

    benchmark(kernel)

    data = fig9_error_vs_distance(config=config, distances=(3.0, 5.0, 7.0, 9.0, 11.0))

    # x and z (the geometrically amplified dimensions) must degrade with
    # distance; y is range-like and stays comparatively flat.
    for axis in (0, 2):
        near = data.median_cm[0, axis]
        far = data.median_cm[-1, axis]
        assert far > near, f"axis {'xyz'[axis]} must degrade with distance"
    assert data.median_cm[-1, 1] < data.median_cm[0, 1] + 10.0

    # Ordering holds at every distance: y <= x (z allowed to wobble).
    for row in data.median_cm:
        assert row[1] <= row[0] + 3.0

    print_header("Fig. 9 — error vs distance to device (through-wall)")
    print("  dist    x med / p90      y med / p90      z med / p90  (cm)")
    for i, d in enumerate(data.distances_m):
        m, p = data.median_cm[i], data.p90_cm[i]
        print(
            f"  {d:4.0f} m  {m[0]:5.1f} / {p[0]:5.1f}   "
            f"{m[1]:5.1f} / {p[1]:5.1f}   {m[2]:5.1f} / {p[2]:5.1f}"
        )
    print("(paper: medians grow ~5-10 cm from 3 m to 11 m)")
