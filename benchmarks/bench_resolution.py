"""Eq. 3 / Section 4.1: FMCW range resolution C / 2B = 8.8 cm.

Verifies that two reflectors separated by a bit more than one resolution
cell appear as distinct spectral peaks, and that reflectors inside one
cell merge — the physical meaning of Eq. 3. The benchmarked kernel is
one sweep synthesis + FFT, the per-sweep cost of the front end.
"""

import numpy as np

from repro import constants
from repro.config import FMCWConfig
from repro.rf.frontend import (
    TimeDomainPath,
    sweep_spectrum,
    synthesize_sweep_time_domain,
)

from conftest import print_header


def _peak_count(cfg: FMCWConfig, separation_one_way_m: float) -> int:
    """Distinct peaks for two reflectors a given one-way distance apart."""
    base = 8.0
    paths = [
        TimeDomainPath(base, 1.0),
        TimeDomainPath(base + 2 * separation_one_way_m, 1.0),
    ]
    # Eq. 3 describes the unwindowed FFT cell; use the rect window so the
    # Hann main-lobe widening does not obscure the bandwidth limit.
    spectrum = np.abs(
        sweep_spectrum(
            synthesize_sweep_time_domain(paths, cfg), window="rect"
        )
    )
    # Count distinct local maxima above half the global peak.
    threshold = spectrum.max() * 0.5
    count = 0
    for k in range(1, len(spectrum) - 1):
        if (
            spectrum[k] >= threshold
            and spectrum[k] >= spectrum[k - 1]
            and spectrum[k] > spectrum[k + 1]
        ):
            count += 1
    return count


def test_eq3_range_resolution(benchmark, config):
    cfg = config.fmcw

    def kernel():
        return sweep_spectrum(
            synthesize_sweep_time_domain([TimeDomainPath(10.0, 1.0)], cfg)
        )

    benchmark(kernel)

    resolution = cfg.range_resolution_m
    assert np.isclose(resolution, 0.0887, atol=5e-4)

    resolved = _peak_count(cfg, 3.0 * resolution)
    merged = _peak_count(cfg, 0.4 * resolution)
    assert resolved == 2, "reflectors 3 cells apart must be resolvable"
    assert merged == 1, "reflectors within one cell must merge"

    print_header("Eq. 3 — FMCW range resolution")
    print(f"bandwidth B                : {cfg.bandwidth_hz / 1e9:.2f} GHz")
    print(f"resolution C/2B (paper 8.8): {100 * resolution:.1f} cm")
    print(f"two reflectors @ 3.0 cells : {resolved} peaks (expect 2)")
    print(f"two reflectors @ 0.4 cells : {merged} peaks (expect 1)")


def test_resolution_scales_inverse_with_bandwidth(benchmark):
    """Halving the bandwidth doubles the resolution cell."""

    def kernel():
        return [
            FMCWConfig(bandwidth_hz=b).range_resolution_m
            for b in (0.845e9, 1.69e9, 3.38e9)
        ]

    wide, paper, ultra = benchmark(kernel)
    assert np.isclose(wide, 2 * paper, rtol=1e-9)
    assert np.isclose(ultra, paper / 2, rtol=1e-9)
    print_header("Eq. 3 — resolution vs bandwidth")
    for b, r in [(0.845, wide), (1.69, paper), (3.38, ultra)]:
        print(f"  B = {b:5.2f} GHz  ->  {100 * r:5.2f} cm")
