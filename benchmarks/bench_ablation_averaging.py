"""Ablation (Section 4.3): the 5-sweep frame-averaging depth.

"Averaging allows us to boost the power of a reflection from a human
while diluting the peaks that are due to noise."

Sweeps the frame depth (1, 5, 20) through the full TOF pipeline on the
same spectra. 1 sweep/frame loses the averaging gain; very deep frames
smear a moving target and halve the output rate for nothing. The paper's
5 balances SNR against motion blur at human speeds. The kernel is the
pipeline at the paper's depth.
"""

import dataclasses

import numpy as np

from repro.config import PipelineConfig
from repro.core.tof import TOFEstimator

from conftest import print_header


def _tof_error(out, sweeps_per_frame: int, config) -> float:
    pipeline = dataclasses.replace(
        PipelineConfig(), sweeps_per_frame=sweeps_per_frame
    )
    estimator = TOFEstimator(
        config.fmcw.sweep_duration_s, out.range_bin_m, pipeline
    )
    est = estimator.estimate(out.spectra[0])
    n = est.num_frames
    truth = (
        out.true_round_trips[0][: (n + 1) * sweeps_per_frame]
        .reshape(-1, sweeps_per_frame)
        .mean(axis=1)[1 : n + 1]
    )
    return float(np.nanmedian(np.abs(est.round_trip_m - truth[:n])))


def test_frame_averaging_depth(benchmark, config, cached_walk):
    benchmark(lambda: _tof_error(cached_walk, 5, config))

    errors = {
        depth: _tof_error(cached_walk, depth, config) for depth in (1, 5, 20)
    }

    # The paper's depth must not be worse than either extreme by much.
    assert errors[5] <= errors[1] * 1.25
    assert errors[5] <= errors[20] * 1.25

    print_header("Ablation — sweeps averaged per frame")
    for depth, err in errors.items():
        marker = "  <- paper" if depth == 5 else ""
        print(f"  {depth:2d} sweeps/frame: median TOF error "
              f"{100 * err:5.1f} cm{marker}")
