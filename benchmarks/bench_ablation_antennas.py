"""Ablation (Section 5 note): over-constraining with extra antennas.

"While the minimum number of Rx antennas necessary to resolve a 3D
location is three, adding more antennas would result in more
constraints ... and hence add extra robustness to noise."

Monte-Carlo over noisy round trips: the least-squares solver with 3, 4
and 6 receive antennas. The kernel is the 6-antenna solve.
"""

import numpy as np

from repro.config import ArrayConfig
from repro.core.localize import LeastSquaresSolver
from repro.geometry.antennas import t_array

from conftest import print_header


def _median_error(n_rx: int, sigma: float, trials: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    array = t_array(ArrayConfig(num_receivers=n_rx))
    solver = LeastSquaresSolver(array)
    p = np.array([0.8, 5.0, 0.2])
    k = array.round_trip_distances(p)
    noisy = k[None, :] + rng.normal(0, sigma, (trials, n_rx))
    result = solver.solve(noisy)
    errors = np.linalg.norm(
        result.positions[result.valid] - p[None, :], axis=1
    )
    return float(np.median(errors))


def test_more_antennas_more_robust(benchmark, config):
    benchmark(lambda: _median_error(6, 0.03, 20, seed=1))

    trials = 150
    sigma = 0.03
    errors = {n: _median_error(n, sigma, trials, seed=2) for n in (3, 4, 6)}

    assert errors[6] < errors[3], "6 Rx must beat 3 Rx under noise"
    assert errors[4] <= errors[3] * 1.1, "4 Rx should not be worse than 3"

    print_header("Ablation — number of receive antennas (3 cm TOF noise)")
    for n, err in errors.items():
        print(f"  {n} Rx antennas: median 3D error {100 * err:6.1f} cm")
    print(f"improvement 3 -> 6 Rx: {errors[3] / errors[6]:.2f}x")
