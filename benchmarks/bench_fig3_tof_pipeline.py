"""Fig. 3: spectrogram -> background subtraction -> contour -> denoise.

Regenerates the three panels' data and asserts their story:
(a) static clutter dominates the raw spectrogram (the Flash Effect);
(b) subtraction leaves the mover dominant;
(c) the denoised contour tracks the true round-trip distance and removes
    the impractical jumps of the raw contour.

The benchmarked kernel is the full Section 4 pipeline on one antenna.
"""

import numpy as np

from repro.config import PipelineConfig
from repro.core.tof import TOFEstimator
from repro.eval.figures import fig3_tof_pipeline

from conftest import print_header


def test_fig3_pipeline(benchmark, config, cached_walk):
    estimator = TOFEstimator(
        config.fmcw.sweep_duration_s,
        cached_walk.range_bin_m,
        PipelineConfig(),
    )
    benchmark(lambda: estimator.estimate(cached_walk.spectra[0]))

    data = fig3_tof_pipeline(seed=5, duration_s=15.0, config=config)

    # Panel (a): the strongest raw bin is a static stripe.
    raw_peaks = np.argmax(data.raw.power, axis=1)
    dominant = np.bincount(raw_peaks).argmax()
    stripe_fraction = float(np.mean(raw_peaks == dominant))
    assert stripe_fraction > 0.8, "raw spectrogram must be clutter-dominated"

    # Panel (b)+(c): the denoised contour tracks the truth.
    err = np.abs(data.denoised_m - data.truth_m)
    median_err = float(np.nanmedian(err))
    assert median_err < 0.15, "denoised contour within ~1 range bin"

    # Denoising must remove the raw contour's impractical jumps.
    raw_jumps = np.abs(np.diff(data.contour_m))
    raw_jumps = raw_jumps[np.isfinite(raw_jumps)]
    clean_jumps = np.abs(np.diff(data.denoised_m))
    clean_jumps = clean_jumps[np.isfinite(clean_jumps)]
    assert np.max(clean_jumps) < np.max(raw_jumps)

    print_header("Fig. 3 — TOF estimation pipeline")
    print(f"(a) raw spectrogram: strongest bin static in "
          f"{100 * stripe_fraction:.0f}% of frames (Flash Effect)")
    print(f"(c) denoised contour error: median {100 * median_err:.1f} cm, "
          f"p90 {100 * np.nanpercentile(err, 90):.1f} cm")
    print(f"    raw contour max jump   : {np.max(raw_jumps):.2f} m/frame")
    print(f"    denoised max jump      : {np.max(clean_jumps):.2f} m/frame")
