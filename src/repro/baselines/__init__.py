"""Baselines the paper compares against or rejects.

* :mod:`peak_tracker` — tracking the *strongest* reflector per frame,
  the strawman Section 4.3 rejects in favor of bottom-contour tracking.
* :mod:`rti` — radio tomographic imaging with an RSSI sensor network,
  the prior device-free localization art of [20, 21, 23]; Section 2
  claims WiTrack's 2D accuracy is more than 5x better.
"""

from .peak_tracker import DominantPeakTOFEstimator, DominantPeakTracker
from .rti import RTINetwork, RTITracker, simulate_rti_tracking

__all__ = [
    "DominantPeakTOFEstimator",
    "DominantPeakTracker",
    "RTINetwork",
    "RTITracker",
    "simulate_rti_tracking",
]
