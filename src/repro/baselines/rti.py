"""Radio tomographic imaging (RTI): the prior device-free baseline.

Section 2: "past work that relies on a large sensor network measures the
RSSI for each of the resulting n^2 links, and attributes the variation of
RSSI on a link to a human crossing that link ... [WiTrack's] 2D accuracy
is more than 5x higher than the state of the art radio tomographic
networks [23]."

This is a faithful small implementation of the classic RTI formulation
(Wilson & Patwari): nodes around the room perimeter, per-link RSSI
shadowing when the body is inside the link's Fresnel ellipse, and a
Tikhonov-regularized linear image reconstruction whose argmax voxel is
the position estimate. It exists so the comparison benchmark can measure
both systems on the *same* trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RTINetwork:
    """A perimeter deployment of RSSI sensor nodes.

    Attributes:
        node_positions: node coordinates, shape ``(n_nodes, 2)``.
        lambda_m: Fresnel-ellipse width parameter of the shadowing model.
        shadow_db: mean RSSI attenuation when the body blocks a link.
        noise_db: per-measurement RSSI noise std.
    """

    node_positions: np.ndarray
    lambda_m: float = 0.35
    shadow_db: float = 5.0
    noise_db: float = 1.0

    @property
    def num_nodes(self) -> int:
        """Number of deployed nodes."""
        return len(self.node_positions)

    @property
    def links(self) -> np.ndarray:
        """All node index pairs, shape ``(n_links, 2)``."""
        n = self.num_nodes
        return np.array([(i, j) for i in range(n) for j in range(i + 1, n)])

    def link_shadowing(self, body_xy: np.ndarray) -> np.ndarray:
        """Mean RSSI change per link for a body at ``body_xy`` (dB).

        The standard ellipse model: a link is shadowed when the body's
        excess path length (d_to_a + d_to_b - d_ab) is below
        ``lambda_m``; attenuation tapers linearly inside the ellipse.
        """
        body_xy = np.asarray(body_xy, dtype=np.float64)
        pos = self.node_positions
        links = self.links
        a = pos[links[:, 0]]
        b = pos[links[:, 1]]
        d_ab = np.linalg.norm(a - b, axis=1)
        excess = (
            np.linalg.norm(body_xy[None, :] - a, axis=1)
            + np.linalg.norm(body_xy[None, :] - b, axis=1)
            - d_ab
        )
        inside = np.clip(1.0 - excess / self.lambda_m, 0.0, 1.0)
        return self.shadow_db * inside

    def measure(
        self, body_xy: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One RSSI-change measurement vector (dB) with noise."""
        clean = self.link_shadowing(body_xy)
        return clean + rng.normal(0.0, self.noise_db, len(clean))


def perimeter_network(
    width_m: float = 8.0,
    depth_m: float = 10.0,
    nodes_per_side: int = 6,
    y_offset: float = 0.3,
    **kwargs: float,
) -> RTINetwork:
    """Place nodes evenly around a rectangle (the usual RTI deployment)."""
    xs = np.linspace(-width_m / 2, width_m / 2, nodes_per_side)
    ys = np.linspace(y_offset, y_offset + depth_m, nodes_per_side)
    nodes = []
    for x in xs:
        nodes.append((x, y_offset))
        nodes.append((x, y_offset + depth_m))
    for y in ys[1:-1]:
        nodes.append((-width_m / 2, y))
        nodes.append((width_m / 2, y))
    return RTINetwork(
        node_positions=np.asarray(nodes, dtype=np.float64), **kwargs
    )


class RTITracker:
    """Tikhonov-regularized RTI image reconstruction + argmax tracking.

    Args:
        network: the sensor deployment.
        voxel_m: image voxel edge length.
        regularization: Tikhonov weight (larger = smoother images).
        bounds: image extent ``((x_lo, x_hi), (y_lo, y_hi))``.
    """

    def __init__(
        self,
        network: RTINetwork,
        voxel_m: float = 0.25,
        regularization: float = 3.0,
        bounds: tuple[tuple[float, float], tuple[float, float]] = (
            (-4.0, 4.0),
            (0.3, 10.3),
        ),
    ) -> None:
        self.network = network
        (x_lo, x_hi), (y_lo, y_hi) = bounds
        self.x_centers = np.arange(x_lo + voxel_m / 2, x_hi, voxel_m)
        self.y_centers = np.arange(y_lo + voxel_m / 2, y_hi, voxel_m)
        xx, yy = np.meshgrid(self.x_centers, self.y_centers, indexing="ij")
        self.voxels = np.column_stack([xx.ravel(), yy.ravel()])
        self._weights = self._weight_matrix()
        # Precompute the regularized pseudo-inverse (the expensive part).
        w = self._weights
        gram = w.T @ w + regularization * np.eye(w.shape[1])
        self._projection = np.linalg.solve(gram, w.T)

    def _weight_matrix(self) -> np.ndarray:
        """Link-x-voxel ellipse weights, shape ``(n_links, n_voxels)``."""
        net = self.network
        pos = net.node_positions
        links = net.links
        a = pos[links[:, 0]]
        b = pos[links[:, 1]]
        d_ab = np.linalg.norm(a - b, axis=1)
        d_va = np.linalg.norm(
            self.voxels[None, :, :] - a[:, None, :], axis=2
        )
        d_vb = np.linalg.norm(
            self.voxels[None, :, :] - b[:, None, :], axis=2
        )
        excess = d_va + d_vb - d_ab[:, None]
        inside = (excess < net.lambda_m).astype(np.float64)
        # Normalize by sqrt link length (Wilson & Patwari weighting).
        return inside / np.sqrt(np.maximum(d_ab[:, None], 0.1))

    def reconstruct(self, rssi_change_db: np.ndarray) -> np.ndarray:
        """Reconstruct the attenuation image from one measurement."""
        return self._projection @ rssi_change_db

    def locate(self, rssi_change_db: np.ndarray) -> np.ndarray:
        """Position estimate: the argmax voxel of the image, shape (2,)."""
        image = self.reconstruct(rssi_change_db)
        return self.voxels[int(np.argmax(image))].copy()


@dataclass(frozen=True)
class RTIOutcome:
    """Result of tracking one trajectory with RTI.

    Attributes:
        estimates_xy: per-sample position estimates, shape ``(n, 2)``.
        errors_m: per-sample 2D Euclidean errors.
    """

    estimates_xy: np.ndarray
    errors_m: np.ndarray


def simulate_rti_tracking(
    trajectory_xy: np.ndarray,
    seed: int = 0,
    network: RTINetwork | None = None,
    tracker: RTITracker | None = None,
) -> RTIOutcome:
    """Track a 2D trajectory with the RTI baseline.

    Args:
        trajectory_xy: body positions, shape ``(n, 2)``.
        seed: RSSI noise seed.
        network: deployment override.
        tracker: tracker override (must match ``network``).

    Returns:
        Estimates and 2D errors per sample.
    """
    network = network or perimeter_network()
    tracker = tracker or RTITracker(network)
    rng = np.random.default_rng(seed)
    estimates = np.empty_like(trajectory_xy)
    for i, body in enumerate(trajectory_xy):
        measurement = network.measure(body, rng)
        estimates[i] = tracker.locate(measurement)
    errors = np.linalg.norm(estimates - trajectory_xy, axis=1)
    return RTIOutcome(estimates_xy=estimates, errors_m=errors)
