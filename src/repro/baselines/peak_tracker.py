"""Dominant-peak TOF tracking: the ablation of Section 4.3.

"In practice, this approach [contour tracking] has proved to be more
robust than tracking the dominant frequency in each sweep of the
spectrogram ... the point of maximum reflection may abruptly shift due
to different indirect paths in the environment."

This module swaps the bottom-contour stage for an argmax-of-power stage
while keeping every other pipeline stage identical, so the ablation
benchmark isolates exactly the design choice the paper discusses.
"""

from __future__ import annotations

import numpy as np

from ..config import PipelineConfig, SystemConfig, default_config
from ..core.contour import dominant_peak_contour
from ..core.interpolation import interpolate_gaps
from ..core.kalman import smooth_series
from ..core.outliers import reject_outliers
from ..core.spectrogram import spectrogram_from_sweeps
from ..core.background import background_subtract
from ..core.tof import TOFEstimate
from ..core.tracker import TrackResult, WiTrack
from ..geometry.antennas import AntennaArray


class DominantPeakTOFEstimator:
    """Section 4 pipeline with argmax tracking instead of the contour.

    Args:
        sweep_duration_s: FMCW sweep period.
        range_bin_m: round-trip distance per spectrum bin.
        config: shared pipeline tunables (thresholds, Kalman noise).
    """

    def __init__(
        self,
        sweep_duration_s: float,
        range_bin_m: float,
        config: PipelineConfig | None = None,
    ) -> None:
        self.sweep_duration_s = sweep_duration_s
        self.range_bin_m = range_bin_m
        self.config = config or PipelineConfig()

    def estimate(self, sweep_spectra: np.ndarray) -> TOFEstimate:
        """Run the modified pipeline on one antenna's sweeps."""
        cfg = self.config
        spectrogram = spectrogram_from_sweeps(
            sweep_spectra,
            self.sweep_duration_s,
            self.range_bin_m,
            sweeps_per_frame=cfg.sweeps_per_frame,
        ).crop(cfg.max_range_m)
        subtracted = background_subtract(spectrogram)
        contour = dominant_peak_contour(
            subtracted.power,
            subtracted.range_bin_m,
            threshold_db=cfg.contour_threshold_db,
        )
        cleaned = reject_outliers(
            contour.round_trip_m,
            max_jump_m=cfg.max_jump_m,
            confirmation_frames=cfg.jump_confirmation_frames,
        )
        if cfg.interpolate_when_static:
            cleaned = interpolate_gaps(cleaned)
        smoothed = (
            cleaned
            if np.all(np.isnan(cleaned))
            else smooth_series(
                cleaned,
                cfg.sweeps_per_frame * self.sweep_duration_s,
                process_noise=cfg.kalman_process_noise,
                measurement_noise=cfg.kalman_measurement_noise,
            )
        )
        return TOFEstimate(
            frame_times_s=subtracted.frame_times_s,
            round_trip_m=smoothed,
            raw_contour_m=contour.round_trip_m,
            motion_mask=contour.motion_mask,
            spectrogram=subtracted,
        )


class DominantPeakTracker(WiTrack):
    """WiTrack with the dominant-peak TOF stage (ablation baseline)."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        array: AntennaArray | None = None,
    ) -> None:
        super().__init__(config or default_config(), array=array)

    def track(self, spectra: np.ndarray, range_bin_m: float) -> TrackResult:
        """Track using argmax TOF estimates (see base class docs)."""
        spectra = np.asarray(spectra)
        if spectra.ndim != 3:
            raise ValueError("spectra must have shape (n_rx, n_sweeps, n_bins)")
        estimator = DominantPeakTOFEstimator(
            self.config.fmcw.sweep_duration_s, range_bin_m, self.config.pipeline
        )
        estimates = tuple(
            estimator.estimate(spectra[i]) for i in range(spectra.shape[0])
        )
        return self.localize_estimates(estimates)
