"""Unified streaming pipeline engine: one stage graph for every tracker.

The paper's processing chain (background subtraction → contour tracking
→ outlier rejection → interpolation → Kalman smoothing → 3D
localization) used to exist three times with drifting semantics: offline
in ``WiTrack``, online in the realtime app, and again in the
multi-person tracker. This package is the single implementation all of
them now compose:

* :mod:`frame` — the :class:`Frame`/:class:`FrameBlock`/
  :class:`SessionTick` records stages communicate through;
* :mod:`stages` — the stateful single-person stages;
* :mod:`multi` — the multi-person stages (successive cancellation and
  track association);
* :mod:`runner` — the :class:`Pipeline` runner with its two execution
  modes, ``run_stream`` (frame-at-a-time, latency-accounted) and
  ``run_batch`` (block-vectorized), plus the stage-graph factories.

All modes drive the same stage objects — batch, streaming, and the
session-lockstep ``Pipeline.tick`` the serving engine
(:mod:`repro.serve`) batches N sessions through. Stage state is
structure-of-arrays over a session axis (``Stage.attach`` /
``Stage.evict``), so one pipeline instance advances any number of
independent sessions without a second code path.
"""

from .frame import Frame, FrameBlock, SessionTick
from .runner import (
    LatencyReport,
    Pipeline,
    PipelineResult,
    multi_person_pipeline,
    single_person_pipeline,
)
from .stages import (
    BackgroundSubtract,
    ContourExtract,
    HoldInterpolate,
    KalmanSmooth,
    Localize,
    OutlierGate,
    Stage,
)
from .multi import Associate, SuccessiveCancel

__all__ = [
    "Frame",
    "FrameBlock",
    "SessionTick",
    "LatencyReport",
    "Pipeline",
    "PipelineResult",
    "single_person_pipeline",
    "multi_person_pipeline",
    "Stage",
    "BackgroundSubtract",
    "ContourExtract",
    "OutlierGate",
    "HoldInterpolate",
    "KalmanSmooth",
    "Localize",
    "SuccessiveCancel",
    "Associate",
]
