"""Unified streaming pipeline engine: one stage graph for every tracker.

The paper's processing chain (background subtraction → contour tracking
→ outlier rejection → interpolation → Kalman smoothing → 3D
localization) used to exist three times with drifting semantics: offline
in ``WiTrack``, online in the realtime app, and again in the
multi-person tracker. This package is the single implementation all of
them now compose:

* :mod:`frame` — the :class:`Frame`/:class:`FrameBlock` records stages
  communicate through;
* :mod:`stages` — the stateful single-person stages;
* :mod:`multi` — the multi-person stages (successive cancellation and
  track association);
* :mod:`runner` — the :class:`Pipeline` runner with its two execution
  modes, ``run_stream`` (frame-at-a-time, latency-accounted) and
  ``run_batch`` (block-vectorized), plus the stage-graph factories.

Both modes drive the same stage objects, so batch and streaming are
provably the same code path — the seam future sharding and batching
work builds on.
"""

from .frame import Frame, FrameBlock
from .runner import (
    LatencyReport,
    Pipeline,
    PipelineResult,
    multi_person_pipeline,
    single_person_pipeline,
)
from .stages import (
    BackgroundSubtract,
    ContourExtract,
    HoldInterpolate,
    KalmanSmooth,
    Localize,
    OutlierGate,
    Stage,
)
from .multi import Associate, SuccessiveCancel

__all__ = [
    "Frame",
    "FrameBlock",
    "LatencyReport",
    "Pipeline",
    "PipelineResult",
    "single_person_pipeline",
    "multi_person_pipeline",
    "Stage",
    "BackgroundSubtract",
    "ContourExtract",
    "OutlierGate",
    "HoldInterpolate",
    "KalmanSmooth",
    "Localize",
    "SuccessiveCancel",
    "Associate",
]
