"""The pipeline runner: one stage graph, two execution modes.

:class:`Pipeline` owns an ordered stage list and drives it either

* frame-at-a-time (:meth:`Pipeline.push` / :meth:`Pipeline.run_stream`)
  with per-frame wall-clock latency accounting against the paper's
  75 ms budget (Section 7), or
* block-at-a-time (:meth:`Pipeline.run_batch`), vectorized across
  sweeps and antennas wherever a stage allows it, for offline
  evaluation.

Both modes run the *same stage objects*, so a recording pushed through
``run_stream`` and the same recording handed to ``run_batch`` produce
identical outputs (bitwise, for the closed-form localizer) — the
equivalence the batch/stream tests pin. The runner also owns the two
pre-stage steps every consumer used to duplicate: coherent frame
averaging (five sweeps per frame, §4.1/§7) and the max-range crop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..config import SystemConfig
from ..kernels.profile import StageProfiler, profiling_enabled
from ..kernels.tick import FusionUnavailable, compile_tick_plan, fusion_active
from .frame import Frame, FrameBlock, SessionTick
from .stages import (
    BackgroundSubtract,
    ContourExtract,
    HoldInterpolate,
    KalmanSmooth,
    Localize,
    OutlierGate,
    Stage,
)


#: Reused slot vector for the single-session ``push`` fast path.
_SLOT0 = np.zeros(1, dtype=np.intp)

#: Plan-cache sentinel: this stage graph was checked and is not fusable.
_UNFUSABLE = object()


@dataclass
class LatencyReport:
    """Per-frame processing-time statistics.

    All statistics are NaN — and the budget check fails — while no
    frame has been timed yet.

    Attributes:
        latencies_s: wall-clock processing time per frame.
    """

    latencies_s: list[float] = field(default_factory=list)

    @property
    def median_s(self) -> float:
        """Median per-frame latency (NaN when empty)."""
        if not self.latencies_s:
            return float("nan")
        return float(np.median(self.latencies_s))

    @property
    def p95_s(self) -> float:
        """95th-percentile per-frame latency (NaN when empty)."""
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, 95))

    @property
    def p99_s(self) -> float:
        """99th-percentile per-frame latency (NaN when empty).

        The serving-tier tail: with many sessions multiplexed on one
        engine, p95 hides the straggler cohort a 1-in-100 user lives
        in, so SLO accounting reports this too.
        """
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(self.latencies_s, 99))

    @property
    def max_s(self) -> float:
        """Worst-case per-frame latency (NaN when empty)."""
        if not self.latencies_s:
            return float("nan")
        return float(np.max(self.latencies_s))

    def within_budget(self, budget_s: float = 0.075) -> bool:
        """True when the 95th percentile meets the paper's budget.

        An empty report is *not* within budget: no evidence, no claim.
        """
        if not self.latencies_s:
            return False
        return self.p95_s <= budget_s


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    Single-person pipelines fill the TOF/position fields; multi-person
    pipelines fill ``tracks``. Field layouts are frame-major; consumers
    transpose as needed.

    Attributes:
        frame_times_s: timestamp of each output frame.
        tof_m: cleaned per-antenna round trips, ``(n_frames, n_rx)``.
        raw_tof_m: raw bottom contours, same shape.
        motion: per-antenna motion detections, same shape.
        positions: 3D fixes, ``(n_frames, 3)``.
        tracks: per-frame reportable ``(track_id, position)`` lists.
        subtracted: background-subtracted complex frames,
            ``(n_frames, n_rx, n_bins)`` (only when recorded).
        latency: per-frame latency report (streaming runs only).
        stage_profile: per-stage {calls, wall_s, bytes} counters
            (:meth:`StageProfiler.as_dict` form) — only when the run's
            pipeline carried a profiler (``REPRO_PROFILE=1``); None
            otherwise so disabled runs serialize without a trace.
    """

    frame_times_s: np.ndarray
    tof_m: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    positions: np.ndarray | None = None
    tracks: list[list[tuple[int, np.ndarray]]] | None = None
    subtracted: np.ndarray | None = None
    latency: LatencyReport | None = None
    stage_profile: dict[str, dict[str, float]] | None = None

    @property
    def num_frames(self) -> int:
        """Number of output frames."""
        return len(self.frame_times_s)


class Pipeline:
    """A stage graph plus the two execution modes that drive it.

    Args:
        stages: ordered stages; each consumes/extends the shared frame.
        sweep_duration_s: FMCW sweep period.
        sweeps_per_frame: sweeps coherently averaged per frame.
        range_bin_m: round-trip distance per spectrum bin.
        max_range_m: crop incoming frames to this round-trip range
            (None keeps every bin).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        sweep_duration_s: float,
        sweeps_per_frame: int,
        range_bin_m: float,
        max_range_m: float | None = None,
    ) -> None:
        if sweep_duration_s <= 0 or range_bin_m <= 0:
            raise ValueError("sweep_duration_s and range_bin_m must be positive")
        if sweeps_per_frame < 1:
            raise ValueError("sweeps_per_frame must be >= 1")
        self.stages = list(stages)
        self.sweep_duration_s = sweep_duration_s
        self.sweeps_per_frame = sweeps_per_frame
        self.range_bin_m = range_bin_m
        self.max_range_m = max_range_m
        self._max_bins: int | None = None
        if max_range_m is not None:
            self._max_bins = int(np.ceil(max_range_m / range_bin_m)) + 1
        self._n_sessions = 1
        self._frames_in = np.zeros(1, dtype=np.int64)
        self.latency = LatencyReport()
        #: Reused per-tick frame-averaging buffer (the averaged
        #: spectrum never outlives the tick: BackgroundSubtract copies
        #: what it keeps and replaces ``tick.spectrum`` with the diff).
        self._avg_scratch: np.ndarray | None = None
        #: Reused cohort-stacking buffer for the list-input tick path.
        self._stack_scratch: np.ndarray | None = None
        #: Per-stage {calls, wall_s, bytes} counters, or ``None`` when
        #: profiling was off at construction — the disabled path costs
        #: one ``is None`` check per tick (``REPRO_PROFILE=1`` or
        #: :func:`repro.kernels.profile.enable_profiling` turn it on).
        self.profiler: StageProfiler | None = (
            StageProfiler() if profiling_enabled() else None
        )
        self._stage_names = self._dedup_names(self.stages)
        #: Lazily compiled :class:`~repro.kernels.tick.TickPlan` for the
        #: whole stage chain (``_UNFUSABLE`` once checked and rejected).
        self._tick_plan = None

    @staticmethod
    def _dedup_names(stages: Sequence[Stage]) -> list[str]:
        """Stage class names, ``#k``-suffixed when a class repeats."""
        names: list[str] = []
        seen: dict[str, int] = {}
        for s in stages:
            base = type(s).__name__
            k = seen.get(base, 0)
            seen[base] = k + 1
            names.append(base if k == 0 else f"{base}#{k}")
        return names

    @property
    def frame_duration_s(self) -> float:
        """Duration of one averaged frame."""
        return self.sweeps_per_frame * self.sweep_duration_s

    def stage(self, kind: type) -> Stage:
        """The first stage of the given class (KeyError if absent)."""
        for s in self.stages:
            if isinstance(s, kind):
                return s
        present = ", ".join(type(s).__name__ for s in self.stages) or "none"
        raise KeyError(
            f"pipeline has no {getattr(kind, '__name__', kind)!s} stage "
            f"(stages present: {present})"
        )

    def reset(self, start_frame: int = 0) -> None:
        """Forget all online state; ready for a fresh recording.

        Every session slot is reset (capacity is kept).

        Args:
            start_frame: index assigned to the next input frame. A shard
                runner resuming mid-recording passes the shard's first
                global frame so timestamps stay on the session clock.
        """
        if start_frame < 0:
            raise ValueError("start_frame must be >= 0")
        for s in self.stages:
            s.reset()
        self._frames_in[:] = start_frame
        self.latency = LatencyReport()
        # The stages just wiped their slabs: discard (don't flush) the
        # plan's resident copies, or stale state would resurrect.
        plan = self._tick_plan
        if plan is not None and plan is not _UNFUSABLE:
            plan.discard()
            plan.state_epoch += 1
        if self.profiler is not None:
            self.profiler = StageProfiler()

    def _flush_plan_state(self) -> None:
        """Write the compiled plan's resident state back to the slabs.

        The read barrier of the fused path's lazy writeback: called
        before anything reads or overwrites stage state directly
        (snapshot, restore, eviction, staged/batch execution).
        """
        plan = self._tick_plan
        if plan is not None and plan is not _UNFUSABLE:
            plan.flush()

    def _invalidate_plan_state(self) -> None:
        """Flush, then drop, the compiled plan's resident state gathers.

        Called on every path that mutates stage state outside a fused
        tick (lifecycle events, staged execution, batch mode) so the
        fused path re-gathers from the slabs next tick.
        """
        plan = self._tick_plan
        if plan is not None and plan is not _UNFUSABLE:
            plan.flush()
            plan.state_epoch += 1

    # -- session lifecycle -------------------------------------------------

    @property
    def num_sessions(self) -> int:
        """Session slots the stage state is currently sized for."""
        return self._n_sessions

    def attach_sessions(self, n_sessions: int) -> None:
        """Grow every stage's state to at least ``n_sessions`` slots.

        Existing slots keep their state (growth never perturbs running
        sessions); slot allocation/reuse is the caller's concern — the
        serving engine keeps a free list and calls :meth:`evict_session`
        when a session leaves.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if n_sessions > self._n_sessions:
            self._frames_in = np.concatenate(
                [
                    self._frames_in,
                    np.zeros(n_sessions - self._n_sessions, dtype=np.int64),
                ]
            )
            self._n_sessions = n_sessions
        for s in self.stages:
            s.attach(n_sessions)
        self._invalidate_plan_state()

    def evict_session(self, slot: int) -> None:
        """Forget one slot's state everywhere; the slot may be reused.

        Eviction touches only that slot's structure-of-arrays rows, so
        surviving sessions are unperturbed — pinned by the serving
        tests.
        """
        # Park resident fused state first: flushing after the evict
        # would resurrect the evicted slot's rows.
        self._flush_plan_state()
        if not 0 <= slot < self._n_sessions:
            raise IndexError(
                f"slot {slot} out of range for {self._n_sessions} sessions"
            )
        for s in self.stages:
            s.evict(slot)
        self._frames_in[slot] = 0
        self._invalidate_plan_state()

    def snapshot_session(self, slot: int) -> dict:
        """Picklable hand-off of one session's entire pipeline state.

        Everything needed to continue the session bit-exactly in another
        pipeline **of the same spec** — another cohort's instance after
        an adaptive split, or a shard worker in another process (the
        state dict crosses the IPC pipe as-is). Hand-off semantics:
        restore into exactly one slot and :meth:`evict_session` the
        source, or discard.
        """
        if not 0 <= slot < self._n_sessions:
            raise IndexError(
                f"slot {slot} out of range for {self._n_sessions} sessions"
            )
        # Read barrier: the fused path may hold this slot's state in
        # plan scratch; park it in the slabs before reading them.
        self._flush_plan_state()
        return {
            "frames_in": int(self._frames_in[slot]),
            "stages": [s.snapshot_slot(slot) for s in self.stages],
        }

    def restore_session(self, slot: int, state: dict) -> None:
        """Install a :meth:`snapshot_session` hand-off into one slot.

        The slot must be attached, and this pipeline must have the same
        stage structure as the snapshot's source (same spec).
        """
        if not 0 <= slot < self._n_sessions:
            raise IndexError(
                f"slot {slot} out of range for {self._n_sessions} sessions"
            )
        stage_states = state["stages"]
        if len(stage_states) != len(self.stages):
            raise ValueError(
                f"snapshot carries {len(stage_states)} stage states but "
                f"this pipeline has {len(self.stages)} stages; snapshots "
                "only restore into pipelines of the same spec"
            )
        # Flush *before* installing: a later flush would overwrite the
        # restored rows with the plan's stale resident copies.
        self._flush_plan_state()
        self._frames_in[slot] = state["frames_in"]
        for stage, stage_state in zip(self.stages, stage_states):
            stage.restore_slot(slot, stage_state)
        self._invalidate_plan_state()

    def _crop(self, frames: np.ndarray) -> np.ndarray:
        if self._max_bins is None:
            return frames
        return frames[..., : min(self._max_bins, frames.shape[-1])]

    # -- streaming / lockstep mode -----------------------------------------

    def tick(
        self,
        sweep_blocks: Sequence[np.ndarray],
        slots: Sequence[int] | np.ndarray | None = None,
    ) -> SessionTick:
        """Advance N independent sessions one frame each, in lockstep.

        One :class:`~repro.pipeline.frame.SessionTick` flows through one
        ``process_tick`` call per stage, so the per-frame numpy dispatch
        cost is paid once for the whole batch instead of once per
        session — the amortization the serving engine exists for.

        Args:
            sweep_blocks: one ``(n_rx, sweeps_per_frame, n_bins)`` raw
                sweep block per participating session.
            slots: the session slot each block advances (defaults to
                ``0..len(sweep_blocks)-1``). Slots must be distinct and
                attached (:meth:`attach_sessions`).

        Returns:
            The final tick. Rows may be fewer than the input blocks —
            a session whose frame only primed its background reference
            produces no output row this tick.
        """
        if slots is None:
            slots = np.arange(len(sweep_blocks), dtype=np.intp)
        else:
            slots = np.asarray(slots, dtype=np.intp)
        if len(slots) != len(sweep_blocks):
            raise ValueError("need exactly one slot per sweep block")
        if len(slots) > 1 and len(set(slots.tolist())) != len(slots):
            raise ValueError(
                "slots must be distinct: one session advances at most "
                "one frame per tick"
            )
        profiler = self.profiler
        t_enter = perf_counter() if profiler is not None else 0.0
        if isinstance(sweep_blocks, np.ndarray):
            stacked = sweep_blocks
        elif len(sweep_blocks) == 0:
            stacked = np.stack([np.asarray(b) for b in sweep_blocks])
        else:
            # Stack into a reusable buffer: the per-tick cohort block is
            # consumed by the frame average below and never retained, so
            # a fresh allocation every tick is pure overhead.
            first = np.asarray(sweep_blocks[0])
            shape = (len(sweep_blocks),) + first.shape
            stacked = self._stack_scratch
            if (
                stacked is None
                or stacked.shape != shape
                or stacked.dtype != first.dtype
            ):
                stacked = self._stack_scratch = np.empty(shape, first.dtype)
            stacked[0] = first
            for i in range(1, len(sweep_blocks)):
                stacked[i] = sweep_blocks[i]
        t0 = perf_counter() if profiler is not None else 0.0
        if stacked.dtype == np.complex128:
            # Crop before averaging: the mean is per-bin, so the order
            # is bitwise-immaterial, and the cropped reduction touches
            # only the bins the chain will actually read.
            cropped = self._crop(stacked)
            n, n_rx, _, n_bins = cropped.shape
            scratch = self._avg_scratch
            if scratch is None or scratch.shape != (n, n_rx, n_bins):
                scratch = self._avg_scratch = np.empty(
                    (n, n_rx, n_bins), dtype=np.complex128
                )
            # add.reduce + divide is np.mean's own reduction without its
            # Python wrapper (bitwise-identical pairwise summation).
            np.add.reduce(cropped, axis=2, out=scratch)
            averaged = np.divide(scratch, cropped.shape[2], out=scratch)
        else:
            averaged = self._crop(stacked).mean(axis=2)
        if profiler is not None:
            t1 = perf_counter()
            profiler.record("frame_average", t1 - t0, averaged.nbytes)
            attributed = t1 - t0
        indices = self._frames_in[slots]
        self._frames_in[slots] += 1
        tick = SessionTick(
            slots=slots,
            indices=indices,
            times_s=(indices + 0.5) * self.frame_duration_s,
            spectrum=averaged,
        )
        plan = self._tick_plan
        if plan is None:
            plan = self._tick_plan = compile_tick_plan(self.stages) or _UNFUSABLE
        if plan is not _UNFUSABLE and not plan.disabled and fusion_active():
            # Hand the plan the current profiler (None when disabled) so
            # fused kernels can attribute sub-stage rows.
            plan.profiler = profiler
            try:
                if profiler is None:
                    return plan.run(tick)
                t0 = perf_counter()
                tick = plan.run(tick)
                t1 = perf_counter()
                profiler.record("fused_tick", t1 - t0, tick.nbytes)
                attributed += t1 - t0
                profiler.record(
                    "dispatch", (perf_counter() - t_enter) - attributed
                )
                return tick
            except FusionUnavailable:
                # The fused kernel bailed before touching any state
                # (numba compile failure); the plan disabled itself, so
                # this tick — and all later ones — run staged.
                pass
        if plan is not _UNFUSABLE:
            # Staged stages read and mutate the slabs directly: park
            # the plan's resident state first, then invalidate it.
            plan.flush()
            plan.state_epoch += 1
        if profiler is None:
            for stage in self.stages:
                tick = stage.process_tick(tick)
                if tick.num_rows == 0:
                    break
            return tick
        for stage, name in zip(self.stages, self._stage_names):
            t0 = perf_counter()
            tick = stage.process_tick(tick)
            t1 = perf_counter()
            profiler.record(name, t1 - t0, tick.nbytes)
            attributed += t1 - t0
            if tick.num_rows == 0:
                break
        profiler.record("dispatch", (perf_counter() - t_enter) - attributed)
        return tick

    def push(self, sweep_block: np.ndarray) -> Frame | None:
        """Process one frame worth of sweeps for all antennas (slot 0).

        This *is* a single-session lockstep tick — the N=1 view of the
        same engine the serving layer batches, which is why N=1 serving
        output is bitwise the streamed output.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            The processed :class:`Frame`, or ``None`` while the
            pipeline is still priming (first frame). Wall-clock
            processing time is appended to :attr:`latency` either way.
        """
        start = perf_counter()
        tick = self.tick(np.asarray(sweep_block)[None], _SLOT0)
        frame: Frame | None = None
        if tick.num_rows:
            frame = tick.write_frame(
                Frame(index=int(tick.indices[0]), time_s=float(tick.times_s[0]))
            )
        self.latency.latencies_s.append(perf_counter() - start)
        return frame

    def stream(
        self, frames: Iterable[np.ndarray] | np.ndarray
    ) -> Iterator[Frame]:
        """Push an iterable of sweep blocks; yield every output frame.

        A full ``(n_rx, n_sweeps, n_bins)`` recording is accepted too
        and sliced into frames.
        """
        if isinstance(frames, np.ndarray):
            frames = self._blocks(frames)
        for block in frames:
            out = self.push(block)
            if out is not None:
                yield out

    def run_stream(
        self,
        frames: Iterable[np.ndarray] | np.ndarray,
        record_spectra: bool = False,
    ) -> PipelineResult:
        """Stream a whole recording and collect the per-frame outputs.

        This accumulates every frame's fields into one
        :class:`PipelineResult` (use :meth:`stream` directly for
        unbounded sessions where accumulation is unwanted).
        """
        times: list[float] = []
        tofs: list[np.ndarray] = []
        raws: list[np.ndarray] = []
        motions: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        tracks: list[list[tuple[int, np.ndarray]]] = []
        spectra: list[np.ndarray] = []
        for frame in self.stream(frames):
            times.append(frame.time_s)
            if frame.tof_m is not None:
                tofs.append(frame.tof_m)
            if frame.raw_tof_m is not None:
                raws.append(frame.raw_tof_m)
            if frame.motion is not None:
                motions.append(frame.motion)
            if frame.position is not None:
                positions.append(frame.position)
            if frame.tracks is not None:
                tracks.append(frame.tracks)
            if record_spectra and frame.spectrum is not None:
                spectra.append(frame.spectrum)
        return PipelineResult(
            frame_times_s=np.asarray(times),
            tof_m=np.stack(tofs) if tofs else None,
            raw_tof_m=np.stack(raws) if raws else None,
            motion=np.stack(motions) if motions else None,
            positions=np.stack(positions) if positions else None,
            tracks=tracks if tracks else None,
            subtracted=np.stack(spectra) if spectra else None,
            latency=self.latency,
            stage_profile=(
                self.profiler.as_dict() if self.profiler is not None else None
            ),
        )

    def _blocks(self, spectra: np.ndarray) -> Iterator[np.ndarray]:
        spf = self.sweeps_per_frame
        for f in range(spectra.shape[1] // spf):
            yield spectra[:, f * spf : (f + 1) * spf, :]

    # -- batch mode --------------------------------------------------------

    def run_batch(
        self, spectra: np.ndarray, record_spectra: bool = False
    ) -> PipelineResult:
        """Process a whole recording block-at-a-time (vectorized).

        Args:
            spectra: complex sweep spectra, shape
                ``(n_rx, n_sweeps, n_bins)``.
            record_spectra: keep the background-subtracted complex
                frames in the result (needed to rebuild per-antenna
                spectrograms, e.g. for the pointing pipeline).

        Returns:
            The :class:`PipelineResult`; fields match
            :meth:`run_stream` on the same recording exactly.
        """
        spectra = np.asarray(spectra)
        if spectra.ndim != 3:
            raise ValueError("spectra must have shape (n_rx, n_sweeps, n_bins)")
        n_rx, n_sweeps, n_bins = spectra.shape
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        if n_frames < 2:
            raise ValueError(
                f"need at least {2 * spf} sweeps, got {n_sweeps}"
            )
        trimmed = spectra[:, : n_frames * spf, :]
        averaged = self._crop(
            trimmed.reshape(n_rx, n_frames, spf, n_bins).mean(axis=2)
        )
        base = int(self._frames_in[0])
        self._frames_in[0] += n_frames
        block = FrameBlock(
            times_s=(np.arange(base, base + n_frames) + 0.5)
            * self.frame_duration_s,
            spectrum=np.ascontiguousarray(averaged.transpose(1, 0, 2)),
        )
        # Batch stages read slot 0's slabs directly: flush resident
        # fused state before, invalidate after.
        self._flush_plan_state()
        for stage in self.stages:
            block = stage.process_block(block)
        self._invalidate_plan_state()
        return PipelineResult(
            frame_times_s=block.times_s,
            tof_m=block.tof_m,
            raw_tof_m=block.raw_tof_m,
            motion=block.motion,
            positions=block.positions,
            tracks=block.tracks if block.tracks else None,
            subtracted=block.spectrum if record_spectra else None,
            latency=None,
        )


def single_person_pipeline(
    config: SystemConfig,
    range_bin_m: float,
    solver=None,
    localize: bool = True,
) -> Pipeline:
    """The paper's Section 4+5 chain as one pipeline.

    Args:
        config: full system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        solver: localization solver; required when ``localize``.
        localize: include the 3D localization stage (omit for a
            single-antenna TOF-only pipeline).
    """
    p = config.pipeline
    frame_dt = p.sweeps_per_frame * config.fmcw.sweep_duration_s
    stages: list[Stage] = [
        BackgroundSubtract(),
        ContourExtract(range_bin_m, threshold_db=p.contour_threshold_db),
        OutlierGate(
            max_jump_m=p.max_jump_m,
            confirmation_frames=p.jump_confirmation_frames,
        ),
        HoldInterpolate(enabled=p.interpolate_when_static),
        KalmanSmooth(
            frame_dt,
            process_noise=p.kalman_process_noise,
            measurement_noise=p.kalman_measurement_noise,
        ),
    ]
    if localize:
        if solver is None:
            raise ValueError("localize=True requires a solver")
        stages.append(Localize(solver))
    return Pipeline(
        stages,
        sweep_duration_s=config.fmcw.sweep_duration_s,
        sweeps_per_frame=p.sweeps_per_frame,
        range_bin_m=range_bin_m,
        max_range_m=p.max_range_m,
    )


def multi_person_pipeline(
    config: SystemConfig,
    range_bin_m: float,
    manager,
    num_candidates: int,
    manager_factory=None,
) -> Pipeline:
    """The multi-person chain: shared front end + cancel + associate.

    Args:
        config: full system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        manager: the :class:`~repro.multi.tracks.TrackManager` to drive.
        num_candidates: cancellation rounds per antenna and frame.
        manager_factory: rebuilds a fresh manager on :meth:`Pipeline.reset`.
    """
    from .multi import Associate, SuccessiveCancel

    p = config.pipeline
    stages: list[Stage] = [
        BackgroundSubtract(),
        SuccessiveCancel(range_bin_m, max_targets=num_candidates),
        Associate(manager, factory=manager_factory),
    ]
    return Pipeline(
        stages,
        sweep_duration_s=config.fmcw.sweep_duration_s,
        sweeps_per_frame=p.sweeps_per_frame,
        range_bin_m=range_bin_m,
        max_range_m=p.max_range_m,
    )
