"""Multi-person stages for the unified pipeline engine.

The multi-person chain reuses the single-person
:class:`~repro.pipeline.stages.BackgroundSubtract` front end, then swaps
the contour/denoise/localize tail for

* :class:`SuccessiveCancel` — K bottom contours per antenna by
  successive echo cancellation (:mod:`repro.multi.cancellation`);
* :class:`Associate` — cross-antenna association, ghost gating and the
  per-target Kalman track bank (:mod:`repro.multi.tracks`).

Both run frame-at-a-time or block-at-a-time with identical results, so
:class:`~repro.multi.tracker.MultiWiTrack` (batch) and
:class:`~repro.apps.realtime.RealtimeMultiTracker` (streaming) are the
same code path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..multi.cancellation import successive_contours
from ..multi.tracks import TrackManager
from .stages import Stage


class SuccessiveCancel(Stage):
    """K candidate bottom contours per antenna (successive cancellation).

    Per frame and antenna: trace the bottom contour, null the detected
    reflector's energy band, repeat up to ``max_targets`` times. Writes
    ``candidates_m`` and ``candidate_powers`` of shape
    ``(n_rx, max_targets)``. Every round is per-frame independent, so
    the batch path is exactly the streaming path vectorized over frames.
    """

    def __init__(
        self,
        range_bin_m: float,
        max_targets: int = 3,
        threshold_db: float = 10.0,
        min_range_m: float = 1.0,
        null_halfwidth_m: float = 0.5,
        relative_threshold_db: float = 36.0,
    ) -> None:
        if max_targets < 1:
            raise ValueError("max_targets must be at least 1")
        self.range_bin_m = range_bin_m
        self.max_targets = max_targets
        self.threshold_db = threshold_db
        self.min_range_m = min_range_m
        self.null_halfwidth_m = null_halfwidth_m
        self.relative_threshold_db = relative_threshold_db

    def _contours(self, power: np.ndarray):
        return successive_contours(
            power,
            self.range_bin_m,
            max_targets=self.max_targets,
            threshold_db=self.threshold_db,
            min_range_m=self.min_range_m,
            null_halfwidth_m=self.null_halfwidth_m,
            relative_threshold_db=self.relative_threshold_db,
        )

    def process(self, frame):
        n_rx = frame.power.shape[0]
        candidates = np.full((n_rx, self.max_targets), np.nan)
        powers = np.full((n_rx, self.max_targets), np.nan)
        for a in range(n_rx):
            result = self._contours(frame.power[a][None, :])
            candidates[a] = result.round_trips_m[:, 0]
            powers[a] = result.peak_powers[:, 0]
        frame.candidates_m = candidates
        frame.candidate_powers = powers
        return frame

    def process_block(self, block):
        n_frames, n_rx, _ = block.power.shape
        candidates = np.full((n_frames, n_rx, self.max_targets), np.nan)
        powers = np.full((n_frames, n_rx, self.max_targets), np.nan)
        for a in range(n_rx):
            result = self._contours(block.power[:, a, :])
            candidates[:, a, :] = result.round_trips_m.T
            powers[:, a, :] = result.peak_powers.T
        block.candidates_m = candidates
        block.candidate_powers = powers
        return block


class Associate(Stage):
    """Track birth/claim/coast/kill over the candidate TOF sets.

    Thin stage wrapper around :class:`~repro.multi.tracks.TrackManager`
    (which is inherently sequential — association depends on every
    previous frame). Writes ``tracks``: the reportable
    ``(track_id, position)`` pairs after this frame.
    """

    def __init__(
        self,
        manager: TrackManager,
        factory: Callable[[], TrackManager] | None = None,
    ) -> None:
        self.manager = manager
        self._factory = factory

    def _step(self, candidates: np.ndarray, powers: np.ndarray):
        tracks = self.manager.step(
            [candidates[a] for a in range(candidates.shape[0])],
            [powers[a] for a in range(powers.shape[0])],
        )
        return [(t.track_id, t.position.copy()) for t in tracks]

    def process(self, frame):
        frame.tracks = self._step(frame.candidates_m, frame.candidate_powers)
        return frame

    def process_block(self, block):
        block.tracks = [
            self._step(block.candidates_m[f], block.candidate_powers[f])
            for f in range(block.num_frames)
        ]
        return block

    def reset(self) -> None:
        if self._factory is None:
            raise RuntimeError(
                "Associate cannot reset without a manager factory"
            )
        self.manager = self._factory()
