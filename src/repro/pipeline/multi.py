"""Multi-person stages for the unified pipeline engine.

The multi-person chain reuses the single-person
:class:`~repro.pipeline.stages.BackgroundSubtract` front end, then swaps
the contour/denoise/localize tail for

* :class:`SuccessiveCancel` — K bottom contours per antenna by
  successive echo cancellation (:mod:`repro.multi.cancellation`);
* :class:`Associate` — cross-antenna association, ghost gating and the
  per-target Kalman track bank (:mod:`repro.multi.tracks`).

Both run frame-at-a-time, block-at-a-time, or session-lockstep with
identical results, so :class:`~repro.multi.tracker.MultiWiTrack`
(batch), :class:`~repro.apps.realtime.RealtimeMultiTracker` (streaming)
and a multi-person serving cohort (:mod:`repro.serve`) are the same
code path. Session state: cancellation is stateless, and the
association track banks are kept as one
:class:`~repro.multi.tracks.TrackManager` per session slot — the
structure-of-arrays analogue for inherently sequential per-session
state.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..multi.cancellation import successive_contours
from ..multi.tracks import TrackManager
from .stages import Stage


class SuccessiveCancel(Stage):
    """K candidate bottom contours per antenna (successive cancellation).

    Per frame and antenna: trace the bottom contour, null the detected
    reflector's energy band, repeat up to ``max_targets`` times. Writes
    ``candidates_m`` and ``candidate_powers`` of shape
    ``(n_rx, max_targets)``. Every round is per-frame independent, so
    the batch path is exactly the streaming path vectorized over frames
    — and a lockstep tick is the same call with every (session,
    antenna) row stacked.
    """

    def __init__(
        self,
        range_bin_m: float,
        max_targets: int = 3,
        threshold_db: float = 10.0,
        min_range_m: float = 1.0,
        null_halfwidth_m: float = 0.5,
        relative_threshold_db: float = 36.0,
    ) -> None:
        if max_targets < 1:
            raise ValueError("max_targets must be at least 1")
        self.range_bin_m = range_bin_m
        self.max_targets = max_targets
        self.threshold_db = threshold_db
        self.min_range_m = min_range_m
        self.null_halfwidth_m = null_halfwidth_m
        self.relative_threshold_db = relative_threshold_db

    def _contours(self, power: np.ndarray):
        return successive_contours(
            power,
            self.range_bin_m,
            max_targets=self.max_targets,
            threshold_db=self.threshold_db,
            min_range_m=self.min_range_m,
            null_halfwidth_m=self.null_halfwidth_m,
            relative_threshold_db=self.relative_threshold_db,
        )

    def fuse_spec(self) -> str:
        """Fusable: the rounds loop is one backend kernel call
        (:func:`repro.kernels.cancellation.successive_cancel`) over the
        tick's stacked (session, antenna) rows, stateless across ticks.
        """
        return "cancel"

    def process_tick(self, tick):
        n_rows, n_rx, n_bins = tick.power.shape
        result = self._contours(tick.power.reshape(n_rows * n_rx, n_bins))
        tick.candidates_m = result.round_trips_m.T.reshape(
            n_rows, n_rx, self.max_targets
        )
        tick.candidate_powers = result.peak_powers.T.reshape(
            n_rows, n_rx, self.max_targets
        )
        return tick

    def process_block(self, block):
        n_frames, n_rx, _ = block.power.shape
        candidates = np.full((n_frames, n_rx, self.max_targets), np.nan)
        powers = np.full((n_frames, n_rx, self.max_targets), np.nan)
        for a in range(n_rx):
            result = self._contours(block.power[:, a, :])
            candidates[:, a, :] = result.round_trips_m.T
            powers[:, a, :] = result.peak_powers.T
        block.candidates_m = candidates
        block.candidate_powers = powers
        return block


class Associate(Stage):
    """Track birth/claim/coast/kill over the candidate TOF sets.

    Thin stage wrapper around :class:`~repro.multi.tracks.TrackManager`
    (which is inherently sequential — association depends on every
    previous frame). Writes ``tracks``: the reportable
    ``(track_id, position)`` pairs after this frame.

    Session state is one independent manager per slot; the factory
    builds managers for newly attached or recycled slots. Slot 0 is the
    manager passed at construction, preserving the single-session API.
    """

    def __init__(
        self,
        manager: TrackManager,
        factory: Callable[[], TrackManager] | None = None,
    ) -> None:
        self._capacity = 1
        self._managers: list[TrackManager] = [manager]
        self._factory = factory

    @property
    def manager(self) -> TrackManager:
        """Slot 0's track manager (the single-session view)."""
        return self._managers[0]

    def manager_for(self, slot: int) -> TrackManager:
        """The track manager advancing the given session slot."""
        return self._managers[slot]

    def _spawn(self) -> TrackManager:
        if self._factory is None:
            raise RuntimeError(
                "Associate needs a manager factory to manage sessions"
            )
        return self._factory()

    def _grow(self, capacity: int) -> None:
        while len(self._managers) < capacity:
            self._managers.append(self._spawn())

    def evict(self, slot: int) -> None:
        self._managers[slot] = self._spawn()

    def snapshot_slot(self, slot: int) -> dict:
        """Hand off the slot's manager (move semantics — see Stage).

        The manager is inherently sequential state; the hand-off carries
        the object itself (picklable, so it survives a pipe to another
        process). Evict the source slot afterwards — two pipelines must
        never advance one manager.
        """
        return {"manager": self._managers[slot]}

    def restore_slot(self, slot: int, state: dict) -> None:
        if not state:
            self.evict(slot)
            return
        self._managers[slot] = state["manager"]

    def fuse_spec(self) -> str | None:
        """``"associate"`` when the cohort can advance as one track bank.

        The fused tick runs every slot's tracks through one
        :class:`~repro.multi.tracks.TrackBank` step, whose batched
        localization solve must equal the staged per-track
        ``solve_one`` calls bitwise — true only for row-independent
        solvers (the closed-form T geometry), so the warm-started
        least-squares solver keeps the chain staged. The bank reads the
        shared cohort constants (frame interval, lifecycle config, fix
        gate, solver) from slot 0's manager; every slot manager comes
        from one factory with one spec, which is what makes that sound.
        """
        if getattr(self.manager.solver, "row_independent", False):
            return "associate"
        return None

    def _step(
        self, manager: TrackManager, candidates: np.ndarray, powers: np.ndarray
    ):
        tracks = manager.step(
            [candidates[a] for a in range(candidates.shape[0])],
            [powers[a] for a in range(powers.shape[0])],
        )
        return [(t.track_id, t.position.copy()) for t in tracks]

    def process_tick(self, tick):
        tick.tracks = [
            self._step(
                self._managers[tick.slots[row]],
                tick.candidates_m[row],
                tick.candidate_powers[row],
            )
            for row in range(tick.num_rows)
        ]
        return tick

    def process_block(self, block):
        manager = self._managers[0]
        block.tracks = [
            self._step(
                manager, block.candidates_m[f], block.candidate_powers[f]
            )
            for f in range(block.num_frames)
        ]
        return block

    def reset(self) -> None:
        self._managers = [self._spawn() for _ in self._managers]
