"""Composable, stateful pipeline stages (paper Section 4 + Section 7).

Each stage implements one core entry point plus two derived views:

* ``process_tick(tick)`` — advance **many independent sessions one
  frame each**, in lockstep, over a
  :class:`~repro.pipeline.frame.SessionTick`. All mutable stage state
  (background reference, outlier history, hold buffer, Kalman
  covariances, track banks) lives in structure-of-arrays form with a
  leading *session* axis; ``tick.slots`` selects which state rows this
  tick advances. Rows are independent: batching sessions never changes
  any session's output relative to running it alone, which is the
  equivalence the serving tests pin.
* ``process(frame)`` — one :class:`~repro.pipeline.frame.Frame` at a
  time. This is the realtime code path of Section 7 and is *literally*
  a single-row tick on session slot 0 — there is no second code path.
* ``process_block(block)`` — a whole
  :class:`~repro.pipeline.frame.FrameBlock` at once. Per-frame
  independent stages vectorize over time; stateful stages run the exact
  tick update in a frame loop. Either way the outputs match streaming
  the same frames through ``process``, which is what the batch/stream
  equivalence tests pin down.

Session lifecycle: :meth:`Stage.attach` grows the session axis to a
requested capacity (existing state rows are preserved), and
:meth:`Stage.evict` forgets one slot's state so the slot can be reused
by a newly admitted session — without perturbing any other row.

The single-person chain is

    BackgroundSubtract -> ContourExtract -> OutlierGate
    -> HoldInterpolate -> KalmanSmooth -> Localize

and the multi-person chain swaps the middle for
:class:`~repro.pipeline.multi.SuccessiveCancel` and
:class:`~repro.pipeline.multi.Associate`.
"""

from __future__ import annotations

import numpy as np

from ..core.contour import track_bottom_contour
from ..core.kalman import dwna_process_noise
from ..kernels.contour import background_power
from ..kernels.kalman import kalman_tick
from .frame import SessionTick


def _grow_rows(array: np.ndarray, capacity: int, fill) -> np.ndarray:
    """Pad an SoA state array with default rows up to ``capacity``."""
    if len(array) >= capacity:
        return array
    pad_shape = (capacity - len(array),) + array.shape[1:]
    return np.concatenate([array, np.full(pad_shape, fill, dtype=array.dtype)])


class Stage:
    """One stateful step of the pipeline.

    Subclasses fill in :meth:`process_tick` (the lockstep core) and
    :meth:`process_block` (batch); the derived :meth:`process` is a
    single-row tick. :meth:`reset` forgets all online state so a
    pipeline can be reused for a fresh recording; :meth:`attach` /
    :meth:`evict` manage the session axis of the state arrays.
    """

    #: Sessions the state arrays are sized for (slot 0 always exists).
    _capacity: int = 1

    def attach(self, n_sessions: int) -> None:
        """Ensure state capacity for ``n_sessions`` slots.

        Existing rows keep their state; new rows start fresh. Capacity
        only grows — eviction frees *state*, not rows.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if n_sessions > self._capacity:
            self._capacity = n_sessions
            self._grow(n_sessions)

    def _grow(self, capacity: int) -> None:
        """Grow already-allocated state arrays (default: stateless)."""

    def evict(self, slot: int) -> None:
        """Forget one slot's state (default: stateless, nothing held)."""

    def snapshot_slot(self, slot: int) -> dict:
        """Picklable hand-off of one slot's state (default: stateless).

        The returned mapping is everything :meth:`restore_slot` needs to
        continue the slot bit-exactly in *another* pipeline of the same
        structure — possibly in another process (cohort migration). It
        is a **hand-off**, not a shared view: restore it into exactly
        one slot and :meth:`evict` the source, or discard it.
        """
        return {}

    def restore_slot(self, slot: int, state: dict) -> None:
        """Install a :meth:`snapshot_slot` hand-off into one slot.

        An empty state means the source slot held nothing yet (the
        stage had not allocated, or the slot was fresh) and restores to
        a fresh slot. The slot must already be attached.
        """
        if not state:
            self.evict(slot)

    def fuse_spec(self) -> str | None:
        """Kernel-form descriptor for the tick compiler, or ``None``.

        A stage that can run inside a compiled
        :class:`~repro.kernels.tick.TickPlan` — its per-tick update is a
        pure function over SoA state slabs plus the frame block, with no
        Python objects in the loop — returns a kind string the compiler
        pattern-matches (``"background"``, ``"contour"``, ...). ``None``
        (the default) marks the stage unfusable and keeps the whole
        chain on the staged loop.
        """
        return None

    def process_tick(self, tick: SessionTick) -> SessionTick:
        """Advance every session row of the tick by one frame."""
        raise NotImplementedError

    def process(self, frame):
        """Advance one frame on session slot 0; return it or ``None``.

        Returning ``None`` consumes the frame without output — e.g. the
        first frame that only primes the background subtractor. Later
        stages are then skipped for this time step.
        """
        tick = self.process_tick(SessionTick.of_frame(frame))
        if tick.num_rows == 0:
            return None
        return tick.write_frame(frame)

    def process_block(self, block):
        """Advance a whole block; must match ``process`` frame by frame."""
        raise NotImplementedError

    def flush(self) -> list:
        """Emit any trailing frames at end of stream (default: none)."""
        return []

    def reset(self) -> None:
        """Forget all online state (every slot)."""


class BackgroundSubtract(Stage):
    """Frame-to-frame subtraction: removing the Flash Effect (§4.2).

    Static reflectors keep a constant TOF, so subtracting consecutive
    averaged frames cancels them; a moving body decorrelates across the
    ~5 cm carrier wavelength and survives. Each session's first frame
    only primes that session's reference row and produces no output —
    priming rows are dropped from the tick.
    """

    def __init__(self) -> None:
        self._capacity = 1
        self._previous: np.ndarray | None = None  # (capacity, n_rx, n_bins)
        self._primed: np.ndarray | None = None  # (capacity,)
        #: Reused per-tick |diff|^2 buffer. ``tick.power`` is consumed
        #: within the tick (contour scan) and never retained by the
        #: collectors, so handing out the same buffer every tick is
        #: safe — and drops two array allocations per frame.
        self._power_scratch: np.ndarray | None = None

    def _ensure(self, n_rx: int, n_bins: int) -> None:
        if self._previous is None:
            self._previous = np.zeros(
                (self._capacity, n_rx, n_bins), dtype=np.complex128
            )
            self._primed = np.zeros(self._capacity, dtype=bool)

    def _grow(self, capacity: int) -> None:
        if self._previous is not None:
            self._previous = _grow_rows(self._previous, capacity, 0.0)
            self._primed = _grow_rows(self._primed, capacity, False)

    def evict(self, slot: int) -> None:
        if self._primed is not None:
            self._primed[slot] = False

    def snapshot_slot(self, slot: int) -> dict:
        if self._previous is None or not self._primed[slot]:
            return {}
        return {"previous": self._previous[slot].copy()}

    def restore_slot(self, slot: int, state: dict) -> None:
        if not state:
            self.evict(slot)
            return
        previous = state["previous"]
        self._ensure(*previous.shape)
        self._previous[slot] = previous
        self._primed[slot] = True

    def fuse_spec(self) -> str:
        return "background"

    def process_tick(self, tick):
        current = tick.spectrum
        _, n_rx, n_bins = current.shape
        self._ensure(n_rx, n_bins)
        slots = tick.slots
        primed = self._primed[slots]
        previous = self._previous[slots]
        self._previous[slots] = current
        self._primed[slots] = True
        if not primed.all():
            tick = tick.select(primed)
            current = current[primed]
            previous = previous[primed]
            if tick.num_rows == 0:
                return tick
        diff = current - previous
        tick.spectrum = diff
        scratch = self._power_scratch
        if scratch is None or scratch.shape != diff.shape:
            scratch = self._power_scratch = np.empty(diff.shape)
        tick.power = background_power(diff, scratch)
        return tick

    def process_block(self, block):
        frames = block.spectrum
        _, n_rx, n_bins = frames.shape
        self._ensure(n_rx, n_bins)
        if self._primed[0]:
            frames = np.concatenate([self._previous[0][None], frames])
        else:
            block.times_s = block.times_s[1:]
        if len(frames) < 2:
            raise ValueError("background subtraction needs at least two frames")
        diff = frames[1:] - frames[:-1]
        self._previous[0] = frames[-1]
        self._primed[0] = True
        block.spectrum = diff
        block.power = np.abs(diff) ** 2
        return block

    def reset(self) -> None:
        self._previous = None
        self._primed = None
        self._power_scratch = None


class ContourExtract(Stage):
    """Bottom-contour tracking: defeating dynamic multipath (§4.3).

    Per antenna, the closest local maximum substantially above the noise
    floor. Writes ``raw_tof_m`` (kept for the pointing pipeline),
    ``tof_m`` (the working copy downstream stages clean), and
    ``motion``. Stateless, and the contour kernel is row-independent,
    so a tick stacks every (session, antenna) row into one vectorized
    call.
    """

    def __init__(
        self,
        range_bin_m: float,
        threshold_db: float = 12.0,
        min_range_m: float = 1.0,
        relative_threshold_db: float = 26.0,
    ) -> None:
        self.range_bin_m = range_bin_m
        self.threshold_db = threshold_db
        self.min_range_m = min_range_m
        self.relative_threshold_db = relative_threshold_db

    def _contour(self, power: np.ndarray):
        return track_bottom_contour(
            power,
            self.range_bin_m,
            threshold_db=self.threshold_db,
            min_range_m=self.min_range_m,
            relative_threshold_db=self.relative_threshold_db,
        )

    def fuse_spec(self) -> str:
        return "contour"

    def process_tick(self, tick):
        n_rows, n_rx, n_bins = tick.power.shape
        result = self._contour(tick.power.reshape(n_rows * n_rx, n_bins))
        tick.raw_tof_m = result.round_trip_m.reshape(n_rows, n_rx)
        tick.tof_m = tick.raw_tof_m.copy()
        tick.motion = result.motion_mask.reshape(n_rows, n_rx)
        return tick

    def process_block(self, block):
        n_frames, n_rx, _ = block.power.shape
        tof = np.empty((n_frames, n_rx))
        motion = np.zeros((n_frames, n_rx), dtype=bool)
        for a in range(n_rx):
            result = self._contour(block.power[:, a, :])
            tof[:, a] = result.round_trip_m
            motion[:, a] = result.motion_mask
        block.raw_tof_m = tof
        block.tof_m = tof.copy()
        block.motion = motion
        return block


class OutlierGate(Stage):
    """Online outlier rejection (§4.4 / §7).

    "The contour should not jump significantly between two successive
    FFT frames (because a person cannot move much in 12.5 ms)." A jump
    is accepted only once several consecutive frames agree on the new
    distance — a streaming-causal variant of
    :func:`repro.core.outliers.reject_outliers` that never rewrites
    already-emitted frames.

    State is structure-of-arrays over (session, antenna): the last
    accepted value, frames since acceptance, and a bounded pending
    buffer of jump candidates (at most ``confirmation_frames`` values,
    NaN-padded) with its fill count. Every update is elementwise, so
    the whole gate advances one vectorized step per tick.
    """

    def __init__(
        self,
        max_jump_m: float = 0.15,
        confirmation_frames: int = 4,
        agreement_m: float | None = None,
    ) -> None:
        if max_jump_m <= 0:
            raise ValueError("max_jump_m must be positive")
        if confirmation_frames < 1:
            raise ValueError("confirmation_frames must be >= 1")
        self.max_jump_m = max_jump_m
        self.confirmation_frames = confirmation_frames
        self.agreement_m = (
            agreement_m if agreement_m is not None else 2.0 * max_jump_m
        )
        self._capacity = 1
        self._last: np.ndarray | None = None  # (capacity, n_rx)
        self._since: np.ndarray | None = None  # (capacity, n_rx)
        self._pending: np.ndarray | None = None  # (capacity, n_rx, P)
        self._pending_len: np.ndarray | None = None  # (capacity, n_rx)
        #: Reused per-tick work buffers keyed by (n_rows, n_rx); see
        #: :meth:`_scratch_for`.
        self._scratch: dict | None = None

    def _ensure(self, n_rx: int) -> None:
        if self._last is None:
            capacity = self._capacity
            self._last = np.full((capacity, n_rx), np.nan)
            self._since = np.ones((capacity, n_rx), dtype=np.int64)
            self._pending = np.full(
                (capacity, n_rx, self.confirmation_frames), np.nan
            )
            self._pending_len = np.zeros((capacity, n_rx), dtype=np.int64)

    def _grow(self, capacity: int) -> None:
        if self._last is not None:
            self._last = _grow_rows(self._last, capacity, np.nan)
            self._since = _grow_rows(self._since, capacity, 1)
            self._pending = _grow_rows(self._pending, capacity, np.nan)
            self._pending_len = _grow_rows(self._pending_len, capacity, 0)

    def evict(self, slot: int) -> None:
        if self._last is not None:
            self._last[slot] = np.nan
            self._since[slot] = 1
            self._pending_len[slot] = 0

    def snapshot_slot(self, slot: int) -> dict:
        if self._last is None:
            return {}
        return {
            "last": self._last[slot].copy(),
            "since": self._since[slot].copy(),
            "pending": self._pending[slot].copy(),
            "pending_len": self._pending_len[slot].copy(),
        }

    def restore_slot(self, slot: int, state: dict) -> None:
        if not state:
            self.evict(slot)
            return
        self._ensure(len(state["last"]))
        self._last[slot] = state["last"]
        self._since[slot] = state["since"]
        self._pending[slot] = state["pending"]
        self._pending_len[slot] = state["pending_len"]

    def _scratch_for(self, n_rows: int, n_rx: int) -> dict:
        """Per-tick work buffers, reallocated only when the tick shape
        changes (a steady serving cohort reuses them every frame)."""
        p = self.confirmation_frames
        sc = self._scratch
        if sc is None or sc["last"].shape != (n_rows, n_rx):
            shape = (n_rows, n_rx)
            self._scratch = sc = {
                "last": np.empty(shape),
                "since": np.empty(shape, dtype=np.int64),
                "pending": np.empty(shape + (p,)),
                "pending_len": np.empty(shape, dtype=np.int64),
                "f2": np.empty(shape),
                "i2": np.empty(shape, dtype=np.int64),
                "f3": np.empty(shape + (p,)),
                "b3": np.empty(shape + (p,), dtype=bool),
                "keep": np.empty(shape + (p,), dtype=bool),
                "missing": np.empty(shape, dtype=bool),
                "no_last": np.empty(shape, dtype=bool),
                "small": np.empty(shape, dtype=bool),
                "direct": np.empty(shape, dtype=bool),
                "candidate": np.empty(shape, dtype=bool),
                "accept": np.empty(shape, dtype=bool),
                "n_keep": np.empty(shape, dtype=np.int64),
                "w_idx": np.arange(p, dtype=np.int64)[None, None, :],
            }
        return sc

    def fuse_spec(self) -> str:
        return "outlier"

    def _step_rows(self, values: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Gate a ``(n_rows, n_rx)`` tick; advances the given slots.

        Same elementwise update as always, written through preallocated
        scratch buffers (gathers via ``np.take(out=)``, ufuncs with
        ``out=``, merges via ``np.copyto(where=)``) so a steady tick
        performs no per-frame array allocations beyond the returned
        gated values and the two argsort/take_along_axis packs — the
        output is pinned bitwise against the original formulation.
        """
        self._ensure(values.shape[1])
        n_rows, n_rx = values.shape
        sc = self._scratch_for(n_rows, n_rx)
        last = np.take(self._last, slots, axis=0, out=sc["last"])
        since = np.take(self._since, slots, axis=0, out=sc["since"])
        pending = np.take(self._pending, slots, axis=0, out=sc["pending"])
        pending_len = np.take(
            self._pending_len, slots, axis=0, out=sc["pending_len"]
        )

        missing = np.isnan(values, out=sc["missing"])
        no_last = np.isnan(last, out=sc["no_last"])
        f2 = sc["f2"]
        np.subtract(values, last, out=f2)
        np.abs(f2, out=f2)
        with np.errstate(invalid="ignore"):
            small = np.less_equal(
                f2, self.max_jump_m * since, out=sc["small"]
            )
        # direct = ~missing & (no_last | small);
        # candidate = ~missing & ~no_last & ~small.
        direct = np.logical_or(no_last, small, out=sc["direct"])
        candidate = np.logical_or(no_last, small, out=sc["candidate"])
        np.logical_not(candidate, out=candidate)
        np.greater(direct, missing, out=direct)  # direct & ~missing
        np.greater(candidate, missing, out=candidate)

        # Candidate relocation: keep only pending values that agree with
        # the newest one, append it, and accept once enough agree.
        p = self.confirmation_frames
        filled = np.less(sc["w_idx"], pending_len[:, :, None], out=sc["b3"])
        f3 = sc["f3"]
        np.subtract(pending, values[:, :, None], out=f3)
        np.abs(f3, out=f3)
        with np.errstate(invalid="ignore"):
            keep = np.less_equal(f3, self.agreement_m, out=sc["keep"])
        np.logical_and(filled, keep, out=keep)
        order = np.argsort(~keep, axis=-1, kind="stable")
        packed = np.take_along_axis(pending, order, axis=-1)
        n_keep = np.sum(keep, axis=-1, out=sc["n_keep"])
        i2 = np.minimum(n_keep, p - 1, out=sc["i2"])
        np.put_along_axis(packed, i2[:, :, None], values[:, :, None], axis=-1)
        np.add(n_keep, 1, out=i2)  # n_keep + 1
        confirmed = np.greater_equal(i2, p, out=sc["b3"][..., 0])
        np.logical_and(candidate, confirmed, out=confirmed)
        accept = np.logical_or(direct, confirmed, out=sc["accept"])

        out = np.where(accept, values, np.nan)
        np.copyto(last, values, where=accept)
        self._last[slots] = last
        np.add(since, 1, out=since)
        np.copyto(since, 1, where=accept)
        self._since[slots] = since
        np.copyto(pending, packed, where=candidate[:, :, None])
        self._pending[slots] = pending
        np.copyto(pending_len, i2, where=candidate)
        np.copyto(pending_len, 0, where=accept)
        self._pending_len[slots] = pending_len
        return out

    def process_tick(self, tick):
        tick.tof_m = self._step_rows(tick.tof_m, tick.slots)
        return tick

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        slot0 = np.zeros(1, dtype=np.intp)
        for f in range(len(out)):
            out[f] = self._step_rows(block.tof_m[f][None, :], slot0)[0]
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._last = None
        self._since = None
        self._pending = None
        self._pending_len = None
        self._scratch = None


class HoldInterpolate(Stage):
    """Hold-last interpolation through silence (§4.4).

    "We assume that the person is still in the same position and
    interpolate the latest location estimate throughout the period
    during which we do not observe any motion." Frames before the first
    detection stay NaN — a causal tracker has no earlier knowledge.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._capacity = 1
        self._held: np.ndarray | None = None  # (capacity, n_rx)

    def _ensure(self, n_rx: int) -> None:
        if self._held is None:
            self._held = np.full((self._capacity, n_rx), np.nan)

    def _grow(self, capacity: int) -> None:
        if self._held is not None:
            self._held = _grow_rows(self._held, capacity, np.nan)

    def evict(self, slot: int) -> None:
        if self._held is not None:
            self._held[slot] = np.nan

    def snapshot_slot(self, slot: int) -> dict:
        if self._held is None:
            return {}
        return {"held": self._held[slot].copy()}

    def restore_slot(self, slot: int, state: dict) -> None:
        if not state:
            self.evict(slot)
            return
        self._ensure(len(state["held"]))
        self._held[slot] = state["held"]

    def fuse_spec(self) -> str:
        return "hold"

    def _step_rows(self, values: np.ndarray, slots: np.ndarray) -> np.ndarray:
        self._ensure(values.shape[1])
        held = self._held[slots]
        finite = np.isfinite(values)
        out = np.where(finite, values, held) if self.enabled else values
        self._held[slots] = np.where(finite, values, held)
        return out

    def process_tick(self, tick):
        tick.tof_m = self._step_rows(tick.tof_m, tick.slots)
        return tick

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        slot0 = np.zeros(1, dtype=np.intp)
        for f in range(len(out)):
            out[f] = self._step_rows(block.tof_m[f][None, :], slot0)[0]
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._held = None


class KalmanSmooth(Stage):
    """Per-antenna constant-velocity Kalman smoothing (§4.4).

    The same filter as :class:`~repro.core.kalman.KalmanFilter1D`, but
    with the ``[distance, velocity]`` means and 2x2 covariances kept in
    structure-of-arrays form over (session, antenna); the unrolled
    predict+update itself is the backend-dispatched
    :func:`repro.kernels.kalman.kalman_tick` kernel — one call advances
    every antenna of every session. NaN inputs advance the filter
    without a measurement (prediction), exactly as the realtime loop
    needs.
    """

    def __init__(
        self,
        frame_dt_s: float,
        process_noise: float = 10.0,
        measurement_noise: float = 1e-3,
    ) -> None:
        if frame_dt_s <= 0:
            raise ValueError("frame_dt_s must be positive")
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self.frame_dt_s = frame_dt_s
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self._q00, self._q01, self._q11 = dwna_process_noise(
            frame_dt_s, process_noise
        )
        self._capacity = 1
        self._mean: np.ndarray | None = None  # (capacity, n_rx, 2)
        self._cov: np.ndarray | None = None  # (capacity, n_rx, 2, 2)
        self._initialized: np.ndarray | None = None  # (capacity, n_rx)

    def _ensure(self, n_rx: int) -> None:
        if self._mean is None:
            capacity = self._capacity
            self._mean = np.zeros((capacity, n_rx, 2))
            self._cov = np.zeros((capacity, n_rx, 2, 2))
            self._initialized = np.zeros((capacity, n_rx), dtype=bool)

    def _grow(self, capacity: int) -> None:
        if self._mean is not None:
            self._mean = _grow_rows(self._mean, capacity, 0.0)
            self._cov = _grow_rows(self._cov, capacity, 0.0)
            self._initialized = _grow_rows(self._initialized, capacity, False)

    def evict(self, slot: int) -> None:
        if self._initialized is not None:
            self._initialized[slot] = False

    def snapshot_slot(self, slot: int) -> dict:
        if self._mean is None:
            return {}
        return {
            "mean": self._mean[slot].copy(),
            "cov": self._cov[slot].copy(),
            "initialized": self._initialized[slot].copy(),
        }

    def restore_slot(self, slot: int, state: dict) -> None:
        if not state:
            self.evict(slot)
            return
        self._ensure(len(state["mean"]))
        self._mean[slot] = state["mean"]
        self._cov[slot] = state["cov"]
        self._initialized[slot] = state["initialized"]

    def fuse_spec(self) -> str:
        return "kalman"

    def _step_rows(self, values: np.ndarray, slots: np.ndarray) -> np.ndarray:
        self._ensure(values.shape[1])
        out, new, newc, new_live = kalman_tick(
            values,
            self._mean[slots],
            self._cov[slots],
            self._initialized[slots],
            self.frame_dt_s,
            self._q00,
            self._q01,
            self._q11,
            self.measurement_noise,
        )
        self._mean[slots] = new
        self._cov[slots] = newc
        self._initialized[slots] = new_live
        return out

    def process_tick(self, tick):
        tick.tof_m = self._step_rows(tick.tof_m, tick.slots)
        return tick

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        slot0 = np.zeros(1, dtype=np.intp)
        for f in range(len(out)):
            out[f] = self._step_rows(block.tof_m[f][None, :], slot0)[0]
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._mean = None
        self._cov = None
        self._initialized = None


class Localize(Stage):
    """Ellipsoid-intersection 3D localization (§5).

    Solves the smoothed per-antenna round trips into one 3D position per
    frame. The closed-form T solver is row-independent and fully
    vectorized, so batch frames and lockstep sessions hand the solver
    one stacked call; solvers without ``row_independent`` (the
    warm-started least-squares solver) fall back to per-row
    ``solve_one`` in a tick so one session's iterate can never seed
    another's.
    """

    def __init__(self, solver) -> None:
        self.solver = solver

    def fuse_spec(self) -> str | None:
        # Only the closed-form T solver is a pure rowwise function; the
        # warm-started least-squares solver carries a Python-side
        # iterate and stays staged.
        if getattr(self.solver, "fuse_kind", None) == "t_geometry":
            return "localize"
        return None

    def process_tick(self, tick):
        if getattr(self.solver, "row_independent", False):
            tick.positions = self.solver.solve(tick.tof_m).positions
        else:
            tick.positions = np.stack(
                [self.solver.solve_one(row) for row in tick.tof_m]
            )
        return tick

    def process_block(self, block):
        block.positions = self.solver.solve(block.tof_m).positions
        return block
