"""Composable, stateful pipeline stages (paper Section 4 + Section 7).

Each stage implements the same interface twice:

* ``process(frame)`` — one :class:`~repro.pipeline.frame.Frame` at a
  time, holding whatever online state the stage needs (the previous
  frame, the outlier gate's pending list, the Kalman covariance). This
  is the realtime code path of Section 7.
* ``process_block(block)`` — a whole
  :class:`~repro.pipeline.frame.FrameBlock` at once. Stateless or
  per-frame-independent stages vectorize; stateful stages run the exact
  per-frame update in a loop. Either way the outputs are
  bitwise-identical to streaming the same frames through ``process``,
  which is what the batch/stream equivalence tests pin down.

The single-person chain is

    BackgroundSubtract -> ContourExtract -> OutlierGate
    -> HoldInterpolate -> KalmanSmooth -> Localize

and the multi-person chain swaps the middle for
:class:`~repro.pipeline.multi.SuccessiveCancel` and
:class:`~repro.pipeline.multi.Associate`.
"""

from __future__ import annotations

import numpy as np

from ..core.contour import track_bottom_contour
from ..core.kalman import KalmanFilter1D


class Stage:
    """One stateful step of the pipeline.

    Subclasses fill in :meth:`process` (streaming) and
    :meth:`process_block` (batch); the two must agree exactly on the
    fields they produce. :meth:`reset` forgets all online state so a
    pipeline can be reused for a fresh recording.
    """

    def process(self, frame):
        """Advance one frame; return it (possibly mutated) or ``None``.

        Returning ``None`` consumes the frame without output — e.g. the
        first frame that only primes the background subtractor. Later
        stages are then skipped for this time step.
        """
        raise NotImplementedError

    def process_block(self, block):
        """Advance a whole block; must match ``process`` frame by frame."""
        raise NotImplementedError

    def flush(self) -> list:
        """Emit any trailing frames at end of stream (default: none)."""
        return []

    def reset(self) -> None:
        """Forget all online state."""


class BackgroundSubtract(Stage):
    """Frame-to-frame subtraction: removing the Flash Effect (§4.2).

    Static reflectors keep a constant TOF, so subtracting consecutive
    averaged frames cancels them; a moving body decorrelates across the
    ~5 cm carrier wavelength and survives. The first frame only primes
    the reference and produces no output.
    """

    def __init__(self) -> None:
        self._previous: np.ndarray | None = None

    def process(self, frame):
        current = frame.spectrum
        if self._previous is None:
            self._previous = current
            return None
        diff = current - self._previous
        self._previous = current
        frame.spectrum = diff
        frame.power = np.abs(diff) ** 2
        return frame

    def process_block(self, block):
        frames = block.spectrum
        if self._previous is not None:
            frames = np.concatenate([self._previous[None], frames])
        else:
            block.times_s = block.times_s[1:]
        if len(frames) < 2:
            raise ValueError("background subtraction needs at least two frames")
        diff = frames[1:] - frames[:-1]
        self._previous = frames[-1]
        block.spectrum = diff
        block.power = np.abs(diff) ** 2
        return block

    def reset(self) -> None:
        self._previous = None


class ContourExtract(Stage):
    """Bottom-contour tracking: defeating dynamic multipath (§4.3).

    Per antenna, the closest local maximum substantially above the noise
    floor. Writes ``raw_tof_m`` (kept for the pointing pipeline),
    ``tof_m`` (the working copy downstream stages clean), and
    ``motion``.
    """

    def __init__(
        self,
        range_bin_m: float,
        threshold_db: float = 12.0,
        min_range_m: float = 1.0,
        relative_threshold_db: float = 26.0,
    ) -> None:
        self.range_bin_m = range_bin_m
        self.threshold_db = threshold_db
        self.min_range_m = min_range_m
        self.relative_threshold_db = relative_threshold_db

    def _contour(self, power: np.ndarray):
        return track_bottom_contour(
            power,
            self.range_bin_m,
            threshold_db=self.threshold_db,
            min_range_m=self.min_range_m,
            relative_threshold_db=self.relative_threshold_db,
        )

    def process(self, frame):
        n_rx = frame.power.shape[0]
        tof = np.empty(n_rx)
        motion = np.zeros(n_rx, dtype=bool)
        for a in range(n_rx):
            result = self._contour(frame.power[a][None, :])
            tof[a] = result.round_trip_m[0]
            motion[a] = result.motion_mask[0]
        frame.raw_tof_m = tof
        frame.tof_m = tof.copy()
        frame.motion = motion
        return frame

    def process_block(self, block):
        n_frames, n_rx, _ = block.power.shape
        tof = np.empty((n_frames, n_rx))
        motion = np.zeros((n_frames, n_rx), dtype=bool)
        for a in range(n_rx):
            result = self._contour(block.power[:, a, :])
            tof[:, a] = result.round_trip_m
            motion[:, a] = result.motion_mask
        block.raw_tof_m = tof
        block.tof_m = tof.copy()
        block.motion = motion
        return block


class OutlierGate(Stage):
    """Online outlier rejection (§4.4 / §7).

    "The contour should not jump significantly between two successive
    FFT frames (because a person cannot move much in 12.5 ms)." A jump
    is accepted only once several consecutive frames agree on the new
    distance — a streaming-causal variant of
    :func:`repro.core.outliers.reject_outliers` that never rewrites
    already-emitted frames.
    """

    def __init__(
        self,
        max_jump_m: float = 0.15,
        confirmation_frames: int = 4,
        agreement_m: float | None = None,
    ) -> None:
        if max_jump_m <= 0:
            raise ValueError("max_jump_m must be positive")
        if confirmation_frames < 1:
            raise ValueError("confirmation_frames must be >= 1")
        self.max_jump_m = max_jump_m
        self.confirmation_frames = confirmation_frames
        self.agreement_m = (
            agreement_m if agreement_m is not None else 2.0 * max_jump_m
        )
        self._last: list[float] | None = None
        self._since: list[int] | None = None
        self._pending: list[list[float]] | None = None

    def _init(self, n_rx: int) -> None:
        if self._last is None:
            self._last = [float("nan")] * n_rx
            self._since = [1] * n_rx
            self._pending = [[] for _ in range(n_rx)]

    def _gate_one(self, a: int, value: float) -> float:
        assert self._last is not None and self._since is not None
        assert self._pending is not None
        if np.isnan(value):
            self._since[a] += 1
            return float("nan")
        if np.isnan(self._last[a]):
            self._last[a] = value
            self._since[a] = 1
            return value
        allowed = self.max_jump_m * self._since[a]
        if abs(value - self._last[a]) <= allowed:
            self._last[a] = value
            self._since[a] = 1
            self._pending[a].clear()
            return value
        # Candidate relocation: require persistence before believing it.
        self._pending[a] = [
            v for v in self._pending[a] if abs(v - value) <= self.agreement_m
        ]
        self._pending[a].append(value)
        self._since[a] += 1
        if len(self._pending[a]) >= self.confirmation_frames:
            self._last[a] = value
            self._since[a] = 1
            self._pending[a].clear()
            return value
        return float("nan")

    def _step(self, tof: np.ndarray) -> np.ndarray:
        self._init(len(tof))
        return np.array(
            [self._gate_one(a, float(v)) for a, v in enumerate(tof)]
        )

    def process(self, frame):
        frame.tof_m = self._step(frame.tof_m)
        return frame

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        for f in range(len(out)):
            out[f] = self._step(block.tof_m[f])
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._last = None
        self._since = None
        self._pending = None


class HoldInterpolate(Stage):
    """Hold-last interpolation through silence (§4.4).

    "We assume that the person is still in the same position and
    interpolate the latest location estimate throughout the period
    during which we do not observe any motion." Frames before the first
    detection stay NaN — a causal tracker has no earlier knowledge.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._held: np.ndarray | None = None

    def _step(self, tof: np.ndarray) -> np.ndarray:
        if self._held is None:
            self._held = np.full(len(tof), np.nan)
        finite = np.isfinite(tof)
        out = tof
        if self.enabled:
            out = np.where(finite, tof, self._held)
        self._held = np.where(finite, tof, self._held)
        return out

    def process(self, frame):
        frame.tof_m = self._step(frame.tof_m)
        return frame

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        for f in range(len(out)):
            out[f] = self._step(block.tof_m[f])
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._held = None


class KalmanSmooth(Stage):
    """Per-antenna constant-velocity Kalman smoothing (§4.4).

    One :class:`~repro.core.kalman.KalmanFilter1D` per receive antenna
    on the round-trip distance; NaN inputs advance the filter without a
    measurement (prediction), exactly as the realtime loop needs.
    """

    def __init__(
        self,
        frame_dt_s: float,
        process_noise: float = 10.0,
        measurement_noise: float = 1e-3,
    ) -> None:
        self.frame_dt_s = frame_dt_s
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self._filters: list[KalmanFilter1D] | None = None

    def _step(self, tof: np.ndarray) -> np.ndarray:
        if self._filters is None:
            self._filters = [
                KalmanFilter1D(
                    self.frame_dt_s,
                    process_noise=self.process_noise,
                    measurement_noise=self.measurement_noise,
                )
                for _ in range(len(tof))
            ]
        out = np.empty(len(tof))
        for a, kf in enumerate(self._filters):
            value = float(tof[a])
            if np.isnan(value):
                out[a] = kf.predict() if kf.initialized else np.nan
            else:
                out[a] = kf.update(value)
        return out

    def process(self, frame):
        frame.tof_m = self._step(frame.tof_m)
        return frame

    def process_block(self, block):
        out = np.empty_like(block.tof_m)
        for f in range(len(out)):
            out[f] = self._step(block.tof_m[f])
        block.tof_m = out
        return block

    def reset(self) -> None:
        self._filters = None


class Localize(Stage):
    """Ellipsoid-intersection 3D localization (§5).

    Solves the smoothed per-antenna round trips into one 3D position per
    frame. The batch path hands the whole block to the solver in one
    call (the closed-form T solver is fully vectorized); for the
    closed form the two paths are bitwise-identical, while the
    least-squares solver's warm start makes batch solutions (slightly)
    better conditioned than frame-at-a-time ones.
    """

    def __init__(self, solver) -> None:
        self.solver = solver

    def process(self, frame):
        frame.position = self.solver.solve_one(frame.tof_m)
        return frame

    def process_block(self, block):
        block.positions = self.solver.solve(block.tof_m).positions
        return block
