"""The data that flows through the pipeline engine.

A :class:`Frame` is one 12.5 ms time step of the whole deployment: the
averaged complex spectra of *every* receive antenna plus the fields the
stages progressively fill in (subtracted power, contours, candidate TOF
sets, the 3D fix, the per-person tracks). Stages communicate only
through these fields, so the same stage graph serves the single-person
and the multi-person pipelines.

A :class:`FrameBlock` is the batch mirror: the same fields with a
leading ``n_frames`` axis, so vectorizable stages can process a whole
recording in one call while stateful stages fall back to a frame loop —
both paths produce bitwise-identical fields, which is what makes batch
and streaming provably the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Frame:
    """One frame of the streaming pipeline (all antennas together).

    Attributes:
        index: index of the *input* averaged frame this was built from.
        time_s: center time of that averaged frame.
        spectrum: complex averaged spectra, shape ``(n_rx, n_bins)``;
            after :class:`~repro.pipeline.stages.BackgroundSubtract`
            this is the frame-to-frame difference.
        power: background-subtracted power, shape ``(n_rx, n_bins)``.
        raw_tof_m: raw bottom-contour round trips, shape ``(n_rx,)``.
        tof_m: working round trips, progressively cleaned by the
            outlier/interpolation/Kalman stages, shape ``(n_rx,)``.
        motion: per-antenna motion detections, shape ``(n_rx,)``.
        candidates_m: multi-person candidate round trips per antenna,
            shape ``(n_rx, max_targets)``.
        candidate_powers: echo power of each candidate, same shape.
        position: the 3D fix, shape ``(3,)`` (NaN when unlocalizable).
        tracks: ``(track_id, position)`` of every reportable person
            (multi-person pipelines only).
    """

    index: int
    time_s: float
    spectrum: np.ndarray | None = None
    power: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    candidates_m: np.ndarray | None = None
    candidate_powers: np.ndarray | None = None
    position: np.ndarray | None = None
    tracks: list[tuple[int, np.ndarray]] | None = None


@dataclass
class FrameBlock:
    """A whole recording's worth of frames, batch-major.

    Every array mirrors the corresponding :class:`Frame` field with a
    leading ``n_frames`` axis (e.g. ``spectrum`` has shape
    ``(n_frames, n_rx, n_bins)`` and ``tof_m`` has shape
    ``(n_frames, n_rx)``).
    """

    times_s: np.ndarray
    spectrum: np.ndarray | None = None
    power: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    candidates_m: np.ndarray | None = None
    candidate_powers: np.ndarray | None = None
    positions: np.ndarray | None = None
    tracks: list[list[tuple[int, np.ndarray]]] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        """Number of frames in the block."""
        return len(self.times_s)
