"""The data that flows through the pipeline engine.

A :class:`Frame` is one 12.5 ms time step of the whole deployment: the
averaged complex spectra of *every* receive antenna plus the fields the
stages progressively fill in (subtracted power, contours, candidate TOF
sets, the 3D fix, the per-person tracks). Stages communicate only
through these fields, so the same stage graph serves the single-person
and the multi-person pipelines.

A :class:`FrameBlock` is the batch mirror: the same fields with a
leading ``n_frames`` axis, so vectorizable stages can process a whole
recording in one call while stateful stages fall back to a frame loop —
both paths produce bitwise-identical fields, which is what makes batch
and streaming provably the same pipeline.

A :class:`SessionTick` is the *serving* mirror: the same fields with a
leading ``n_active`` **session** axis. Where a FrameBlock is one session
advanced many time steps, a SessionTick is many independent sessions
advanced one time step each, in lockstep — the unit of work of the
session-multiplexing engine in :mod:`repro.serve`. ``slots`` maps each
row to the pipeline session slot whose structure-of-arrays state it
advances, so ticks may carry any subset of the attached sessions (late
joiners, stragglers, drained queues).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: SessionTick array fields whose leading axis is the session row.
_TICK_ARRAYS = (
    "spectrum",
    "power",
    "raw_tof_m",
    "tof_m",
    "motion",
    "candidates_m",
    "candidate_powers",
    "positions",
)
#: Frame attribute corresponding to each tick array field.
_FRAME_OF_TICK = {name: name for name in _TICK_ARRAYS}
_FRAME_OF_TICK["positions"] = "position"


@dataclass
class Frame:
    """One frame of the streaming pipeline (all antennas together).

    Attributes:
        index: index of the *input* averaged frame this was built from.
        time_s: center time of that averaged frame.
        spectrum: complex averaged spectra, shape ``(n_rx, n_bins)``;
            after :class:`~repro.pipeline.stages.BackgroundSubtract`
            this is the frame-to-frame difference.
        power: background-subtracted power, shape ``(n_rx, n_bins)``.
        raw_tof_m: raw bottom-contour round trips, shape ``(n_rx,)``.
        tof_m: working round trips, progressively cleaned by the
            outlier/interpolation/Kalman stages, shape ``(n_rx,)``.
        motion: per-antenna motion detections, shape ``(n_rx,)``.
        candidates_m: multi-person candidate round trips per antenna,
            shape ``(n_rx, max_targets)``.
        candidate_powers: echo power of each candidate, same shape.
        position: the 3D fix, shape ``(3,)`` (NaN when unlocalizable).
        tracks: ``(track_id, position)`` of every reportable person
            (multi-person pipelines only).
    """

    index: int
    time_s: float
    spectrum: np.ndarray | None = None
    power: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    candidates_m: np.ndarray | None = None
    candidate_powers: np.ndarray | None = None
    position: np.ndarray | None = None
    tracks: list[tuple[int, np.ndarray]] | None = None


@dataclass
class FrameBlock:
    """A whole recording's worth of frames, batch-major.

    Every array mirrors the corresponding :class:`Frame` field with a
    leading ``n_frames`` axis (e.g. ``spectrum`` has shape
    ``(n_frames, n_rx, n_bins)`` and ``tof_m`` has shape
    ``(n_frames, n_rx)``).
    """

    times_s: np.ndarray
    spectrum: np.ndarray | None = None
    power: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    candidates_m: np.ndarray | None = None
    candidate_powers: np.ndarray | None = None
    positions: np.ndarray | None = None
    tracks: list[list[tuple[int, np.ndarray]]] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        """Number of frames in the block."""
        return len(self.times_s)


@dataclass
class SessionTick:
    """One lockstep step of many sessions, session-major.

    Every array mirrors the corresponding :class:`Frame` field with a
    leading ``n_active`` axis (e.g. ``spectrum`` has shape
    ``(n_active, n_rx, n_bins)``, ``tof_m`` has ``(n_active, n_rx)``,
    ``positions`` has ``(n_active, 3)``). Rows are independent sessions:
    no stage may let one row's values influence another's.

    Attributes:
        slots: pipeline session slot of each row, shape ``(n_active,)``.
        indices: per-session input frame index of each row.
        times_s: per-session frame center time of each row.
        tracks: per-row reportable ``(track_id, position)`` lists
            (multi-person pipelines only).
    """

    slots: np.ndarray
    indices: np.ndarray
    times_s: np.ndarray
    spectrum: np.ndarray | None = None
    power: np.ndarray | None = None
    raw_tof_m: np.ndarray | None = None
    tof_m: np.ndarray | None = None
    motion: np.ndarray | None = None
    candidates_m: np.ndarray | None = None
    candidate_powers: np.ndarray | None = None
    positions: np.ndarray | None = None
    tracks: list[list[tuple[int, np.ndarray]]] | None = None

    @property
    def num_rows(self) -> int:
        """Number of sessions carried by this tick."""
        return len(self.slots)

    @property
    def nbytes(self) -> int:
        """Bytes of array payload the tick currently carries.

        The working-set footprint the profiler attributes to each
        stage's output (not an allocation count — stages may hand out
        views or reused buffers).
        """
        total = 0
        for name in _TICK_ARRAYS:
            value = getattr(self, name)
            if value is not None:
                total += value.nbytes
        return total

    def select(self, keep: np.ndarray) -> "SessionTick":
        """A tick holding only the rows where ``keep`` is True."""
        out = SessionTick(
            slots=self.slots[keep],
            indices=self.indices[keep],
            times_s=self.times_s[keep],
        )
        for name in _TICK_ARRAYS:
            value = getattr(self, name)
            if value is not None:
                setattr(out, name, value[keep])
        if self.tracks is not None:
            out.tracks = [t for t, k in zip(self.tracks, keep) if k]
        return out

    @classmethod
    def of_frame(cls, frame: Frame, slot: int = 0) -> "SessionTick":
        """Wrap one frame as a single-row tick on the given slot."""
        tick = cls(
            slots=np.array([slot], dtype=np.intp),
            indices=np.array([frame.index], dtype=np.int64),
            times_s=np.array([frame.time_s]),
        )
        for name, frame_name in _FRAME_OF_TICK.items():
            value = getattr(frame, frame_name)
            if value is not None:
                setattr(tick, name, np.asarray(value)[None])
        if frame.tracks is not None:
            tick.tracks = [frame.tracks]
        return tick

    def write_frame(self, frame: Frame, row: int = 0) -> Frame:
        """Copy one row's fields into a :class:`Frame` (views, no copy)."""
        for name, frame_name in _FRAME_OF_TICK.items():
            value = getattr(self, name)
            if value is not None:
                setattr(frame, frame_name, value[row])
        if self.tracks is not None:
            frame.tracks = self.tracks[row]
        return frame
