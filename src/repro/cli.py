"""Command-line interface: run the paper's experiments from a shell.

Examples:
    python -m repro track --duration 15 --seed 3
    python -m repro stream --duration 30 --seed 3
    python -m repro multi --people 2 --duration 12
    python -m repro fig8 --through-wall --workers 4
    python -m repro fig9
    python -m repro fall-table
    python -m repro pointing --trials 8
    python -m repro bench --workers 4 --duration 30
    python -m repro serve --synthetic --sessions 8 --duration 10
    python -m repro load --process flash --memory-budget-mb 256
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from .apps.realtime import RealtimeTracker
from .config import default_config
from .core.tracker import WiTrack
from .eval import figures
from .eval.harness import (
    ExperimentScale,
    TrackingExperiment,
    run_multi_tracking_experiment,
    run_pointing_experiment,
    run_tracking_experiment,
)
from .eval.reporting import format_table
from .exec import (
    ExperimentPlan,
    Runner,
    cache_stats,
    default_cache,
    default_runner,
    sharded_speedup_benchmark,
)
from .kernels import StageProfiler, enable_profiling
from .sim.motion import non_colliding_walks, random_walk
from .sim.room import line_of_sight_room, through_wall_room
from .sim.scenario import Scenario


def _scale(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        num_experiments=args.experiments,
        duration_s=args.duration,
        name="cli",
    )


def _bench_trajectory_path() -> Path | None:
    """Where the append-only ``repro bench`` trajectory lives.

    ``REPRO_BENCH_TRAJECTORY`` overrides; otherwise the repo root
    (detected by ``ROADMAP.md`` two levels above this file — an
    installed package has no repo to write into), else the CWD.
    """
    override = os.environ.get("REPRO_BENCH_TRAJECTORY", "").strip()
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[2]
    if (root / "ROADMAP.md").exists():
        return root / "BENCH_serving.json"
    return Path.cwd() / "BENCH_serving.json"


def _append_bench_record(result: dict) -> None:
    """Append one compact record of this ``repro bench`` run.

    The trajectory file is a JSON array of {date, commit, frames/s,
    p95, backend, fused} rows — plus a condensed ``multi`` sub-record
    (K-person staged vs fused serving) when that gauge ran — enough to
    plot serving throughput over the repo's history without dragging
    full benchmark payloads along.
    Best-effort: a read-only checkout or a missing git binary must
    never fail the benchmark itself.
    """
    from .kernels import backend_name
    from .kernels.tick import fusion_active

    try:
        commit = None
        try:
            import subprocess

            commit = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip() or None
        except Exception:
            pass
        record = {
            "date": time.strftime("%Y-%m-%d"),
            "commit": commit,
            "frames_per_s": result["sharded_fps"],
            "p95_latency_ms": result.get("p95_latency_ms"),
            "backend": backend_name(),
            "fused": fusion_active(),
        }
        multi = result.get("multi_serving")
        if multi is not None:
            record["multi"] = {
                "sessions": multi["sessions"],
                "people_per_session": multi["people_per_session"],
                "staged_fps": multi["staged_fps"],
                "fused_fps": multi["fused_fps"],
                "speedup": multi["speedup"],
                "identical": multi["identical"],
            }
        path = _bench_trajectory_path()
        if path is None:
            return
        history = []
        if path.exists():
            try:
                history = json.loads(path.read_text())
                if not isinstance(history, list):
                    history = []
            except (ValueError, OSError):
                history = []
        history.append(record)
        path.write_text(json.dumps(history, indent=2) + "\n")
        print(f"trajectory : appended to {path}")
    except OSError:
        pass


def _runner(args: argparse.Namespace) -> Runner:
    """The runner a subcommand fans its experiment plan across."""
    return default_runner(getattr(args, "workers", None))


def cmd_track(args: argparse.Namespace) -> int:
    """One tracking experiment; prints per-dimension accuracy."""
    outcome = run_tracking_experiment(
        TrackingExperiment(
            seed=args.seed,
            through_wall=args.through_wall,
            duration_s=args.duration,
        )
    )
    x, y, z = outcome.summaries()
    print(f"subject: {outcome.body.name}  "
          f"({'through-wall' if args.through_wall else 'line of sight'})")
    rows = [
        [dim, f"{100 * s.median:.1f} cm", f"{100 * s.p90:.1f} cm", s.count]
        for dim, s in zip("xyz", (x, y, z))
    ]
    print(format_table(["dim", "median", "p90", "frames"], rows))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Stream a scenario end to end: lazy synthesis -> realtime pipeline.

    Sweep blocks come from :meth:`Scenario.frames` (bounded memory, so
    ``--duration`` can be arbitrarily long) and go straight into the
    streaming :class:`RealtimeTracker`; per-frame latency is checked
    against the paper's Section 7 budget.
    """
    config = default_config()
    room = through_wall_room() if args.through_wall else line_of_sight_room()
    walk = random_walk(
        room, np.random.default_rng(args.seed), duration_s=args.duration
    )
    scenario = Scenario(walk, room=room, config=config, seed=args.seed + 1)
    tracker = RealtimeTracker(config, range_bin_m=scenario.range_bin_m)

    start = time.perf_counter()
    frames = fixes = 0
    for block in scenario.frames(chunk_frames=args.chunk):
        position = tracker.process_frame(block)
        frames += 1
        if np.all(np.isfinite(position)):
            fixes += 1
    wall_s = time.perf_counter() - start

    latency = tracker.latency
    track_s = sum(latency.latencies_s)
    print(f"frames     : {frames} "
          f"({args.duration:.0f} s scenario, streamed in {wall_s:.2f} s)")
    print(f"fixes      : {fixes} ({100.0 * fixes / max(frames, 1):.0f}%)")
    print(f"latency    : median {1e3 * latency.median_s:.2f} ms  "
          f"p95 {1e3 * latency.p95_s:.2f} ms  "
          f"max {1e3 * latency.max_s:.2f} ms")
    print(f"throughput : {frames / wall_s:.0f} frames/s end-to-end, "
          f"{frames / max(track_s, 1e-9):.0f} frames/s tracking-only")
    budget_ok = latency.within_budget(0.075)
    print(f"75 ms budget (paper Section 7): "
          f"{'MET' if budget_ok else 'EXCEEDED'}")
    return 0 if budget_ok else 1


def cmd_multi(args: argparse.Namespace) -> int:
    """One multi-person tracking experiment; prints per-person accuracy."""
    outcome = run_multi_tracking_experiment(
        num_people=args.people,
        seed=args.seed,
        duration_s=args.duration,
        through_wall=args.through_wall,
        min_separation_m=args.separation,
    )
    mot = outcome.mot
    rows = []
    for p, body in enumerate(outcome.bodies):
        try:
            s = outcome.person_error_summary(p)
            med, p90 = f"{100 * s.median:.1f} cm", f"{100 * s.p90:.1f} cm"
        except ValueError:
            med = p90 = "—"
        matched = int(np.sum(np.isfinite(mot.per_truth_errors[p])))
        rows.append(
            [body.name, med, p90, matched, mot.per_truth_switches[p]]
        )
    print(f"people: {args.people}  "
          f"({'through-wall' if args.through_wall else 'line of sight'})")
    print(format_table(
        ["person", "median", "p90", "matched", "id switches"], rows
    ))
    print(f"MOTA {mot.mota:.3f}  MOTP {100 * mot.motp_m:.1f} cm  "
          f"misses {mot.misses}  false positives {mot.false_positives}  "
          f"OSPA {100 * outcome.ospa_mean_m:.1f} cm")
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    """Fig. 8: per-dimension error CDF summaries."""
    data = figures.fig8_error_cdf(
        through_wall=args.through_wall,
        scale=_scale(args),
        runner=_runner(args),
    )
    rows = [
        [dim, f"{100 * s.median:.1f} cm", f"{100 * s.p90:.1f} cm"]
        for dim, s in zip(
            "xyz", (data.summary_x, data.summary_y, data.summary_z)
        )
    ]
    print(format_table(["dim", "median", "p90"], rows))
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    """Fig. 9: error vs distance."""
    data = figures.fig9_error_vs_distance(
        scale=_scale(args), runner=_runner(args)
    )
    rows = [
        [f"{d:.0f} m"]
        + [f"{data.median_cm[i, a]:.1f}" for a in range(3)]
        for i, d in enumerate(data.distances_m)
    ]
    print(format_table(["distance", "x med (cm)", "y med", "z med"], rows))
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    """Fig. 10: error vs antenna separation."""
    data = figures.fig10_error_vs_separation(
        scale=_scale(args), runner=_runner(args)
    )
    rows = [
        [f"{s:.2f} m"]
        + [f"{data.median_cm[i, a]:.1f}" for a in range(3)]
        for i, s in enumerate(data.separations_m)
    ]
    print(format_table(["separation", "x med (cm)", "y med", "z med"], rows))
    return 0


def cmd_fall_table(args: argparse.Namespace) -> int:
    """Section 9.5: fall-detection scores."""
    data = figures.fall_detection_table(
        scale=_scale(args), runner=_runner(args)
    )
    s = data.scores
    print(f"runs/activity: {data.per_activity_runs}")
    print(f"precision {100 * s.precision:.1f}%  "
          f"recall {100 * s.recall:.1f}%  F {100 * s.f_measure:.1f}%")
    return 0


def cmd_pointing(args: argparse.Namespace) -> int:
    """Fig. 11: pointing-direction errors."""
    plan = ExperimentPlan.from_grid(
        run_pointing_experiment,
        [{"seed": seed} for seed in range(args.trials)],
        name="pointing",
    )
    arr = np.asarray([o.error_deg for o in _runner(args).run(plan)])
    finite = arr[np.isfinite(arr)]
    print(f"detected : {len(finite)}/{len(arr)}")
    if finite.size:
        print(f"median   : {np.median(finite):.1f} deg")
        print(f"p90      : {np.percentile(finite, 90):.1f} deg")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Sharded-execution benchmark: one long stream fanned over workers.

    Synthesizes + tracks the same session twice through the same shard
    plan — serially and across ``--workers`` processes — verifies the
    merged results are identical, and reports frames/sec and speedup.
    """
    workers = max(args.workers, 1)
    if getattr(args, "profile", False):
        # Flip both switches: the module global covers this process,
        # the env var covers spawned shard workers.
        os.environ["REPRO_PROFILE"] = "1"
        enable_profiling()
    room = through_wall_room()
    walk = random_walk(
        room, np.random.default_rng(args.seed), duration_s=args.duration
    )
    scenario = Scenario(walk, room=room, seed=args.seed + 1)
    result = sharded_speedup_benchmark(
        scenario, workers=workers, num_shards=args.shards
    )
    result["duration_s"] = args.duration
    result["cache"] = cache_stats()

    print(f"session    : {args.duration:.0f} s "
          f"({scenario.num_stream_frames} frames), "
          f"{result['num_shards']} shards, {workers} workers")
    print(f"serial     : {result['serial_s']:7.2f} s  "
          f"({result['serial_fps']:6.0f} frames/s)")
    print(f"sharded    : {result['sharded_s']:7.2f} s  "
          f"({result['sharded_fps']:6.0f} frames/s)")
    print(f"speedup    : {result['speedup']:.2f}x")
    print(f"identical  : "
          f"{'yes' if result['identical'] else 'NO — determinism bug'}")
    if default_cache() is None:
        print("cache      : disabled "
              "(set REPRO_CACHE=1 or REPRO_CACHE_DIR to enable)")
    else:
        # Process-wide counters: the sharded stream synthesizes lazily
        # (never through the spectra cache), so these reflect whatever
        # cache-aware work ran in this process, not the shard workers.
        for kind, counts in result["cache"].items():
            print(f"cache      : {kind:<8} {counts['hits']} hits  "
                  f"{counts['misses']} misses  "
                  f"{counts['evictions']} evicted")
    if result.get("stage_profile"):
        profiler = StageProfiler()
        profiler.merge(result["stage_profile"])
        print("\nper-stage profile (serial leg):")
        print(profiler.table())

    # Multi-person serving row: a short K=2 cohort gauge (staged vs
    # fused on identical frames) so the trajectory record tracks the
    # K-person tick path alongside single-person throughput.
    from .serve.bench import multi_person_comparison

    multi = multi_person_comparison(
        [2] * 4, duration_s=min(args.duration, 4.0), seed=args.seed,
        repeats=1,
    )
    result["multi_serving"] = multi
    print(f"multi      : K=2 x {multi['sessions']} sessions  "
          f"staged {multi['staged_fps']:6.0f} frames/s  "
          f"fused {multi['fused_fps']:6.0f} frames/s  "
          f"({multi['speedup']:.2f}x, "
          f"identical {'yes' if multi['identical'] else 'NO'})")

    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    _append_bench_record(result)
    return 0 if result["identical"] and multi["identical"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve M concurrent synthetic sessions through one engine.

    Each session is an independent synthetic stream — single-person
    sessions synthesize lazily via :meth:`Scenario.frames`, and every
    ``--multi-every``-th session is a 2-person stream — all multiplexed
    through one :class:`~repro.serve.ServingEngine`. Sessions join with
    staggered starts (``--stagger`` frames apart) and leave when their
    stream ends, so admission, cohort batching, lockstep ticking, and
    slot eviction all run in one command. With ``--workers N`` the
    engine shards its cohorts across N long-lived worker processes —
    same results, more cores.
    """
    from .multi import MultiScenario
    from .serve import ServingEngine, multi_session, single_session
    from .sim.body import HumanBody
    from .sim.cohort import CohortFrameSource

    config = default_config()
    room = through_wall_room() if args.through_wall else line_of_sight_room()
    spf = config.pipeline.sweeps_per_frame

    streams: list[tuple[str, object]] = []
    single_slots: list[int] = []
    single_scenarios: list[Scenario] = []
    for i in range(args.sessions):
        rng = np.random.default_rng(args.seed + 17 * i)
        is_multi = args.multi_every > 0 and (i + 1) % args.multi_every == 0
        if is_multi:
            walks = non_colliding_walks(
                room, rng, count=2, duration_s=args.duration,
                min_separation_m=1.0,
            )
            people = [(HumanBody(name=f"s{i}p{j}"), w)
                      for j, w in enumerate(walks)]
            out = MultiScenario(
                people, room=room, config=config, seed=args.seed + 17 * i + 1
            ).run()
            blocks = iter(
                [out.spectra[:, f * spf : (f + 1) * spf, :]
                 for f in range(out.num_sweeps // spf)]
            )
            streams.append(("multi", blocks))
        else:
            walk = random_walk(room, rng, duration_s=args.duration)
            scenario = Scenario(
                walk, room=room, config=config, seed=args.seed + 17 * i + 1
            )
            single_slots.append(i)
            single_scenarios.append(scenario)
            streams.append(("single", None))  # filled from the cohort source
    if single_scenarios:
        # All single-person sessions synthesize through ONE fused
        # kernel call per chunk (the kernel-tier batch path) instead of
        # N independent frames() generators.
        source = CohortFrameSource(
            single_scenarios, chunk_frames=args.chunk
        )
        for i, stream in zip(single_slots, source.session_streams()):
            streams[i] = ("single", stream)

    from .rf.fmcw import range_axis

    range_bin_m = float(range_axis(config.fmcw).round_trip_per_bin_m)
    specs = {
        "single": single_session(config, range_bin_m),
        "multi": multi_session(config, range_bin_m, max_people=2, room=room),
    }

    def session_report(i: int, session, result) -> dict:
        latency = result.latency
        return {
            "session": i,
            "kind": streams[i][0],
            "frames": int(session.frames_in),
            "emitted": int(result.num_frames),
            "median_latency_ms": 1e3 * latency.median_s,
            "p95_latency_ms": 1e3 * latency.p95_s,
            "p99_latency_ms": 1e3 * latency.p99_s,
            "within_75ms": latency.within_budget(0.075),
        }

    workers = args.workers if args.workers is not None else 0
    live: dict[int, tuple[object, object]] = {}  # index -> (session, stream)
    reports = []
    interrupted = False
    start = time.perf_counter()
    # Context-managed so the shard WorkerPool is torn down on ANY exit —
    # a Ctrl-C mid-run must not leak N forked worker processes (or, under
    # the shm transport, their /dev/shm arenas).
    with ServingEngine(
        queue_capacity=args.queue, workers=workers, transport=args.transport
    ) as engine:
        try:
            step = 0
            while len(reports) < len(streams):
                # Staggered admission: session i joins at step i*stagger.
                for i, (kind, stream) in enumerate(streams):
                    if i not in live and i * args.stagger <= step and not any(
                        r["session"] == i for r in reports
                    ):
                        live[i] = (engine.admit(specs[kind]), stream)
                finished = []
                for i, (session, stream) in live.items():
                    block = next(stream, None)
                    if block is None:
                        finished.append(i)
                    else:
                        engine.submit(session, block)
                engine.tick()
                for i in finished:
                    session, _ = live.pop(i)
                    reports.append(session_report(i, session, engine.close(session)))
                step += 1
        except KeyboardInterrupt:
            # Graceful shutdown: close live sessions (draining their
            # queues) so the summary covers everything served so far.
            interrupted = True
            engine.resync()  # drop any shard response the ^C cut short
            try:
                for i in sorted(live):
                    session, _ = live.pop(i)
                    reports.append(
                        session_report(i, session, engine.close(session))
                    )
            except Exception:
                # Shard workers ignore SIGINT, but if the tier died
                # anyway (SIGKILL, crash) a partial summary still beats
                # a traceback.
                pass
        wall_s = time.perf_counter() - start
        shard_report = (
            engine.scheduler.shard_report() if engine.distributed else None
        )
        stage_profile = engine.stage_profile().as_dict() or None

    reports.sort(key=lambda r: r["session"])
    total_frames = sum(r["frames"] for r in reports)
    rows = [
        [r["session"], r["kind"], r["frames"],
         f"{r['median_latency_ms']:.2f} ms", f"{r['p95_latency_ms']:.2f} ms",
         f"{r['p99_latency_ms']:.2f} ms",
         "yes" if r["within_75ms"] else "NO"]
        for r in reports
    ]
    mode = (f"{engine.workers} shard workers, {engine.transport} transport"
            if engine.distributed else "in-process")
    if interrupted:
        print("interrupted — shard workers stopped, partial summary:")
    print(f"served {len(reports)} sessions "
          f"({total_frames} frames) in {wall_s:.2f} s "
          f"({total_frames / wall_s:.0f} frames/s aggregate, {mode})")
    print(format_table(
        ["session", "kind", "frames", "median", "p95", "p99", "<75ms"], rows
    ))
    if shard_report is not None:
        for entry in shard_report:
            overflow = (f"  overflows {entry['arena_overflows']}"
                        if entry["arena_overflows"] else "")
            print(f"shard {entry['shard']}: {entry['steps']} steps  "
                  f"tick p95 {entry['tick_p95_ms']:.2f} ms  "
                  f"p99 {entry['tick_p99_ms']:.2f} ms  "
                  f"ipc {entry['ipc_overhead_mean_ms']:.2f} ms  "
                  f"shm {entry['bytes_shm'] / 1e6:.1f} MB  "
                  f"pickled {entry['bytes_pickled'] / 1e6:.1f} MB  "
                  f"({entry['descriptor_rounds']} rounds){overflow}"
                  f"{'  EXCLUDED' if entry['excluded'] else ''}")
    if stage_profile is not None:
        profiler = StageProfiler()
        profiler.merge(stage_profile)
        print("\nper-stage profile:")
        print(profiler.table())
    all_within = all(r["within_75ms"] for r in reports)
    print(f"75 ms budget (paper Section 7): "
          f"{'MET by every session' if all_within else 'EXCEEDED'}")
    if args.output is not None:
        payload = {
            "sessions": len(reports),
            "workers": engine.workers,
            "transport": engine.transport,
            "duration_s": args.duration,
            "wall_s": wall_s,
            "aggregate_fps": total_frames / wall_s,
            "per_session": reports,
        }
        if shard_report is not None:
            payload["shards"] = shard_report
        if stage_profile is not None:
            payload["stage_profile"] = stage_profile
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    if interrupted:
        return 130
    return 0 if all_within else 1


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop load run: seeded arrivals -> harness -> SLO artifact.

    Where ``repro serve`` is closed-loop (the driver waits for the
    engine), this is the production-shaped regime: sessions arrive by a
    seeded arrival process, stream frames on their own clock, and leave;
    the engine serves under a per-step capacity, so offered load above
    capacity produces real queueing, drops, and — with a memory budget —
    admission rejections. Everything is accounted on a virtual clock,
    so the same seed yields a byte-identical SLO JSON.
    """
    from .loadgen import (
        LoadHarness,
        MemoryGovernor,
        SpecMemoryModel,
        arrival_process,
        build_workload,
    )
    from .rf.fmcw import range_axis
    from .serve import ServingEngine, multi_session, single_session

    config = default_config()
    range_bin_m = float(range_axis(config.fmcw).round_trip_per_bin_m)
    frame_dt_s = (
        config.pipeline.sweeps_per_frame * config.fmcw.sweep_duration_s
    )

    if args.process == "poisson":
        process = arrival_process("poisson", rate_hz=args.rate)
    elif args.process == "diurnal":
        process = arrival_process(
            "diurnal", base_rate_hz=args.rate, period_s=args.period
        )
    else:
        process = arrival_process(
            "flash",
            base_rate_hz=args.rate,
            flash_rate_hz=args.flash_rate,
            flash_start_s=args.flash_start,
            flash_duration_s=args.flash_duration,
        )
    mix = {"single": max(1.0 - args.multi_frac, 0.0)}
    if args.multi_frac > 0:
        mix["multi"] = args.multi_frac
    workload = build_workload(
        process,
        horizon_s=args.horizon,
        frame_dt_s=frame_dt_s,
        seed=args.seed,
        lifetime_mean_s=args.lifetime,
        mix=mix,
    )
    specs = {
        "single": single_session(config, range_bin_m),
        "multi": multi_session(config, range_bin_m, max_people=2),
    }

    workers = args.workers if args.workers is not None else 0
    model = admission = shard_budget = None
    if args.memory_budget_mb is not None:
        model = SpecMemoryModel(queue_capacity=args.queue)
        admission = MemoryGovernor(
            int(args.memory_budget_mb * 1e6), model=model
        )
    if args.shard_budget_mb is not None:
        model = model or SpecMemoryModel(queue_capacity=args.queue)
        shard_budget = int(args.shard_budget_mb * 1e6)
    capacity = args.capacity if args.capacity > 0 else None
    arena_bytes = None
    if workers and model is not None:
        # Size the shm arenas from the same calibrated model that
        # governs admission: worst-case step payload across the served
        # spec mix, before any worker exists.
        arena_bytes = max(
            model.arena_estimate(spec, shard_budget)
            for spec in specs.values()
        )

    start = time.perf_counter()
    with ServingEngine(
        queue_capacity=args.queue,
        workers=workers,
        admission=admission,
        memory_model=model,
        shard_budget_bytes=shard_budget,
        transport=args.transport,
        arena_bytes=arena_bytes,
    ) as engine:
        harness = LoadHarness(
            engine,
            workload,
            specs,
            capacity_frames_per_step=capacity,
            budget_s=args.budget_ms / 1e3,
        )
        report = harness.run()
    wall_s = time.perf_counter() - start

    s, f, t = report["sessions"], report["frames"], report["throughput"]
    lat = report["latency"]
    print(f"workload   : {workload.describe()}")
    print(f"sessions   : {s['arrived']} arrived, {s['admitted']} admitted, "
          f"{s['rejected']} rejected "
          f"({100 * s['rejection_rate']:.1f}%), {s['completed']} completed")
    print(f"frames     : {f['offered']} offered, {f['consumed']} consumed, "
          f"{f['dropped']} dropped ({100 * f['drop_rate']:.1f}%)")
    print(f"latency    : p50 {lat['p50_ms']:.1f} ms  "
          f"p95 {lat['p95_ms']:.1f} ms  p99 {lat['p99_ms']:.1f} ms  "
          f"(virtual, {report['step_dt_ms']:.1f} ms steps)")
    print(f"goodput    : {t['goodput_fps']:.1f} frames/s within the "
          f"{report['budget_ms']:.0f} ms budget "
          f"vs {t['offered_fps']:.1f} offered "
          f"({100 * report['within_budget_fraction']:.1f}% "
          f"of consumed frames in budget)")
    memory = report["context"].get("memory")
    if memory is not None:
        print(f"memory     : peak {memory['peak_committed_bytes'] / 1e6:.1f} "
              f"/ {memory['budget_bytes'] / 1e6:.0f} MB committed, "
              f"{memory['rejections']} budget rejections")
    transport_stats = report["context"].get("transport")
    if transport_stats is not None:
        print(f"transport  : {transport_stats['transport']}, "
              f"{transport_stats['bytes_shm'] / 1e6:.1f} MB shm / "
              f"{transport_stats['bytes_pickled'] / 1e6:.1f} MB pickled "
              f"({transport_stats['descriptor_rounds']} rounds, "
              f"{transport_stats['arena_overflows']} overflows)")
    print(f"wall clock : {wall_s:.2f} s "
          f"({report['steps']} virtual steps, "
          f"{'in-process' if not workers else f'{workers} shard workers'})")
    if args.output is not None:
        args.output.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiTrack reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def workers_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool size for the experiment plan "
                            "(default: REPRO_WORKERS, else serial)")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--experiments", type=int, default=4,
                       help="experiments per configuration point")
        p.add_argument("--duration", type=float, default=12.0,
                       help="seconds per experiment")
        workers_flag(p)

    p = sub.add_parser("track", help="one tracking experiment")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=15.0)
    p.add_argument("--line-of-sight", dest="through_wall",
                   action="store_false", default=True)
    p.set_defaults(func=cmd_track)

    p = sub.add_parser(
        "stream", help="stream a scenario through the realtime pipeline"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=30.0,
                   help="seconds to synthesize and stream (memory-bounded)")
    p.add_argument("--chunk", type=int, default=256,
                   help="frames synthesized per chunk")
    p.add_argument("--line-of-sight", dest="through_wall",
                   action="store_false", default=True)
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser("multi", help="multi-person tracking experiment")
    p.add_argument("--people", type=int, default=2,
                   help="number of concurrent walkers (K)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--separation", type=float, default=1.0,
                   help="guaranteed minimum inter-person distance (m)")
    p.add_argument("--line-of-sight", dest="through_wall",
                   action="store_false", default=True)
    p.set_defaults(func=cmd_multi)

    p = sub.add_parser("fig8", help="error CDFs (Fig. 8)")
    common(p)
    p.add_argument("--line-of-sight", dest="through_wall",
                   action="store_false", default=True)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser("fig9", help="error vs distance (Fig. 9)")
    common(p)
    p.set_defaults(func=cmd_fig9)

    p = sub.add_parser("fig10", help="error vs separation (Fig. 10)")
    common(p)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fall-table", help="fall detection (Section 9.5)")
    common(p)
    p.set_defaults(func=cmd_fall_table)

    p = sub.add_parser("pointing", help="pointing errors (Fig. 11)")
    p.add_argument("--trials", type=int, default=6)
    workers_flag(p)
    p.set_defaults(func=cmd_pointing)

    p = sub.add_parser(
        "serve",
        help="multiplex M concurrent synthetic sessions through one engine",
    )
    p.add_argument("--synthetic", action="store_true", default=True,
                   help="drive synthetic Scenario streams (the only "
                        "source available; accepted for explicitness)")
    p.add_argument("--sessions", type=int, default=8,
                   help="concurrent sessions to serve")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds of scenario per session")
    p.add_argument("--multi-every", type=int, default=4,
                   help="every Nth session is a 2-person stream "
                        "(0 disables; exercises heterogeneous cohorts)")
    p.add_argument("--stagger", type=int, default=16,
                   help="frames between successive session admissions")
    p.add_argument("--queue", type=int, default=8,
                   help="per-session input queue bound (backpressure)")
    p.add_argument("--workers", type=int, default=None,
                   help="shard worker processes for the serving tier "
                        "(default: in-process; N>=1 distributes cohorts "
                        "across N long-lived workers)")
    p.add_argument("--transport", choices=["pipe", "shm"], default=None,
                   help="shard IPC data plane (default: REPRO_TRANSPORT "
                        "or pipe; shm moves bulk arrays through "
                        "shared-memory arenas)")
    p.add_argument("--chunk", type=int, default=128,
                   help="frames synthesized per chunk (single-person)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--line-of-sight", dest="through_wall",
                   action="store_false", default=True)
    p.add_argument("--output", type=Path, default=None,
                   help="write the JSON serving report here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "load",
        help="open-loop traffic load run with SLO accounting",
    )
    p.add_argument("--process", choices=["poisson", "diurnal", "flash"],
                   default="poisson",
                   help="session arrival process shape")
    p.add_argument("--rate", type=float, default=2.0,
                   help="baseline session arrivals per second")
    p.add_argument("--period", type=float, default=20.0,
                   help="diurnal cycle length in seconds")
    p.add_argument("--flash-rate", type=float, default=16.0,
                   help="flash-crowd plateau arrivals per second")
    p.add_argument("--flash-start", type=float, default=2.0,
                   help="seconds until the flash crowd's up-ramp")
    p.add_argument("--flash-duration", type=float, default=2.0,
                   help="flash plateau length in seconds")
    p.add_argument("--horizon", type=float, default=8.0,
                   help="arrival-generation window in seconds")
    p.add_argument("--lifetime", type=float, default=2.0,
                   help="mean session lifetime in seconds (lognormal)")
    p.add_argument("--multi-frac", type=float, default=0.2,
                   help="fraction of sessions that are 2-person streams")
    p.add_argument("--capacity", type=int, default=12,
                   help="frames the engine may serve per 12.5 ms step "
                        "(the overload knob; 0 = unbounded)")
    p.add_argument("--queue", type=int, default=16,
                   help="per-session input queue bound (backpressure)")
    p.add_argument("--budget-ms", type=float, default=75.0,
                   help="latency SLO in milliseconds (paper Section 7)")
    p.add_argument("--memory-budget-mb", type=float, default=None,
                   help="arm memory-governed admission with this total "
                        "budget (default: no admission gate)")
    p.add_argument("--shard-budget-mb", type=float, default=None,
                   help="per-shard predicted-memory cap (workers >= 1)")
    p.add_argument("--workers", type=int, default=None,
                   help="shard worker processes (default: in-process)")
    p.add_argument("--transport", choices=["pipe", "shm"], default=None,
                   help="shard IPC data plane (default: REPRO_TRANSPORT "
                        "or pipe); arenas are sized by the memory model "
                        "when --memory-budget-mb/--shard-budget-mb arm it")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=Path, default=None,
                   help="write the SLO JSON artifact here")
    p.set_defaults(func=cmd_load)

    p = sub.add_parser(
        "bench",
        help="sharded-execution benchmark (serial vs process pool)",
    )
    p.add_argument("--workers", type=int, default=2,
                   help="process-pool size for the sharded run")
    p.add_argument("--shards", type=int, default=None,
                   help="shard count (default: one per worker); "
                        "must be >= 1")
    p.add_argument("--duration", type=float, default=30.0,
                   help="seconds of scenario to synthesize and track")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", action="store_true",
                   help="time each pipeline stage (adds a per-stage "
                        "table and a stage_profile JSON field)")
    p.add_argument("--output", type=Path, default=None,
                   help="write the JSON result here")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
