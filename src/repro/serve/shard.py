"""The distributed serving tier: shard cohorts across worker processes.

PR 4's lockstep tick made one process serve N sessions; this module
makes N *processes* serve N·M. The division of labor:

* :class:`ShardWorker` — the actor living inside each
  :class:`~repro.exec.pool.WorkerPool` worker process. It owns whole
  cohorts (shared vectorized pipelines plus slot bookkeeping) and
  advances them with the same :meth:`Pipeline.tick
  <repro.pipeline.Pipeline.tick>` the single-process engine uses, so a
  shard's outputs are bitwise the single-process outputs for the same
  frames — tick rows are independent sessions, and partitioning rows
  across processes changes nothing.
* :class:`DistributedScheduler` — the front-end mirror of
  :class:`~repro.serve.scheduler.Scheduler`. It places **whole
  cohorts** onto shards (least-loaded placement, Kadabra-style: where
  work lands adapts to observed load), keeps every session's bounded
  queue and accumulated results in the parent, and per tick sends each
  shard one batched ``step`` — all shards are submitted before any
  response is awaited, so shard compute overlaps.

Failure is survivable by construction: the parent owns the queues, so
when a shard dies mid-step (crash or a raised exception), its in-flight
frames are requeued at the head of their sessions' queues, the shard is
excluded (the ``excluded``-style bookkeeping the exec layer uses for
bad runners), and its cohorts are re-placed onto survivors. The
re-placed sessions restart their pipeline state at a reset boundary —
exactly the semantics of the sharded stream runner — so each failed-over
session re-primes background subtraction on its next frame and loses
one output frame, deterministically, while every other session is
untouched.

Adaptive re-batching crosses processes here: a straggling session's
state is pulled out of its shard via :meth:`Pipeline.snapshot_session`
(picklable by design), restored bit-exactly into a fresh singleton
cohort on the least-loaded shard, and drained at ``catchup_burst``
frames per tick.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..exec.pool import WorkerCrash, WorkerPool, remote_failure
from ..kernels.profile import StageProfiler
from ..pipeline.runner import PipelineResult
from .scheduler import Cohort, StragglerDetector
from .session import (
    AdmissionRefused,
    Session,
    SessionSpec,
    group_row_fields,
    tick_group,
)


class ShardWorker:
    """Cohort pipelines hosted inside one long-lived worker process.

    Instantiated by the worker pool *inside* the worker (actor
    factory); every method is an IPC entry point with picklable
    arguments and returns. Reuses :class:`~repro.serve.scheduler.Cohort`
    for pipeline construction and slot recycling, so shard-side slot
    lifecycle is the single-process lifecycle.
    """

    def __init__(self) -> None:
        self.cohorts: dict[str, Cohort] = {}
        self._placement: dict[int, tuple[str, int]] = {}  # sid -> (key, slot)
        self.steps = 0
        self.frames_processed = 0
        self._fail_in: int | None = None
        self._retired_profile = StageProfiler()

    # -- session lifecycle -------------------------------------------------

    def _cohort(self, key: str, spec: SessionSpec) -> Cohort:
        cohort = self.cohorts.get(key)
        if cohort is None:
            cohort = Cohort(key, spec)
            self.cohorts[key] = cohort
        return cohort

    def admit(
        self, session_id: int, key: str, spec: SessionSpec, start_frame: int = 0
    ) -> int:
        """Open a fresh state slot for a session; returns the slot.

        Args:
            session_id: engine-wide session identity.
            key: placement key of the session's cohort.
            spec: pipeline structure (builds the cohort on first use).
            start_frame: index of the session's next input frame — 0
                for a new session; a failover re-admission passes the
                frames already consumed so the fresh state starts *on
                the session clock*, exactly like
                :meth:`Pipeline.reset(start_frame)
                <repro.pipeline.Pipeline.reset>` at a shard boundary.
        """
        if session_id in self._placement:
            raise RuntimeError(f"session {session_id} already on this shard")
        cohort = self._cohort(key, spec)
        slot = cohort.allocate_slot()
        if start_frame:
            pipeline = cohort.pipeline
            pipeline.restore_session(
                slot,
                {
                    "frames_in": start_frame,
                    "stages": [{} for _ in pipeline.stages],
                },
            )
        cohort.sessions[session_id] = session_id  # membership marker
        self._placement[session_id] = (key, slot)
        return slot

    def restore(
        self, session_id: int, key: str, spec: SessionSpec, state: dict
    ) -> int:
        """Admit a session and install a migrated pipeline snapshot."""
        slot = self.admit(session_id, key, spec)
        self.cohorts[key].pipeline.restore_session(slot, state)
        return slot

    def snapshot(self, session_id: int) -> dict:
        """Hand off one session's pipeline state (for migration)."""
        key, slot = self._placement[session_id]
        return self.cohorts[key].pipeline.snapshot_session(slot)

    def evict(self, session_id: int) -> None:
        """Forget a session's state slot; drop its cohort when empty."""
        key, slot = self._placement.pop(session_id)
        cohort = self.cohorts[key]
        del cohort.sessions[session_id]
        cohort.release_slot(slot)
        if not cohort.sessions:
            if cohort.pipeline.profiler is not None:
                self._retired_profile.merge(cohort.pipeline.profiler)
            del self.cohorts[key]

    @property
    def num_sessions(self) -> int:
        """Sessions currently placed on this shard."""
        return len(self._placement)

    # -- the unit of work --------------------------------------------------

    def step(
        self, batch: list[tuple[int, list[np.ndarray]]]
    ) -> tuple[list[dict], float]:
        """Advance this shard one scheduler tick.

        Args:
            batch: ``(session_id, [sweep_block, ...])`` pairs — usually
                one block each; split cohorts catching up send several.

        Returns:
            ``(groups, tick_s)``: one output group per (cohort, burst
            round) pipeline tick — the tick's emitted rows as column
            slabs with a parallel session-id routing vector (see
            :func:`~repro.serve.session.tick_group`; a tick may emit
            fewer rows than it was fed when frames only primed) — and
            the wall-clock seconds spent ticking pipelines, which the
            parent subtracts from the round-trip time to measure IPC
            overhead. Groups arrive in per-cohort round order, so each
            session's rows are in its frame order; the parent expands
            them row by row with
            :func:`~repro.serve.session.group_row_fields`, value-
            identical to the per-row dicts this method used to ship.
        """
        if self._fail_in is not None:
            self._fail_in -= 1
            if self._fail_in <= 0:
                self._fail_in = None
                raise RuntimeError("injected shard failure (fail_next_step)")
        start = perf_counter()
        groups: list[dict] = []
        by_cohort: dict[str, list[tuple[int, int, list[np.ndarray]]]] = {}
        for sid, blocks in batch:
            key, slot = self._placement[sid]
            by_cohort.setdefault(key, []).append((sid, slot, blocks))
        for key, members in by_cohort.items():
            pipeline = self.cohorts[key].pipeline
            rounds = max(len(blocks) for _, _, blocks in members)
            for r in range(rounds):
                active = [m for m in members if r < len(m[2])]
                slots = np.fromiter(
                    (slot for _, slot, _ in active),
                    dtype=np.intp,
                    count=len(active),
                )
                tick = pipeline.tick(
                    [blocks[r] for _, _, blocks in active], slots
                )
                if tick.num_rows:
                    sid_of_slot = {slot: sid for sid, slot, _ in active}
                    session_ids = np.fromiter(
                        (sid_of_slot[int(slot)] for slot in tick.slots),
                        dtype=np.int64,
                        count=tick.num_rows,
                    )
                    groups.append(tick_group(tick, session_ids))
                self.frames_processed += len(active)
        self.steps += 1
        return groups, perf_counter() - start

    # -- introspection / fault injection -----------------------------------

    def stats(self) -> dict:
        """Shard-side counters (steps, frames, cohorts, sessions)."""
        return {
            "steps": self.steps,
            "frames_processed": self.frames_processed,
            "cohorts": len(self.cohorts),
            "sessions": self.num_sessions,
        }

    def stage_profile(self) -> dict:
        """This shard's merged per-stage counters (picklable dict)."""
        merged = StageProfiler()
        merged.merge(self._retired_profile)
        for cohort in self.cohorts.values():
            if cohort.pipeline.profiler is not None:
                merged.merge(cohort.pipeline.profiler)
        return merged.as_dict()

    def fail_next_step(self, after: int = 1) -> None:
        """Arm fault injection: the ``after``-th next step raises.

        Test seam for the failover path — a shard that raises mid-tick
        must be excluded and its sessions requeued, not kill the engine.
        """
        self._fail_in = max(int(after), 1)


class PlacedCohort:
    """Front-end bookkeeping for one cohort living on a shard.

    The parent-side mirror of the shard's :class:`Cohort`: no pipeline,
    just membership, placement, and the catch-up burst budget. Unlike
    the single-process engine — where a spec has exactly one cohort —
    the distributed tier may run **one cohort per (spec, shard)**: the
    cohort is the placement unit (it always lives whole on one shard),
    and homogeneous traffic spreads across shards by founding sibling
    cohorts of the same spec. Partitioning sessions into more cohorts
    never changes outputs (tick rows are independent); it only changes
    where they are computed.

    Args:
        key: unique placement key (``<spec key>#<seq>`` in the
            distributed tier).
        spec_key: the spec's content key — shared by sibling cohorts.
        spec: the shared pipeline structure.
        shard: worker index currently hosting the cohort.
        burst: frames per session per tick the scheduler may drain.
    """

    def __init__(
        self,
        key: str,
        spec_key: str,
        spec: SessionSpec,
        shard: int,
        burst: int = 1,
    ) -> None:
        self.key = key
        self.spec_key = spec_key
        self.spec = spec
        self.shard = shard
        self.burst = burst
        #: True for cohorts born from an adaptive split (rejoin candidates).
        self.split = False
        self.sessions: dict[int, Session] = {}

    @property
    def num_sessions(self) -> int:
        """Live sessions in this cohort."""
        return len(self.sessions)


class ShardStats:
    """Per-shard timing and IPC ledger kept by the front end.

    Attributes:
        tick_s: worker-reported pipeline-tick seconds per step.
        round_trip_s: submit-to-response wall seconds per step.
        bytes_pickled: array bytes that crossed this shard's pipe
            inline (both directions, cumulative).
        bytes_shm: array bytes that crossed through the shm arena.
        descriptor_rounds: IPC messages exchanged with the shard.
        arena_overflows: arrays that fell back to the pipe because the
            arena region was full.
    """

    def __init__(self) -> None:
        self.tick_s: list[float] = []
        self.round_trip_s: list[float] = []
        self.bytes_pickled = 0
        self.bytes_shm = 0
        self.descriptor_rounds = 0
        self.arena_overflows = 0

    def record_transport(self, stats: dict) -> None:
        """Refresh the cumulative IPC counters from the pool's ledger."""
        self.bytes_pickled = int(stats.get("bytes_pickled", 0))
        self.bytes_shm = int(stats.get("bytes_shm", 0))
        self.descriptor_rounds = int(stats.get("descriptor_rounds", 0))
        self.arena_overflows = int(stats.get("arena_overflows", 0))

    def summary(self) -> dict:
        """p50/p95/p99 tick time plus mean IPC overhead, in milliseconds."""
        transport = {
            "bytes_pickled": self.bytes_pickled,
            "bytes_shm": self.bytes_shm,
            "descriptor_rounds": self.descriptor_rounds,
            "arena_overflows": self.arena_overflows,
        }
        if not self.tick_s:
            return {
                "steps": 0,
                "tick_p50_ms": float("nan"),
                "tick_p95_ms": float("nan"),
                "tick_p99_ms": float("nan"),
                "ipc_overhead_mean_ms": float("nan"),
                **transport,
            }
        ticks = np.asarray(self.tick_s)
        overhead = np.asarray(self.round_trip_s) - ticks
        return {
            "steps": len(self.tick_s),
            "tick_p50_ms": 1e3 * float(np.median(ticks)),
            "tick_p95_ms": 1e3 * float(np.percentile(ticks, 95)),
            "tick_p99_ms": 1e3 * float(np.percentile(ticks, 99)),
            "ipc_overhead_mean_ms": 1e3 * float(np.mean(overhead)),
            **transport,
        }


class DistributedScheduler:
    """Place cohorts on shard workers; batch, route, merge, survive.

    The distributed mirror of the local pair (:class:`SessionManager` +
    :class:`Scheduler`): one object serves both roles because placement
    *is* admission here. Sessions keep their bounded queues and
    accumulated results in the parent; shards hold only pipeline state.

    Args:
        pool: worker pool whose actors are :class:`ShardWorker`\\ s.
        queue_capacity: per-session input queue bound (backpressure).
        adaptive_split: enable straggler re-batching across shards.
        split_backlog: queue-depth lag that marks a straggler.
        split_patience: consecutive lagging ticks before splitting.
        catchup_burst: frames per tick a split cohort may drain.
        rejoin_patience: consecutive caught-up observations before a
            split session migrates back into a sibling cohort.
        memory_model: optional per-session memory estimator
            (``estimate(spec) -> bytes``). When present, placement
            weighs shards by *predicted committed bytes* instead of raw
            session counts — the predict-before-you-allocate placement
            of the memory-governed serving tier — so one heavy
            multi-person cohort does not count the same as one
            single-person session.
        shard_budget_bytes: per-shard cap on predicted bytes. With a
            ``memory_model``, an admission that fits no live shard
            raises :class:`~repro.serve.session.AdmissionRefused`
            (failover ignores the cap: keeping sessions alive on
            survivors beats refusing them mid-stream).
    """

    def __init__(
        self,
        pool: WorkerPool,
        queue_capacity: int = 64,
        adaptive_split: bool = True,
        split_backlog: int = 8,
        split_patience: int = 4,
        catchup_burst: int = 4,
        rejoin_patience: int = 4,
        memory_model=None,
        shard_budget_bytes: int | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if catchup_burst < 1 or rejoin_patience < 1:
            raise ValueError("catchup_burst and rejoin_patience must be >= 1")
        if shard_budget_bytes is not None and shard_budget_bytes <= 0:
            raise ValueError("shard_budget_bytes must be positive")
        self.pool = pool
        self.queue_capacity = queue_capacity
        self.memory_model = memory_model
        self.shard_budget_bytes = shard_budget_bytes
        self.adaptive_split = adaptive_split
        self.catchup_burst = catchup_burst
        self.rejoin_patience = rejoin_patience
        self.detector = StragglerDetector(split_backlog, split_patience)
        self._caught_up: dict[int, int] = {}
        self.cohorts: dict[str, PlacedCohort] = {}
        self.sessions: dict[int, Session] = {}
        self.excluded_shards: set[int] = set()
        self.shard_stats: dict[int, ShardStats] = {
            w: ShardStats() for w in range(pool.num_workers)
        }
        self.ticks = 0
        self.frames_processed = 0
        self.splits = 0
        self.rejoins = 0
        #: Most recent shard failure (surfaced when the tier goes down).
        self.last_failure: BaseException | None = None
        self.failovers = 0
        self._next_id = 1
        self._split_seq = 0

    # -- placement ---------------------------------------------------------

    @property
    def num_sessions(self) -> int:
        """Live sessions across every cohort."""
        return len(self.sessions)

    @property
    def num_shards(self) -> int:
        """Shards still serving (live and not excluded)."""
        return len(self._live_shards())

    def _live_shards(self) -> list[int]:
        return [
            w for w in self.pool.live_workers() if w not in self.excluded_shards
        ]

    def _session_cost(self, spec: SessionSpec) -> int:
        """Placement weight of one session (predicted bytes, or 1)."""
        if self.memory_model is None:
            return 1
        return int(self.memory_model.estimate(spec))

    def _shard_load(self) -> dict[int, int]:
        """Per-live-shard load: session counts, or predicted bytes when
        a memory model is installed."""
        load = {w: 0 for w in self._live_shards()}
        for cohort in self.cohorts.values():
            if cohort.shard in load:
                load[cohort.shard] += (
                    cohort.num_sessions * self._session_cost(cohort.spec)
                )
        return load

    def _least_loaded(self) -> int:
        load = self._shard_load()
        if not load:
            # Chain the last remote failure: when a poison input (e.g. a
            # malformed frame that deterministically raises) has burned
            # through every shard, the root cause must surface here, not
            # vanish into the failover bookkeeping.
            raise RuntimeError(
                "no live shard workers remain; the serving tier is down"
            ) from self.last_failure
        return min(load, key=lambda w: (load[w], w))

    def _exclude_shard(
        self,
        shard: int,
        in_flight: list[tuple[Session, list[tuple[np.ndarray, float]]]],
    ) -> None:
        """Mark a failed shard excluded and requeue its in-flight frames.

        In-flight frames go back to the *head* of their sessions'
        queues (oldest first, enqueue timestamps preserved), so no
        frame is lost and ordering holds. :meth:`_failover` re-places
        the dead shard's cohorts — kept separate so multiple failures
        in one tick are all excluded before any placement decision, and
        so re-admission never races a step still in flight elsewhere.
        """
        self.excluded_shards.add(shard)
        try:
            self.pool.kill(shard)
        except Exception:  # pragma: no cover - already dead
            pass
        self.failovers += 1
        for session, entries in in_flight:
            session.queue.extendleft(reversed(entries))

    def _failover(self) -> None:
        """Re-place every cohort stranded on an excluded shard.

        Re-placed sessions restart their pipeline state at a reset
        boundary on the new shard (the state died with the worker):
        their next frame re-primes background subtraction, exactly like
        a shard boundary in the sharded stream runner. Runs to a fixed
        point: a target shard dying *during* re-placement is excluded
        in turn and its strandees (including any just moved there) are
        re-placed again, until every cohort sits on a live shard — or
        none remain and the tier is declared down.
        """
        while True:
            cohort = next(
                (
                    c
                    for c in self.cohorts.values()
                    if c.shard in self.excluded_shards
                ),
                None,
            )
            if cohort is None:
                return
            target = self._least_loaded()
            try:
                for sid, session in cohort.sessions.items():
                    consumed = session.frames_in - len(session.queue)
                    self.pool.invoke(
                        target, "admit", sid, cohort.key, cohort.spec, consumed
                    )
            except Exception as exc:
                if not remote_failure(exc):
                    raise
                self.last_failure = exc
                self._exclude_shard(target, [])
                continue
            cohort.shard = target

    def _fail_shard(
        self,
        shard: int,
        in_flight: list[tuple[Session, list[tuple[np.ndarray, float]]]],
    ) -> None:
        """Exclude + fail over in one call (no other requests in flight)."""
        self._exclude_shard(shard, in_flight)
        self._failover()

    # -- admission / retirement --------------------------------------------

    def admit(self, spec: SessionSpec) -> Session:
        """Open a session on the least-loaded shard.

        The session joins the same-spec cohort already living on that
        shard when there is one, and founds a sibling cohort there
        otherwise — so homogeneous traffic spreads across every shard
        while each shard still batches its same-spec sessions into one
        vectorized pipeline tick.

        With a memory model and shard budget installed, an admission
        whose predicted footprint overflows even the least-loaded shard
        raises :class:`~repro.serve.session.AdmissionRefused` — the
        session is refused *before* any state allocates anywhere.
        """
        spec_key = spec.cohort_key()
        target = self._least_loaded()
        if self.memory_model is not None and self.shard_budget_bytes is not None:
            projected = (
                self._shard_load()[target] + self._session_cost(spec)
            )
            if projected > self.shard_budget_bytes:
                raise AdmissionRefused(
                    f"predicted shard memory {projected} B exceeds the "
                    f"{self.shard_budget_bytes} B budget on every live shard"
                )
        cohort = next(
            (
                c
                for c in self.cohorts.values()
                # Never admit into a split cohort: it is mid-catch-up,
                # and a second member would stop it from ever rejoining.
                if c.spec_key == spec_key and c.shard == target and not c.split
            ),
            None,
        )
        if cohort is None:
            key = f"{spec_key}#{self._split_seq}"
            self._split_seq += 1
            cohort = PlacedCohort(key, spec_key, spec, target)
            self.cohorts[key] = cohort
        session = Session(self._next_id, spec, -1, self.queue_capacity)
        self._next_id += 1
        try:
            session.slot = self.pool.invoke(
                cohort.shard, "admit", session.session_id, cohort.key, spec
            )
        except Exception as exc:
            if not remote_failure(exc):
                raise
            self.last_failure = exc
            self._fail_shard(cohort.shard, [])
            session.slot = self.pool.invoke(
                cohort.shard, "admit", session.session_id, cohort.key, spec
            )
        session.cohort = cohort
        cohort.sessions[session.session_id] = session
        self.sessions[session.session_id] = session
        return session

    def retire(self, session: Session) -> PipelineResult:
        """Close a session; frees its shard slot and returns its result."""
        if session.closed:
            raise RuntimeError(f"session {session.session_id} already closed")
        cohort: PlacedCohort = session.cohort
        result = session.result()
        session.closed = True
        session.queue.clear()
        self.detector.forget(session)
        del cohort.sessions[session.session_id]
        del self.sessions[session.session_id]
        try:
            self.pool.invoke(cohort.shard, "evict", session.session_id)
        except Exception as exc:
            if not remote_failure(exc):
                raise
            self.last_failure = exc
            self._fail_shard(cohort.shard, [])
        if not cohort.sessions:
            del self.cohorts[cohort.key]
        return result

    # -- the scheduling loop -----------------------------------------------

    def tick(self) -> int:
        """One distributed pass: batch per shard, overlap, route, merge.

        Pops up to ``burst`` queued frames per ready session, submits
        every involved shard its batch *before* awaiting any response
        (shard compute overlaps), then routes each shard's output rows
        and latency samples back as responses arrive. A shard that
        fails mid-step is excluded and failed over without dropping a
        frame.

        Returns:
            Number of frames consumed (0 means every queue was empty).
        """
        batches: dict[
            int, list[tuple[Session, list[tuple[np.ndarray, float]]]]
        ] = {}
        for cohort in list(self.cohorts.values()):
            for session in cohort.sessions.values():
                take = min(len(session.queue), cohort.burst)
                if take:
                    entries = [session.queue.popleft() for _ in range(take)]
                    batches.setdefault(cohort.shard, []).append(
                        (session, entries)
                    )
        consumed = 0
        submitted: dict[int, float] = {}
        failed: list[int] = []
        for shard, batch in batches.items():
            payload = [
                (session.session_id, [block for block, _ in entries])
                for session, entries in batch
            ]
            try:
                self.pool.submit(shard, "invoke", "step", (payload,))
            except WorkerCrash as exc:
                self.last_failure = exc
                failed.append(shard)
                continue
            submitted[shard] = perf_counter()
        pending = set(submitted)
        while pending:
            # Drain every ready response (timestamping each arrival)
            # before routing any rows, so one shard's parent-side row
            # routing cannot inflate a sibling's measured IPC overhead.
            arrivals = []
            for shard in self.pool.ready():
                if shard not in pending:
                    continue  # pragma: no cover - foreign response
                pending.discard(shard)
                try:
                    groups, tick_s = self.pool.result(shard)
                except Exception as exc:
                    if not remote_failure(exc):
                        raise
                    self.last_failure = exc
                    failed.append(shard)
                    continue
                arrivals.append((shard, groups, tick_s, perf_counter()))
            for shard, groups, tick_s, done in arrivals:
                stats = self.shard_stats[shard]
                stats.tick_s.append(tick_s)
                stats.round_trip_s.append(done - submitted[shard])
                stats.record_transport(self.pool.transport_stats(shard))
                for session, entries in batches[shard]:
                    for _, enqueued in entries:
                        session.latency.latencies_s.append(done - enqueued)
                    consumed += len(entries)
                for group in groups:
                    session_ids = group["session_ids"]
                    for row in range(len(session_ids)):
                        self.sessions[int(session_ids[row])].collect_fields(
                            group_row_fields(group, row)
                        )
        if failed:
            # Every response is in (or lost); only now is it safe to
            # exclude the casualties and re-admit their sessions on
            # survivors — no step is in flight anywhere.
            for shard in failed:
                self._exclude_shard(shard, batches[shard])
            self._failover()
        if consumed:
            self.ticks += 1
            self.frames_processed += consumed
        if self.adaptive_split:
            self._rebatch()
        return consumed

    def drain(self) -> int:
        """Tick until every session queue is empty; frames consumed."""
        total = 0
        while True:
            consumed = self.tick()
            if consumed == 0:
                return total
            total += consumed

    # -- adaptive re-batching ----------------------------------------------

    def _rebatch(self) -> None:
        """Split persistent stragglers; rejoin the ones that caught up."""
        self.detector.prune(self.sessions)
        for session in self.detector.sweep(self.cohorts.values()):
            self._split(session)
        self._caught_up = {
            sid: count
            for sid, count in self._caught_up.items()
            if sid in self.sessions
        }
        for cohort in list(self.cohorts.values()):
            if not cohort.split or cohort.num_sessions != 1:
                continue
            (session,) = cohort.sessions.values()
            if session.queue:
                self._caught_up.pop(session.session_id, None)
                continue
            count = self._caught_up.get(session.session_id, 0) + 1
            if count < self.rejoin_patience:
                self._caught_up[session.session_id] = count
                continue
            self._caught_up.pop(session.session_id, None)
            self._rejoin(session)

    def _split(self, session: Session) -> None:
        """Migrate one straggler into a singleton cohort, bit-exactly.

        The session's pipeline state crosses processes as a
        :meth:`Pipeline.snapshot_session` hand-off; the new cohort gets
        the catch-up burst budget and lands on the least-loaded shard.
        A shard failure during migration falls back to the ordinary
        failover path (fresh state), never an inconsistent one — the
        session is registered in its new cohort *before* the restore,
        so failover finds it even when the restore target dies.
        """
        cohort: PlacedCohort = session.cohort
        if cohort.num_sessions <= 1:
            cohort.burst = max(cohort.burst, self.catchup_burst)
            cohort.split = True
            return
        source = cohort.shard
        try:
            state = self.pool.invoke(source, "snapshot", session.session_id)
            self.pool.invoke(source, "evict", session.session_id)
        except Exception as exc:
            if not remote_failure(exc):
                raise
            self.last_failure = exc
            self._fail_shard(source, [])
            return
        del cohort.sessions[session.session_id]
        key = f"{cohort.spec_key}#{self._split_seq}"
        self._split_seq += 1
        split = PlacedCohort(
            key,
            cohort.spec_key,
            cohort.spec,
            self._least_loaded(),
            burst=self.catchup_burst,
        )
        split.split = True
        self.cohorts[key] = split
        session.cohort = split
        split.sessions[session.session_id] = session
        self.splits += 1
        try:
            session.slot = self.pool.invoke(
                split.shard, "restore", session.session_id, key,
                cohort.spec, state,
            )
        except Exception as exc:
            if not remote_failure(exc):
                raise
            # The migrated state died with the target; ordinary failover
            # re-places the (already-registered) session with fresh
            # state on the session clock.
            self._fail_shard(split.shard, [])

    def _rejoin(self, session: Session) -> None:
        """Merge a caught-up split session back into a sibling cohort.

        Splits are temporary: once the backlog is gone, the session
        migrates (bit-exactly, same snapshot hand-off) into a same-spec
        non-split cohort — preferring one already on its shard — so
        transient stragglers cannot fragment the lockstep batching
        permanently. With no sibling to rejoin, the cohort simply stops
        being special.
        """
        cohort: PlacedCohort = session.cohort
        siblings = [
            c
            for c in self.cohorts.values()
            if c is not cohort and c.spec_key == cohort.spec_key and not c.split
        ]
        if not siblings:
            cohort.burst = 1
            cohort.split = False
            return
        target = next(
            (c for c in siblings if c.shard == cohort.shard), siblings[0]
        )
        source = cohort.shard
        try:
            state = self.pool.invoke(source, "snapshot", session.session_id)
            self.pool.invoke(source, "evict", session.session_id)
        except Exception as exc:
            if not remote_failure(exc):
                raise
            self.last_failure = exc
            self._fail_shard(source, [])
            return
        del cohort.sessions[session.session_id]
        del self.cohorts[cohort.key]
        session.cohort = target
        target.sessions[session.session_id] = session
        self.rejoins += 1
        try:
            session.slot = self.pool.invoke(
                target.shard, "restore", session.session_id, target.key,
                target.spec, state,
            )
        except Exception as exc:
            if not remote_failure(exc):
                raise
            self.last_failure = exc
            self._fail_shard(target.shard, [])

    # -- reporting ---------------------------------------------------------

    def stage_profile(self) -> StageProfiler:
        """Merged per-stage counters across every live shard.

        Each shard replies with its own merged dict (live cohorts plus
        the counters of cohorts already dropped on that shard); excluded
        or crashed shards are skipped — their counters are lost with the
        process, like any other shard-side state. Workers inherit the
        profiling switch at fork, so set ``REPRO_PROFILE=1`` (or call
        :func:`repro.kernels.enable_profiling` before building the
        engine) for the counters to exist at all.
        """
        merged = StageProfiler()
        for shard in self._live_shards():
            try:
                merged.merge(self.pool.invoke(shard, "stage_profile"))
            except Exception as exc:
                if not remote_failure(exc):
                    raise
                self.last_failure = exc
                self._fail_shard(shard, [])
        return merged

    def shard_report(self) -> list[dict]:
        """Per-shard summary: timings, exclusion, current placement."""
        counts: dict[int, int] = {}
        for cohort in self.cohorts.values():
            counts[cohort.shard] = (
                counts.get(cohort.shard, 0) + cohort.num_sessions
            )
        load = self._shard_load() if self.memory_model is not None else None
        report = []
        for shard in range(self.pool.num_workers):
            entry = {"shard": shard, "excluded": shard in self.excluded_shards}
            # Counters live parent-side, so a report after (or between)
            # ticks — even for a crashed shard — reflects all traffic.
            self.shard_stats[shard].record_transport(
                self.pool.transport_stats(shard)
            )
            entry.update(self.shard_stats[shard].summary())
            entry["sessions"] = counts.get(shard, 0)
            if load is not None:
                entry["predicted_bytes"] = load.get(shard, 0)
            report.append(entry)
        return report
