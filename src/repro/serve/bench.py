"""Multi-person serving gauge: staged vs fused K-person cohort ticks.

One reusable measurement behind both ``benchmarks/bench_serving.py
--multi`` and the multi-person row of the ``repro bench`` trajectory
record: pre-materialize K-person session streams, feed them through one
lockstep :class:`~repro.serve.ServingEngine` twice — fusion forced off
(the staged per-stage loop with one :class:`~repro.multi.tracks.
TrackManager.step` per slot) and on (one
:class:`~repro.kernels.tick.MultiTickPlan` call per cohort tick) — and
report aggregate frames/s, p95 latency, and the bitwise-identity
verdict over every session's outputs, track identities included.

Mixed cohorts are first-class: ``people_per_session`` may vary per
session, in which case the engine serves several cohorts per tick
(specs with different K never share a cohort), which is exactly the
heterogeneous-deployment shape the serving tier promises.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..config import SystemConfig, default_config
from ..kernels import backend_name
from ..kernels.tick import enable_fusion, reset_fusion_override
from ..rf.fmcw import range_axis
from .engine import ServingEngine
from .session import multi_session


def materialize_multi_streams(
    people_per_session: list[int],
    duration_s: float,
    seed: int = 0,
    config: SystemConfig | None = None,
    room=None,
) -> tuple:
    """Pre-synthesized K-person frame streams, one list per session.

    Each session is an independent :class:`~repro.multi.MultiScenario`
    of ``people_per_session[i]`` non-colliding walkers; synthesis runs
    up front so the timed loop measures the serving tick surface only.

    Returns:
        ``(config, room, range_bin_m, frames, n_frames)`` where
        ``frames[i]`` is session *i*'s list of sweep blocks.
    """
    from ..multi import MultiScenario
    from ..sim import non_colliding_walks, through_wall_room
    from ..sim.body import HumanBody

    config = config or default_config()
    if room is None:
        room = through_wall_room()
    spf = config.pipeline.sweeps_per_frame
    range_bin_m = float(range_axis(config.fmcw).round_trip_per_bin_m)
    frames = []
    for i, k in enumerate(people_per_session):
        rng = np.random.default_rng(seed + 17 * i)
        walks = non_colliding_walks(
            room, rng, count=k, duration_s=duration_s, min_separation_m=1.0
        )
        people = [(HumanBody(name=f"s{i}p{j}"), walk)
                  for j, walk in enumerate(walks)]
        out = MultiScenario(
            people, room=room, config=config, seed=seed + 17 * i + 1
        ).run()
        frames.append(
            [out.spectra[:, f * spf: (f + 1) * spf, :]
             for f in range(out.num_sweeps // spf)]
        )
    n_frames = min(len(stream) for stream in frames)
    return config, room, range_bin_m, [s[:n_frames] for s in frames], n_frames


def multi_person_comparison(
    people_per_session: list[int],
    duration_s: float = 4.0,
    seed: int = 0,
    repeats: int = 3,
    config: SystemConfig | None = None,
) -> dict:
    """Staged vs fused multi-person serving on identical frames.

    Times the engine's tick path twice per repeat — fusion forced off
    and on — alternating the two within each repeat so environmental
    drift lands on both sides equally, keeping the elementwise per-tick
    minimum across repeats (the same discipline as the single-person
    tick-fusion comparison), and bit-checks the runs' session outputs
    against each other.
    """
    from ..exec import results_identical

    config, room, range_bin_m, frames, n_frames = materialize_multi_streams(
        people_per_session, duration_s, seed=seed, config=config
    )
    specs = [
        multi_session(config, range_bin_m, max_people=k, room=room)
        for k in people_per_session
    ]

    def run_once(fused: bool):
        enable_fusion(fused)
        ticks = np.empty(n_frames)
        with ServingEngine() as engine:
            sessions = [engine.admit(spec) for spec in specs]
            for f in range(n_frames):
                for session, stream in zip(sessions, frames):
                    engine.submit(session, stream[f])
                start = perf_counter()
                engine.tick()
                ticks[f] = perf_counter() - start
            results = [engine.close(s) for s in sessions]
        return ticks, results

    staged_ticks = fused_ticks = None
    staged_results = fused_results = None
    try:
        for _ in range(max(repeats, 1)):
            s, staged_results = run_once(False)
            staged_ticks = (
                s if staged_ticks is None else np.minimum(staged_ticks, s)
            )
            f, fused_results = run_once(True)
            fused_ticks = (
                f if fused_ticks is None else np.minimum(fused_ticks, f)
            )
    finally:
        reset_fusion_override()
    staged_s = float(staged_ticks.sum())
    fused_s = float(fused_ticks.sum())
    total = len(frames) * n_frames
    p95 = [
        1e3 * float(np.max([r.latency.p95_s for r in results]))
        for results in (staged_results, fused_results)
    ]
    return {
        "sessions": len(frames),
        "people_per_session": list(people_per_session),
        "frames_per_session": n_frames,
        "backend": backend_name(),
        "staged_s": staged_s,
        "fused_s": fused_s,
        "staged_fps": total / staged_s,
        "fused_fps": total / fused_s,
        "speedup": staged_s / fused_s,
        "staged_p95_latency_ms": p95[0],
        "fused_p95_latency_ms": p95[1],
        "identical": all(
            results_identical(a, b)
            for a, b in zip(staged_results, fused_results)
        ),
    }
