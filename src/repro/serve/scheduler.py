"""Session admission and the lockstep multiplexing scheduler.

:class:`SessionManager` owns the cohorts: it admits sessions (growing or
recycling state slots in the cohort's shared vectorized pipeline),
closes them (evicting their slot without perturbing survivors), and
hands the :class:`Scheduler` the ready work. :class:`Scheduler.tick`
batches, per cohort, every session with a queued frame into **one**
:meth:`Pipeline.tick <repro.pipeline.Pipeline.tick>` call — N sessions,
one pass of numpy dispatch — and routes each output row back to its
session with its latency sample.

Stragglers cost nothing: a session with an empty queue simply sits out
the tick (its state rows are untouched), and a session whose producer
runs hot hits its bounded queue and is refused frames until the
scheduler catches up.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..pipeline.runner import Pipeline, PipelineResult
from .session import Session, SessionSpec


class Cohort:
    """Sessions sharing one vectorized pipeline (same :class:`SessionSpec`).

    Args:
        key: the spec's content key.
        spec: the shared pipeline structure.
    """

    def __init__(self, key: str, spec: SessionSpec) -> None:
        self.key = key
        self.spec = spec
        self.pipeline: Pipeline = spec.build_pipeline()
        self.sessions: dict[int, Session] = {}
        self._free_slots: list[int] = []
        self._high_slot = 0

    @property
    def num_sessions(self) -> int:
        """Live sessions currently in the cohort."""
        return len(self.sessions)

    def allocate_slot(self) -> int:
        """Reuse an evicted slot or grow the pipeline's session axis."""
        if self._free_slots:
            self._free_slots.sort()
            return self._free_slots.pop(0)
        slot = self._high_slot
        self._high_slot += 1
        self.pipeline.attach_sessions(max(self._high_slot, 1))
        return slot

    def release_slot(self, slot: int) -> None:
        """Evict one slot's state and mark it reusable."""
        self.pipeline.evict_session(slot)
        self._free_slots.append(slot)


class SessionManager:
    """Admit, look up, and retire sessions across all cohorts.

    Args:
        queue_capacity: per-session input queue bound (backpressure).
    """

    def __init__(self, queue_capacity: int = 64) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.queue_capacity = queue_capacity
        self.cohorts: dict[str, Cohort] = {}
        self.sessions: dict[int, Session] = {}
        self._next_id = 1

    @property
    def num_sessions(self) -> int:
        """Live sessions across every cohort."""
        return len(self.sessions)

    def admit(self, spec: SessionSpec) -> Session:
        """Open a session for ``spec``, joining or founding its cohort."""
        key = spec.cohort_key()
        cohort = self.cohorts.get(key)
        if cohort is None:
            cohort = Cohort(key, spec)
            self.cohorts[key] = cohort
        session = Session(
            self._next_id, spec, cohort.allocate_slot(), self.queue_capacity
        )
        self._next_id += 1
        session.cohort = cohort
        cohort.sessions[session.session_id] = session
        self.sessions[session.session_id] = session
        return session

    def cohort_of(self, session: Session) -> Cohort:
        """The cohort a live session belongs to."""
        return session.cohort

    def retire(self, session: Session) -> PipelineResult:
        """Close a session and free its slot; returns its final result.

        Any still-queued frames are dropped — call
        :meth:`Scheduler.drain` (or tick until the queue empties) first
        if they must be processed. Eviction resets only this session's
        state rows; cohort mates are unperturbed.
        """
        if session.closed:
            raise RuntimeError(f"session {session.session_id} already closed")
        cohort = self.cohort_of(session)
        result = session.result()
        session.closed = True
        session.queue.clear()
        del cohort.sessions[session.session_id]
        del self.sessions[session.session_id]
        cohort.release_slot(session.slot)
        if not cohort.sessions:
            # Last member out: drop the cohort so a long-running engine
            # with churning heterogeneous specs cannot accumulate idle
            # pipelines (and their grown state arrays) without bound.
            del self.cohorts[cohort.key]
        return result


class Scheduler:
    """Batch ready sessions into lockstep ticks, cohort by cohort.

    Args:
        manager: the session manager whose cohorts are scheduled.
    """

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self.ticks = 0
        self.frames_processed = 0

    def tick(self) -> int:
        """One scheduling pass: every cohort, every ready session.

        Pops one queued frame from each session that has one, advances
        each cohort's batch through a single vectorized pipeline tick,
        and routes output rows and latency samples back per session.

        Returns:
            Number of frames consumed (0 means every queue was empty).
        """
        consumed = 0
        for cohort in self.manager.cohorts.values():
            ready = [s for s in cohort.sessions.values() if s.queue]
            if not ready:
                continue
            entries = [s.queue.popleft() for s in ready]
            slots = np.fromiter(
                (s.slot for s in ready), dtype=np.intp, count=len(ready)
            )
            tick = cohort.pipeline.tick([b for b, _ in entries], slots)
            done = perf_counter()
            row_of_slot = {
                int(slot): row for row, slot in enumerate(tick.slots)
            }
            for session, (_, enqueued) in zip(ready, entries):
                session.latency.latencies_s.append(done - enqueued)
                row = row_of_slot.get(session.slot)
                if row is not None:
                    session.collect(tick, row)
            consumed += len(ready)
        if consumed:
            self.ticks += 1
            self.frames_processed += consumed
        return consumed

    def drain(self) -> int:
        """Tick until every session queue is empty; frames consumed."""
        total = 0
        while True:
            consumed = self.tick()
            if consumed == 0:
                return total
            total += consumed
