"""Session admission and the lockstep multiplexing scheduler.

:class:`SessionManager` owns the cohorts: it admits sessions (growing or
recycling state slots in the cohort's shared vectorized pipeline),
closes them (evicting their slot without perturbing survivors), and
hands the :class:`Scheduler` the ready work. :class:`Scheduler.tick`
batches, per cohort, every session with a queued frame into **one**
:meth:`Pipeline.tick <repro.pipeline.Pipeline.tick>` call — N sessions,
one pass of numpy dispatch — and routes each output row back to its
session with its latency sample.

Stragglers cost nothing — until they do. A session with an empty queue
simply sits out the tick (its state rows are untouched), and a session
whose producer runs hot hits its bounded queue and is refused frames.
But a session whose queue depth *persistently* lags its cohort mates is
a scheduling problem: in lockstep it can drain at most one frame per
cohort tick, so a producer that outpaces the tick rate backs it up
without bound. The scheduler's answer is **adaptive re-batching**: the
straggler is split into its own single-session cohort — its pipeline
state handed off bit-exactly via :meth:`Pipeline.snapshot_session
<repro.pipeline.Pipeline.snapshot_session>` — where the scheduler may
drain up to ``catchup_burst`` frames per tick until it catches up.
Splitting never changes any output (the serving tests pin this); it
only changes *when* frames are processed.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..kernels.profile import StageProfiler
from ..pipeline.runner import Pipeline, PipelineResult
from .session import Session, SessionSpec


class Cohort:
    """Sessions sharing one vectorized pipeline (same :class:`SessionSpec`).

    Args:
        key: the spec's content key (splits append a ``/split<n>``
            suffix, so split cohorts never merge back by key lookup).
        spec: the shared pipeline structure.
        burst: frames the scheduler may drain per session per tick —
            1 for ordinary cohorts, ``catchup_burst`` for cohorts born
            from an adaptive split.
    """

    def __init__(self, key: str, spec: SessionSpec, burst: int = 1) -> None:
        self.key = key
        self.spec = spec
        self.burst = burst
        #: True for cohorts born from an adaptive split (rejoin candidates).
        self.split = False
        self.pipeline: Pipeline = spec.build_pipeline()
        self.sessions: dict[int, Session] = {}
        self._free_slots: list[int] = []
        self._high_slot = 0

    @property
    def num_sessions(self) -> int:
        """Live sessions currently in the cohort."""
        return len(self.sessions)

    def allocate_slot(self) -> int:
        """Reuse an evicted slot or grow the pipeline's session axis."""
        if self._free_slots:
            self._free_slots.sort()
            return self._free_slots.pop(0)
        slot = self._high_slot
        self._high_slot += 1
        self.pipeline.attach_sessions(max(self._high_slot, 1))
        return slot

    def release_slot(self, slot: int) -> None:
        """Evict one slot's state and mark it reusable."""
        self.pipeline.evict_session(slot)
        self._free_slots.append(slot)


class SessionManager:
    """Admit, look up, retire — and re-batch — sessions across cohorts.

    Args:
        queue_capacity: per-session input queue bound (backpressure).
    """

    def __init__(self, queue_capacity: int = 64) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.queue_capacity = queue_capacity
        self.cohorts: dict[str, Cohort] = {}
        self.sessions: dict[int, Session] = {}
        self._next_id = 1
        self._split_seq = 0
        #: Stage counters of dropped cohorts (profiling runs only), so
        #: retiring the last member of a cohort doesn't lose its ticks.
        self.retired_profile = StageProfiler()

    def _harvest_profile(self, cohort: Cohort) -> None:
        if cohort.pipeline.profiler is not None:
            self.retired_profile.merge(cohort.pipeline.profiler)

    def stage_profile(self) -> StageProfiler:
        """Merged per-stage counters: live cohorts + dropped cohorts.

        Empty unless pipelines were built with profiling enabled
        (``REPRO_PROFILE=1`` or :func:`repro.kernels.enable_profiling`).
        """
        merged = StageProfiler()
        merged.merge(self.retired_profile)
        for cohort in self.cohorts.values():
            if cohort.pipeline.profiler is not None:
                merged.merge(cohort.pipeline.profiler)
        return merged

    @property
    def num_sessions(self) -> int:
        """Live sessions across every cohort."""
        return len(self.sessions)

    def admit(self, spec: SessionSpec) -> Session:
        """Open a session for ``spec``, joining or founding its cohort."""
        key = spec.cohort_key()
        cohort = self.cohorts.get(key)
        if cohort is None:
            cohort = Cohort(key, spec)
            self.cohorts[key] = cohort
        session = Session(
            self._next_id, spec, cohort.allocate_slot(), self.queue_capacity
        )
        self._next_id += 1
        session.cohort = cohort
        cohort.sessions[session.session_id] = session
        self.sessions[session.session_id] = session
        return session

    def cohort_of(self, session: Session) -> Cohort:
        """The cohort a live session belongs to."""
        return session.cohort

    def split(self, session: Session, burst: int = 1) -> Cohort:
        """Re-batch one session into its own fresh cohort, bit-exactly.

        The session's pipeline state rows are handed off via
        :meth:`Pipeline.snapshot_session
        <repro.pipeline.Pipeline.snapshot_session>` into a freshly
        built pipeline of the same spec, so the move is invisible in
        the session's outputs — only scheduling changes: a singleton
        cohort with ``burst > 1`` may drain several queued frames per
        scheduler tick.

        Args:
            session: the (live) session to split off.
            burst: frames per tick the new cohort may drain.

        Returns:
            The session's new single-member cohort.
        """
        old = self.cohort_of(session)
        if old.num_sessions <= 1:
            old.burst = max(old.burst, burst)
            return old  # already alone; just let it catch up
        state = old.pipeline.snapshot_session(session.slot)
        old.release_slot(session.slot)
        del old.sessions[session.session_id]
        key = f"{old.key}/split{self._split_seq}"
        self._split_seq += 1
        cohort = Cohort(key, session.spec, burst=burst)
        cohort.split = True
        self.cohorts[key] = cohort
        session.slot = cohort.allocate_slot()
        cohort.pipeline.restore_session(session.slot, state)
        session.cohort = cohort
        cohort.sessions[session.session_id] = session
        return cohort

    def merge(self, session: Session, target: Cohort) -> None:
        """Move one session into an existing cohort, bit-exactly.

        The inverse of :meth:`split`: the session's pipeline state is
        handed off into a slot of ``target`` (same spec required), and
        its now-empty source cohort is dropped. Used to re-batch a
        straggler that caught up, so transient hiccups cannot fragment
        the lockstep batching permanently.
        """
        old = self.cohort_of(session)
        if old is target:
            return
        if target.spec.cohort_key() != session.spec.cohort_key():
            raise ValueError("sessions only merge into same-spec cohorts")
        state = old.pipeline.snapshot_session(session.slot)
        old.release_slot(session.slot)
        del old.sessions[session.session_id]
        session.slot = target.allocate_slot()
        target.pipeline.restore_session(session.slot, state)
        session.cohort = target
        target.sessions[session.session_id] = session
        if not old.sessions:
            self._harvest_profile(old)
            del self.cohorts[old.key]

    def retire(self, session: Session) -> PipelineResult:
        """Close a session and free its slot; returns its final result.

        Any still-queued frames are dropped — call
        :meth:`Scheduler.drain` (or tick until the queue empties) first
        if they must be processed. Eviction resets only this session's
        state rows; cohort mates are unperturbed.
        """
        if session.closed:
            raise RuntimeError(f"session {session.session_id} already closed")
        cohort = self.cohort_of(session)
        result = session.result()
        session.closed = True
        session.queue.clear()
        del cohort.sessions[session.session_id]
        del self.sessions[session.session_id]
        cohort.release_slot(session.slot)
        if not cohort.sessions:
            # Last member out: drop the cohort so a long-running engine
            # with churning heterogeneous specs cannot accumulate idle
            # pipelines (and their grown state arrays) without bound.
            self._harvest_profile(cohort)
            del self.cohorts[cohort.key]
        return result


class StragglerDetector:
    """Spot sessions whose queue depth persistently lags their cohort.

    Shared by the local :class:`Scheduler` and the distributed
    scheduler (:mod:`repro.serve.shard`): after each tick, feed it
    every multi-member cohort's ``(session, queue depth)`` pairs; it
    returns the sessions that have lagged the cohort's *shallowest*
    queue by at least ``backlog`` frames for ``patience`` consecutive
    ticks — the candidates for an adaptive split.

    Args:
        backlog: queue-depth excess over the cohort minimum that counts
            as lagging.
        patience: consecutive lagging ticks before a split fires (a
            transient burst should not trigger a migration).
    """

    def __init__(self, backlog: int = 8, patience: int = 4) -> None:
        if backlog < 1 or patience < 1:
            raise ValueError("backlog and patience must be >= 1")
        self.backlog = backlog
        self.patience = patience
        self._lagging: dict[int, int] = {}

    def observe(self, members: list[tuple[Session, int]]) -> list[Session]:
        """Update lag counters for one cohort; return sessions to split."""
        if len(members) < 2:
            for session, _ in members:
                self._lagging.pop(session.session_id, None)
            return []
        floor = min(depth for _, depth in members)
        due = []
        for session, depth in members:
            if depth - floor >= self.backlog:
                count = self._lagging.get(session.session_id, 0) + 1
                self._lagging[session.session_id] = count
                if count >= self.patience:
                    del self._lagging[session.session_id]
                    due.append(session)
            else:
                self._lagging.pop(session.session_id, None)
        return due

    def forget(self, session: Session) -> None:
        """Drop a session's counter (on retire/evict)."""
        self._lagging.pop(session.session_id, None)

    def prune(self, live_ids) -> None:
        """Drop counters of sessions that no longer exist."""
        self._lagging = {
            sid: count
            for sid, count in self._lagging.items()
            if sid in live_ids
        }

    def sweep(self, cohorts) -> list[Session]:
        """Observe every cohort; return all sessions due for a split.

        The shared per-tick detection loop of both schedulers: each
        cohort contributes its ``(session, queue depth)`` members.
        """
        due: list[Session] = []
        for cohort in cohorts:
            members = [(s, len(s.queue)) for s in cohort.sessions.values()]
            due.extend(self.observe(members))
        return due


class Scheduler:
    """Batch ready sessions into lockstep ticks, cohort by cohort.

    Args:
        manager: the session manager whose cohorts are scheduled.
        adaptive_split: enable straggler re-batching (see module doc).
        split_backlog: queue-depth lag that marks a straggler.
        split_patience: consecutive lagging ticks before splitting.
        catchup_burst: frames per tick a split cohort may drain.
        rejoin_patience: consecutive caught-up (empty queue at tick
            end) observations before a split session merges back into
            its spec's cohort — splits are temporary, so transient
            hiccups cannot fragment the batching permanently.
    """

    def __init__(
        self,
        manager: SessionManager,
        adaptive_split: bool = True,
        split_backlog: int = 8,
        split_patience: int = 4,
        catchup_burst: int = 4,
        rejoin_patience: int = 4,
    ) -> None:
        if catchup_burst < 1 or rejoin_patience < 1:
            raise ValueError("catchup_burst and rejoin_patience must be >= 1")
        self.manager = manager
        self.adaptive_split = adaptive_split
        self.catchup_burst = catchup_burst
        self.rejoin_patience = rejoin_patience
        self.detector = StragglerDetector(split_backlog, split_patience)
        self._caught_up: dict[int, int] = {}
        self.ticks = 0
        self.frames_processed = 0
        self.splits = 0
        self.rejoins = 0

    def stage_profile(self) -> StageProfiler:
        """Merged per-stage counters (see :meth:`SessionManager.stage_profile`)."""
        return self.manager.stage_profile()

    def _tick_cohort(self, cohort: Cohort, ready: list[Session]) -> int:
        """One lockstep pipeline tick over the given ready sessions."""
        entries = [s.queue.popleft() for s in ready]
        slots = np.fromiter(
            (s.slot for s in ready), dtype=np.intp, count=len(ready)
        )
        tick = cohort.pipeline.tick([b for b, _ in entries], slots)
        done = perf_counter()
        if len(tick.slots) == len(ready):
            # Every session emitted a row; the pipeline preserves input
            # order, so row k belongs to ready[k] — no slot map needed.
            for row, (session, (_, enqueued)) in enumerate(
                zip(ready, entries)
            ):
                session.latency.latencies_s.append(done - enqueued)
                session.collect(tick, row)
            return len(ready)
        row_of_slot = {
            slot: row for row, slot in enumerate(tick.slots.tolist())
        }
        for session, (_, enqueued) in zip(ready, entries):
            session.latency.latencies_s.append(done - enqueued)
            row = row_of_slot.get(session.slot)
            if row is not None:
                session.collect(tick, row)
        return len(ready)

    def tick(self) -> int:
        """One scheduling pass: every cohort, every ready session.

        Pops one queued frame from each session that has one, advances
        each cohort's batch through a single vectorized pipeline tick,
        and routes output rows and latency samples back per session.
        Split cohorts (``burst > 1``) may drain several frames in the
        same pass — the catch-up mechanics of adaptive re-batching.

        Returns:
            Number of frames consumed (0 means every queue was empty).
        """
        consumed = 0
        for cohort in list(self.manager.cohorts.values()):
            for _ in range(cohort.burst):
                ready = [s for s in cohort.sessions.values() if s.queue]
                if not ready:
                    break
                consumed += self._tick_cohort(cohort, ready)
        if consumed:
            self.ticks += 1
            self.frames_processed += consumed
        if self.adaptive_split:
            self._rebatch()
        return consumed

    def _rebatch(self) -> None:
        """Split persistent stragglers; rejoin the ones that caught up."""
        detector = self.detector
        # A split needs some session `backlog` deeper than its cohort's
        # floor, which requires a queue at least that deep — so with no
        # lag counters pending, one cheap depth scan replaces the full
        # per-cohort sweep (which would only pop from empty dicts).
        if detector._lagging or any(
            len(s.queue) >= detector.backlog
            for s in self.manager.sessions.values()
        ):
            detector.prune(self.manager.sessions)
            for session in detector.sweep(self.manager.cohorts.values()):
                self.manager.split(session, burst=self.catchup_burst)
                self.splits += 1
        self._caught_up = {
            sid: count
            for sid, count in self._caught_up.items()
            if sid in self.manager.sessions
        }
        for cohort in list(self.manager.cohorts.values()):
            if not cohort.split or cohort.num_sessions != 1:
                continue
            (session,) = cohort.sessions.values()
            if session.queue:
                self._caught_up.pop(session.session_id, None)
                continue
            count = self._caught_up.get(session.session_id, 0) + 1
            if count < self.rejoin_patience:
                self._caught_up[session.session_id] = count
                continue
            self._caught_up.pop(session.session_id, None)
            base = self.manager.cohorts.get(session.spec.cohort_key())
            if base is None:
                # Nobody left to rejoin: this cohort *becomes* the base
                # (re-keyed to the spec key so future admissions join it
                # instead of founding a parallel pipeline).
                del self.manager.cohorts[cohort.key]
                cohort.key = session.spec.cohort_key()
                cohort.burst = 1
                cohort.split = False
                self.manager.cohorts[cohort.key] = cohort
            else:
                self.manager.merge(session, base)
                self.rejoins += 1

    def drain(self) -> int:
        """Tick until every session queue is empty; frames consumed."""
        total = 0
        while True:
            consumed = self.tick()
            if consumed == 0:
                return total
            total += consumed
