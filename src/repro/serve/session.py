"""Serving sessions: what one connected user looks like to the engine.

A :class:`SessionSpec` is the immutable description of a session's
pipeline — single- or multi-person, full system configuration, range
axis, solver. Specs that hash to the same content key are *cohort
mates*: their sessions share one session-vectorized
:class:`~repro.pipeline.Pipeline` instance and advance together in
lockstep ticks. Heterogeneous deployments simply produce several
cohorts.

A :class:`Session` is one live stream: a bounded input queue of raw
sweep blocks (the backpressure seam), the per-frame output accumulators,
and a per-session :class:`~repro.pipeline.LatencyReport` measuring
enqueue-to-emit wall time against the paper's 75 ms budget (§7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..config import SystemConfig, default_config
from ..core.localize import make_solver
from ..geometry.antennas import AntennaArray, t_array
from ..multi.tracks import TrackManagerConfig
from ..pipeline.frame import SessionTick
from ..pipeline.runner import (
    LatencyReport,
    Pipeline,
    PipelineResult,
    single_person_pipeline,
)
from ..sim.room import Room


class AdmissionRefused(RuntimeError):
    """Admission control declined to open a session.

    Raised by :meth:`ServingEngine.admit
    <repro.serve.ServingEngine.admit>` when an admission gate or a
    shard memory budget refuses the session (use :meth:`try_admit
    <repro.serve.ServingEngine.try_admit>` for the non-raising flavor
    open-loop load generators want).
    """


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines a session's pipeline structure.

    Two specs with equal content keys are guaranteed interchangeable
    pipelines, so their sessions can share one vectorized instance.

    Attributes:
        kind: ``"single"`` (one tracked person per session) or
            ``"multi"`` (successive cancellation + track bank).
        config: full system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override (None: the configured T).
        solver_method: localization solver selection.
        max_people: multi-person only — upper bound K per session.
        num_candidates: multi-person only — cancellation rounds
            (None: ``max_people + 4`` as in MultiWiTrack).
        room: multi-person only — tightens ghost gating.
        track_config: multi-person only — track lifecycle tunables.
    """

    kind: str
    config: SystemConfig
    range_bin_m: float
    array: AntennaArray | None = None
    solver_method: str = "auto"
    max_people: int = 3
    num_candidates: int | None = None
    room: Room | None = None
    track_config: TrackManagerConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("single", "multi"):
            raise ValueError(
                f"unknown session kind: {self.kind!r} "
                "(expected 'single' or 'multi')"
            )

    def cohort_key(self) -> str:
        """Content key grouping interchangeable sessions into cohorts."""
        from ..exec.cache import content_key

        return content_key(
            "serve.cohort.v1",
            self.kind,
            self.config,
            self.range_bin_m,
            self.array,
            self.solver_method,
            self.max_people,
            self.num_candidates,
            self.room,
            self.track_config,
        )

    def build_pipeline(self) -> Pipeline:
        """A fresh pipeline of this spec's structure (slot 0 attached)."""
        if self.kind == "single":
            array = self.array if self.array is not None else t_array(
                self.config.array
            )
            solver = make_solver(array, method=self.solver_method)
            return single_person_pipeline(
                self.config, self.range_bin_m, solver=solver
            )
        from ..multi.tracker import MultiWiTrack

        tracker = MultiWiTrack(
            self.config,
            array=self.array,
            max_people=self.max_people,
            num_candidates=self.num_candidates,
            track_config=self.track_config,
            room=self.room,
            solver_method=self.solver_method,
        )
        return tracker.pipeline(self.range_bin_m)


def single_session(
    config: SystemConfig | None = None,
    range_bin_m: float = 0.1774,
    array: AntennaArray | None = None,
    solver_method: str = "auto",
) -> SessionSpec:
    """Spec for a single-person tracking session."""
    return SessionSpec(
        kind="single",
        config=config or default_config(),
        range_bin_m=range_bin_m,
        array=array,
        solver_method=solver_method,
    )


def multi_session(
    config: SystemConfig | None = None,
    range_bin_m: float = 0.1774,
    array: AntennaArray | None = None,
    max_people: int = 3,
    num_candidates: int | None = None,
    room: Room | None = None,
    track_config: TrackManagerConfig | None = None,
    solver_method: str = "auto",
) -> SessionSpec:
    """Spec for a K-person tracking session."""
    return SessionSpec(
        kind="multi",
        config=config or default_config(),
        range_bin_m=range_bin_m,
        array=array,
        max_people=max_people,
        num_candidates=num_candidates,
        room=room,
        track_config=track_config,
        solver_method=solver_method,
    )


def tick_row_fields(tick: SessionTick, row: int) -> dict:
    """One tick row as a plain field dict (the local transport unit).

    Everything :meth:`Session.collect_fields` accumulates, extracted
    from one row of a :class:`~repro.pipeline.frame.SessionTick`. The
    local scheduler consumes it in-process; the distributed tier ships
    whole-tick column slabs instead (:func:`tick_group`) and re-derives
    these dicts row by row on the parent — same values either way, which
    is what keeps distributed serving bitwise-identical to
    single-process.
    """
    return {
        "time_s": float(tick.times_s[row]),
        "tof_m": None if tick.tof_m is None else tick.tof_m[row],
        "raw_tof_m": None if tick.raw_tof_m is None else tick.raw_tof_m[row],
        "motion": None if tick.motion is None else tick.motion[row],
        "positions": None if tick.positions is None else tick.positions[row],
        "tracks": None if tick.tracks is None else tick.tracks[row],
    }


#: SessionTick array fields shipped per group (leading axis = tick row).
_GROUP_ARRAYS = ("tof_m", "raw_tof_m", "motion", "positions")


def tick_group(tick: SessionTick, session_ids: np.ndarray) -> dict:
    """One pipeline tick's emitted rows as column slabs (the IPC unit).

    The shard→parent transport unit of the distributed tier: instead of
    one field dict per row (many small pickles), a group carries each
    output field as the tick's whole ``(n_rows, ...)`` array plus the
    parallel ``session_ids`` routing vector — fixed-dtype slabs the shm
    transport can move without pickling, and exactly what the pipeline
    already produced, so building a group copies nothing.

    Args:
        tick: the tick (fresh arrays, produced by this call — groups
            are shipped before the pipeline ticks again).
        session_ids: engine-wide session id of each tick row,
            shape ``(tick.num_rows,)``.
    """
    group: dict = {
        "session_ids": session_ids,
        "times_s": tick.times_s,
        "tracks": tick.tracks,
    }
    for name in _GROUP_ARRAYS:
        group[name] = getattr(tick, name)
    return group


def group_row_fields(group: dict, row: int) -> dict:
    """One group row, re-expanded to the :func:`tick_row_fields` dict.

    Value-identical to ``tick_row_fields(tick, row)`` on the
    originating tick — the parent-side half of the slab round trip.
    """
    fields = {"time_s": float(group["times_s"][row])}
    for name in _GROUP_ARRAYS:
        column = group[name]
        fields[name] = None if column is None else column[row]
    tracks = group["tracks"]
    fields["tracks"] = None if tracks is None else tracks[row]
    return fields


class Session:
    """One live stream being served.

    Created by :meth:`repro.serve.SessionManager.admit`; users feed raw
    ``(n_rx, sweeps_per_frame, n_bins)`` sweep blocks through
    :meth:`offer` and read results from :attr:`last_position` /
    :attr:`last_tracks` (realtime) or :meth:`result` (accumulated).

    Args:
        session_id: stable engine-wide identity.
        spec: the pipeline structure this session runs.
        slot: state row in the cohort's vectorized pipeline.
        queue_capacity: bound on frames queued ahead of processing;
            a full queue refuses new frames (backpressure) instead of
            letting one straggler grow without limit.
    """

    def __init__(
        self,
        session_id: int,
        spec: SessionSpec,
        slot: int,
        queue_capacity: int,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.session_id = session_id
        self.spec = spec
        self.slot = slot
        self.queue_capacity = queue_capacity
        self.queue: deque[tuple[np.ndarray, float]] = deque()
        self.latency = LatencyReport()
        self.frames_in = 0
        self.frames_out = 0
        self.closed = False
        #: Set by SessionManager.admit — the cohort serving this session.
        self.cohort = None
        self.last_position: np.ndarray | None = None
        self.last_tracks: list[tuple[int, np.ndarray]] | None = None
        self._times: list[float] = []
        self._tofs: list[np.ndarray] = []
        self._raws: list[np.ndarray] = []
        self._motions: list[np.ndarray] = []
        self._positions: list[np.ndarray] = []
        self._tracks: list[list[tuple[int, np.ndarray]]] = []

    @property
    def pending(self) -> int:
        """Frames queued but not yet processed."""
        return len(self.queue)

    def offer(self, sweep_block: np.ndarray) -> bool:
        """Enqueue one frame; False when the bounded queue is full.

        The enqueue timestamp starts this frame's latency clock — queue
        wait counts against the 75 ms budget, exactly as it would for a
        real user.
        """
        if self.closed:
            raise RuntimeError(
                f"session {self.session_id} is closed and takes no frames"
            )
        if len(self.queue) >= self.queue_capacity:
            return False
        self.queue.append((sweep_block, perf_counter()))
        self.frames_in += 1
        return True

    def collect(self, tick: SessionTick, row: int) -> None:
        """Accumulate one emitted tick row (engine-internal).

        Same values as routing :func:`tick_row_fields` through
        :meth:`collect_fields`, minus the intermediate dict — this runs
        once per session per tick on the serving hot path.
        """
        self._times.append(float(tick.times_s[row]))
        if tick.tof_m is not None:
            self._tofs.append(tick.tof_m[row])
        if tick.raw_tof_m is not None:
            self._raws.append(tick.raw_tof_m[row])
        if tick.motion is not None:
            self._motions.append(tick.motion[row])
        if tick.positions is not None:
            self.last_position = tick.positions[row]
            self._positions.append(self.last_position)
        if tick.tracks is not None:
            self.last_tracks = tick.tracks[row]
            self._tracks.append(self.last_tracks)
        self.frames_out += 1

    def collect_fields(self, fields: dict) -> None:
        """Accumulate one emitted output frame's field dict.

        The distributed scheduler routes shard responses through here;
        the local scheduler arrives via :meth:`collect`. Both paths
        append identical values.
        """
        self._times.append(fields["time_s"])
        if fields["tof_m"] is not None:
            self._tofs.append(fields["tof_m"])
        if fields["raw_tof_m"] is not None:
            self._raws.append(fields["raw_tof_m"])
        if fields["motion"] is not None:
            self._motions.append(fields["motion"])
        if fields["positions"] is not None:
            self.last_position = fields["positions"]
            self._positions.append(self.last_position)
        if fields["tracks"] is not None:
            self.last_tracks = fields["tracks"]
            self._tracks.append(self.last_tracks)
        self.frames_out += 1

    def result(self) -> PipelineResult:
        """Everything this session has produced, ``run_stream``-shaped."""
        return PipelineResult(
            frame_times_s=np.asarray(self._times),
            tof_m=np.stack(self._tofs) if self._tofs else None,
            raw_tof_m=np.stack(self._raws) if self._raws else None,
            motion=np.stack(self._motions) if self._motions else None,
            positions=np.stack(self._positions) if self._positions else None,
            tracks=self._tracks if self._tracks else None,
            latency=self.latency,
        )
