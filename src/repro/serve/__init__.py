"""Multi-session serving engine: one pipeline, N concurrent users.

WiTrack's Section 7 deployment is one device, one pipeline, one user.
This package turns that into a *serving* problem: stage state is
vectorized across sessions (structure-of-arrays with a session axis —
see :mod:`repro.pipeline.stages`), so one pipeline instance advances N
independent sessions in lockstep, paying the per-frame numpy dispatch
cost once instead of N times.

* :mod:`session` — :class:`SessionSpec` (cohort identity),
  :class:`Session` (bounded queue, per-session latency, accumulated
  results), plus the :func:`single_session`/:func:`multi_session` spec
  helpers;
* :mod:`scheduler` — :class:`SessionManager` (admit/retire, slot
  reuse) and :class:`Scheduler` (batch every ready session of a cohort
  into one vectorized tick);
* :mod:`shard` — the distributed tier: :class:`ShardWorker` (cohort
  pipelines inside long-lived worker processes) and
  :class:`DistributedScheduler` (whole-cohort placement, batched
  per-shard steps, failover, adaptive re-batching);
* :mod:`engine` — the :class:`ServingEngine` facade the apps and the
  ``repro serve`` CLI embed; ``workers=N`` turns it into the front end
  of the distributed tier, ``workers=0`` keeps everything in-process.

Load-bearing invariants, pinned by ``tests/test_serve.py`` and
``tests/test_serve_distributed.py``:

* N=1 serving output is **bitwise** ``Pipeline.run_stream`` output;
* N-session lockstep output equals N serial per-session runs exactly,
  across mixed single/multi cohorts and staggered start/stop;
* distributed serving (workers >= 2) is result-identical to
  single-process serving for the same admission schedule;
* evicting a session mid-run does not perturb the survivors, and a
  shard worker failing mid-tick fails its sessions over to survivors
  without perturbing anyone else.
"""

from .engine import ServingEngine
from .scheduler import Cohort, Scheduler, SessionManager, StragglerDetector
from .session import (
    AdmissionRefused,
    Session,
    SessionSpec,
    multi_session,
    single_session,
)
from .shard import DistributedScheduler, PlacedCohort, ShardWorker

__all__ = [
    "AdmissionRefused",
    "Cohort",
    "DistributedScheduler",
    "PlacedCohort",
    "Scheduler",
    "ServingEngine",
    "Session",
    "SessionManager",
    "SessionSpec",
    "ShardWorker",
    "StragglerDetector",
    "multi_session",
    "single_session",
]
