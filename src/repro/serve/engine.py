"""The serving engine facade: admit, feed, tick, close.

:class:`ServingEngine` glues the :class:`~repro.serve.SessionManager`
and :class:`~repro.serve.Scheduler` into the object an application
embeds. One engine serves any number of concurrent tracking sessions —
heterogeneous configurations land in separate cohorts, each advanced in
lockstep through its shared session-vectorized pipeline.

The N=1 degenerate case is exactly ``Pipeline.run_stream``: a tick with
one session is the same ``Pipeline.tick`` call ``Pipeline.push`` makes,
so the realtime apps are thin single-session views over this engine
with no second code path (pinned bitwise by ``tests/test_serve.py``).
"""

from __future__ import annotations

import numpy as np

from ..multi.tracks import TrackManager
from ..pipeline.multi import Associate
from ..pipeline.runner import PipelineResult
from .scheduler import Scheduler, SessionManager
from .session import Session, SessionSpec


class ServingEngine:
    """Serve many concurrent tracking sessions from one process.

    Args:
        queue_capacity: per-session input queue bound. A producer that
            outruns the scheduler is refused frames (``offer`` returns
            False) once its queue holds this many.

    Example:
        >>> from repro.serve import ServingEngine, single_session
        >>> engine = ServingEngine()
        >>> spec = single_session()
        >>> a, b = engine.admit(spec), engine.admit(spec)  # one cohort
        >>> # engine.offer(a, block); engine.tick(); a.last_position ...
    """

    def __init__(self, queue_capacity: int = 64) -> None:
        self.manager = SessionManager(queue_capacity)
        self.scheduler = Scheduler(self.manager)

    @property
    def num_sessions(self) -> int:
        """Live sessions across every cohort."""
        return self.manager.num_sessions

    def admit(self, spec: SessionSpec) -> Session:
        """Open a session; joins an existing cohort when specs match."""
        return self.manager.admit(spec)

    def offer(self, session: Session, sweep_block: np.ndarray) -> bool:
        """Enqueue one frame for a session; False on backpressure."""
        return session.offer(sweep_block)

    def submit(self, session: Session, sweep_block: np.ndarray) -> None:
        """Enqueue one frame, ticking the scheduler until accepted.

        The blocking flavor of :meth:`offer`: backpressure is resolved
        by advancing the whole engine (which drains this session's
        queue along with everyone else's).
        """
        while not session.offer(sweep_block):
            if self.scheduler.tick() == 0:  # pragma: no cover - defensive
                raise RuntimeError(
                    "queue full but nothing to schedule; "
                    "this indicates an engine bug"
                )

    def tick(self) -> int:
        """One lockstep pass over all cohorts; frames consumed."""
        return self.scheduler.tick()

    def drain(self) -> int:
        """Tick until all queues are empty; total frames consumed."""
        return self.scheduler.drain()

    def close(self, session: Session) -> PipelineResult:
        """Finish a session: drain its queue, free its slot, return all.

        Closing evicts only this session's state rows — cohort mates
        continue bit-identically, which the serving tests pin.
        """
        while session.queue:
            self.scheduler.tick()
        return self.manager.retire(session)

    def evict(self, session: Session) -> None:
        """Drop a session immediately, discarding any queued frames."""
        self.manager.retire(session)

    def track_manager(self, session: Session) -> TrackManager:
        """The per-session track bank of a live multi-person session."""
        cohort = self.manager.cohort_of(session)
        stage = cohort.pipeline.stage(Associate)
        return stage.manager_for(session.slot)
