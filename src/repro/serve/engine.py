"""The serving engine facade: admit, feed, tick, close — local or sharded.

:class:`ServingEngine` glues admission and scheduling into the object
an application embeds. One engine serves any number of concurrent
tracking sessions — heterogeneous configurations land in separate
cohorts, each advanced in lockstep through a shared session-vectorized
pipeline.

With ``workers=0`` (the default) everything runs in this process: the
:class:`~repro.serve.SessionManager` + :class:`~repro.serve.Scheduler`
pair of PR 4, bit-for-bit. With ``workers=N`` the engine becomes the
**front end of a distributed tier**: N long-lived shard worker
processes (one :class:`~repro.serve.shard.ShardWorker` each, behind a
:class:`~repro.exec.pool.WorkerPool`) host the cohort pipelines, and a
:class:`~repro.serve.shard.DistributedScheduler` places whole cohorts,
routes admissions/frames/evictions, and merges per-session results and
latency reports. For the same admission schedule the two modes produce
identical outputs (test-pinned): tick rows are independent sessions,
so partitioning them across processes changes where the arithmetic
runs, never what it computes.

The N=1 degenerate case is exactly ``Pipeline.run_stream``: a tick with
one session is the same ``Pipeline.tick`` call ``Pipeline.push`` makes,
so the realtime apps are thin single-session views over this engine
with no second code path (pinned bitwise by ``tests/test_serve.py``).
"""

from __future__ import annotations

import numpy as np

from ..exec.pool import WorkerPool, pool_available
from ..exec.transport import DEFAULT_ARENA_BYTES, MAX_ARENA_BYTES
from ..multi.tracks import TrackManager
from ..pipeline.multi import Associate
from ..pipeline.runner import PipelineResult
from .scheduler import Scheduler, SessionManager
from .session import AdmissionRefused, Session, SessionSpec
from .shard import DistributedScheduler, ShardWorker


class ServingEngine:
    """Serve many concurrent tracking sessions, from one process or many.

    Args:
        queue_capacity: per-session input queue bound. A producer that
            outruns the scheduler is refused frames (``offer`` returns
            False) once its queue holds this many.
        workers: shard worker processes. 0 (default) serves everything
            in-process — today's single-process path, unchanged. N >= 1
            forks N long-lived shard workers and distributes cohorts
            across them; on platforms without ``fork`` the engine falls
            back to in-process serving (check :attr:`workers` for the
            effective count).
        admission: optional admission gate — an object with
            ``admit(spec, engine) -> bool`` plus ``admitted(session)``
            / ``retired(session)`` callbacks (see
            :class:`repro.loadgen.MemoryGovernor`). A refused admission
            makes :meth:`try_admit` return None and :meth:`admit` raise
            :class:`~repro.serve.session.AdmissionRefused`, counted in
            :attr:`rejected_admissions`.
        memory_model: optional per-session memory estimator
            (``estimate(spec) -> bytes``) the distributed scheduler
            uses to place cohorts by *predicted bytes* instead of raw
            session counts.
        shard_budget_bytes: per-shard memory cap — with a
            ``memory_model``, an admission whose predicted footprint
            fits no shard is refused.
        transport: shard IPC data plane — ``"pipe"`` (pickle
            everything, the default) or ``"shm"`` (bulk arrays through
            per-worker shared-memory arenas); ``None`` defers to
            ``REPRO_TRANSPORT``. Identical outputs either way.
        arena_bytes: per-direction shm region size per shard worker.
            ``None`` derives it from ``shard_budget_bytes`` when a
            memory model governs placement — every session's estimate
            includes its whole bounded input queue, so a budget-sized
            arena provably holds any one step's payload — and falls
            back to :data:`~repro.exec.transport.DEFAULT_ARENA_BYTES`
            otherwise. An undersized arena is safe: overflowing arrays
            ride the pipe (counted in ``arena_overflows``).

    Example:
        >>> from repro.serve import ServingEngine, single_session
        >>> engine = ServingEngine()          # or ServingEngine(workers=4)
        >>> spec = single_session()
        >>> a, b = engine.admit(spec), engine.admit(spec)  # one cohort
        >>> # engine.offer(a, block); engine.tick(); a.last_position ...
    """

    def __init__(
        self,
        queue_capacity: int = 64,
        workers: int = 0,
        admission=None,
        memory_model=None,
        shard_budget_bytes: int | None = None,
        transport: str | None = None,
        arena_bytes: int | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if workers and not pool_available():
            workers = 0  # graceful serial fallback (no fork, no shards)
        self.workers = workers
        self.admission = admission
        self.rejected_admissions = 0
        self.pool: WorkerPool | None = None
        if workers:
            if arena_bytes is None and (
                memory_model is not None and shard_budget_bytes is not None
            ):
                # Predict-before-allocate arena sizing: admission keeps
                # Σ estimate(spec) ≤ budget per shard, and each estimate
                # already counts the session's full queue_capacity of
                # frames — a superset of any one step's burst — so the
                # budget upper-bounds a step payload.
                arena_bytes = max(
                    DEFAULT_ARENA_BYTES,
                    min(int(shard_budget_bytes), MAX_ARENA_BYTES),
                )
            self.pool = WorkerPool(
                workers,
                actor_factory=ShardWorker,
                transport=transport,
                arena_bytes=arena_bytes,
            )
            self.manager = None
            self.scheduler: Scheduler | DistributedScheduler = (
                DistributedScheduler(
                    self.pool,
                    queue_capacity,
                    memory_model=memory_model,
                    shard_budget_bytes=shard_budget_bytes,
                )
            )
        else:
            self.manager = SessionManager(queue_capacity)
            self.scheduler = Scheduler(self.manager)

    @property
    def distributed(self) -> bool:
        """True when sessions are served by shard worker processes."""
        return self.pool is not None

    @property
    def transport(self) -> str:
        """Effective shard IPC transport (``"local"`` in-process)."""
        if self.pool is None:
            return "local"
        return self.pool.transport

    def transport_stats(self) -> dict | None:
        """Pool-wide IPC byte/round counters (None in-process)."""
        if self.pool is None:
            return None
        return self.pool.transport_stats()

    @property
    def num_sessions(self) -> int:
        """Live sessions across every cohort."""
        if self.distributed:
            return self.scheduler.num_sessions
        return self.manager.num_sessions

    def admit(self, spec: SessionSpec) -> Session:
        """Open a session; joins an existing cohort when specs match.

        Raises :class:`~repro.serve.session.AdmissionRefused` when an
        admission gate or shard memory budget declines the session.
        """
        session = self.try_admit(spec)
        if session is None:
            raise AdmissionRefused(
                "admission refused: the engine's admission gate or shard "
                "memory budget declined this session"
            )
        return session

    def try_admit(self, spec: SessionSpec) -> Session | None:
        """Open a session, or return None when admission is refused.

        The open-loop flavor of :meth:`admit`: a load source that keeps
        arriving regardless of engine health checks the return value and
        counts the rejection instead of unwinding. Every refusal — gate
        or shard budget — increments :attr:`rejected_admissions`.
        """
        if self.admission is not None and not self.admission.admit(spec, self):
            self.rejected_admissions += 1
            return None
        try:
            if self.distributed:
                session = self.scheduler.admit(spec)
            else:
                session = self.manager.admit(spec)
        except AdmissionRefused:
            self.rejected_admissions += 1
            return None
        if self.admission is not None:
            self.admission.admitted(session)
        return session

    def offer(self, session: Session, sweep_block: np.ndarray) -> bool:
        """Enqueue one frame for a session; False on backpressure."""
        return session.offer(sweep_block)

    def submit(self, session: Session, sweep_block: np.ndarray) -> None:
        """Enqueue one frame, ticking the scheduler until accepted.

        The blocking flavor of :meth:`offer`: backpressure is resolved
        by advancing the whole engine (which drains this session's
        queue along with everyone else's).
        """
        while not session.offer(sweep_block):
            if self.scheduler.tick() == 0:  # pragma: no cover - defensive
                raise RuntimeError(
                    "queue full but nothing to schedule; "
                    "this indicates an engine bug"
                )

    def tick(self) -> int:
        """One lockstep pass over all cohorts; frames consumed."""
        return self.scheduler.tick()

    def drain(self) -> int:
        """Tick until all queues are empty; total frames consumed."""
        return self.scheduler.drain()

    def close(self, session: Session) -> PipelineResult:
        """Finish a session: drain its queue, free its slot, return all.

        Closing evicts only this session's state rows — cohort mates
        continue bit-identically, which the serving tests pin.
        """
        while session.queue:
            self.scheduler.tick()
        return self._retire(session)

    def evict(self, session: Session) -> None:
        """Drop a session immediately, discarding any queued frames."""
        self._retire(session)

    def _retire(self, session: Session) -> PipelineResult:
        if self.distributed:
            result = self.scheduler.retire(session)
        else:
            result = self.manager.retire(session)
        if self.admission is not None:
            self.admission.retired(session)
        return result

    def stage_profile(self) -> "StageProfiler":
        """Merged per-stage {calls, wall, bytes} across the whole engine.

        Counters accumulate while pipelines run with profiling enabled
        (``REPRO_PROFILE=1`` or
        :func:`repro.kernels.enable_profiling` before the engine is
        built) and include cohorts already retired; with profiling off
        the result is empty. Render with
        :meth:`~repro.kernels.StageProfiler.table` or serialize with
        :meth:`~repro.kernels.StageProfiler.as_dict`.
        """
        return self.scheduler.stage_profile()

    def resync(self) -> None:
        """Recover the shard IPC after an interrupted wait (Ctrl-C).

        No-op in-process. Distributed, an interrupt may have left shard
        responses unread mid-``tick``; dropping them re-arms the pool so
        live sessions can still be drained and closed for a partial
        summary.
        """
        if self.pool is not None:
            self.pool.resync()

    def shutdown(self) -> None:
        """Stop the shard workers (no-op for an in-process engine).

        Idempotent; live sessions' accumulated results stay readable
        (they live in the front end), but no further frames can be
        processed.
        """
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def track_manager(self, session: Session) -> TrackManager:
        """The per-session track bank of a live multi-person session.

        In-process engines only: a distributed session's track bank
        lives inside its shard worker and has no parent-side object.
        """
        if self.distributed:
            raise RuntimeError(
                "track managers live inside shard workers when serving "
                "distributed; use workers=0 for in-process access"
            )
        cohort = self.manager.cohort_of(session)
        stage = cohort.pipeline.stage(Associate)
        return stage.manager_for(session.slot)
