"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .metrics import Cdf, ErrorSummary


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []

    def render_row(cells: Sequence[object]) -> str:
        return "  ".join(
            str(cell).rjust(width) for cell, width in zip(cells, widths)
        )

    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def render_summary_rows(
    labels: Sequence[str],
    summaries: Sequence[ErrorSummary],
    unit: str = "cm",
    factor: float = 100.0,
) -> str:
    """Render median/p90 error summaries as a table."""
    rows = [
        [
            label,
            f"{s.median * factor:.1f} {unit}",
            f"{s.p90 * factor:.1f} {unit}",
            s.count,
        ]
        for label, s in zip(labels, summaries)
    ]
    return format_table(["dimension", "median", "90th pct", "samples"], rows)


def render_cdf(
    cdf: Cdf,
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 95),
    unit: str = "cm",
    factor: float = 100.0,
) -> str:
    """Render chosen quantiles of a CDF as a table row set."""
    rows = [
        [f"p{int(q)}", f"{cdf.percentile(q) * factor:.1f} {unit}"]
        for q in quantiles
    ]
    return format_table(["quantile", "value"], rows)


def ascii_series(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Tiny ASCII plot for example scripts (no matplotlib dependency)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if x.size == 0:
        return "(no data)"
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{label}  [y: {y_lo:.2f}..{y_hi:.2f}]  [x: {x_lo:.2f}..{x_hi:.2f}]"
    return "\n".join([header] + lines)
