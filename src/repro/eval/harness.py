"""Experiment runner: the paper's Section 8 protocol in code.

One tracking experiment = one subject moving at will for a minute while
WiTrack (through the wall) and the simulated VICON both record her; the
evaluation compensates the per-person center-to-surface depth offline and
scores per-dimension errors — exactly the Section 8(a) procedure.

Scale control: the paper runs 100 x 1-minute experiments per figure.
``REPRO_SCALE=paper`` reproduces that; the default "ci" scale trims to a
few short experiments so the whole benchmark suite finishes in minutes.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

import numpy as np

from ..config import ArrayConfig, SystemConfig, default_config
from ..exec.cache import synthesize, tracked_multi_scenario, tracked_scenario
from ..core.falls import FallDetector, FallVerdict
from ..core.pointing import PointingEstimator
from ..core.tof import TOFEstimator
from ..core.tracker import TrackResult, WiTrack
from ..multi import MultiScenario, MultiTrack, MultiWiTrack
from ..sim.body import HumanBody, sample_population
from ..sim.gestures import PointingGesture, pointing_session
from ..sim.motion import (
    Trajectory,
    fall_trace,
    non_colliding_walks,
    random_walk,
    sit_on_chair_trace,
    sit_on_floor_trace,
    stand_still,
    walk_trace,
)
from ..sim.room import Room, line_of_sight_room, through_wall_room
from ..sim.vicon import DepthCalibration, ViconSystem
from ..sim.scenario import Scenario
from .metrics import (
    ErrorSummary,
    MotSummary,
    mot_metrics,
    ospa_series,
    summarize_errors,
)


@dataclass(frozen=True)
class ExperimentScale:
    """How much data to collect per figure.

    Attributes:
        num_experiments: experiments per configuration point.
        duration_s: duration of each experiment.
        name: scale label.
    """

    num_experiments: int
    duration_s: float
    name: str


#: The paper's protocol: "100 experiments each lasting for 1 minute".
PAPER_SCALE = ExperimentScale(num_experiments=100, duration_s=60.0, name="paper")

#: Reduced default so benches complete in minutes (documented in DESIGN.md).
CI_SCALE = ExperimentScale(num_experiments=6, duration_s=12.0, name="ci")


def current_scale() -> ExperimentScale:
    """Resolve the active scale from the ``REPRO_SCALE`` environment.

    Accepted forms: ``ci`` (the default), ``paper`` (the full Section 8
    protocol), or ``<n>x<secs>`` for a custom scale — e.g.
    ``REPRO_SCALE=20x30`` runs 20 experiments of 30 seconds each
    (fractional seconds allowed: ``20x7.5``).
    """
    value = os.environ.get("REPRO_SCALE", "ci").strip().lower()
    if value == "paper":
        return PAPER_SCALE
    if value == "ci":
        return CI_SCALE
    match = re.fullmatch(r"(\d+)x(\d+(?:\.\d+)?)", value)
    if match:
        num, secs = int(match.group(1)), float(match.group(2))
        if num >= 1 and secs > 0:
            return ExperimentScale(
                num_experiments=num, duration_s=secs, name=value
            )
    raise ValueError(
        f"unknown REPRO_SCALE: {value!r} — accepted forms: 'ci' "
        f"({CI_SCALE.num_experiments} x {CI_SCALE.duration_s:.0f} s), "
        f"'paper' ({PAPER_SCALE.num_experiments} x "
        f"{PAPER_SCALE.duration_s:.0f} s), or '<n>x<secs>' for n >= 1 "
        "experiments of <secs> > 0 seconds each (e.g. '20x30')"
    )


@dataclass(frozen=True)
class TrackingExperiment:
    """Parameters of one tracking experiment.

    Attributes:
        seed: controls subject draw, trajectory and RF noise.
        through_wall: device behind the wall (Fig. 8b) or inside (8a).
        duration_s: session length.
        antenna_separation_m: Tx-Rx spacing (Fig. 10 sweeps this).
        walk_area: x/y ranges the subject walks in (Fig. 9 moves it
            deeper to increase distance from the device).
        config: full system configuration override.
        mode: "batch" runs the pipeline block-vectorized
            (``run_batch``); "stream" runs it frame-at-a-time
            (``run_stream``). Both drive the same stage graph and the
            scores agree — which is the point.
    """

    seed: int
    through_wall: bool = True
    duration_s: float = 60.0
    antenna_separation_m: float = 1.0
    walk_area: tuple[tuple[float, float], tuple[float, float]] | None = None
    config: SystemConfig | None = None
    mode: str = "batch"

    def __post_init__(self) -> None:
        if self.mode not in ("batch", "stream"):
            raise ValueError(f"unknown mode: {self.mode!r}")


@dataclass(frozen=True)
class TrackingOutcome:
    """Result of one tracking experiment.

    Attributes:
        errors_xyz: absolute per-dimension errors, shape ``(n, 3)``.
        distances_m: subject distance from the device per frame.
        track: the WiTrack output.
        truth_surface: the depth-compensated ground truth the errors are
            measured against.
        body: the simulated subject.
    """

    errors_xyz: np.ndarray
    distances_m: np.ndarray
    track: TrackResult
    truth_surface: np.ndarray
    body: HumanBody

    def summaries(self) -> tuple[ErrorSummary, ErrorSummary, ErrorSummary]:
        """Per-dimension error summaries (x, y, z)."""
        return (
            summarize_errors(self.errors_xyz[:, 0]),
            summarize_errors(self.errors_xyz[:, 1]),
            summarize_errors(self.errors_xyz[:, 2]),
        )


def _experiment_config(exp: TrackingExperiment) -> SystemConfig:
    config = exp.config or default_config()
    if exp.antenna_separation_m != config.array.separation_m:
        config = config.replace(
            array=ArrayConfig(
                separation_m=exp.antenna_separation_m,
                height_m=config.array.height_m,
                beam_exponent=config.array.beam_exponent,
                num_receivers=config.array.num_receivers,
            )
        )
    return config


def _experiment_room(exp: TrackingExperiment) -> Room:
    return through_wall_room() if exp.through_wall else line_of_sight_room()


def run_tracking_experiment(exp: TrackingExperiment) -> TrackingOutcome:
    """Run one full tracking experiment and score it like the paper.

    The error of a frame is the absolute per-dimension difference between
    WiTrack's output and the VICON-recorded body center *after depth
    compensation* (Section 8a): the center is shifted toward the device
    by the person's offline-calibrated center-to-surface depth.
    """
    rng = np.random.default_rng(exp.seed)
    body = sample_population(rng, count=11)[exp.seed % 11]
    room = _experiment_room(exp)
    config = _experiment_config(exp)

    trajectory = random_walk(
        room,
        rng,
        duration_s=exp.duration_s,
        area=exp.walk_area,
    )
    scenario = Scenario(
        trajectory, room=room, body=body, config=config, seed=exp.seed + 1
    )
    tracker = WiTrack(config, array=scenario.array)
    if exp.mode == "stream":
        # Streaming mode exists to exercise the frame-at-a-time path, so
        # it only uses the spectra cache, never the result cache.
        measured = synthesize(scenario)
        track = tracker.track_stream(measured.spectra, measured.range_bin_m)
    else:
        # Batch mode goes through the result-level cache (REPRO_CACHE):
        # an unchanged (scenario, pipeline) rerun skips tracking too.
        track = tracked_scenario(scenario, tracker)

    # Ground truth: VICON capture of the body center, then the paper's
    # offline depth compensation.
    vicon = ViconSystem()
    captured = vicon.capture(trajectory, np.random.default_rng(exp.seed + 2))
    centers = captured.resample(track.frame_times_s)
    depth = DepthCalibration().measure_depth(
        body, np.random.default_rng(exp.seed + 3)
    )
    truth_surface = DepthCalibration().compensate(centers, depth)

    valid = track.valid_mask
    errors = np.full((track.num_frames, 3), np.nan)
    errors[valid] = np.abs(track.positions[valid] - truth_surface[valid])
    distances = np.linalg.norm(centers, axis=1)
    return TrackingOutcome(
        errors_xyz=errors,
        distances_m=distances,
        track=track,
        truth_surface=truth_surface,
        body=body,
    )


@dataclass(frozen=True)
class MultiTrackingOutcome:
    """Result of one multi-person tracking experiment.

    Attributes:
        mot: CLEAR-MOT accounting vs. the depth-compensated truth.
        ospa_series_m: per-frame OSPA distance.
        result: the :class:`~repro.multi.MultiTrack` produced.
        truths: depth-compensated ground truth, shape
            ``(n_people, n_frames, 3)``.
        bodies: the simulated subjects.
    """

    mot: MotSummary
    ospa_series_m: np.ndarray
    result: MultiTrack
    truths: np.ndarray
    bodies: tuple[HumanBody, ...]

    @property
    def ospa_mean_m(self) -> float:
        """Session-mean OSPA distance."""
        return float(np.mean(self.ospa_series_m))

    def person_error_summary(self, person: int) -> ErrorSummary:
        """Matched-frame 3D error summary of one person."""
        return summarize_errors(self.mot.per_truth_errors[person])


def run_multi_tracking_experiment(
    num_people: int,
    seed: int,
    duration_s: float = 12.0,
    through_wall: bool = True,
    min_separation_m: float = 1.0,
    config: SystemConfig | None = None,
    match_threshold_m: float = 1.0,
) -> MultiTrackingOutcome:
    """Run one K-person experiment and score it like the paper would.

    ``num_people`` walkers random-walk in depth-separated bands (the
    well-separated workload); the multi-person tracker runs on the
    superimposed spectra, and each person's track is scored against her
    VICON-captured, depth-compensated body center — the single-person
    Section 8(a) protocol applied per target — plus the multi-target
    OSPA and CLEAR-MOT scores.
    """
    if num_people < 1:
        raise ValueError("num_people must be at least 1")
    rng = np.random.default_rng(seed)
    bodies = tuple(
        sample_population(rng, count=max(11, num_people))[:num_people]
    )
    room = through_wall_room() if through_wall else line_of_sight_room()
    config = config or default_config()
    walks = non_colliding_walks(
        room,
        rng,
        num_people,
        duration_s=duration_s,
        min_separation_m=min_separation_m,
    )
    scenario = MultiScenario(
        list(zip(bodies, walks)), room=room, config=config, seed=seed + 1
    )
    tracker = MultiWiTrack(
        config, max_people=num_people, room=room
    )
    # Through the result-level cache (REPRO_CACHE): an unchanged
    # (scenario, pipeline) rerun skips synthesis *and* tracking, for
    # multi-person runs too since the track arrays gained a stable
    # serialization.
    result = tracked_multi_scenario(scenario, tracker)

    vicon = ViconSystem()
    calibration = DepthCalibration()
    truths = np.empty((num_people, result.num_frames, 3))
    for p, (body, walk) in enumerate(zip(bodies, walks)):
        captured = vicon.capture(
            walk, np.random.default_rng(seed + 2 + 7 * p)
        )
        centers = captured.resample(result.frame_times_s)
        depth = calibration.measure_depth(
            body, np.random.default_rng(seed + 3 + 7 * p)
        )
        truths[p] = calibration.compensate(centers, depth)

    mot = mot_metrics(
        truths, result.positions, match_threshold_m=match_threshold_m
    )
    ospa = ospa_series(truths, result.positions)
    return MultiTrackingOutcome(
        mot=mot,
        ospa_series_m=ospa,
        result=result,
        truths=truths,
        bodies=bodies,
    )


@dataclass(frozen=True)
class PointingOutcome:
    """Result of one pointing experiment.

    Attributes:
        error_deg: angle between estimated and true pointing direction
            (NaN when the estimator found no gesture).
        gesture: the simulated ground-truth gesture.
    """

    error_deg: float
    gesture: PointingGesture


def run_pointing_experiment(
    seed: int,
    through_wall: bool = True,
    config: SystemConfig | None = None,
) -> PointingOutcome:
    """One Section 9.4 pointing experiment.

    The subject stands at a random spot in the capture area, stays still,
    performs a lift-hold-drop pointing gesture, and stays still again.
    """
    rng = np.random.default_rng(seed)
    body = sample_population(rng, count=11)[seed % 11]
    room = through_wall_room() if through_wall else line_of_sight_room()
    config = config or default_config()

    position = np.array(
        [rng.uniform(-2.0, 2.0), rng.uniform(3.0, 6.5), 0.0]
    )
    gesture = pointing_session(position, rng)
    lead = 1.0
    duration = lead + gesture.duration_s + 1.0
    trajectory = stand_still(position, duration_s=duration, label="point")

    scenario = Scenario(
        trajectory,
        room=room,
        body=body,
        config=config,
        gesture=gesture,
        gesture_start_s=lead,
        seed=seed + 1,
    )
    measured = synthesize(scenario)

    estimator = TOFEstimator(
        config.fmcw.sweep_duration_s, measured.range_bin_m, config.pipeline
    )
    estimates = tuple(
        estimator.estimate(measured.spectra[i])
        for i in range(measured.num_rx)
    )
    tracker = WiTrack(config, array=scenario.array)
    pointing = PointingEstimator(tracker.solver)
    result = pointing.estimate(estimates)
    if result is None:
        return PointingOutcome(error_deg=float("nan"), gesture=gesture)
    return PointingOutcome(
        error_deg=result.error_deg(gesture.true_direction()),
        gesture=gesture,
    )


@dataclass(frozen=True)
class FallOutcome:
    """Result of one fall-detection experiment.

    Attributes:
        verdict: the detector's decision.
        true_label: ground-truth activity label.
        elevation_trace: tracked elevation above floor (diagnostics).
    """

    verdict: FallVerdict
    true_label: str
    elevation_trace: np.ndarray


def make_activity_trajectory(
    activity: str,
    room: Room,
    rng: np.random.Generator,
    duration_s: float = 24.0,
) -> Trajectory:
    """Build one of the four Section 9.5 activity trajectories."""
    spot = np.array([rng.uniform(-1.5, 1.5), rng.uniform(3.5, 6.0)])
    if activity == "walk":
        return walk_trace(room, rng, duration_s=duration_s)
    if activity == "sit_chair":
        return sit_on_chair_trace(spot, rng, duration_s=duration_s)
    if activity == "sit_floor":
        return sit_on_floor_trace(
            spot, rng, duration_s=duration_s,
            device_height_m=room.device_height_m,
        )
    if activity == "fall":
        return fall_trace(
            spot, rng, duration_s=duration_s,
            device_height_m=room.device_height_m,
        )
    raise ValueError(f"unknown activity: {activity!r}")


def run_fall_experiment(
    seed: int,
    activity: str,
    through_wall: bool = True,
    config: SystemConfig | None = None,
    detector: FallDetector | None = None,
    duration_s: float = 24.0,
) -> FallOutcome:
    """One Section 9.5 experiment: track an activity, classify the trace."""
    rng = np.random.default_rng(seed)
    body = sample_population(rng, count=11)[seed % 11]
    room = through_wall_room() if through_wall else line_of_sight_room()
    config = config or default_config()

    trajectory = make_activity_trajectory(activity, room, rng, duration_s)
    scenario = Scenario(
        trajectory, room=room, body=body, config=config, seed=seed + 1
    )
    track = tracked_scenario(scenario, WiTrack(config, array=scenario.array))

    elevation = track.positions[:, 2] - room.floor_z
    detector = detector or FallDetector()
    verdict = detector.classify(track.frame_times_s, elevation)
    return FallOutcome(
        verdict=verdict, true_label=activity, elevation_trace=elevation
    )
