"""Evaluation harness: metrics, experiment runner, and figure generators.

Reproduces the paper's Section 8-9 protocol: VICON-style ground truth,
per-person depth calibration, N experiments of free movement, and one
generator per published figure/table (see DESIGN.md Section 4).
"""

from .metrics import (
    Cdf,
    ErrorSummary,
    classification_scores,
    error_cdf,
    summarize_errors,
)
from .harness import (
    ExperimentScale,
    TrackingExperiment,
    TrackingOutcome,
    current_scale,
    run_fall_experiment,
    run_pointing_experiment,
    run_tracking_experiment,
)
from . import figures
from .reporting import format_table, render_cdf, render_summary_rows

__all__ = [
    "Cdf",
    "ErrorSummary",
    "classification_scores",
    "error_cdf",
    "summarize_errors",
    "ExperimentScale",
    "TrackingExperiment",
    "TrackingOutcome",
    "current_scale",
    "run_fall_experiment",
    "run_pointing_experiment",
    "run_tracking_experiment",
    "figures",
    "format_table",
    "render_cdf",
    "render_summary_rows",
]
