"""Error metrics: CDFs, percentiles, and classification scores.

The paper reports per-dimension location-error CDFs (Fig. 8, 11), median
and 90th-percentile errors (Fig. 9, 10), and precision/recall/F-measure
for fall detection (Section 9.5). These are the exact statistics
implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF.

    Attributes:
        values: sorted sample values.
        fractions: fraction of measurements at or below each value.
    """

    values: np.ndarray
    fractions: np.ndarray

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100)."""
        return float(np.percentile(self.values, q))

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """90th percentile."""
        return self.percentile(90.0)

    def fraction_below(self, value: float) -> float:
        """Fraction of measurements at or below ``value``."""
        return float(np.searchsorted(self.values, value, side="right")) / max(
            len(self.values), 1
        )


def error_cdf(errors: np.ndarray) -> Cdf:
    """Build an empirical CDF from error samples (NaNs dropped)."""
    errors = np.asarray(errors, dtype=np.float64)
    finite = np.sort(errors[np.isfinite(errors)])
    if finite.size == 0:
        raise ValueError("no finite error samples")
    fractions = np.arange(1, len(finite) + 1) / len(finite)
    return Cdf(values=finite, fractions=fractions)


@dataclass(frozen=True)
class ErrorSummary:
    """Median / 90th percentile / mean of an error population.

    Attributes:
        median: 50th-percentile error.
        p90: 90th-percentile error.
        mean: mean error.
        count: number of samples.
    """

    median: float
    p90: float
    mean: float
    count: int

    def scaled(self, factor: float) -> "ErrorSummary":
        """Unit conversion helper (e.g. meters -> centimeters)."""
        return ErrorSummary(
            median=self.median * factor,
            p90=self.p90 * factor,
            mean=self.mean * factor,
            count=self.count,
        )


def summarize_errors(errors: np.ndarray) -> ErrorSummary:
    """Summarize an error population (NaNs dropped)."""
    errors = np.asarray(errors, dtype=np.float64)
    finite = errors[np.isfinite(errors)]
    if finite.size == 0:
        raise ValueError("no finite error samples")
    return ErrorSummary(
        median=float(np.median(finite)),
        p90=float(np.percentile(finite, 90)),
        mean=float(np.mean(finite)),
        count=int(finite.size),
    )


@dataclass(frozen=True)
class ClassificationScores:
    """Precision / recall / F-measure of a binary detector.

    Attributes:
        true_positives: detected real events.
        false_positives: detections with no real event.
        false_negatives: missed real events.
        true_negatives: correctly ignored non-events.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was detected."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there were no real events."""
        real = self.true_positives + self.false_negatives
        return self.true_positives / real if real else 1.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of all decisions that were correct."""
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0


def classification_scores(
    predictions: list[bool], labels: list[bool]
) -> ClassificationScores:
    """Score binary predictions against ground-truth labels."""
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have equal length")
    tp = sum(1 for p, l in zip(predictions, labels) if p and l)
    fp = sum(1 for p, l in zip(predictions, labels) if p and not l)
    fn = sum(1 for p, l in zip(predictions, labels) if not p and l)
    tn = sum(1 for p, l in zip(predictions, labels) if not p and not l)
    return ClassificationScores(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def per_dimension_errors(
    estimated: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Absolute per-axis errors, shape ``(n, 3)`` (the Fig. 8 quantity)."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ValueError("estimated and truth must have the same shape")
    return np.abs(estimated - truth)
