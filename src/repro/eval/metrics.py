"""Error metrics: CDFs, percentiles, classification, and multi-target.

The paper reports per-dimension location-error CDFs (Fig. 8, 11), median
and 90th-percentile errors (Fig. 9, 10), and precision/recall/F-measure
for fall detection (Section 9.5). These are the exact statistics
implemented here, plus the multi-target extensions the ``repro.multi``
subsystem is scored with: the OSPA set distance and CLEAR-MOT
(MOTA / misses / false positives / identity switches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..multi.association import assign_fixes


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF.

    Attributes:
        values: sorted sample values.
        fractions: fraction of measurements at or below each value.
    """

    values: np.ndarray
    fractions: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.size == 0:
            raise ValueError(
                "Cdf needs at least one sample (got an empty value array); "
                "multi-target tracks with zero valid frames must be "
                "filtered out before building error statistics"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError(
                "Cdf values must be finite; drop NaN/inf samples first "
                "(error_cdf does this for you)"
            )

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100)."""
        return float(np.percentile(self.values, q))

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """90th percentile."""
        return self.percentile(90.0)

    def fraction_below(self, value: float) -> float:
        """Fraction of measurements at or below ``value``."""
        return float(np.searchsorted(self.values, value, side="right")) / max(
            len(self.values), 1
        )


def error_cdf(errors: np.ndarray) -> Cdf:
    """Build an empirical CDF from error samples (NaNs dropped)."""
    errors = np.asarray(errors, dtype=np.float64)
    finite = np.sort(errors[np.isfinite(errors)])
    if finite.size == 0:
        raise ValueError("no finite error samples")
    fractions = np.arange(1, len(finite) + 1) / len(finite)
    return Cdf(values=finite, fractions=fractions)


@dataclass(frozen=True)
class ErrorSummary:
    """Median / 90th percentile / mean of an error population.

    Attributes:
        median: 50th-percentile error.
        p90: 90th-percentile error.
        mean: mean error.
        count: number of samples.
    """

    median: float
    p90: float
    mean: float
    count: int

    def scaled(self, factor: float) -> "ErrorSummary":
        """Unit conversion helper (e.g. meters -> centimeters)."""
        return ErrorSummary(
            median=self.median * factor,
            p90=self.p90 * factor,
            mean=self.mean * factor,
            count=self.count,
        )


def summarize_errors(errors: np.ndarray) -> ErrorSummary:
    """Summarize an error population (NaNs dropped)."""
    errors = np.asarray(errors, dtype=np.float64)
    finite = errors[np.isfinite(errors)]
    if finite.size == 0:
        raise ValueError("no finite error samples")
    return ErrorSummary(
        median=float(np.median(finite)),
        p90=float(np.percentile(finite, 90)),
        mean=float(np.mean(finite)),
        count=int(finite.size),
    )


@dataclass(frozen=True)
class ClassificationScores:
    """Precision / recall / F-measure of a binary detector.

    Attributes:
        true_positives: detected real events.
        false_positives: detections with no real event.
        false_negatives: missed real events.
        true_negatives: correctly ignored non-events.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was detected."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there were no real events."""
        real = self.true_positives + self.false_negatives
        return self.true_positives / real if real else 1.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of all decisions that were correct."""
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0


def classification_scores(
    predictions: list[bool], labels: list[bool]
) -> ClassificationScores:
    """Score binary predictions against ground-truth labels."""
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels must have equal length")
    tp = sum(1 for p, l in zip(predictions, labels) if p and l)
    fp = sum(1 for p, l in zip(predictions, labels) if p and not l)
    fn = sum(1 for p, l in zip(predictions, labels) if not p and l)
    tn = sum(1 for p, l in zip(predictions, labels) if not p and not l)
    return ClassificationScores(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def per_dimension_errors(
    estimated: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Absolute per-axis errors, shape ``(n, 3)`` (the Fig. 8 quantity)."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ValueError("estimated and truth must have the same shape")
    return np.abs(estimated - truth)


# -- multi-target metrics ---------------------------------------------------


def _as_track_stack(tracks: np.ndarray, name: str) -> np.ndarray:
    """Coerce to ``(n_tracks, n_frames, 3)``; a 2D array is one track."""
    if tracks.ndim == 2:
        tracks = tracks[None, :, :]
    if tracks.ndim != 3 or tracks.shape[2] != 3:
        raise ValueError(
            f"{name} must have shape (n_tracks, n_frames, 3) or "
            f"(n_frames, 3), got {tracks.shape}"
        )
    return tracks


def _finite_rows(points: np.ndarray) -> np.ndarray:
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if points.size == 0:
        return np.empty((0, 3))
    return points[np.isfinite(points).all(axis=1)]


def ospa_distance(
    truth: np.ndarray,
    estimated: np.ndarray,
    cutoff_m: float = 1.0,
    order: float = 1.0,
) -> float:
    """OSPA distance between two 3D point sets (one frame).

    The Optimal SubPattern Assignment metric of Schuhmacher et al.:
    with ``m <= n`` the smaller/larger set cardinalities, OSPA is

        ( (1/n) * ( min_perm sum d_c(x_i, y_perm(i))^p
                    + c^p * (n - m) ) )^(1/p)

    where ``d_c`` is the cutoff-saturated distance. It jointly penalizes
    localization error and cardinality mismatch, saturating at the
    cutoff ``c`` — the standard single-number score for multi-target
    tracking quality.

    Args:
        truth: ground-truth positions, shape ``(m, 3)``; non-finite
            rows are ignored.
        estimated: estimated positions, shape ``(n, 3)``.
        cutoff_m: the cutoff ``c`` (also the per-miss penalty).
        order: the OSPA order ``p``.

    Returns:
        The OSPA distance (0 when both sets are empty).
    """
    if cutoff_m <= 0:
        raise ValueError("cutoff_m must be positive")
    if order < 1:
        raise ValueError("order must be >= 1")
    a = _finite_rows(truth)
    b = _finite_rows(estimated)
    if len(a) == 0 and len(b) == 0:
        return 0.0
    if len(a) == 0 or len(b) == 0:
        return float(cutoff_m)
    if len(a) > len(b):
        a, b = b, a
    m, n = len(a), len(b)
    dist = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
    clipped = np.minimum(dist, cutoff_m) ** order
    rows, cols = linear_sum_assignment(clipped)
    total = clipped[rows, cols].sum() + cutoff_m**order * (n - m)
    return float((total / n) ** (1.0 / order))


def ospa_series(
    truths: np.ndarray,
    estimates: np.ndarray,
    cutoff_m: float = 1.0,
    order: float = 1.0,
) -> np.ndarray:
    """Per-frame OSPA over whole sessions.

    Args:
        truths: ground-truth tracks, shape ``(n_truth, n_frames, 3)``.
        estimates: estimated tracks, shape ``(n_est, n_frames, 3)``;
            NaN rows mark frames where a track is inactive.
        cutoff_m: OSPA cutoff.
        order: OSPA order.

    Returns:
        OSPA distance per frame, shape ``(n_frames,)``.
    """
    truths = np.asarray(truths, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    n_frames = truths.shape[1] if truths.size else estimates.shape[1]
    out = np.empty(n_frames)
    for f in range(n_frames):
        t = truths[:, f, :] if truths.size else np.empty((0, 3))
        e = estimates[:, f, :] if estimates.size else np.empty((0, 3))
        out[f] = ospa_distance(t, e, cutoff_m=cutoff_m, order=order)
    return out


@dataclass(frozen=True)
class MotSummary:
    """CLEAR-MOT accounting of a multi-target tracking session.

    Attributes:
        mota: multiple-object tracking accuracy,
            ``1 - (misses + false_positives + id_switches) / n_truth``.
        motp_m: mean distance of matched pairs (localization precision).
        misses: truth presences with no matched estimate.
        false_positives: estimate presences with no matched truth.
        id_switches: frames where a truth's matched track id changed.
        matches: matched (truth, estimate) frame pairs.
        num_truth: total truth presences over the session.
        per_truth_errors: matched distance per truth and frame, shape
            ``(n_truth, n_frames)``; NaN where unmatched. This is what
            per-person error CDFs are built from.
        per_truth_switches: identity switches per truth track.
    """

    mota: float
    motp_m: float
    misses: int
    false_positives: int
    id_switches: int
    matches: int
    num_truth: int
    per_truth_errors: np.ndarray
    per_truth_switches: tuple[int, ...]


def mot_metrics(
    truths: np.ndarray,
    estimates: np.ndarray,
    match_threshold_m: float = 1.0,
) -> MotSummary:
    """Score estimated tracks against truth with the CLEAR-MOT protocol.

    Per frame: matches from the previous frame are kept while still
    within the threshold (this is what makes identity switches
    well-defined); remaining truths and estimates are matched by
    Hungarian assignment on distance; a truth matching a *different*
    track id than it last matched counts one identity switch.

    Args:
        truths: ground-truth tracks, shape ``(n_truth, n_frames, 3)``;
            NaN rows mark frames where that person is absent. A single
            2D ``(n_frames, 3)`` track is accepted as one truth.
        estimates: estimated tracks, shape ``(n_est, n_frames, 3)``;
            NaN rows mark frames where that track is inactive. A 2D
            ``(n_frames, 3)`` track is accepted as one estimate.
        match_threshold_m: maximum truth-estimate match distance.

    Returns:
        The session's :class:`MotSummary`.
    """
    truths = _as_track_stack(np.asarray(truths, dtype=np.float64), "truths")
    estimates = _as_track_stack(
        np.asarray(estimates, dtype=np.float64), "estimates"
    )
    if truths.shape[1] != estimates.shape[1]:
        raise ValueError(
            f"truths cover {truths.shape[1]} frames but estimates "
            f"cover {estimates.shape[1]}"
        )
    n_truth, n_frames = truths.shape[0], truths.shape[1]
    n_est = estimates.shape[0]

    misses = false_positives = switches = matches = num_truth = 0
    motp_sum = 0.0
    last_match: dict[int, int] = {}
    per_truth_errors = np.full((n_truth, n_frames), np.nan)
    per_truth_switches = [0] * n_truth

    for f in range(n_frames):
        t_present = [
            i for i in range(n_truth)
            if np.all(np.isfinite(truths[i, f]))
        ]
        e_present = [
            j for j in range(n_est)
            if np.all(np.isfinite(estimates[j, f]))
        ]
        num_truth += len(t_present)
        frame_match: dict[int, int] = {}

        # Keep last frame's pairings while they still hold. Estimates
        # are consumed as they are kept: two truths whose last match was
        # the same track (one went absent meanwhile) must not both keep
        # it, or matches double-count and false positives go negative.
        kept_estimates: set[int] = set()
        for i in list(last_match):
            j = last_match[i]
            if i in t_present and j in e_present and j not in kept_estimates:
                d = float(np.linalg.norm(truths[i, f] - estimates[j, f]))
                if d <= match_threshold_m:
                    frame_match[i] = j
                    kept_estimates.add(j)

        free_t = [i for i in t_present if i not in frame_match]
        taken = set(frame_match.values())
        free_e = [j for j in e_present if j not in taken]
        if free_t and free_e:
            pairs, _, _ = assign_fixes(
                truths[np.array(free_t), f],
                estimates[np.array(free_e), f],
                match_threshold_m,
            )
            for r, c in pairs:
                frame_match[free_t[r]] = free_e[c]

        for i, j in frame_match.items():
            d = float(np.linalg.norm(truths[i, f] - estimates[j, f]))
            matches += 1
            motp_sum += d
            per_truth_errors[i, f] = d
            if i in last_match and last_match[i] != j:
                switches += 1
                per_truth_switches[i] += 1
            last_match[i] = j

        misses += len(t_present) - len(frame_match)
        false_positives += len(e_present) - len(frame_match)

    mota = (
        1.0 - (misses + false_positives + switches) / num_truth
        if num_truth
        else 1.0
    )
    return MotSummary(
        mota=mota,
        motp_m=motp_sum / matches if matches else float("nan"),
        misses=misses,
        false_positives=false_positives,
        id_switches=switches,
        matches=matches,
        num_truth=num_truth,
        per_truth_errors=per_truth_errors,
        per_truth_switches=tuple(per_truth_switches),
    )
