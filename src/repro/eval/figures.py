"""One data generator per paper figure/table (DESIGN.md Section 4).

Each function regenerates the data series behind a figure of the paper.
Benchmarks call these, assert the qualitative shape, and print the same
rows the paper reports. Scale is controlled by
:func:`repro.eval.harness.current_scale` (``REPRO_SCALE=paper`` for the
full protocol).

Every experiment grid here is submitted as one
:class:`~repro.exec.ExperimentPlan` to a
:class:`~repro.exec.Runner` — pass ``runner=`` (or set
``REPRO_WORKERS``) to fan a figure's experiments across a process
pool; results are independent of the runner, so serial and parallel
figures are bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..config import SystemConfig, default_config
from ..core.background import background_subtract
from ..core.spectrogram import Spectrogram, spectrogram_from_sweeps
from ..core.tof import TOFEstimator
from ..exec import ExperimentPlan, Runner, WorkItem, default_runner, synthesize
from ..sim.motion import random_walk, stand_still
from ..sim.room import through_wall_room
from ..sim.scenario import Scenario
from ..sim.gestures import pointing_session
from ..sim.body import sample_population
from .harness import (
    ExperimentScale,
    MultiTrackingOutcome,
    TrackingExperiment,
    current_scale,
    run_fall_experiment,
    run_multi_tracking_experiment,
    run_pointing_experiment,
    run_tracking_experiment,
    make_activity_trajectory,
)
from .metrics import (
    Cdf,
    ClassificationScores,
    ErrorSummary,
    classification_scores,
    error_cdf,
    summarize_errors,
)

#: Ordered activity labels of the Section 9.5 protocol.
FALL_ACTIVITIES = ("walk", "sit_chair", "sit_floor", "fall")


# -- Fig. 3: the TOF pipeline stages ---------------------------------------


@dataclass(frozen=True)
class Fig3Data:
    """The three panels of Fig. 3 for one receive antenna.

    Attributes:
        raw: spectrogram before background subtraction (panel a).
        subtracted: after background subtraction (panel b).
        contour_m: raw bottom contour (panel c, blue).
        denoised_m: de-noised contour (panel c, red).
        truth_m: true round-trip distance per frame.
        frame_times_s: frame timestamps.
    """

    raw: Spectrogram
    subtracted: Spectrogram
    contour_m: np.ndarray
    denoised_m: np.ndarray
    truth_m: np.ndarray
    frame_times_s: np.ndarray


def fig3_tof_pipeline(
    seed: int = 0,
    duration_s: float = 20.0,
    config: SystemConfig | None = None,
) -> Fig3Data:
    """Regenerate Fig. 3: spectrogram -> subtraction -> contour."""
    config = config or default_config()
    rng = np.random.default_rng(seed)
    room = through_wall_room()
    walk = random_walk(room, rng, duration_s=duration_s)
    measured = synthesize(
        Scenario(walk, room=room, seed=seed + 1, config=config)
    )

    raw = spectrogram_from_sweeps(
        measured.spectra[0],
        config.fmcw.sweep_duration_s,
        measured.range_bin_m,
        config.pipeline.sweeps_per_frame,
    ).crop(config.pipeline.max_range_m)
    subtracted = background_subtract(raw)

    estimator = TOFEstimator(
        config.fmcw.sweep_duration_s, measured.range_bin_m, config.pipeline
    )
    estimate = estimator.estimate(measured.spectra[0])

    spf = config.pipeline.sweeps_per_frame
    true_rt = measured.true_round_trips[0]
    n_frames = len(true_rt) // spf
    frame_truth = true_rt[: n_frames * spf].reshape(-1, spf).mean(axis=1)
    return Fig3Data(
        raw=raw,
        subtracted=subtracted,
        contour_m=estimate.raw_contour_m,
        denoised_m=estimate.round_trip_m,
        truth_m=frame_truth[1 : 1 + estimate.num_frames],
        frame_times_s=estimate.frame_times_s,
    )


# -- Fig. 5: whole-body vs arm gesture spectrogram --------------------------


@dataclass(frozen=True)
class Fig5Data:
    """Fig. 5: spectrogram of walk -> stop -> point, plus extents.

    Attributes:
        subtracted: background-subtracted spectrogram.
        extent_m: per-frame mover spatial extent (body >> arm).
        walk_frames: mask of frames during the walk phase.
        gesture_frames: mask of frames during lift/drop motion.
    """

    subtracted: Spectrogram
    extent_m: np.ndarray
    walk_frames: np.ndarray
    gesture_frames: np.ndarray


def fig5_gesture(
    seed: int = 0, config: SystemConfig | None = None
) -> Fig5Data:
    """Regenerate Fig. 5: a human walks, stops, then points."""
    from ..core.contour import motion_extent
    from ..sim.motion import Trajectory

    config = config or default_config()
    rng = np.random.default_rng(seed)
    room = through_wall_room()

    walk_s = 10.0
    walk = random_walk(room, rng, duration_s=walk_s)
    stand_pos = walk.positions[-1].copy()
    gesture = pointing_session(stand_pos, rng)
    stand = stand_still(
        stand_pos, duration_s=2.0 + gesture.duration_s + 1.0
    )
    times = np.concatenate(
        [walk.times_s, walk.times_s[-1] + stand.times_s[1:] + walk.dt_s]
    )
    positions = np.vstack([walk.positions, stand.positions[1:]])
    combined = Trajectory(times, positions, label="walk_then_point")

    measured = synthesize(
        Scenario(
            combined,
            room=room,
            seed=seed + 1,
            config=config,
            gesture=gesture,
            gesture_start_s=walk_s + 2.0,
        )
    )

    raw = spectrogram_from_sweeps(
        measured.spectra[0],
        config.fmcw.sweep_duration_s,
        measured.range_bin_m,
        config.pipeline.sweeps_per_frame,
    ).crop(config.pipeline.max_range_m)
    subtracted = background_subtract(raw)
    extent = motion_extent(subtracted.power, subtracted.range_bin_m)

    frame_t = subtracted.frame_times_s
    walk_mask = frame_t < walk_s
    hand_moving = gesture.hand_is_moving(frame_t - (walk_s + 2.0))
    return Fig5Data(
        subtracted=subtracted,
        extent_m=extent,
        walk_frames=walk_mask,
        gesture_frames=hand_moving,
    )


# -- Fig. 6: elevation traces of the four activities -------------------------


@dataclass(frozen=True)
class Fig6Data:
    """Fig. 6: tracked elevation-vs-time per activity.

    Attributes:
        traces: activity label -> (times_s, elevation_above_floor_m).
    """

    traces: dict[str, tuple[np.ndarray, np.ndarray]]


def fig6_fall_elevations(
    seed: int = 0,
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> Fig6Data:
    """Regenerate Fig. 6's four elevation traces via full tracking."""
    runner = runner or default_runner()
    plan = ExperimentPlan.from_grid(
        run_fall_experiment,
        [
            {"seed": seed * 17 + i, "activity": activity, "config": config}
            for i, activity in enumerate(FALL_ACTIVITIES)
        ],
        name="fig6",
    )
    traces: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for activity, outcome in zip(FALL_ACTIVITIES, runner.run(plan)):
        n = len(outcome.elevation_trace)
        times = np.arange(n) * 0.0125
        traces[activity] = (times, outcome.elevation_trace)
    return Fig6Data(traces=traces)


# -- Fig. 8: localization-error CDFs ----------------------------------------


@dataclass(frozen=True)
class Fig8Data:
    """Fig. 8: per-dimension error CDFs for one deployment.

    Attributes:
        cdf_x, cdf_y, cdf_z: per-dimension CDFs.
        summary_x, summary_y, summary_z: median/p90 summaries.
        through_wall: which panel this is (b when True, a when False).
    """

    cdf_x: Cdf
    cdf_y: Cdf
    cdf_z: Cdf
    summary_x: ErrorSummary
    summary_y: ErrorSummary
    summary_z: ErrorSummary
    through_wall: bool


def fig8_error_cdf(
    through_wall: bool,
    scale: ExperimentScale | None = None,
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> Fig8Data:
    """Regenerate Fig. 8(a) (line of sight) or 8(b) (through wall)."""
    scale = scale or current_scale()
    runner = runner or default_runner()
    plan = ExperimentPlan.from_grid(
        run_tracking_experiment,
        [
            {
                "exp": TrackingExperiment(
                    seed=seed,
                    through_wall=through_wall,
                    duration_s=scale.duration_s,
                    config=config,
                )
            }
            for seed in range(scale.num_experiments)
        ],
        name="fig8",
    )
    stacked = np.vstack([o.errors_xyz for o in runner.run(plan)])
    return Fig8Data(
        cdf_x=error_cdf(stacked[:, 0]),
        cdf_y=error_cdf(stacked[:, 1]),
        cdf_z=error_cdf(stacked[:, 2]),
        summary_x=summarize_errors(stacked[:, 0]),
        summary_y=summarize_errors(stacked[:, 1]),
        summary_z=summarize_errors(stacked[:, 2]),
        through_wall=through_wall,
    )


# -- Figs. 9 & 10 share one submit/aggregate shape ----------------------------


def _tracking_error_grid(
    values: Sequence[float],
    experiment_for: Callable[[float, int], TrackingExperiment],
    per_point: int,
    runner: Runner,
    name: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``per_point`` tracking experiments per grid value, in one plan.

    The whole (value × seed) grid is submitted as a single
    :class:`~repro.exec.ExperimentPlan`, so a process pool balances the
    full figure instead of one grid point at a time. Returns per-value
    per-dimension ``(median_cm, p90_cm)``, each ``(len(values), 3)``.
    """
    items = tuple(
        WorkItem(
            fn=run_tracking_experiment,
            kwargs={"exp": experiment_for(value, seed)},
            key=f"{name}[{value}] seed={seed}",
        )
        for value in values
        for seed in range(per_point)
    )
    outcomes = runner.run(ExperimentPlan(items=items, name=name))
    medians = []
    p90s = []
    for i in range(len(values)):
        group = outcomes[i * per_point : (i + 1) * per_point]
        stacked = np.vstack([o.errors_xyz for o in group])
        medians.append(np.nanmedian(stacked, axis=0) * 100.0)
        p90s.append(np.nanpercentile(stacked, 90, axis=0) * 100.0)
    return np.asarray(medians), np.asarray(p90s)


# -- Fig. 9: error vs distance ------------------------------------------------


@dataclass(frozen=True)
class Fig9Data:
    """Fig. 9: error vs subject distance.

    Attributes:
        distances_m: bin centers (distance from device).
        median_cm: per-dimension medians, shape ``(n_bins, 3)``.
        p90_cm: per-dimension 90th percentiles, shape ``(n_bins, 3)``.
    """

    distances_m: np.ndarray
    median_cm: np.ndarray
    p90_cm: np.ndarray


def fig9_error_vs_distance(
    scale: ExperimentScale | None = None,
    distances: tuple[float, ...] = (3.0, 5.0, 7.0, 9.0, 11.0),
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> Fig9Data:
    """Regenerate Fig. 9 by walking the subject at varying depths."""
    scale = scale or current_scale()
    per_point = max(scale.num_experiments // len(distances), 2)

    def experiment_for(d: float, seed: int) -> TrackingExperiment:
        return TrackingExperiment(
            seed=seed + int(d * 1000),
            through_wall=True,
            duration_s=scale.duration_s,
            walk_area=((-2.0, 2.0), (max(d - 1.0, 1.0), d + 1.0)),
            config=config,
        )

    medians, p90s = _tracking_error_grid(
        distances,
        experiment_for,
        per_point,
        runner or default_runner(),
        name="fig9",
    )
    return Fig9Data(
        distances_m=np.asarray(distances),
        median_cm=medians,
        p90_cm=p90s,
    )


# -- Fig. 10: error vs antenna separation -------------------------------------


@dataclass(frozen=True)
class Fig10Data:
    """Fig. 10: error vs Tx-Rx antenna separation.

    Attributes:
        separations_m: the five separations evaluated.
        median_cm: per-dimension medians, shape ``(n_seps, 3)``.
        p90_cm: per-dimension 90th percentiles, shape ``(n_seps, 3)``.
    """

    separations_m: np.ndarray
    median_cm: np.ndarray
    p90_cm: np.ndarray


def fig10_error_vs_separation(
    scale: ExperimentScale | None = None,
    separations: tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0),
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> Fig10Data:
    """Regenerate Fig. 10: five T sizes, through-wall workload."""
    scale = scale or current_scale()
    per_point = max(scale.num_experiments // len(separations), 2)

    def experiment_for(sep: float, seed: int) -> TrackingExperiment:
        return TrackingExperiment(
            seed=seed + int(sep * 10000),
            through_wall=True,
            duration_s=scale.duration_s,
            antenna_separation_m=sep,
            config=config,
        )

    medians, p90s = _tracking_error_grid(
        separations,
        experiment_for,
        per_point,
        runner or default_runner(),
        name="fig10",
    )
    return Fig10Data(
        separations_m=np.asarray(separations),
        median_cm=medians,
        p90_cm=p90s,
    )


# -- Fig. 11: pointing-orientation CDF ----------------------------------------


@dataclass(frozen=True)
class Fig11Data:
    """Fig. 11: CDF of the pointing-direction error.

    Attributes:
        cdf: orientation-error CDF (degrees).
        detected_fraction: gestures the estimator managed to segment.
    """

    cdf: Cdf
    detected_fraction: float


def fig11_pointing_cdf(
    scale: ExperimentScale | None = None,
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> Fig11Data:
    """Regenerate Fig. 11 from repeated pointing experiments."""
    scale = scale or current_scale()
    runner = runner or default_runner()
    num = max(scale.num_experiments * 2, 8)
    plan = ExperimentPlan.from_grid(
        run_pointing_experiment,
        [{"seed": seed, "config": config} for seed in range(num)],
        name="fig11",
    )
    arr = np.asarray([o.error_deg for o in runner.run(plan)])
    detected = float(np.mean(np.isfinite(arr)))
    return Fig11Data(cdf=error_cdf(arr), detected_fraction=detected)


# -- Section 9.5: the fall-detection table ------------------------------------


@dataclass(frozen=True)
class FallTableData:
    """Section 9.5: fall-detection confusion and scores.

    Attributes:
        scores: precision/recall/F-measure against "is a fall".
        confusion: (true activity, predicted activity) -> count.
        per_activity_runs: experiments per activity.
    """

    scores: ClassificationScores
    confusion: dict[tuple[str, str], int]
    per_activity_runs: int


def fall_detection_table(
    scale: ExperimentScale | None = None,
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> FallTableData:
    """Regenerate the Section 9.5 results (paper: 33 runs x 4 activities)."""
    scale = scale or current_scale()
    runner = runner or default_runner()
    runs = (
        33 if scale.name == "paper" else max(scale.num_experiments, 4)
    )
    grid = [
        (activity, i * 41 + a_idx * 1009)
        for a_idx, activity in enumerate(FALL_ACTIVITIES)
        for i in range(runs)
    ]
    plan = ExperimentPlan.from_grid(
        run_fall_experiment,
        [
            {"seed": seed, "activity": activity, "config": config}
            for activity, seed in grid
        ],
        name="fall-table",
    )
    predictions: list[bool] = []
    labels: list[bool] = []
    confusion: dict[tuple[str, str], int] = {}
    for (activity, _), outcome in zip(grid, runner.run(plan)):
        predictions.append(outcome.verdict.is_fall)
        labels.append(activity == "fall")
        key = (activity, outcome.verdict.activity)
        confusion[key] = confusion.get(key, 0) + 1
    return FallTableData(
        scores=classification_scores(predictions, labels),
        confusion=confusion,
        per_activity_runs=runs,
    )


# -- Multi-person sweep: accuracy vs K ----------------------------------------


def multi_person_sweep(
    ks: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    duration_s: float = 12.0,
    through_wall: bool = True,
    min_separation_m: float = 1.0,
    config: SystemConfig | None = None,
    runner: Runner | None = None,
) -> dict[int, MultiTrackingOutcome]:
    """One scored K-person experiment per K, submitted as one plan.

    This is the grid behind ``benchmarks/bench_multi_person.py`` (and
    any accuracy-vs-K study): K walkers per point, everything else
    fixed, each point an independent work item.
    """
    runner = runner or default_runner()
    plan = ExperimentPlan.from_grid(
        run_multi_tracking_experiment,
        [
            {
                "num_people": k,
                "seed": seed,
                "duration_s": duration_s,
                "through_wall": through_wall,
                "min_separation_m": min_separation_m,
                "config": config,
            }
            for k in ks
        ],
        name="multi-sweep",
    )
    return dict(zip(ks, runner.run(plan)))
