"""Data association: candidate 3D fixes and frame-to-track assignment.

With K candidate TOFs per antenna there are up to ``K^n_rx`` ways to pick
one per antenna, and only a few of them correspond to real people; the
rest are *ghosts* that mix one person's echo on one antenna with another
person's on the next. Three physical gates kill most ghosts:

* the ellipsoid intersection must be geometrically feasible (the solver's
  own validity mask);
* the solved point must lie inside the monitored volume — a mixed combo
  puts the closed-form z (which is extremely sensitive to the k3-vs-r0
  balance) far above the ceiling or below the floor;
* with more than three antennas, the over-constrained residual must stay
  small.

Surviving fixes are deduplicated and handed to the tracker, where
temporal continuity (gating + Hungarian assignment against per-track
Kalman predictions) resolves whatever ambiguity is left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.localize import LeastSquaresSolver, TGeometrySolver
from ..sim.room import Room

Solver = TGeometrySolver | LeastSquaresSolver

#: Score cost (dB) per fix component that lies on an accepted fix's
#: predicted multipath arc — soft enough that a real person crossing one
#: arc still wins when her other components are sound.
_GHOST_PENALTY_DB = 10.0


@dataclass(frozen=True)
class FixGate:
    """Feasible-volume and consistency gate for candidate fixes.

    Attributes:
        x_halfwidth_m: maximum |x| of a fix.
        y_min_m: minimum depth into the room.
        y_max_m: maximum depth.
        z_min_m: lowest feasible z (floor, with margin).
        z_max_m: highest feasible z (ceiling, with margin).
        max_residual_m: maximum RMS round-trip residual of the fix
            against the TOF combo that produced it.
    """

    x_halfwidth_m: float = 3.6
    y_min_m: float = 0.3
    y_max_m: float = 11.9
    z_min_m: float = -1.5
    z_max_m: float = 1.3
    max_residual_m: float = 0.35

    @classmethod
    def from_room(cls, room: Room, margin_m: float = 0.35) -> "FixGate":
        """Gate matched to a room's volume, shrunk *inward* at the walls.

        The inward margin is load-bearing, not cosmetic: a single-bounce
        multipath ghost solves to a point *on its mirror plane* (its
        round trips average out to the wall), so excluding a thin band
        at the side walls, back wall, and ceiling kills every such ghost
        wholesale — and costs nothing, because a real torso center
        physically cannot be within ~0.35 m of a wall.
        """
        y0 = room.front_wall_y or 0.0
        return cls(
            x_halfwidth_m=room.width_m / 2.0 - margin_m,
            y_min_m=max(y0, 0.1),
            y_max_m=y0 + room.depth_m - margin_m,
            z_min_m=room.floor_z - margin_m,
            z_max_m=room.floor_z + room.height_m - margin_m,
            max_residual_m=cls.max_residual_m,
        )

    def admits(self, positions: np.ndarray) -> np.ndarray:
        """Boolean in-volume mask for positions of shape ``(n, 3)``."""
        x, y, z = positions[:, 0], positions[:, 1], positions[:, 2]
        return (
            (np.abs(x) <= self.x_halfwidth_m)
            & (y >= self.y_min_m)
            & (y <= self.y_max_m)
            & (z >= self.z_min_m)
            & (z <= self.z_max_m)
        )


def multipath_round_trips(
    position: np.ndarray,
    tx_position: np.ndarray,
    image_positions: np.ndarray,
) -> np.ndarray:
    """Predicted round trips of a reflector's wall-bounce images.

    A dynamic-multipath echo of a person at ``position`` travels
    Tx -> body -> wall -> Rx; with the receive antennas mirrored through
    each bounce plane, its path length is ``|Tx - p| + |image_rx - p|``.

    Args:
        position: reflector position, shape ``(3,)``.
        tx_position: transmit antenna position.
        image_positions: receive antennas mirrored through every bounce
            plane, shape ``(n_planes, n_rx, 3)``.

    Returns:
        Image round trips, shape ``(n_planes, n_rx)``.
    """
    d_tx = float(np.linalg.norm(position - tx_position))
    d_img = np.linalg.norm(image_positions - position[None, None, :], axis=2)
    return d_tx + d_img


def candidate_fixes(
    tof_sets: Sequence[np.ndarray],
    solver: Solver,
    gate: FixGate | None = None,
    power_sets: Sequence[np.ndarray] | None = None,
    dedupe_m: float = 0.4,
    max_fixes: int | None = None,
    ghost_images: np.ndarray | None = None,
    ghost_tolerance_m: float = 0.6,
    seed_positions: Sequence[np.ndarray] | None = None,
) -> np.ndarray:
    """Solve every cross-antenna TOF combination into gated 3D fixes.

    After the feasibility gates, fixes are selected greedily by total
    echo power under *per-antenna candidate exclusivity*: once a fix
    claims an antenna's candidate, no other fix may reuse it. The
    strongest (closest) person's pure combo always outscores any ghost
    that borrows one of her echoes, so picking it first consumes her
    candidates and blocks those ghosts; the next pick is then the next
    person's pure combo, and so on — successive interference
    cancellation at the association level.

    Args:
        tof_sets: per-antenna candidate round-trip distances for one
            frame (NaNs are dropped); one entry per receive antenna.
        solver: the localization solver of the deployed array.
        gate: feasibility gate; a permissive default when omitted.
        power_sets: per-antenna echo power of each TOF candidate,
            aligned with ``tof_sets``; enables the power-greedy
            selection (without it, ties break by round-trip residual).
        dedupe_m: surviving fixes closer than this collapse into one.
        max_fixes: keep at most this many fixes (best score first).
        ghost_images: receive antennas mirrored through the room's
            bounce planes, shape ``(n_planes, n_rx, 3)``. When given, a
            later fix is vetoed if two or more of its TOF components sit
            where an already-accepted fix's wall-bounce multipath must
            land — the geometric kill for persistent multipath ghosts.
            (One matching component is allowed: a real second person can
            legitimately cross one antenna's multipath arc, but the
            image geometry differs per antenna, so she cannot sit on
            two arcs at once while a pure ghost matches on all.)
        ghost_tolerance_m: round-trip slack of the multipath match
            (covers surface wander and in-wall jitter).
        seed_positions: already-known reflector positions (e.g. live
            tracks) whose multipath arcs seed the ghost evidence before
            any fix is accepted.

    Returns:
        Candidate positions, shape ``(n_fixes, 3)`` (possibly empty).
    """
    gate = gate or FixGate()
    tofs = [np.asarray(s, dtype=np.float64) for s in tof_sets]
    finite = [np.flatnonzero(~np.isnan(s)) for s in tofs]
    if any(len(idx) == 0 for idx in finite):
        return np.empty((0, 3))
    index_combos = _product_indices(finite)
    n_rx = len(tofs)
    combos = np.column_stack(
        [tofs[a][index_combos[:, a]] for a in range(n_rx)]
    )
    result = solver.solve(combos)
    positions = result.positions
    keep = result.valid & np.isfinite(positions).all(axis=1)
    keep &= gate.admits(np.nan_to_num(positions, nan=1e9))
    if not np.any(keep):
        return np.empty((0, 3))
    positions = positions[keep]
    combos = combos[keep]
    index_combos = index_combos[keep]

    # Round-trip consistency: re-project each fix through the array.
    array = solver.array
    d_tx = np.linalg.norm(positions - array.tx.position[None, :], axis=1)
    d_rx = np.linalg.norm(
        positions[:, None, :] - array.rx_positions[None, :, :], axis=2
    )
    residuals = np.sqrt(
        np.mean((d_tx[:, None] + d_rx - combos) ** 2, axis=1)
    )
    keep = residuals <= gate.max_residual_m
    if not np.any(keep):
        return np.empty((0, 3))
    positions = positions[keep]
    residuals = residuals[keep]
    index_combos = index_combos[keep]
    combos = combos[keep]

    if power_sets is not None:
        powers = [
            np.asarray(p, dtype=np.float64) for p in power_sets
        ]
        floor = 1e-30
        score = sum(
            10.0 * np.log10(
                np.maximum(powers[a][index_combos[:, a]], floor)
            )
            for a in range(n_rx)
        )
    else:
        score = -residuals
    return _greedy_select(
        positions,
        combos,
        index_combos,
        score,
        array,
        dedupe_m=dedupe_m,
        max_fixes=max_fixes,
        ghost_images=ghost_images,
        ghost_tolerance_m=ghost_tolerance_m,
        seed_positions=seed_positions,
    )


def _product_indices(finite: list[np.ndarray]) -> np.ndarray:
    """Cartesian product of index arrays, last axis fastest.

    Same row order as ``itertools.product`` (and ``np.meshgrid`` with
    ``indexing="ij"``) but built from repeat/tile, which is several
    times cheaper at the tens-of-rows sizes the association hot path
    sees every serving tick.
    """
    sizes = [len(f) for f in finite]
    total = int(np.prod(sizes))
    out = np.empty((total, len(finite)), dtype=np.intp)
    rep = total
    for a, f in enumerate(finite):
        rep //= sizes[a]
        out[:, a] = np.tile(np.repeat(f, rep), total // (rep * sizes[a]))
    return out


def _greedy_select(
    positions: np.ndarray,
    combos: np.ndarray,
    index_combos: np.ndarray,
    score: np.ndarray,
    array,
    dedupe_m: float,
    max_fixes: int | None,
    ghost_images: np.ndarray | None,
    ghost_tolerance_m: float,
    seed_positions: Sequence[np.ndarray] | None,
) -> np.ndarray:
    """Power-greedy exclusive selection over pre-solved, pre-gated combos.

    The tail of :func:`candidate_fixes`, split out so the batched
    multi-slot path (:func:`candidate_fixes_batched`) can run it per
    slot on slices of one concatenated solve.
    """
    n_rx = combos.shape[1]
    # Iterative greedy selection. Each round re-scores the surviving
    # combos against the multipath predictions of everything accepted so
    # far: one matching component costs ``_GHOST_PENALTY_DB`` (a pure
    # combo of a real person always outranks a mixed combo that borrows
    # a multipath echo), two or more is a hard veto (that *is* the
    # multipath ghost). Exclusivity then consumes the winner's
    # components so no later fix can reuse them.
    kept: list[np.ndarray] = []
    alive = np.ones(len(score), dtype=bool)
    ghost_tofs: list[list[float]] = [[] for _ in range(n_rx)]
    suppress = ghost_images is not None and len(ghost_images) > 0
    limit = max_fixes if max_fixes is not None else int(alive.sum())
    tx_position = array.tx.position
    if suppress and seed_positions is not None:
        for seed in seed_positions:
            predicted = multipath_round_trips(
                np.asarray(seed, dtype=np.float64), tx_position, ghost_images
            )
            for a in range(n_rx):
                ghost_tofs[a].extend(predicted[:, a].tolist())
    while len(kept) < limit and np.any(alive):
        penalties = np.zeros(len(score))
        if suppress:
            # One vectorized arc-distance pass over every combo per
            # antenna (the dead ones are masked out below) instead of a
            # Python loop re-building the ghost array per combo.
            matches = np.zeros(len(score), dtype=np.int64)
            for a in range(n_rx):
                if ghost_tofs[a]:
                    arcs = np.asarray(ghost_tofs[a])
                    nearest = np.min(
                        np.abs(combos[:, a][:, None] - arcs[None, :]),
                        axis=1,
                    )
                    matches += nearest <= ghost_tolerance_m
            alive &= matches < 2
            penalties = _GHOST_PENALTY_DB * matches.astype(np.float64)
        if not np.any(alive):
            break
        adjusted = np.where(alive, score - penalties, -np.inf)
        idx = int(np.argmax(adjusted))
        alive[idx] = False
        p = positions[idx]
        if any(np.linalg.norm(p - q) <= dedupe_m for q in kept):
            continue
        kept.append(p)
        components = index_combos[idx]
        overlap = (index_combos == components[None, :]).any(axis=1)
        alive &= ~overlap
        if suppress:
            predicted = multipath_round_trips(p, tx_position, ghost_images)
            for a in range(n_rx):
                ghost_tofs[a].extend(predicted[:, a].tolist())
    if not kept:
        return np.empty((0, 3))
    return np.stack(kept)


def candidate_fixes_batched(
    tof_slots: Sequence[Sequence[np.ndarray]],
    solver: Solver,
    gate: FixGate | None = None,
    power_slots: Sequence[Sequence[np.ndarray]] | None = None,
    dedupe_m: float = 0.4,
    max_fixes: int | None = None,
    ghost_images: np.ndarray | None = None,
    ghost_tolerance_m: float = 0.6,
    seed_slots: Sequence[Sequence[np.ndarray] | None] | None = None,
) -> list[np.ndarray]:
    """:func:`candidate_fixes` for many slots with one solver pass.

    The per-slot call spends most of its time in fixed numpy call
    overhead — combo construction, the localization solve, the volume
    gate, the residual re-projection — on arrays of a few dozen rows.
    This variant concatenates every slot's combos, runs that prefix once
    over the stack, then hands each slot its own row slice to the
    per-slot greedy selection. Because every prefix operation is
    elementwise per row (the volume gate, the residual, the power
    score) or row-independent by the solver's contract
    (``solver.row_independent``), each slot's rows are bitwise the rows
    its own :func:`candidate_fixes` call would have produced — which is
    what lets the fused serving tick's track bank birth tracks for a
    whole cohort without perturbing staged/fused parity.

    Args:
        tof_slots: per slot, the per-antenna candidate TOF sets.
        solver: row-independent localization solver shared by all slots.
        gate: feasibility gate shared by all slots.
        power_slots: per slot, per-antenna candidate powers (or None).
        seed_slots: per slot, the ghost-veto seed positions (or None).

    Returns:
        One ``(n_fixes, 3)`` array per slot, empty where nothing
        survived.
    """
    gate = gate or FixGate()
    n_slots = len(tof_slots)
    empty = np.empty((0, 3))
    out: list[np.ndarray] = [empty] * n_slots

    # Per-slot combo tables, concatenated into one solver batch.
    slot_rows: list[tuple[int, int, int]] = []  # (slot, row0, row1)
    combo_parts: list[np.ndarray] = []
    index_parts: list[np.ndarray] = []
    power_parts: list[np.ndarray] | None = (
        [] if power_slots is not None else None
    )
    row0 = 0
    for s in range(n_slots):
        tofs = [np.asarray(t, dtype=np.float64) for t in tof_slots[s]]
        finite = [np.flatnonzero(~np.isnan(t)) for t in tofs]
        if any(len(idx) == 0 for idx in finite):
            continue
        index_combos = _product_indices(finite)
        n_rx = len(tofs)
        combos = np.column_stack(
            [tofs[a][index_combos[:, a]] for a in range(n_rx)]
        )
        if power_parts is not None:
            powers = [
                np.asarray(p, dtype=np.float64) for p in power_slots[s]
            ]
            power_parts.append(
                np.column_stack(
                    [powers[a][index_combos[:, a]] for a in range(n_rx)]
                )
            )
        combo_parts.append(combos)
        index_parts.append(index_combos)
        slot_rows.append((s, row0, row0 + len(combos)))
        row0 += len(combos)
    if not combo_parts:
        return out

    combos = np.concatenate(combo_parts)
    index_combos = np.concatenate(index_parts)
    n_rx = combos.shape[1]
    result = solver.solve(combos)
    positions = result.positions
    keep = result.valid & np.isfinite(positions).all(axis=1)
    keep &= gate.admits(np.nan_to_num(positions, nan=1e9))

    # Round-trip consistency over the whole stack; NaN-safe because
    # rows already failing the volume gate are masked out below.
    array = solver.array
    with np.errstate(invalid="ignore"):
        d_tx = np.linalg.norm(positions - array.tx.position[None, :], axis=1)
        d_rx = np.linalg.norm(
            positions[:, None, :] - array.rx_positions[None, :, :], axis=2
        )
        residuals = np.sqrt(
            np.mean((d_tx[:, None] + d_rx - combos) ** 2, axis=1)
        )
        keep &= residuals <= gate.max_residual_m

    if power_parts is not None:
        power_rows = np.concatenate(power_parts)
        floor = 1e-30
        score = sum(
            10.0 * np.log10(np.maximum(power_rows[:, a], floor))
            for a in range(n_rx)
        )
    else:
        score = -residuals

    for s, r0, r1 in slot_rows:
        rows = keep[r0:r1]
        if not np.any(rows):
            continue
        sel = np.flatnonzero(rows) + r0
        out[s] = _greedy_select(
            positions[sel],
            combos[sel],
            index_combos[sel],
            score[sel],
            array,
            dedupe_m=dedupe_m,
            max_fixes=max_fixes,
            ghost_images=ghost_images,
            ghost_tolerance_m=ghost_tolerance_m,
            seed_positions=(
                seed_slots[s] if seed_slots is not None else None
            ),
        )
    return out


def assign_fixes(
    predicted: np.ndarray,
    fixes: np.ndarray,
    gate_m: float | np.ndarray,
) -> tuple[list[tuple[int, int]], list[int], list[int]]:
    """Gated Hungarian assignment of fixes to track predictions.

    Args:
        predicted: predicted track positions, shape ``(n_tracks, 3)``;
            non-finite rows never match.
        fixes: candidate fixes, shape ``(n_fixes, 3)``.
        gate_m: maximum assignment distance — a scalar, or one gate per
            track (a coasting track's gate grows with its uncertainty).

    Returns:
        ``(pairs, unmatched_tracks, unmatched_fixes)`` where ``pairs``
        is a list of ``(track_index, fix_index)`` tuples.
    """
    n_tracks = len(predicted)
    n_fixes = len(fixes)
    if n_tracks == 0 or n_fixes == 0:
        return [], list(range(n_tracks)), list(range(n_fixes))
    gates = np.broadcast_to(
        np.asarray(gate_m, dtype=np.float64), (n_tracks,)
    )
    cost = np.linalg.norm(
        predicted[:, None, :] - fixes[None, :, :], axis=2
    )
    cost = np.where(np.isfinite(cost), cost, 1e6)
    blocked = cost > gates[:, None]
    rows, cols = linear_sum_assignment(np.where(blocked, 1e6, cost))
    pairs = [
        (int(r), int(c))
        for r, c in zip(rows, cols)
        if not blocked[r, c]
    ]
    matched_tracks = {r for r, _ in pairs}
    matched_fixes = {c for _, c in pairs}
    unmatched_tracks = [t for t in range(n_tracks) if t not in matched_tracks]
    unmatched_fixes = [f for f in range(n_fixes) if f not in matched_fixes]
    return pairs, unmatched_tracks, unmatched_fixes
