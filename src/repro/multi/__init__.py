"""Multi-person tracking: K concurrent people through one device.

The paper's system tracks a single person (Section 8); this subsystem is
our extension toward the authors' follow-up multi-person work. It layers
on the single-person primitives:

* :mod:`repro.multi.scenario` — K bodies superimposed into one set of
  per-antenna spectra (simulation substrate);
* :mod:`repro.multi.cancellation` — successive echo cancellation turns
  one bottom contour per antenna into K candidate TOFs;
* :mod:`repro.multi.association` — cross-antenna combination solving,
  ghost gating, and Hungarian frame-to-track assignment;
* :mod:`repro.multi.tracks` — per-target Kalman bank with a
  tentative/confirmed/coasting/dead lifecycle;
* :mod:`repro.multi.tracker` — :class:`MultiWiTrack`, the public API.
"""

from .association import FixGate, assign_fixes, candidate_fixes
from .cancellation import (
    MultiContourResult,
    null_band,
    successive_contours,
)
from .scenario import MultiScenario, MultiScenarioOutput
from .tracker import MultiWiTrack
from .tracks import (
    MultiTrack,
    Track,
    TrackManager,
    TrackManagerConfig,
    TrackStatus,
)

__all__ = [
    "FixGate",
    "assign_fixes",
    "candidate_fixes",
    "MultiContourResult",
    "null_band",
    "successive_contours",
    "MultiScenario",
    "MultiScenarioOutput",
    "MultiWiTrack",
    "MultiTrack",
    "Track",
    "TrackManager",
    "TrackManagerConfig",
    "TrackStatus",
]
