"""Multi-person scenario: K bodies superimposed in one set of spectra.

WiTrack itself "tracks one person" (paper Section 8); this module is the
simulation half of our multi-target extension. A :class:`MultiScenario`
takes a list of ``(body, trajectory)`` pairs and superimposes every
person's direct reflection and dynamic-multipath images — plus one shared
static-clutter field — into the same per-antenna sweep spectra, exactly
as a real receiver would see them. All single-person physics (Flash
Effect clutter, through-wall attenuation, in-wall TOF jitter, reflection
-surface wander) is reused from :mod:`repro.sim.scenario` unchanged.

People may enter with trajectories of different durations: a person whose
trajectory ends simply stands still for the rest of the session (and so
fades out of the background-subtracted spectrogram, as in reality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import SystemConfig, default_config
from ..geometry.antennas import AntennaArray, t_array
from ..rf.noise import NoiseModel
from ..rf.receiver import SweepSynthesizer
from ..sim.body import HumanBody, ReflectionModel
from ..sim.motion import Trajectory
from ..sim.room import Room
from ..sim.scenario import Scenario, _segment_lengths


@dataclass
class MultiScenarioOutput:
    """Everything a multi-person run and its evaluation need.

    Attributes:
        spectra: complex sweep spectra, shape ``(n_rx, n_sweeps, n_bins)``.
        sweep_times_s: time of each sweep, shape ``(n_sweeps,)``.
        range_bin_m: round-trip distance per spectrum bin.
        truths: ground-truth body-center trajectory per person.
        surface_truths: per-sweep reflection-surface points, shape
            ``(n_people, n_sweeps, 3)``.
        true_round_trips: ideal per-person, per-antenna round-trip
            distances, shape ``(n_people, n_rx, n_sweeps)``.
        config: the system configuration used.
        room: the room simulated.
        bodies: the subjects simulated.
    """

    spectra: np.ndarray
    sweep_times_s: np.ndarray
    range_bin_m: float
    truths: tuple[Trajectory, ...]
    surface_truths: np.ndarray
    true_round_trips: np.ndarray
    config: SystemConfig
    room: Room
    bodies: tuple[HumanBody, ...]

    @property
    def num_people(self) -> int:
        """Number of simulated people."""
        return len(self.truths)

    @property
    def num_sweeps(self) -> int:
        """Number of sweeps synthesized."""
        return self.spectra.shape[1]

    @property
    def num_rx(self) -> int:
        """Number of receive antennas."""
        return self.spectra.shape[0]

    def truth_at(self, times_s: np.ndarray) -> np.ndarray:
        """Body-center positions of every person at arbitrary times.

        Returns shape ``(n_people, len(times_s), 3)``.
        """
        return np.stack([t.resample(times_s) for t in self.truths])


class MultiScenario:
    """A complete simulated multi-person experiment.

    Args:
        people: one ``(body, trajectory)`` pair per person; trajectories
            are in the device frame and may differ in duration.
        room: room geometry; defaults to the paper's through-wall room.
        config: full system configuration.
        seed: seed for every random draw in the scenario.
        array: override antenna array (defaults to the configured T).
    """

    def __init__(
        self,
        people: Sequence[tuple[HumanBody, Trajectory]],
        room: Room | None = None,
        config: SystemConfig | None = None,
        seed: int = 0,
        array: AntennaArray | None = None,
    ) -> None:
        if len(people) < 1:
            raise ValueError("need at least one (body, trajectory) pair")
        self.people = [(body, traj) for body, traj in people]
        self.room = room if room is not None else Room()
        self.config = config or default_config()
        self.seed = seed
        self.array = array if array is not None else t_array(self.config.array)

    @property
    def num_people(self) -> int:
        """Number of simulated people."""
        return len(self.people)

    def run(self) -> MultiScenarioOutput:
        """Synthesize the received spectra for the whole session."""
        cfg = self.config
        fmcw = cfg.fmcw
        rng = np.random.default_rng(self.seed)

        duration_s = max(traj.duration_s for _, traj in self.people)
        n_sweeps = max(int(duration_s / fmcw.sweep_duration_s), 2)
        sweep_times = np.arange(n_sweeps) * fmcw.sweep_duration_s

        noise = NoiseModel(
            noise_figure_db=cfg.simulation.noise_figure_db,
            bandwidth_hz=1.0 / fmcw.sweep_duration_s,
        )
        synthesizer = SweepSynthesizer(
            fmcw, noise, max_range_m=cfg.pipeline.max_range_m
        )

        # Per-person kinematics: one reflection surface and one activity
        # trace each, shared across antennas (it is the same body).
        scenarios: list[Scenario] = []
        surfaces: list[np.ndarray] = []
        activities: list[np.ndarray] = []
        for p, (body, traj) in enumerate(self.people):
            scenario = Scenario(
                traj,
                room=self.room,
                body=body,
                config=cfg,
                seed=self.seed + 101 * (p + 1),
                array=self.array,
            )
            person_rng = np.random.default_rng(
                self.seed * 104_729 + 13 * p + 7
            )
            centers = traj.resample(sweep_times)
            surface = ReflectionModel(body).surface_points(
                centers,
                fmcw.sweep_duration_s,
                person_rng,
                self.array.tx.position,
                floor_z=self.room.floor_z,
            )
            step = np.linalg.norm(np.diff(centers, axis=0), axis=1)
            speed = np.concatenate([step[:1], step]) / fmcw.sweep_duration_s
            scenarios.append(scenario)
            surfaces.append(surface)
            activities.append(np.clip(speed / 0.5, 0.0, 1.0))

        # One clutter field: static reflectors are a property of the
        # room, not of who walks through it.
        clutter = scenarios[0]._clutter(rng)

        n_rx = self.array.num_receivers
        n_people = self.num_people
        spectra = np.empty(
            (n_rx, n_sweeps, synthesizer.num_bins), dtype=np.complex128
        )
        true_round_trips = np.empty((n_people, n_rx, n_sweeps))
        tx = self.array.tx
        for i, rx in enumerate(self.array.rx):
            rx_rng = np.random.default_rng(self.seed * 7919 + i + 1)
            paths = list(clutter)
            for p, scenario in enumerate(scenarios):
                jitter_rng = np.random.default_rng(
                    self.seed * 15_485_863 + 611 * p + i + 1
                )
                wall_jitter = scenario._wall_jitter(
                    n_sweeps, fmcw.sweep_duration_s, jitter_rng, activities[p]
                )
                paths += scenario._paths_for_antenna(
                    rx, surfaces[p], None, [], wall_jitter
                )
                true_round_trips[p, i] = _segment_lengths(
                    tx.position, surfaces[p]
                ) + _segment_lengths(rx.position, surfaces[p])
            spectra[i] = synthesizer.synthesize(paths, n_sweeps, rx_rng)

        return MultiScenarioOutput(
            spectra=spectra,
            sweep_times_s=sweep_times,
            range_bin_m=synthesizer.axis.round_trip_per_bin_m,
            truths=tuple(traj for _, traj in self.people),
            surface_truths=np.stack(surfaces),
            true_round_trips=true_round_trips,
            config=cfg,
            room=self.room,
            bodies=tuple(body for body, _ in self.people),
        )
