"""Successive echo cancellation: K bottom contours per antenna.

The single-person pipeline keeps only the *first* strong local maximum
per frame (the paper's bottom contour, Section 4.3) — every later echo is
assumed to be multipath of the same person. With K people, the later
echoes may be other people. This module extends the contour stage by
successive cancellation, the radar analogue of successive interference
cancellation in communications:

1. trace the bottom contour of the background-subtracted spectrogram;
2. null the detected reflector's energy band (its kernel footprint plus
   body extent) out of a working copy of the spectrogram;
3. repeat, up to ``max_targets`` times.

Each round returns the closest *remaining* strong reflector, so the
output is an unordered per-frame candidate set of round-trip distances:
the direct echoes of up to K people, inevitably polluted by residual
multipath. Sorting the candidates into people is deliberately NOT done
here — that requires cross-antenna geometry and temporal continuity and
lives in :mod:`repro.multi.association` / :mod:`repro.multi.tracks`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.contour import ContourResult
from ..kernels.cancellation import successive_cancel


@dataclass(frozen=True)
class MultiContourResult:
    """Per-frame candidate TOF sets for one receive antenna.

    Attributes:
        round_trips_m: candidate round-trip distances, shape
            ``(max_targets, n_frames)``; NaN marks exhausted rounds.
            Row ``k`` is the bottom contour of cancellation round ``k``
            (rows are detection rounds, not person identities).
        peak_powers: power at each detection, same shape.
        rounds: the raw :class:`ContourResult` of every round.
    """

    round_trips_m: np.ndarray
    peak_powers: np.ndarray
    rounds: tuple[ContourResult, ...]

    @property
    def num_frames(self) -> int:
        """Number of frames processed."""
        return self.round_trips_m.shape[1]

    @property
    def max_targets(self) -> int:
        """Cancellation rounds attempted."""
        return self.round_trips_m.shape[0]

    @property
    def detections_per_frame(self) -> np.ndarray:
        """Number of candidates found in each frame, shape ``(n_frames,)``."""
        return np.sum(~np.isnan(self.round_trips_m), axis=0)

    def candidates_at(self, frame: int) -> np.ndarray:
        """Sorted finite candidate round trips of one frame."""
        values = self.round_trips_m[:, frame]
        return np.sort(values[~np.isnan(values)])


def null_band(
    power: np.ndarray,
    round_trips_m: np.ndarray,
    range_bin_m: float,
    halfwidth_m: float,
) -> np.ndarray:
    """Zero each frame's bins within ``halfwidth_m`` of its detection.

    Args:
        power: spectrogram power, shape ``(n_frames, n_bins)``; modified
            in place and returned.
        round_trips_m: per-frame detected round trip (NaN = leave frame).
        range_bin_m: round-trip distance per bin.
        halfwidth_m: half-width of the nulled band, in round-trip meters.

    Returns:
        The same ``power`` array with the bands nulled.
    """
    n_frames, n_bins = power.shape
    detected = ~np.isnan(round_trips_m)
    if not np.any(detected):
        return power
    centers = np.where(detected, round_trips_m, 0.0) / range_bin_m
    half_bins = int(np.ceil(halfwidth_m / range_bin_m))
    cols = np.arange(n_bins)
    band = np.abs(cols[None, :] - centers[:, None]) <= half_bins
    power[band & detected[:, None]] = 0.0
    return power


def successive_contours(
    power: np.ndarray,
    range_bin_m: float,
    max_targets: int = 3,
    threshold_db: float = 10.0,
    min_range_m: float = 1.0,
    null_halfwidth_m: float = 0.5,
    relative_threshold_db: float = 36.0,
) -> MultiContourResult:
    """Extract up to ``max_targets`` bottom contours per frame.

    Args:
        power: background-subtracted power, shape ``(n_frames, n_bins)``.
        range_bin_m: round-trip distance per bin.
        max_targets: cancellation rounds (candidate slots) per frame.
        threshold_db: per-round excess over the frame's noise floor.
        min_range_m: ignore bins below this round-trip range.
        null_halfwidth_m: round-trip half-width nulled around every
            detection before the next round. Must cover the reflector's
            kernel leakage plus torso extent; too wide and two people
            closer than the width merge into one candidate (they then
            coast through the merge at the track level).
        relative_threshold_db: per-round dynamic-range gate, as in
            :func:`repro.core.contour.track_bottom_contour` but more
            permissive than the single-person default: a far person can
            legitimately sit ~30 dB below a near person's echo, a gap
            the single-person pipeline never has to admit.

    Returns:
        A :class:`MultiContourResult` with one candidate row per round.
    """
    if max_targets < 1:
        raise ValueError("max_targets must be at least 1")
    if null_halfwidth_m <= 0:
        raise ValueError("null_halfwidth_m must be positive")
    # The whole rounds loop is one backend kernel call
    # (:mod:`repro.kernels.cancellation`); the per-round
    # :class:`ContourResult` views are rebuilt from its dense outputs —
    # a round's motion mask is exactly the finite cells of its
    # round-trip row.
    round_trips, peaks, thresholds, n_rounds = successive_cancel(
        np.asarray(power),
        range_bin_m,
        max_targets,
        threshold_db,
        min_range_m,
        null_halfwidth_m,
        relative_threshold_db,
    )
    rounds = tuple(
        ContourResult(
            round_trip_m=round_trips[k],
            peak_power=peaks[k],
            motion_mask=~np.isnan(round_trips[k]),
            threshold_power=thresholds[k],
        )
        for k in range(n_rounds)
    )
    return MultiContourResult(
        round_trips_m=round_trips,
        peak_powers=peaks,
        rounds=rounds,
    )
