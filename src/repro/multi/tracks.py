"""Per-target Kalman bank with track lifecycle management.

Each person is a :class:`Track` carrying the multi-person analogue of
the paper's Section 4.4 pipeline: one 1D constant-velocity Kalman filter
per receive antenna running on that person's *round-trip distance*, with
the 3D position solved from the smoothed TOFs every frame. Solving from
smoothed (rather than raw) TOFs matters enormously: the T-array's
closed-form z is noise-amplifying at range (``dz/dk3 ~ k3 - r0``), so a
15 cm raw-contour error turns into a meter of z scatter — the same
reason the single-person pipeline smooths before solving.

Association happens in TOF space, per antenna: each track predicts where
its echo must land on every antenna and claims the nearest candidate
within a gate. A track that claims most antennas scores a hit; fewer and
it coasts, with unclaimed antennas coasting *individually* — one flaky
antenna does not break a track. Unclaimed candidates feed track births
through the cross-antenna combination solver.

The lifecycle lets people enter and leave the scene:

    TENTATIVE --(confirm_hits updates)--> CONFIRMED
    TENTATIVE --(a few misses)----------> DEAD
    CONFIRMED --(miss)------------------> COASTING (emits predictions)
    COASTING  --(hit)-------------------> CONFIRMED
    COASTING  --(budget/support out)----> DEAD
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.kalman import dwna_process_noise
from .association import (
    FixGate,
    Solver,
    assign_fixes,
    candidate_fixes,
    candidate_fixes_batched,
)


def tracks_to_arrays(
    tracks: list[list[tuple[int, np.ndarray]]],
) -> dict[str, np.ndarray]:
    """Stable array serialization of per-frame track lists.

    The ragged ``tracks`` field of a multi-person
    :class:`~repro.pipeline.PipelineResult` — one ``(track_id,
    position)`` list per frame — flattened into three fixed-dtype
    arrays: per-frame entry counts, flat track ids, and flat positions.
    This is what lets the result-level cache hold multi-person runs
    (the caveat PR 4 left open): the arrays round-trip through ``.npz``
    bitwise, and :func:`tracks_from_arrays` rebuilds the exact lists.

    Args:
        tracks: per-frame reportable ``(track_id, position)`` lists.

    Returns:
        ``{"track_counts", "track_ids_flat", "track_positions_flat"}``
        with shapes ``(n_frames,)``, ``(total,)``, ``(total, 3)``.
    """
    counts = np.asarray([len(frame) for frame in tracks], dtype=np.int64)
    flat = [entry for frame in tracks for entry in frame]
    ids = np.asarray([tid for tid, _ in flat], dtype=np.int64)
    if flat:
        positions = np.stack([np.asarray(pos, dtype=np.float64)
                              for _, pos in flat])
    else:
        positions = np.zeros((0, 3))
    return {
        "track_counts": counts,
        "track_ids_flat": ids,
        "track_positions_flat": positions,
    }


def tracks_from_arrays(
    counts: np.ndarray, ids: np.ndarray, positions: np.ndarray
) -> list[list[tuple[int, np.ndarray]]]:
    """Rebuild per-frame track lists from :func:`tracks_to_arrays`."""
    if int(counts.sum()) != len(ids) or len(ids) != len(positions):
        raise ValueError(
            f"inconsistent track arrays: counts sum to {int(counts.sum())} "
            f"but {len(ids)} ids / {len(positions)} positions given"
        )
    out: list[list[tuple[int, np.ndarray]]] = []
    offset = 0
    for count in counts:
        frame = [
            (int(ids[offset + j]), positions[offset + j].copy())
            for j in range(int(count))
        ]
        out.append(frame)
        offset += int(count)
    return out


class TrackStatus(enum.Enum):
    """Lifecycle state of one track."""

    TENTATIVE = "tentative"
    CONFIRMED = "confirmed"
    COASTING = "coasting"
    DEAD = "dead"


@dataclass(frozen=True)
class TrackManagerConfig:
    """Tunables of the track lifecycle and assignment.

    Attributes:
        tof_gate_m: per-antenna gate between a track's predicted round
            trip and a claimed candidate.
        tof_gate_growth_mps: gate widening per second of coasting — the
            person may have kept moving while undetected.
        max_tof_gate_m: cap on the widened TOF gate.
        min_claims: antennas a track must claim in a frame for the frame
            to count as a hit (fewer antennas coast individually).
        confirm_hits: hit frames before a tentative track is real.
        max_tentative_misses: misses that kill an unconfirmed track.
        max_coast_frames: upper bound on frames a confirmed track may
            coast before it is declared gone (240 frames = 3 s at the
            12.5 ms cadence, enough to ride out a walker's pause).
        coast_per_hit: evidence-proportional coast budget — a track may
            coast at most ``coast_per_hit * hits`` frames (capped by
            ``max_coast_frames``), so a ghost that scraped together the
            minimum confirmations dies within a few frames of losing
            support while a long-lived real track rides out occlusions.
        coast_velocity_decay: per-frame damping of the TOF velocity
            states while an antenna is unclaimed. A person who vanishes
            from the background-subtracted spectrogram has *stopped
            moving* (Section 4.4), so the prediction should settle
            where she stopped instead of drifting away at walking speed.
        birth_exclusion_m: no new track births from a fix this close to
            an existing live track — a secondary echo of an already-
            tracked person must not spawn a duplicate sibling track.
        support_time_constant_s: time constant of the exponential
            recent-support average.
        min_support: a confirmed track whose recent support falls below
            this dies. This is the zombie kill: a track that lost its
            person but scrapes an occasional ghost fix never lets its
            miss counter reach ``max_coast_frames``, yet its support
            decays all the same. A genuine pause (up to ~2 s) keeps a
            well-supported track above the threshold.
        tof_process_noise: white-acceleration density of the per-antenna
            TOF filters (the paper's Kalman stage runs at ~10).
        tof_measurement_noise: variance of one raw contour sample (m^2).
    """

    tof_gate_m: float = 0.35
    tof_gate_growth_mps: float = 1.5
    max_tof_gate_m: float = 2.0
    min_claims: int = 2
    confirm_hits: int = 4
    max_tentative_misses: int = 2
    max_coast_frames: int = 240
    coast_per_hit: float = 2.0
    coast_velocity_decay: float = 0.97
    birth_exclusion_m: float = 1.0
    support_time_constant_s: float = 1.25
    min_support: float = 0.25
    tof_process_noise: float = 10.0
    tof_measurement_noise: float = 4e-3

    def __post_init__(self) -> None:
        if self.tof_gate_m <= 0:
            raise ValueError("tof_gate_m must be positive")
        if self.confirm_hits < 1:
            raise ValueError("confirm_hits must be at least 1")
        if self.max_coast_frames < 1:
            raise ValueError("max_coast_frames must be at least 1")
        if self.min_claims < 1:
            raise ValueError("min_claims must be at least 1")


def _filter_step(
    values: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
    dt: float,
    q00: float,
    q01: float,
    q11: float,
    r: float,
    decay: float,
) -> None:
    """One predict/update step of the per-antenna TOF filters, in place.

    Elementwise over any leading shape: ``values`` is ``(...,)`` aligned
    with ``mean`` ``(..., 2)`` and ``cov`` ``(..., 2, 2)``. Finite cells
    run the measurement update; NaN cells predict and damp their
    velocity by ``decay`` (the paper's stopped-person semantics). The
    arithmetic is the unrolled 2x2 tree shared with the fused tick
    kernels (:mod:`repro.kernels`), so one track's scalar step and a
    whole cohort bank's batched step are the same IEEE operations —
    which is what lets the fused multi-person tick advance every
    session's tracks in array math while staying bit-identical to the
    per-slot staged loop.
    """
    m0 = mean[..., 0]
    m1 = mean[..., 1]
    c00 = cov[..., 0, 0]
    c01 = cov[..., 0, 1]
    c10 = cov[..., 1, 0]
    c11 = cov[..., 1, 1]
    pm0 = m0 + dt * m1
    a00 = c00 + dt * c10
    a01 = c01 + dt * c11
    p00 = (a00 + a01 * dt) + q00
    p01 = a01 + q01
    p10 = (c10 + c11 * dt) + q01
    p11 = c11 + q11
    measured = np.isfinite(values)
    with np.errstate(invalid="ignore"):
        innovation = values - pm0
        s = p00 + r
        g0 = p00 / s
        g1 = p10 / s
        um0 = pm0 + g0 * innovation
        um1 = m1 + g1 * innovation
        uc00 = (1.0 - g0) * p00
        uc01 = (1.0 - g0) * p01
        uc10 = (-g1) * p00 + p10
        uc11 = (-g1) * p01 + p11
        cm1 = m1 * decay
    mean[..., 0] = np.where(measured, um0, pm0)
    mean[..., 1] = np.where(measured, um1, cm1)
    cov[..., 0, 0] = np.where(measured, uc00, p00)
    cov[..., 0, 1] = np.where(measured, uc01, p01)
    cov[..., 1, 0] = np.where(measured, uc10, p10)
    cov[..., 1, 1] = np.where(measured, uc11, p11)


class Track:
    """One hypothesized person: a per-antenna TOF Kalman bank.

    Args:
        track_id: stable identity of this track.
        dt_s: frame interval.
        tofs: the birthing fix's per-antenna round trips, shape
            ``(n_rx,)``.
        position: the birthing 3D fix.
        config: lifecycle tunables.
    """

    def __init__(
        self,
        track_id: int,
        dt_s: float,
        tofs: np.ndarray,
        position: np.ndarray,
        config: TrackManagerConfig,
    ) -> None:
        self.track_id = track_id
        self.config = config
        self.status = TrackStatus.TENTATIVE
        self.hits = 1
        self.misses = 0
        self.age = 1
        self.support = 1.0
        self._dt_s = dt_s
        self._support_decay = float(
            np.exp(-dt_s / config.support_time_constant_s)
        )
        self.position = np.asarray(position, dtype=np.float64).copy()
        # Per-antenna constant-velocity filter state, structure-of-arrays:
        # mean (n_rx, 2) and covariance (n_rx, 2, 2). The first
        # measurement initializes state [tof, 0] with cov diag(r, 1) —
        # exactly KalmanFilter1D's first update.
        n_rx = len(tofs)
        self._q00, self._q01, self._q11 = dwna_process_noise(
            dt_s, config.tof_process_noise
        )
        self._r = float(config.tof_measurement_noise)
        self._mean = np.zeros((n_rx, 2))
        self._mean[:, 0] = np.asarray(tofs, dtype=np.float64)
        self._cov = np.zeros((n_rx, 2, 2))
        self._cov[:, 0, 0] = self._r
        self._cov[:, 1, 1] = 1.0
        if config.confirm_hits <= 1:
            self.status = TrackStatus.CONFIRMED

    @property
    def num_rx(self) -> int:
        """Number of per-antenna TOF filters."""
        return self._mean.shape[0]

    @property
    def is_alive(self) -> bool:
        """True until the track dies."""
        return self.status is not TrackStatus.DEAD

    @property
    def is_reportable(self) -> bool:
        """True for confirmed or coasting tracks (what the app emits)."""
        return self.status in (TrackStatus.CONFIRMED, TrackStatus.COASTING)

    @property
    def smoothed_tofs(self) -> np.ndarray:
        """Current filtered per-antenna round trips, shape ``(n_rx,)``."""
        return self._mean[:, 0].copy()

    def predicted_tofs(self) -> np.ndarray:
        """One-frame-ahead round trips *without* advancing filter state."""
        return self._mean[:, 0] + self._dt_s * self._mean[:, 1]

    def tof_gate_m(self) -> float:
        """Current per-antenna claim gate, widened while coasting."""
        grown = self.config.tof_gate_m + (
            self.config.tof_gate_growth_mps * self.misses * self._dt_s
        )
        return float(min(grown, self.config.max_tof_gate_m))

    def advance(
        self,
        claimed_tofs: np.ndarray,
        solver: Solver,
        gate: FixGate | None = None,
    ) -> None:
        """Advance one frame with the claimed per-antenna candidates.

        Args:
            claimed_tofs: per-antenna claimed round trips, NaN where no
                candidate was claimed (those antennas coast).
            solver: localization solver used to refresh the 3D position
                from the smoothed TOFs.
            gate: feasible volume. Frames solved outside it earn zero
                support no matter how many antennas were claimed: a
                multipath ghost's TOFs stay self-consistent, but its
                ellipsoid intersection walks out through the ceiling or
                the floor — a real person cannot, so the ghost starves
                on support decay while a real track shrugs off a
                transient excursion during a coast.
        """
        values = np.asarray(claimed_tofs, dtype=np.float64)
        claims = int(np.count_nonzero(np.isfinite(values)))
        _filter_step(
            values,
            self._mean,
            self._cov,
            self._dt_s,
            self._q00,
            self._q01,
            self._q11,
            self._r,
            self.config.coast_velocity_decay,
        )
        solved = solver.solve_one(self._mean[:, 0])
        feasible = bool(np.all(np.isfinite(solved)))
        if feasible and gate is not None:
            feasible = bool(gate.admits(solved[None, :])[0])
        self._register(claims, solved, feasible)

    def _register(
        self, claims: int, solved: np.ndarray, feasible: bool
    ) -> None:
        """Fold one frame's claim count and solved fix into the lifecycle.

        Shared tail of :meth:`advance` and the cohort
        :class:`TrackBank` step (which computes ``solved``/``feasible``
        batched across every session's tracks).
        """
        if feasible:
            self.position = solved
        if claims >= min(self.config.min_claims, self.num_rx):
            # Support grows with the *fraction* of antennas claimed: a
            # parasite track scraping two noise candidates now and then
            # starves, while a person seen by the whole array thrives.
            self._hit(claims / self.num_rx if feasible else 0.0)
        else:
            self._miss()

    # -- lifecycle ---------------------------------------------------------

    def _hit(self, weight: float = 1.0) -> None:
        self.hits += 1
        self.misses = 0
        self.age += 1
        self.support = (
            self._support_decay * self.support
            + (1.0 - self._support_decay) * weight
        )
        if self.status is TrackStatus.COASTING:
            self.status = TrackStatus.CONFIRMED
        elif (
            self.status is TrackStatus.TENTATIVE
            and self.hits >= self.config.confirm_hits
        ):
            self.status = TrackStatus.CONFIRMED

    def _miss(self) -> None:
        self.misses += 1
        self.age += 1
        self.support *= self._support_decay
        if self.status is TrackStatus.TENTATIVE:
            if self.misses > self.config.max_tentative_misses:
                self.status = TrackStatus.DEAD
        else:
            self.status = TrackStatus.COASTING
            budget = min(
                self.config.max_coast_frames,
                self.config.coast_per_hit * self.hits,
            )
            if self.misses > budget or self.support < self.config.min_support:
                self.status = TrackStatus.DEAD


@dataclass(frozen=True)
class MultiTrack:
    """K concurrent 3D tracks — the multi-person mirror of
    :class:`~repro.core.tracker.TrackResult`.

    Attributes:
        frame_times_s: timestamp of each output frame.
        positions: per-track positions, shape ``(n_tracks, n_frames, 3)``;
            NaN rows mark frames where the track was not reportable
            (before confirmation, or after death).
        track_ids: stable identity per track row.
        coasting: True where a position is a coasted prediction rather
            than a measurement-updated estimate.
    """

    frame_times_s: np.ndarray
    positions: np.ndarray
    track_ids: tuple[int, ...]
    coasting: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of output frames."""
        return len(self.frame_times_s)

    @property
    def num_tracks(self) -> int:
        """Number of tracks that ever got confirmed."""
        return len(self.track_ids)

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of reportable (track, frame) cells."""
        return np.isfinite(self.positions).all(axis=2)

    @property
    def count_per_frame(self) -> np.ndarray:
        """People reported in each frame, shape ``(n_frames,)``."""
        return self.active_mask.sum(axis=0)

    def track(self, track_id: int) -> np.ndarray:
        """Positions of one track by id, shape ``(n_frames, 3)``."""
        idx = self.track_ids.index(track_id)
        return self.positions[idx]

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Pure-array form of the whole result (``.npz``-storable).

        Everything a :class:`MultiTrack` carries is already dense
        arrays except the ``track_ids`` tuple; :meth:`from_arrays`
        round-trips bitwise — the multi-person result-cache entry
        format.
        """
        return {
            "frame_times_s": self.frame_times_s,
            "positions": self.positions,
            "track_ids": np.asarray(self.track_ids, dtype=np.int64),
            "coasting": self.coasting,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "MultiTrack":
        """Rebuild a :class:`MultiTrack` from :meth:`to_arrays` output."""
        return cls(
            frame_times_s=arrays["frame_times_s"],
            positions=arrays["positions"],
            track_ids=tuple(int(i) for i in arrays["track_ids"]),
            coasting=arrays["coasting"].astype(bool),
        )


@dataclass
class _Snapshot:
    """Reportable tracks of one frame (internal history record)."""

    entries: dict[int, tuple[np.ndarray, bool]] = field(default_factory=dict)


class TrackManager:
    """Birth, update, coast, and kill tracks frame by frame.

    Drives both the batch tracker and the streaming app: call
    :meth:`step` once per frame with that frame's per-antenna candidate
    TOF sets, then :meth:`result` to package the accumulated history.

    Args:
        frame_dt_s: frame interval (12.5 ms at the paper's cadence).
        solver: localization solver of the deployed array.
        config: lifecycle tunables.
        gate: feasibility gate for birth fixes.
        ghost_images: bounce-plane antenna images for multipath-ghost
            suppression (see :func:`repro.multi.association.candidate_fixes`).
        max_births_per_frame: cap on new tracks born in one frame. One
            per frame (the default) staggers the scene start: the
            strongest person births first and her multipath arcs veto
            ghost births from the very next frame.
    """

    def __init__(
        self,
        frame_dt_s: float,
        solver: Solver,
        config: TrackManagerConfig | None = None,
        gate: FixGate | None = None,
        ghost_images: np.ndarray | None = None,
        max_births_per_frame: int = 1,
    ) -> None:
        if frame_dt_s <= 0:
            raise ValueError("frame_dt_s must be positive")
        self.frame_dt_s = frame_dt_s
        self.solver = solver
        self.config = config or TrackManagerConfig()
        self.gate = gate or FixGate()
        self.ghost_images = ghost_images
        self.max_births_per_frame = max_births_per_frame
        self.tracks: list[Track] = []
        self._next_id = 1
        self._history: list[_Snapshot] = []
        self._ever_confirmed: list[int] = []

    @property
    def num_frames(self) -> int:
        """Frames processed so far."""
        return len(self._history)

    def live_tracks(self) -> list[Track]:
        """Tracks that are not dead."""
        return [t for t in self.tracks if t.is_alive]

    def reportable_tracks(self) -> list[Track]:
        """Confirmed or coasting tracks, the per-frame app output."""
        return [t for t in self.tracks if t.is_reportable]

    def step(
        self,
        tof_sets: list[np.ndarray],
        power_sets: list[np.ndarray] | None = None,
    ) -> list[Track]:
        """Process one frame of per-antenna candidate TOF sets.

        Args:
            tof_sets: candidate round trips per antenna (NaN-padded),
                one entry per receive antenna.
            power_sets: echo power of each candidate, aligned with
                ``tof_sets``.

        Returns:
            The reportable tracks after this frame.
        """
        tofs = [np.asarray(s, dtype=np.float64) for s in tof_sets]
        n_rx = len(tofs)
        live = self.live_tracks()

        # Per-antenna claim: gated 1D Hungarian between every track's
        # predicted round trip and the frame's candidates.
        claimed = np.full((len(live), n_rx), np.nan)
        claimed_idx: set[tuple[int, int]] = set()
        if live:
            predictions = np.stack([t.predicted_tofs() for t in live])
            gates = np.array([t.tof_gate_m() for t in live])
            for a in range(n_rx):
                finite = np.flatnonzero(np.isfinite(tofs[a]))
                if len(finite) == 0:
                    continue
                pairs, _, _ = assign_fixes(
                    predictions[:, a : a + 1],
                    tofs[a][finite, None],
                    gates,
                )
                for t_idx, c_idx in pairs:
                    claimed[t_idx, a] = tofs[a][finite[c_idx]]
                    claimed_idx.add((a, int(finite[c_idx])))
        for t_idx, track in enumerate(live):
            track.advance(claimed[t_idx], self.solver, self.gate)

        # Births from the candidates no track claimed, with the live
        # tracks' multipath arcs pre-seeded as ghost evidence.
        leftovers = []
        leftover_powers = [] if power_sets is not None else None
        for a in range(n_rx):
            keep = np.array(
                [
                    np.isfinite(tofs[a][j]) and (a, j) not in claimed_idx
                    for j in range(len(tofs[a]))
                ],
                dtype=bool,
            )
            leftovers.append(np.where(keep, tofs[a], np.nan))
            if leftover_powers is not None:
                leftover_powers.append(
                    np.where(keep, np.asarray(power_sets[a]), np.nan)
                )
        self._births(leftovers, leftover_powers, live)
        return self._finalize()

    def _births(
        self,
        leftovers: list[np.ndarray],
        leftover_powers: list[np.ndarray] | None,
        live: list[Track],
    ) -> None:
        """Birth tracks from unclaimed candidates (shared with the bank).

        ``live`` is the step-start live list, post-advance: it seeds the
        ghost veto and the birth-exclusion neighborhood exactly as one
        staged :meth:`step` does.
        """
        births = candidate_fixes(
            leftovers,
            self.solver,
            gate=self.gate,
            power_sets=leftover_powers,
            max_fixes=self.max_births_per_frame,
            ghost_images=self.ghost_images,
            seed_positions=self._birth_seeds(live),
        )
        self._adopt_births(births, live)

    def _birth_seeds(self, live: list[Track]) -> list[np.ndarray]:
        """Ghost-veto seed positions for this frame's birth attempt.

        Any track with real evidence seeds the veto — waiting for
        confirmation would leave the first frames unguarded, and
        early-born multipath ghosts are the persistent ones.
        """
        return [t.position for t in live if t.hits >= 2]

    def _adopt_births(
        self, births: np.ndarray, live: list[Track]
    ) -> None:
        """Turn surviving birth fixes into tracks (exclusion applied).

        Split from :meth:`_births` so the cohort :class:`TrackBank` can
        feed it fixes from one batched
        :func:`~repro.multi.association.candidate_fixes_batched` pass.
        """
        born: list[np.ndarray] = []
        for fix in births:
            neighbors = [t.position for t in live if t.is_alive] + born
            if any(
                np.linalg.norm(p - fix) < self.config.birth_exclusion_m
                for p in neighbors
            ):
                continue
            self.tracks.append(
                Track(
                    self._next_id,
                    self.frame_dt_s,
                    self.solver.array.round_trip_distances(fix),
                    fix,
                    self.config,
                )
            )
            self._next_id += 1
            born.append(fix)

    def _finalize(self) -> list[Track]:
        """Cull dead tracks and record the frame snapshot (shared tail)."""
        self.tracks = [t for t in self.tracks if t.is_alive]

        snapshot = _Snapshot()
        for track in self.tracks:
            if track.is_reportable:
                if track.track_id not in self._ever_confirmed:
                    self._ever_confirmed.append(track.track_id)
                snapshot.entries[track.track_id] = (
                    track.position.copy(),
                    track.status is TrackStatus.COASTING,
                )
        self._history.append(snapshot)
        return self.reportable_tracks()

    def result(self, frame_times_s: np.ndarray) -> MultiTrack:
        """Package the accumulated history as a :class:`MultiTrack`."""
        frame_times_s = np.asarray(frame_times_s, dtype=np.float64)
        if len(frame_times_s) != self.num_frames:
            raise ValueError(
                f"{self.num_frames} frames processed but "
                f"{len(frame_times_s)} timestamps given"
            )
        ids = tuple(self._ever_confirmed)
        n_tracks = len(ids)
        positions = np.full((n_tracks, self.num_frames, 3), np.nan)
        coasting = np.zeros((n_tracks, self.num_frames), dtype=bool)
        index = {track_id: row for row, track_id in enumerate(ids)}
        for f, snapshot in enumerate(self._history):
            for track_id, (position, coasted) in snapshot.entries.items():
                row = index[track_id]
                positions[row, f] = position
                coasting[row, f] = coasted
        return MultiTrack(
            frame_times_s=frame_times_s,
            positions=positions,
            track_ids=ids,
            coasting=coasting,
        )


class TrackBank:
    """Structure-of-arrays stepper: one frame of many sessions at once.

    The staged serving path advances a cohort tick slot by slot — one
    :meth:`TrackManager.step` per session, each walking its
    :class:`Track` objects one at a time. The bank advances the same
    tick over a ``(slot, track)`` axis: it gathers every ticking slot's
    live-track filter state into stacked arrays, runs prediction,
    gating, the Kalman updates, and batched localization across all
    slots in array math, and scatters the results back into the
    managers' tracks. Claim assignment stays per ``(slot, antenna)``
    (:func:`~repro.multi.association.assign_fixes` — the Hungarian
    solve is not batchable without risking tie-break drift) and births
    stay per slot (:meth:`TrackManager._births` is rare-path).

    The managers remain the single source of truth: the bank holds no
    state of its own, so snapshot/restore, eviction, and the
    ``engine.track_manager`` accessors are untouched, and after a bank
    step every manager is bit-identical to having stepped it staged —
    the Kalman tree (:func:`_filter_step`), the lifecycle tail
    (:meth:`Track._register`), the assignment calls, and the birth path
    are literally the same code, just batched where the math is
    elementwise.

    Requires a row-independent solver (``solver.row_independent``, e.g.
    the closed-form T-geometry solver): the batched ``solver.solve``
    over all slots' tracks must equal the per-track ``solve_one`` calls
    bitwise. The tick compiler only fuses the associate stage when that
    holds. All managers of a serving cohort share one spec, so the
    frame interval, lifecycle config, fix gate, and solver are read
    from the first manager.
    """

    def step(
        self,
        managers: list[TrackManager],
        candidates: np.ndarray,
        powers: np.ndarray,
    ) -> list[list[tuple[int, np.ndarray]]]:
        """Advance one frame of every manager from its candidate sets.

        Args:
            managers: the ticking slots' managers, in tick-row order
                (one entry per row; a manager may appear once only).
            candidates: candidate round trips, shape
                ``(n_rows, n_rx, K)``, NaN-padded.
            powers: echo power per candidate, same shape.

        Returns:
            Per row, the reportable ``(track_id, position)`` pairs —
            exactly the staged per-slot output.
        """
        n_rows, n_rx, _ = candidates.shape
        lead = managers[0]
        dt = lead.frame_dt_s
        cfg = lead.config
        live_per = [m.live_tracks() for m in managers]
        all_tracks = [t for live in live_per for t in live]
        total = len(all_tracks)
        counts = [len(live) for live in live_per]
        offsets = np.zeros(n_rows + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])

        finite_cand = np.isfinite(candidates)
        claimed_mask = np.zeros(candidates.shape, dtype=bool)
        if total:
            # Gather: (track, antenna) filter state across every slot.
            mean = np.stack([t._mean for t in all_tracks])
            cov = np.stack([t._cov for t in all_tracks])
            misses = np.array(
                [t.misses for t in all_tracks], dtype=np.float64
            )
            predictions = mean[:, :, 0] + dt * mean[:, :, 1]
            gates = np.minimum(
                cfg.tof_gate_m + cfg.tof_gate_growth_mps * misses * dt,
                cfg.max_tof_gate_m,
            )
            # Claim: gated 1D Hungarian per (slot, antenna). The cost,
            # gate-block, and padding tensors are one vectorized pass
            # over every (track, antenna, candidate) cell; each
            # Hungarian solve then runs on a slice of them — the exact
            # matrix the staged step's assign_fixes builds per call
            # (its L2 norm of a 1-point row is |diff|: sqrt(x*x) == |x|
            # for doubles, and NaN cells land on the same 1e6 pad).
            claimed = np.full((total, n_rx), np.nan)
            slot_of = np.repeat(np.arange(n_rows), counts)
            cost = np.abs(predictions[:, :, None] - candidates[slot_of])
            cost = np.where(np.isfinite(cost), cost, 1e6)
            blocked = cost > gates[:, None, None]
            padded = np.where(blocked, 1e6, cost)
            for s in range(n_rows):
                t0, t1 = offsets[s], offsets[s + 1]
                if t0 == t1:
                    continue
                for a in range(n_rx):
                    finite = np.flatnonzero(finite_cand[s, a])
                    if len(finite) == 0:
                        continue
                    sub_blocked = blocked[t0:t1, a][:, finite]
                    rows, cols = linear_sum_assignment(
                        padded[t0:t1, a][:, finite]
                    )
                    for r, c in zip(rows, cols):
                        if not sub_blocked[r, c]:
                            claimed[t0 + r, a] = candidates[
                                s, a, finite[c]
                            ]
                            claimed_mask[s, a, finite[c]] = True
            # Advance: one Kalman tree over every (track, antenna) cell,
            # one localization solve over every track.
            q00, q01, q11 = dwna_process_noise(dt, cfg.tof_process_noise)
            _filter_step(
                claimed,
                mean,
                cov,
                dt,
                q00,
                q01,
                q11,
                float(cfg.tof_measurement_noise),
                cfg.coast_velocity_decay,
            )
            solved = lead.solver.solve(mean[:, :, 0]).positions
            feasible = np.all(np.isfinite(solved), axis=1)
            # NaN rows compare False everywhere, so gating the whole
            # batch equals the staged finite-then-gate short circuit.
            feasible &= lead.gate.admits(solved)
            claims = np.count_nonzero(np.isfinite(claimed), axis=1)
            for i, track in enumerate(all_tracks):
                track._mean[:] = mean[i]
                track._cov[:] = cov[i]
                track._register(
                    int(claims[i]), solved[i].copy(), bool(feasible[i])
                )

        # Leftovers: every finite candidate no track claimed, one
        # vectorized mask instead of per-slot keep loops. Births run
        # through one batched combo-solve across all slots (the gate,
        # ghost images, and birth cap are cohort-wide spec state, read
        # from the lead manager like the rest of the step).
        keep = finite_cand & ~claimed_mask
        leftovers = np.where(keep, candidates, np.nan)
        leftover_powers = np.where(keep, powers, np.nan)
        births_per = candidate_fixes_batched(
            [[leftovers[s, a] for a in range(n_rx)] for s in range(n_rows)],
            lead.solver,
            gate=lead.gate,
            power_slots=[
                [leftover_powers[s, a] for a in range(n_rx)]
                for s in range(n_rows)
            ],
            max_fixes=lead.max_births_per_frame,
            ghost_images=lead.ghost_images,
            seed_slots=[
                m._birth_seeds(live) for m, live in zip(managers, live_per)
            ],
        )
        out = []
        for s, manager in enumerate(managers):
            manager._adopt_births(births_per[s], live_per[s])
            tracks = manager._finalize()
            out.append([(t.track_id, t.position.copy()) for t in tracks])
        return out
