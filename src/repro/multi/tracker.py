"""MultiWiTrack: the public multi-person 3D tracking API.

The multi-person mirror of :class:`~repro.core.tracker.WiTrack`: feed it
per-antenna sweep spectra and it returns up to ``max_people`` concurrent
3D tracks with stable identities. The pipeline is

    sweeps -> frames -> background subtraction            (shared stages)
    -> successive-cancellation contours per antenna       (multi/cancellation)
    -> cross-antenna candidate fixes, ghost-gated         (multi/association)
    -> gated Hungarian assignment + Kalman track bank     (multi/tracks)

Paper fidelity note: WiTrack itself tracks a single person (Section 8);
successive cancellation and multi-target association are our extension,
in the direction of the authors' follow-up multi-person work.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, default_config
from ..core.background import background_subtract
from ..core.localize import make_solver
from ..core.spectrogram import spectrogram_from_sweeps
from ..geometry.antennas import AntennaArray, t_array
from ..rf.multipath import mirror_point
from ..sim.room import Room
from .association import FixGate
from .cancellation import MultiContourResult, successive_contours
from .tracks import MultiTrack, TrackManager, TrackManagerConfig


class MultiWiTrack:
    """Multi-person 3D motion tracking.

    Args:
        config: full system configuration (radio + array + pipeline).
        array: antenna array override; defaults to the configured T.
        max_people: upper bound K on concurrently tracked people.
        num_candidates: cancellation rounds per antenna and frame;
            defaults to ``max_people + 4`` so a near person's multipath
            images cannot crowd a far person out of the candidate list
            (the association stage prunes the extras geometrically).
        track_config: track lifecycle tunables.
        room: when given, tightens the ghost gate to the room's volume.
        solver_method: "auto", "closed_form" or "least_squares".
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        array: AntennaArray | None = None,
        max_people: int = 3,
        num_candidates: int | None = None,
        track_config: TrackManagerConfig | None = None,
        room: Room | None = None,
        solver_method: str = "auto",
    ) -> None:
        if max_people < 1:
            raise ValueError("max_people must be at least 1")
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.solver = make_solver(self.array, method=solver_method)
        self.max_people = max_people
        self.num_candidates = (
            num_candidates if num_candidates is not None else max_people + 4
        )
        self.track_config = track_config or TrackManagerConfig()
        self.gate = FixGate.from_room(room) if room is not None else FixGate()
        # Receive antennas mirrored through every bounce plane: where an
        # accepted fix's dynamic-multipath echoes must land, used to kill
        # persistent multipath ghosts during candidate selection.
        self.ghost_images: np.ndarray | None = None
        if room is not None and room.bounce_planes:
            self.ghost_images = np.stack(
                [
                    np.stack(
                        [
                            mirror_point(rx.position, point, normal)
                            for rx in self.array.rx
                        ]
                    )
                    for point, normal, _ in room.bounce_planes
                ]
            )

    @property
    def frame_duration_s(self) -> float:
        """Duration of one averaged frame."""
        return (
            self.config.pipeline.sweeps_per_frame
            * self.config.fmcw.sweep_duration_s
        )

    def contours(
        self, spectra: np.ndarray, range_bin_m: float
    ) -> tuple[MultiContourResult, ...]:
        """Per-antenna successive-cancellation candidate sets.

        Args:
            spectra: complex sweep spectra, shape ``(n_rx, n_sweeps,
                n_bins)``.
            range_bin_m: round-trip distance per spectrum bin.

        Returns:
            One :class:`MultiContourResult` per receive antenna.
        """
        cfg = self.config.pipeline
        results = []
        for i in range(spectra.shape[0]):
            spectrogram = spectrogram_from_sweeps(
                spectra[i],
                self.config.fmcw.sweep_duration_s,
                range_bin_m,
                sweeps_per_frame=cfg.sweeps_per_frame,
            ).crop(cfg.max_range_m)
            subtracted = background_subtract(spectrogram)
            results.append(
                successive_contours(
                    subtracted.power,
                    subtracted.range_bin_m,
                    max_targets=self.num_candidates,
                )
            )
        return tuple(results)

    def pipeline(self, range_bin_m: float):
        """A fresh multi-person :class:`~repro.pipeline.Pipeline`.

        The same stage graph drives :meth:`track` (batch) and the
        streaming :class:`~repro.apps.realtime.RealtimeMultiTracker`.
        """
        # Deferred import: repro.pipeline composes repro.multi primitives.
        from ..pipeline.runner import multi_person_pipeline

        return multi_person_pipeline(
            self.config,
            range_bin_m,
            manager=self.make_manager(),
            num_candidates=self.num_candidates,
            manager_factory=self.make_manager,
        )

    def track(self, spectra: np.ndarray, range_bin_m: float) -> MultiTrack:
        """Track every moving person through a block of sweep spectra.

        Args:
            spectra: complex sweep spectra per antenna, shape
                ``(n_rx, n_sweeps, n_bins)``.
            range_bin_m: round-trip distance per spectrum bin.

        Returns:
            The :class:`MultiTrack` of all confirmed people.
        """
        spectra = self._validate(spectra)
        pipe = self.pipeline(range_bin_m)
        result = pipe.run_batch(spectra)
        from ..pipeline.multi import Associate

        return pipe.stage(Associate).manager.result(result.frame_times_s)

    def track_stream(
        self, spectra: np.ndarray, range_bin_m: float
    ) -> MultiTrack:
        """Track frame-at-a-time through the same pipeline as :meth:`track`.

        Accepts a full recording or any iterable of
        ``(n_rx, sweeps_per_frame, n_bins)`` blocks.
        """
        if isinstance(spectra, np.ndarray):
            spectra = self._validate(spectra)
        pipe = self.pipeline(range_bin_m)
        result = pipe.run_stream(spectra)
        if result.num_frames == 0:
            raise ValueError(
                "recording produced no output frames (at least two "
                "averaged frames are needed to prime background "
                "subtraction)"
            )
        from ..pipeline.multi import Associate

        return pipe.stage(Associate).manager.result(result.frame_times_s)

    def _validate(self, spectra: np.ndarray) -> np.ndarray:
        spectra = np.asarray(spectra)
        if spectra.ndim != 3:
            raise ValueError("spectra must have shape (n_rx, n_sweeps, n_bins)")
        if spectra.shape[0] != self.array.num_receivers:
            raise ValueError(
                f"got {spectra.shape[0]} antenna streams for a "
                f"{self.array.num_receivers}-receiver array"
            )
        return spectra

    def make_manager(self) -> TrackManager:
        """A fresh :class:`TrackManager` wired to this tracker's setup."""
        return TrackManager(
            self.frame_duration_s,
            self.solver,
            config=self.track_config,
            gate=self.gate,
            ghost_images=self.ghost_images,
        )
