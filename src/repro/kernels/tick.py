"""The tick compiler: one cohort's stage chain as a single kernel call.

The staged serving loop walks 5-6 ``process_tick`` Python calls per
cohort per frame, each paying dataclass plumbing, kernel dispatch, and
intermediate allocations that dwarf the actual math on small cohorts.
:func:`compile_tick_plan` pattern-matches a pipeline's stage list
(each stage advertises its kernel-form update via
:meth:`~repro.pipeline.stages.Stage.fuse_spec`) against the
single-person chain — emitting a :class:`TickPlan`: the whole chain
stitched into one backend call over the stages' own SoA state slabs —
or the multi-person chain (successive cancellation + association over
a row-independent solver), emitting a :class:`MultiTickPlan` that runs
the cancellation rounds as one kernel call and every slot's tracks
through one :class:`~repro.multi.tracks.TrackBank` step.

Two fused implementations sit behind the usual backend seam:

* ``numpy`` — the chain inlined into one function over preallocated
  scratch slabs. On the steady path the only per-tick allocations are
  the output arrays that sessions retain (spectrum diff, ToFs, motion
  mask, positions) plus the small subpixel subset temporaries; every
  intermediate reuses plan scratch. The plan also keeps each stage's
  *gathered* state resident between ticks: when the same slot vector
  ticks again and no lifecycle event touched the slabs
  (``state_epoch``), the gathers are skipped — state round-trips
  through the same buffers, bit-identical to regathering.
* ``numba`` — a whole-chain ``@njit`` kernel: one compiled loop over
  (session, antenna) rows covering subtract, |diff|^2, median floor,
  contour scan, outlier gate, hold, Kalman, and the closed-form T
  localization. Compiled lazily; a compile failure warns once and
  permanently falls back to the staged loop (the probe runs before any
  state is touched, so nothing double-advances).

The ``reference`` backend never fuses (``Backend.fuse_ticks`` is
False), keeping it the executable specification: the parity suite pins
fused ≡ staged **bitwise** per backend — outputs and every state slab,
including NaN hold/outlier paths, mid-stream attach/evict, and
snapshot/restore migration across a fused↔staged boundary.

Escape hatch: ``REPRO_FUSED=0`` (read once per process, or
:func:`enable_fusion`\\ (False)) forces the staged loop everywhere.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from .backend import active_backend, kernel, register

_TRUE = {"1", "true", "yes", "on"}


def _read_env() -> bool:
    return os.environ.get("REPRO_FUSED", "1").strip().lower() in _TRUE


#: ``REPRO_FUSED`` parsed once (re-read by :func:`reset_fusion_override`
#: so tests that monkeypatch the environment can refresh it); per-tick
#: checks must not re-read the environment.
_env_default: bool = _read_env()
#: Programmatic override (None = follow the env var).
_forced: bool | None = None


def fused_enabled() -> bool:
    """Whether tick fusion is requested (``REPRO_FUSED``, default on)."""
    return _env_default if _forced is None else _forced


def enable_fusion(on: bool = True) -> None:
    """Programmatic override of ``REPRO_FUSED`` (benchmarks, tests)."""
    global _forced
    _forced = bool(on)


def reset_fusion_override() -> None:
    """Return control of fusion to the ``REPRO_FUSED`` variable."""
    global _forced, _env_default
    _forced = None
    _env_default = _read_env()


def fusion_active() -> bool:
    """True when ``Pipeline.tick`` should take the compiled-plan path.

    Requires both the user-facing switch (``REPRO_FUSED``) and a
    backend that opts in (``reference`` never does).
    """
    return fused_enabled() and active_backend().fuse_ticks


class FusionUnavailable(RuntimeError):
    """Raised by a fused kernel *before touching any state* when it
    cannot run (e.g. the numba whole-chain kernel failed to compile).
    ``Pipeline.tick`` catches it and continues on the staged loop; the
    plan disables itself so the probe happens once."""


#: The fusable single-person chain, in order (localize optional).
_CHAIN = ("background", "contour", "outlier", "hold", "kalman")

#: The fusable multi-person chain: shared front end, then successive
#: cancellation and the cohort track bank.
_MULTI_CHAIN = ("background", "cancel", "associate")


def compile_tick_plan(stages) -> "TickPlan | MultiTickPlan | None":
    """Compile a stage list into a tick plan, or ``None``.

    The single-person chain compiles to a :class:`TickPlan`, the
    multi-person chain (``SuccessiveCancel`` + ``Associate`` over a
    row-independent solver) to a :class:`MultiTickPlan`. ``None`` means
    at least one stage is unfusable (the warm-started least-squares
    solver, custom stages) or the chain shape matches neither pattern —
    the pipeline then stays on the staged loop.
    """
    kinds = tuple(stage.fuse_spec() for stage in stages)
    if kinds == _CHAIN:
        return TickPlan(
            stages[0], stages[1], stages[2], stages[3], stages[4], None
        )
    if kinds == _CHAIN + ("localize",):
        return TickPlan(
            stages[0], stages[1], stages[2], stages[3], stages[4], stages[5]
        )
    if kinds == _MULTI_CHAIN:
        return MultiTickPlan(stages[0], stages[1], stages[2])
    return None


class TickPlan:
    """One cohort spec's per-tick stage chain, compiled.

    Holds references to the stages' SoA state slabs (fused and staged
    execution share state, so a pipeline can cross the boundary
    mid-stream), the chain's scalar parameters folded once exactly as
    the staged stages fold them per call (same expressions, same
    floats), and per-shape scratch slabs reused across ticks.

    State-residency contract: while the same slot vector ticks fused
    back to back, the *scratch copies* are authoritative and the slabs
    lag (:attr:`_dirty`) — the pipeline calls :meth:`flush` as a read
    barrier before anything reads or mutates the slabs directly
    (``snapshot_session``, staged execution, lifecycle events, batch
    mode), so observable state is always current at those boundaries.
    :attr:`state_epoch` (bumped by the pipeline on attach/evict/
    restore/reset and on any staged execution) invalidates the resident
    copies, and a changed slot vector flushes and re-gathers.
    """

    #: Set per tick by the owning pipeline when profiling is on (the
    #: single-person fused kernels don't attribute sub-rows; the
    #: multi-person plan does).
    profiler = None

    def __init__(self, bg, contour, gate, hold, kalman, localize) -> None:
        self.bg = bg
        self.gate = gate
        self.hold = hold
        self.kalman = kalman
        self.localize = localize
        # ContourExtract parameters.
        self.range_bin_m = contour.range_bin_m
        self.thr_mul = 10.0 ** (contour.threshold_db / 10.0)
        self.rel_mul = 10.0 ** (-contour.relative_threshold_db / 10.0)
        self.min_bin = int(np.ceil(contour.min_range_m / contour.range_bin_m))
        self.hold_enabled = bool(hold.enabled)
        solver = localize.solver if localize is not None else None
        if solver is not None:
            d = solver.separation_m
            h = solver.below_m
            self.sep_m = d
            self.below_m = h
            self.min_y_sq = solver.min_y_m**2
            self.two_dd = 2.0 * d * d
            self.four_d = 4.0 * d
            self.hh = h * h
            self.two_h = 2.0 * h
            self.range_gate = np.array([d, d, h])
        #: Set by a fused kernel that probed and failed (numba compile
        #: error): the pipeline stops consulting this plan.
        self.disabled = False
        #: Bumped by the owning pipeline whenever stage state changes
        #: outside a fused tick; invalidates the resident gathers.
        self.state_epoch = 0
        #: (slots bytes, epoch) the resident state gathers are valid
        #: for, or None.
        self._hot = None
        #: The slot vector the resident state belongs to (flush target).
        self._hot_slots = None
        #: True while the resident scratch copies are newer than the
        #: slabs; :meth:`flush` writes them back.
        self._dirty = False
        self._scratch: dict | None = None

    def run(self, tick):
        """Advance the whole chain one tick via the active backend."""
        return kernel("fused_tick_single")(self, tick)

    def flush(self) -> None:
        """Write the resident scratch state back to the stage slabs.

        The read barrier of the lazy-writeback contract: the pipeline
        calls this before anything else reads or mutates the slabs
        (snapshot, staged execution, lifecycle events). Idempotent and
        cheap when nothing is dirty.
        """
        if not self._dirty:
            return
        self._dirty = False
        slots = self._hot_slots
        sc = self._scratch
        if slots is None or sc is None:
            return
        self.bg._previous[slots] = sc["prev"]
        g = self.gate
        g._last[slots] = sc["glast"]
        g._since[slots] = sc["gsince"]
        g._pending[slots] = sc["gpending"]
        g._pending_len[slots] = sc["gplen"]
        self.hold._held[slots] = sc["hheld"]
        k = self.kalman
        k._mean[slots] = sc["kmean"]
        k._cov[slots] = sc["kcov"]
        k._initialized[slots] = sc["klive"]

    def discard(self) -> None:
        """Drop the resident state without writing it back.

        For paths that have already replaced the slab contents wholesale
        (``Pipeline.reset``): flushing would resurrect pre-reset state.
        """
        self._dirty = False
        self._hot = None
        self._hot_slots = None

    def _scratch_for(self, n: int, n_rx: int, n_bins: int) -> dict:
        """Per-tick scratch slabs, reallocated only on shape change."""
        sc = self._scratch
        if sc is not None and sc["shape"] == (n, n_rx, n_bins):
            return sc
        rows = n * n_rx
        p = self.gate.confirmation_frames
        shape = (n, n_rx)
        # A shape change only happens on a not-hot tick, and every
        # not-hot tick flushes before reaching here — the old buffers
        # hold nothing the slabs don't.
        self.discard()
        self._scratch = sc = {
            "shape": (n, n_rx, n_bins),
            # Background subtract.
            "prev": np.empty((n, n_rx, n_bins), dtype=np.complex128),
            "power": np.empty((n, n_rx, n_bins)),
            # Contour: median / threshold / scan.
            "msc": np.empty((rows, n_bins)),
            "fpeak": np.empty(rows),
            "thr": np.empty(rows),
            "cand": np.empty((rows, max(n_bins - 2, 0)), dtype=bool),
            "c1": np.empty((rows, max(n_bins - 2, 0)), dtype=bool),
            "found": np.empty(rows, dtype=bool),
            "first": np.empty(rows, dtype=np.intp),
            "sub": np.empty((4, rows)),
            # Outlier gate: resident state + work buffers.
            "glast": np.empty(shape),
            "gsince": np.empty(shape, dtype=np.int64),
            "gpending": np.empty(shape + (p,)),
            "gplen": np.empty(shape, dtype=np.int64),
            "gmiss": np.empty(shape, dtype=bool),
            "gnl": np.empty(shape, dtype=bool),
            "gsmall": np.empty(shape, dtype=bool),
            "gdir": np.empty(shape, dtype=bool),
            "gcand": np.empty(shape, dtype=bool),
            "gacc": np.empty(shape, dtype=bool),
            "gf2": np.empty(shape),
            "gth": np.empty(shape),
            "gout": np.empty(shape),
            "b3": np.empty(shape + (p,), dtype=bool),
            "keep": np.empty(shape + (p,), dtype=bool),
            "f3": np.empty(shape + (p,)),
            "i3": np.empty(shape + (p,), dtype=np.int64),
            "d3": np.empty(shape + (p,), dtype=np.int64),
            "nk": np.empty(shape, dtype=np.int64),
            "i2": np.empty(shape, dtype=np.int64),
            "w_idx": np.arange(p, dtype=np.int64)[None, None, :],
            # Flat base index of each (session, antenna) row's pending
            # lane 0, for put_along_axis-free scatters.
            "gbase3": (np.arange(rows, dtype=np.int64) * p).reshape(
                n, n_rx, 1
            ),
            "gpos": np.empty(shape, dtype=np.int64),
            # Hold: resident state.
            "hheld": np.empty(shape),
            "hfin": np.empty(shape, dtype=bool),
            # Kalman: resident state + temp registers.
            "kmean": np.empty(shape + (2,)),
            "kcov": np.empty(shape + (2, 2)),
            "klive": np.empty(shape, dtype=bool),
            "kmiss": np.empty(shape, dtype=bool),
            "kml": np.empty(shape, dtype=bool),
            "knml": np.empty(shape, dtype=bool),
            "kmeas": np.empty(shape, dtype=bool),
            "kt": [np.empty(shape) for _ in range(13)],
            # Component views into kmean/kcov, precomputed so the
            # steady path doesn't re-slice per tick.
            "kviews": None,  # filled right below
            # Localize.
            "w3": np.empty((n, 3)),
            "sq3": np.empty((n, 3)),
            "l1": np.empty(n),
            "l2": np.empty(n),
            "l3": np.empty(n),
            "vb3": np.empty(shape, dtype=bool),
            "vc3": np.empty((n, 3), dtype=bool),
            "vb": np.empty(n, dtype=bool),
            "v2": np.empty(n, dtype=bool),
        }
        km, kcv = sc["kmean"], sc["kcov"]
        sc["kviews"] = (
            km[..., 0], km[..., 1],
            kcv[..., 0, 0], kcv[..., 0, 1], kcv[..., 1, 0], kcv[..., 1, 1],
        )
        return sc


def _prologue(plan: TickPlan, tick, hot: bool = False):
    """BackgroundSubtract's gather/scatter + priming compaction.

    Shared by the fused backends. Mirrors the staged stage exactly:
    gather each slot's previous frame *before* scattering the current
    one, and drop still-priming rows from the tick (a session's first
    frame only primes its reference row). Returns
    ``(tick, current, previous, scratch)`` — ``current`` is None when
    every row primed. ``hot`` certifies these slots completed a full
    steady tick since the last lifecycle event, so every row is primed
    without checking — and the previous frame is already resident in
    ``sc["prev"]`` (the fused kernel parks each tick's frame there),
    so the slab round-trip is skipped entirely.
    """
    bg = plan.bg
    current = tick.spectrum
    _, n_rx, n_bins = current.shape
    bg._ensure(n_rx, n_bins)
    slots = tick.slots
    if hot:
        return tick, current, plan._scratch["prev"], plan._scratch
    if bg._primed[slots].all():
        sc = plan._scratch_for(len(slots), n_rx, n_bins)
        previous = np.take(bg._previous, slots, axis=0, out=sc["prev"])
        bg._previous[slots] = current
        return tick, current, previous, sc
    primed = bg._primed[slots]
    # Priming tick (some session's first frame): rare, so it takes the
    # allocating path and drops the resident gathers.
    plan._hot = None
    previous = bg._previous[slots]
    bg._previous[slots] = current
    bg._primed[slots] = True
    tick = tick.select(primed)
    if tick.num_rows == 0:
        return tick, None, None, None
    current = tick.spectrum
    previous = previous[primed]
    sc = plan._scratch_for(tick.num_rows, n_rx, n_bins)
    return tick, current, previous, sc


def _gate_fused(plan: TickPlan, v: np.ndarray, slots, sc: dict, hot: bool):
    """The outlier gate, lean: same elementwise update as the staged
    ``OutlierGate._step_rows`` (bit-identical outputs and state,
    including the NaN-padded pending tails), with the stable-argsort
    pack replaced by an equivalent cumsum-addressed scatter and a fast
    path when no row is relocating."""
    g = plan.gate
    last = sc["glast"]
    since = sc["gsince"]
    pending = sc["gpending"]
    plen = sc["gplen"]
    if not hot:
        np.take(g._last, slots, axis=0, out=last)
        np.take(g._since, slots, axis=0, out=since)
        np.take(g._pending, slots, axis=0, out=pending)
        np.take(g._pending_len, slots, axis=0, out=plen)

    missing = np.isnan(v, out=sc["gmiss"])
    no_last = np.isnan(last, out=sc["gnl"])
    f2 = sc["gf2"]
    np.subtract(v, last, out=f2)
    np.abs(f2, out=f2)
    jump = np.multiply(since, g.max_jump_m, out=sc["gth"])
    small = np.less_equal(f2, jump, out=sc["gsmall"])
    # direct = ~missing & (no_last | small);
    # candidate = ~missing & ~no_last & ~small.
    direct = np.logical_or(no_last, small, out=sc["gdir"])
    candidate = np.logical_not(direct, out=sc["gcand"])
    np.greater(direct, missing, out=direct)  # direct & ~missing
    np.greater(candidate, missing, out=candidate)

    if candidate.any():
        # Candidate relocation: keep only pending values that agree
        # with the newest one, append it, accept once enough agree.
        p = g.confirmation_frames
        filled = np.less(sc["w_idx"], plen[:, :, None], out=sc["b3"])
        f3 = sc["f3"]
        np.subtract(pending, v[:, :, None], out=f3)
        np.abs(f3, out=f3)
        keep = np.less_equal(f3, g.agreement_m, out=sc["keep"])
        np.logical_and(filled, keep, out=keep)
        # Stable partition (kept first, in order) via cumsum addressing
        # — the same permutation the staged stable argsort produces.
        # Scatters go through flat indices (row-base + lane) rather than
        # ``put_along_axis``: same writes, none of the wrapper's
        # index-grid construction. Lanes within a row are a permutation
        # of 0..p-1, so the flat positions never collide.
        kc = np.add.accumulate(keep, axis=-1, dtype=np.int64, out=sc["i3"])
        nk = sc["nk"]
        np.copyto(nk, kc[..., -1])
        d3 = np.subtract(sc["w_idx"], kc, out=sc["d3"])
        np.add(d3, nk[:, :, None], out=d3)  # dropped -> after the kept
        np.subtract(kc, 1, out=kc)  # kept -> rank among kept
        np.copyto(d3, kc, where=keep)
        np.add(d3, sc["gbase3"], out=d3)
        f3.reshape(-1)[d3.reshape(-1)] = pending.reshape(-1)  # packed
        i2 = np.minimum(nk, p - 1, out=sc["i2"])
        pos = np.add(i2, sc["gbase3"][..., 0], out=sc["gpos"])
        f3.reshape(-1)[pos.reshape(-1)] = v.reshape(-1)
        np.add(nk, 1, out=i2)
        confirmed = np.greater_equal(i2, p, out=sc["b3"][..., 0])
        np.logical_and(candidate, confirmed, out=confirmed)
        accept = np.logical_or(direct, confirmed, out=sc["gacc"])
        np.copyto(pending, f3, where=candidate[:, :, None])
        np.copyto(plen, i2, where=candidate)
    else:
        # No relocations: pending buffers are untouched this tick (the
        # slab already matches the resident copy), only lengths clear
        # on acceptance.
        accept = direct

    out = sc["gout"]
    np.copyto(out, np.nan)
    np.copyto(out, v, where=accept)
    np.copyto(last, v, where=accept)
    np.add(since, 1, out=since)
    np.copyto(since, 1, where=accept)
    np.copyto(plen, 0, where=accept)
    return out


def _kalman_fused(plan: TickPlan, v: np.ndarray, slots, sc: dict, hot: bool):
    """The Kalman bank, lean: the measured-and-initialized steady case
    unrolled over scratch registers (bit-identical to the dispatched
    kernel's arithmetic); mixed ticks (NaN frames, fresh filters) fall
    back to the staged kernel on the resident state."""
    k = plan.kalman
    mean = sc["kmean"]
    cov = sc["kcov"]
    live = sc["klive"]
    if not hot:
        np.take(k._mean, slots, axis=0, out=mean)
        np.take(k._cov, slots, axis=0, out=cov)
        np.take(k._initialized, slots, axis=0, out=live)
    dt = k.frame_dt_s
    q00, q01, q11 = k._q00, k._q01, k._q11
    r = k.measurement_noise

    miss = np.isnan(v, out=sc["kmiss"])
    if miss.any() or not live.all():
        return _kalman_fused_mixed(plan, v, sc, miss, live, dt,
                                   q00, q01, q11, r)

    # Steady case: every filter initialized and measured. Same unrolled
    # predict+update as the kernel, written through registers.
    m0, m1, c00, c01, c10, c11 = sc["kviews"]
    ka, kb, kc, kd, ke, kf, kg, kh, kj = sc["kt"][:9]
    np.multiply(m1, dt, out=ka)
    np.add(m0, ka, out=ka)  # ka = pm0
    np.multiply(c10, dt, out=kb)
    np.add(c00, kb, out=kb)  # kb = a00
    np.multiply(c11, dt, out=kc)
    np.add(c01, kc, out=kc)  # kc = a01
    np.multiply(kc, dt, out=kd)
    np.add(kb, kd, out=kd)
    np.add(kd, q00, out=kd)  # kd = p00
    np.add(kc, q01, out=kc)  # kc = p01
    np.multiply(c11, dt, out=ke)
    np.add(c10, ke, out=ke)
    np.add(ke, q01, out=ke)  # ke = p10
    np.add(c11, q11, out=kf)  # kf = p11
    np.subtract(v, ka, out=kg)  # kg = innovation
    np.add(kd, r, out=kh)  # kh = s
    np.divide(kd, kh, out=kb)  # kb = g0
    np.divide(ke, kh, out=kh)  # kh = g1
    out = np.empty_like(v)  # retained by sessions: fresh
    np.multiply(kb, kg, out=kj)
    np.add(ka, kj, out=out)  # out = um0
    np.multiply(kh, kg, out=kj)
    np.add(m1, kj, out=m1)  # m1 = um1
    np.copyto(m0, out)  # m0 = um0
    np.subtract(1.0, kb, out=kj)  # kj = 1 - g0
    np.multiply(kj, kd, out=c00)  # u00
    np.multiply(kj, kc, out=c01)  # u01
    np.negative(kh, out=kj)  # kj = -g1
    np.multiply(kj, kd, out=kh)
    np.add(kh, ke, out=c10)  # u10
    np.multiply(kj, kc, out=kh)
    np.add(kh, kf, out=c11)  # u11
    # live | measured == live here: the resident copy is current.
    return out


def _kalman_fused_mixed(plan: TickPlan, v, sc, miss, live,
                        dt, q00, q01, q11, r):
    """Mixed ticks (NaN frames and/or fresh filters), fully resident.

    Computes the staged kernel's vectorized predict+update over the
    resident registers — the same expression trees as
    ``_kalman_tick_numpy``, so identical rounding and NaN propagation —
    then applies its nested ``where`` selections as in-place masked
    copies per row class (live update / live predict / initialize).
    Bit-identical to routing the tick through the staged kernel,
    without its fresh mean/cov allocations or the scratch round trip.
    """
    m0, m1, c00, c01, c10, c11 = sc["kviews"]
    measured = np.logical_not(miss, out=sc["kmeas"])
    ml = np.logical_and(measured, live, out=sc["kml"])  # live update
    nml = np.logical_and(miss, live, out=sc["knml"])  # live predict
    mnl = np.greater(measured, live, out=miss)  # first measurement
    (pm0, a00, p00, p01, p10, p11, inn,
     g0, g1, um0, u00, u10, u11) = sc["kt"]
    # Predict — same grouping as the staged kernel.
    np.multiply(m1, dt, out=pm0)
    np.add(m0, pm0, out=pm0)  # pm0 = m0 + dt*m1
    np.multiply(c10, dt, out=a00)
    np.add(c00, a00, out=a00)  # a00 = c00 + dt*c10
    np.multiply(c11, dt, out=p01)
    np.add(c01, p01, out=p01)  # a01 = c01 + dt*c11
    np.multiply(p01, dt, out=p00)
    np.add(a00, p00, out=p00)
    np.add(p00, q00, out=p00)  # p00 = (a00 + a01*dt) + q00
    np.add(p01, q01, out=p01)  # p01 = a01 + q01
    np.multiply(c11, dt, out=p10)
    np.add(c10, p10, out=p10)
    np.add(p10, q01, out=p10)  # p10 = (c10 + c11*dt) + q01
    np.add(c11, q11, out=p11)  # p11 = c11 + q11
    # Update — NaN innovations flow through um*, exactly as in the
    # staged kernel, and are never selected by the merges below.
    np.subtract(v, pm0, out=inn)
    np.add(p00, r, out=g0)  # s
    np.divide(p10, g0, out=g1)  # g1 = p10 / s
    np.divide(p00, g0, out=g0)  # g0 = p00 / s
    np.multiply(g0, inn, out=um0)
    np.add(pm0, um0, out=um0)  # um0 = pm0 + g0*innovation
    um1 = np.multiply(g1, inn, out=inn)
    np.add(m1, um1, out=um1)  # um1 = m1 + g1*innovation
    omg = np.subtract(1.0, g0, out=a00)  # 1 - g0
    np.multiply(omg, p00, out=u00)  # u00 = (1-g0)*p00
    u01 = np.multiply(omg, p01, out=g0)  # u01 = (1-g0)*p01
    ng1 = np.negative(g1, out=omg)  # -g1
    np.multiply(ng1, p00, out=u10)
    np.add(u10, p10, out=u10)  # u10 = (-g1)*p00 + p10
    np.multiply(ng1, p01, out=u11)
    np.add(u11, p11, out=u11)  # u11 = (-g1)*p01 + p11
    # Merges: the staged kernel's where(measured, where(live, ...))
    # nesting, one masked copy per (class, slab).
    out = np.empty_like(v)  # retained by sessions: fresh
    np.copyto(out, np.nan)
    np.copyto(out, pm0, where=nml)
    np.copyto(out, v, where=mnl)
    np.copyto(out, um0, where=ml)
    np.copyto(m0, pm0, where=nml)
    np.copyto(m0, v, where=mnl)
    np.copyto(m0, um0, where=ml)
    np.copyto(m1, 0.0, where=mnl)
    np.copyto(m1, um1, where=ml)
    np.copyto(c00, p00, where=nml)
    np.copyto(c00, r, where=mnl)
    np.copyto(c00, u00, where=ml)
    np.copyto(c01, p01, where=nml)
    np.copyto(c01, 0.0, where=mnl)
    np.copyto(c01, u01, where=ml)
    np.copyto(c10, p10, where=nml)
    np.copyto(c10, 0.0, where=mnl)
    np.copyto(c10, u10, where=ml)
    np.copyto(c11, p11, where=nml)
    np.copyto(c11, 1.0, where=mnl)
    np.copyto(c11, u11, where=ml)
    np.logical_or(live, measured, out=live)
    return out


@register("numpy", "fused_tick_single")
def _fused_tick_numpy(plan: TickPlan, tick):
    """The whole single-person chain, inlined over scratch slabs.

    Every step reproduces its staged stage's arithmetic operation for
    operation (restructured only in where results land and how merges
    are addressed), so the output arrays and every state slab are
    bit-identical to the staged loop — the parity suite holds this to
    ``np.array_equal``.
    """
    hot = plan._hot is not None and plan._hot == (
        tick.slots.tobytes(),
        plan.state_epoch,
    )
    # Cleared while the chain mutates state; restored once the tick
    # completes, so a mid-chain error can never leave a stale key.
    plan._hot = None
    if not hot:
        # Different slots (or invalidated): park the previous cohort's
        # resident state in the slabs before re-gathering.
        plan.flush()
    tick, current, previous, sc = _prologue(plan, tick, hot)
    if current is None:
        return tick
    n, n_rx, n_bins = current.shape
    slots = tick.slots
    plan.gate._ensure(n_rx)
    plan.hold._ensure(n_rx)
    plan.kalman._ensure(n_rx)

    with np.errstate(invalid="ignore", divide="ignore"):
        # BackgroundSubtract: the diff is an output (sessions retain
        # row views of the spectrum), the power slab is scratch.
        diff = current - previous
        tick.spectrum = diff
        power = sc["power"]
        np.abs(diff, out=power)
        np.multiply(power, power, out=power)
        tick.power = power

        # ContourExtract, flattened to (session*antenna, bins): median
        # noise floor (in-place partition selects the same elements as
        # the staged partition copy), absolute + relative threshold,
        # then the vectorized local-max scan.
        rows = n * n_rx
        p2 = power.reshape(rows, n_bins)
        msc = sc["msc"]
        np.copyto(msc, p2)
        half = n_bins // 2
        if n_bins % 2:
            msc.partition(half, axis=1)
            floor = msc[:, half]
        else:
            msc.partition((half - 1, half), axis=1)
            floor = np.add(msc[:, half - 1], msc[:, half], out=sc["thr"])
            floor /= 2.0
        frame_peak = np.maximum.reduce(p2, axis=1, out=sc["fpeak"])
        threshold = np.multiply(floor, plan.thr_mul, out=sc["thr"])
        np.multiply(frame_peak, plan.rel_mul, out=frame_peak)
        np.maximum(threshold, frame_peak, out=threshold)

        found = sc["found"]
        first = sc["first"]
        if n_bins >= 3:
            center = p2[:, 1:-1]
            cand = np.less(center, threshold[:, None], out=sc["cand"])
            np.logical_not(cand, out=cand)  # ~(center < threshold)
            c1 = np.greater_equal(center, p2[:, :-2], out=sc["c1"])
            np.logical_and(cand, c1, out=cand)
            np.greater_equal(center, p2[:, 2:], out=c1)
            np.logical_and(cand, c1, out=cand)
            lo = max(plan.min_bin, 1)
            if lo > 1:
                cand[:, : lo - 1] = False
            np.logical_or.reduce(cand, axis=1, out=found)
            cand.argmax(axis=1, out=first)
            np.add(first, 1, out=first)
        else:  # no interior bin can be a local maximum
            found[:] = False

        contour = np.empty(rows)
        contour.fill(np.nan)
        hit = np.nonzero(found)[0]
        if hit.size:
            # Parabolic subpixel refinement on the hit subset, through
            # slices of a dedicated register block.
            m = hit.size
            k = first[hit]
            idx = hit * n_bins
            np.add(idx, k, out=idx)
            p2f = p2.reshape(-1)
            sub = sc["sub"]
            np.subtract(idx, 1, out=idx)
            left = np.take(p2f, idx, out=sub[0, :m])
            np.add(idx, 1, out=idx)
            mid = np.take(p2f, idx, out=sub[1, :m])
            np.add(idx, 1, out=idx)
            right = np.take(p2f, idx, out=sub[2, :m])
            denom = sub[3, :m]  # denom = left - 2.0*mid + right
            np.multiply(mid, 2.0, out=denom)
            np.subtract(left, denom, out=denom)
            np.add(denom, right, out=denom)
            num = np.subtract(left, right, out=sub[1, :m])
            np.multiply(num, 0.5, out=num)
            refined = np.divide(num, denom, out=num)
            np.maximum(refined, -0.5, out=refined)
            np.minimum(refined, 0.5, out=refined)
            np.abs(denom, out=sub[0, :m])
            ok = np.greater(sub[0, :m], 1e-30, out=sc["c1"].reshape(-1)[:m])
            offset = np.where(ok, refined, 0.0)
            np.add(offset, k, out=offset)
            np.multiply(offset, plan.range_bin_m, out=offset)
            contour[hit] = offset
        raw = contour.reshape(n, n_rx)
        tick.raw_tof_m = raw
        tick.motion = found.copy().reshape(n, n_rx)

        # OutlierGate -> HoldInterpolate -> KalmanSmooth over the
        # resident state.
        tof = _gate_fused(plan, raw, slots, sc, hot)
        hold = plan.hold
        finite = np.isfinite(tof, out=sc["hfin"])
        held = sc["hheld"]
        if not hot:
            np.take(hold._held, slots, axis=0, out=held)
        np.copyto(held, tof, where=finite)  # held = where(finite, v, held)
        if plan.hold_enabled:
            tof = held
        tof = _kalman_fused(plan, tof, slots, sc, hot)
        tick.tof_m = tof
        # Lazy writeback: the scratch copies (including this frame as
        # the next tick's background reference) are now authoritative;
        # the pipeline flushes them before any slab-level read.
        np.copyto(sc["prev"], current)
        plan._hot = (slots.tobytes(), plan.state_epoch)
        plan._hot_slots = slots
        plan._dirty = True

        # Localize: the closed-form T solver, inlined (same expression
        # grouping as TGeometrySolver.solve, constants prefolded).
        if plan.localize is not None:
            k1 = tof[:, 0]
            k2 = tof[:, 1]
            k3 = tof[:, 2]
            t3 = tof[:, :3]
            sq3 = np.multiply(t3, t3, out=sc["sq3"])
            w3 = sc["w3"]  # columns: r0, x, z
            l1, l2, l3 = sc["l1"], sc["l2"], sc["l3"]
            np.add(sq3[:, 0], sq3[:, 1], out=l1)
            np.subtract(l1, plan.two_dd, out=l1)
            np.add(k1, k2, out=l2)
            np.multiply(l2, 2.0, out=l2)
            r0 = np.divide(l1, l2, out=w3[:, 0])
            np.subtract(sq3[:, 0], sq3[:, 1], out=l1)
            np.multiply(r0, 2.0, out=l2)
            np.subtract(k2, k1, out=l3)
            np.multiply(l2, l3, out=l2)
            np.add(l1, l2, out=l1)
            np.divide(l1, plan.four_d, out=w3[:, 1])  # x
            np.subtract(sq3[:, 2], plan.hh, out=l1)
            np.multiply(k3, 2.0, out=l2)
            np.multiply(l2, r0, out=l2)
            np.subtract(l1, l2, out=l1)
            np.divide(l1, plan.two_h, out=w3[:, 2])  # z
            np.multiply(w3, w3, out=sq3)  # r0^2, x^2, z^2
            y_sq = np.subtract(sq3[:, 0], sq3[:, 1], out=l1)
            np.subtract(y_sq, sq3[:, 2], out=y_sq)
            y = np.maximum(y_sq, 0.0, out=l2)
            np.sqrt(y, out=y)
            positions = np.empty((n, 3))  # retained: fresh
            positions[:, 0] = w3[:, 1]
            positions[:, 1] = y
            positions[:, 2] = w3[:, 2]
            # valid = isfinite(all antennas) & k1>d & k2>d & k3>h & r0>0
            #         & y_sq > min_y^2
            vb3 = np.isfinite(tof, out=sc["vb3"])
            valid = np.logical_and.reduce(vb3, axis=1, out=sc["vb"])
            vc3 = np.greater(t3, plan.range_gate, out=sc["vc3"])
            v2 = np.logical_and.reduce(vc3, axis=1, out=sc["v2"])
            np.logical_and(valid, v2, out=valid)
            np.greater(r0, 0.0, out=v2)
            np.logical_and(valid, v2, out=valid)
            np.greater(y_sq, plan.min_y_sq, out=v2)
            np.logical_and(valid, v2, out=valid)
            np.logical_not(valid, out=v2)
            positions[v2] = np.nan
            tick.positions = positions
    return tick


class MultiTickPlan:
    """One multi-person cohort spec's stage chain, compiled.

    The multi-person analogue of :class:`TickPlan`: background subtract,
    successive cancellation, and the association track bank as one
    ``fused_tick_multi`` kernel call per cohort tick. Same lazy-
    writeback protocol (:meth:`flush` / :meth:`discard` /
    :attr:`state_epoch` / the hot-key skip), but the only plan-resident
    state is the background stage's previous-frame slab: cancellation is
    stateless, and the association state lives in the
    :class:`~repro.multi.tracks.TrackManager` objects, which the
    cohort :class:`~repro.multi.tracks.TrackBank` scatters back into
    every tick — so snapshot/restore, eviction, and direct manager
    access need no extra barriers beyond the background flush.

    Only the ``numpy`` backend registers ``fused_tick_multi``; under
    the ``numba`` backend the dispatch falls back to it, and the inner
    ``successive_cancel`` call re-dispatches to the JIT row kernel —
    the association stage is Python/numpy on every backend.
    """

    #: Set per tick by the owning pipeline when profiling is on; the
    #: fused kernel then records ``fused_cancel`` / ``fused_associate``
    #: sub-rows next to the pipeline's ``fused_tick`` total.
    profiler = None

    def __init__(self, bg, cancel, assoc) -> None:
        # Deferred: repro.multi imports the kernels package at load time.
        from ..multi.tracks import TrackBank

        self.bg = bg
        self.assoc = assoc
        # SuccessiveCancel parameters, folded once.
        self.range_bin_m = cancel.range_bin_m
        self.max_targets = cancel.max_targets
        self.threshold_db = cancel.threshold_db
        self.min_range_m = cancel.min_range_m
        self.null_halfwidth_m = cancel.null_halfwidth_m
        self.relative_threshold_db = cancel.relative_threshold_db
        self.bank = TrackBank()
        #: See :class:`TickPlan` for the protocol these implement.
        self.disabled = False
        self.state_epoch = 0
        self._hot = None
        self._hot_slots = None
        self._dirty = False
        self._scratch: dict | None = None

    def run(self, tick):
        """Advance the whole chain one tick via the active backend."""
        return kernel("fused_tick_multi")(self, tick)

    def flush(self) -> None:
        """Write the resident background reference back to the slab."""
        if not self._dirty:
            return
        self._dirty = False
        slots = self._hot_slots
        sc = self._scratch
        if slots is None or sc is None:
            return
        self.bg._previous[slots] = sc["prev"]

    def discard(self) -> None:
        """Drop the resident state without writing it back."""
        self._dirty = False
        self._hot = None
        self._hot_slots = None

    def _scratch_for(self, n: int, n_rx: int, n_bins: int) -> dict:
        """Per-tick scratch slabs, reallocated only on shape change."""
        sc = self._scratch
        if sc is not None and sc["shape"] == (n, n_rx, n_bins):
            return sc
        self.discard()
        self._scratch = sc = {
            "shape": (n, n_rx, n_bins),
            "prev": np.empty((n, n_rx, n_bins), dtype=np.complex128),
            "power": np.empty((n, n_rx, n_bins)),
        }
        return sc


@register("numpy", "fused_tick_multi")
def _fused_tick_multi_numpy(plan: MultiTickPlan, tick):
    """The multi-person chain as one call over plan scratch.

    Stage for stage the staged loop's arithmetic: the cancellation
    kernel sees the identical ``(session*antenna, bins)`` row stacking
    (one call, one global rounds break), and the track bank runs the
    staged managers' own claim/filter/lifecycle/birth code batched over
    the ``(slot, track)`` axis — so outputs, manager state, and track
    identities are bit-identical to the staged loop on every backend.
    """
    hot = plan._hot is not None and plan._hot == (
        tick.slots.tobytes(),
        plan.state_epoch,
    )
    plan._hot = None
    if not hot:
        plan.flush()
    tick, current, previous, sc = _prologue(plan, tick, hot)
    if current is None:
        return tick
    n, n_rx, n_bins = current.shape
    profiler = plan.profiler
    with np.errstate(invalid="ignore", divide="ignore"):
        # BackgroundSubtract: the diff is an output (sessions retain
        # row views of the spectrum), the power slab is scratch.
        diff = current - previous
        tick.spectrum = diff
        power = sc["power"]
        np.abs(diff, out=power)
        np.multiply(power, power, out=power)
        tick.power = power

        # SuccessiveCancel: all rounds of all rows, one kernel call.
        t0 = perf_counter() if profiler is not None else 0.0
        round_trips, peaks, _, _ = kernel("successive_cancel")(
            power.reshape(n * n_rx, n_bins),
            plan.range_bin_m,
            plan.max_targets,
            plan.threshold_db,
            plan.min_range_m,
            plan.null_halfwidth_m,
            plan.relative_threshold_db,
        )
        candidates = round_trips.T.reshape(n, n_rx, plan.max_targets)
        powers = peaks.T.reshape(n, n_rx, plan.max_targets)
        tick.candidates_m = candidates
        tick.candidate_powers = powers
        if profiler is not None:
            t1 = perf_counter()
            profiler.record("fused_cancel", t1 - t0, candidates.nbytes)
            t0 = t1

        # Associate: every slot's tracks through one bank step.
        managers = [plan.assoc._managers[s] for s in tick.slots]
        tick.tracks = plan.bank.step(managers, candidates, powers)
        if profiler is not None:
            profiler.record("fused_associate", perf_counter() - t0)

        # Lazy writeback: this frame is the next tick's background
        # reference; the pipeline flushes before any slab-level read.
        np.copyto(sc["prev"], current)
        plan._hot = (tick.slots.tobytes(), plan.state_epoch)
        plan._hot_slots = tick.slots
        plan._dirty = True
    return tick
