"""Per-stage profiling counters for the serving pipelines.

``Pipeline.tick`` times each stage's ``process_tick`` and accumulates
{calls, wall seconds, bytes produced} per stage name into a
:class:`StageProfiler` — but only when profiling is enabled at pipeline
construction, so the disabled path costs one ``is None`` check per
tick. Enable with ``REPRO_PROFILE=1`` (any of 1/true/yes/on) or
programmatically with :func:`enable_profiling` (the CLI's
``repro bench --profile`` path).

Profiles surface in ``repro bench``/``repro serve`` tables and in every
benchmark JSON artifact (``serving.json``, ``load.json``,
``kernels.json``), so future kernel work is gated by data rather than
instinct.
"""

from __future__ import annotations

import os

_TRUE = {"1", "true", "yes", "on"}
#: Programmatic override: None defers to the REPRO_PROFILE env var.
_forced: bool | None = None


def profiling_enabled() -> bool:
    """Whether pipelines built *now* should carry a profiler."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in _TRUE


def enable_profiling(on: bool = True) -> None:
    """Force profiling on/off process-wide, overriding the env var.

    Affects pipelines built after the call; existing pipelines keep
    whatever they were constructed with. Undo with
    :func:`reset_profiling_override`.
    """
    global _forced
    _forced = on


def reset_profiling_override() -> None:
    """Return profiling control to the ``REPRO_PROFILE`` env var."""
    global _forced
    _forced = None


class StageProfiler:
    """Accumulates {calls, wall_s, bytes} per stage name.

    ``bytes`` counts the arrays a stage's output tick carries (its
    working-set footprint), giving a rough MB/s alongside wall time.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, dict[str, float]] = {}

    def record(
        self, name: str, wall_s: float, nbytes: int = 0, calls: int = 1
    ) -> None:
        """Add one (or ``calls``) stage invocations to ``name``."""
        entry = self.counters.get(name)
        if entry is None:
            entry = self.counters[name] = {
                "calls": 0,
                "wall_s": 0.0,
                "bytes": 0,
            }
        entry["calls"] += calls
        entry["wall_s"] += wall_s
        entry["bytes"] += nbytes

    def merge(self, other: "StageProfiler | dict") -> None:
        """Fold another profiler (or its ``as_dict``) into this one."""
        counters = (
            other.counters if isinstance(other, StageProfiler) else other
        )
        for name, entry in counters.items():
            self.record(
                name, entry["wall_s"], int(entry["bytes"]), int(entry["calls"])
            )

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready copy of the counters (stage -> counter dict)."""
        return {name: dict(entry) for name, entry in self.counters.items()}

    def table(self) -> str:
        """Human-readable per-stage table (for CLI ``--profile`` output)."""
        header = (
            f"{'stage':<20} {'calls':>8} {'total ms':>10} "
            f"{'us/call':>9} {'MB/s':>8}"
        )
        lines = [header, "-" * len(header)]
        for name, entry in self.counters.items():
            calls = int(entry["calls"])
            wall = entry["wall_s"]
            per_call_us = (wall / calls * 1e6) if calls else 0.0
            mb_s = (entry["bytes"] / wall / 1e6) if wall > 0 else 0.0
            lines.append(
                f"{name:<20} {calls:>8d} {wall * 1e3:>10.2f} "
                f"{per_call_us:>9.1f} {mb_s:>8.1f}"
            )
        return "\n".join(lines)
