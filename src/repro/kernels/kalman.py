"""The unrolled 2x2 constant-velocity Kalman tick kernel.

One vectorized predict+update over a ``(n_sessions, n_antennas)``
bank of scalar constant-velocity filters (§4.4), with every 2x2
matrix product unrolled to elementwise arithmetic. The numpy
implementation is the PR 4 stage math moved here verbatim; numba
replaces the nested ``np.where`` merges with one branchy loop that
touches each filter once.

NaN inputs advance an initialized filter without a measurement
(prediction); the first measurement initializes a filter; NaN before
that stays NaN.
"""

from __future__ import annotations

import numpy as np

from .backend import kernel, register


def kalman_tick(
    values: np.ndarray,
    mean: np.ndarray,
    cov: np.ndarray,
    live: np.ndarray,
    dt: float,
    q00: float,
    q01: float,
    q11: float,
    r: float,
):
    """One Kalman frame for a bank of filters (dispatched).

    Args:
        values: measurements ``(n, a)``; NaN = no measurement.
        mean: ``[distance, velocity]`` means, ``(n, a, 2)``.
        cov: covariances, ``(n, a, 2, 2)``.
        live: which filters are initialized, ``(n, a)`` bool.
        dt: frame interval.
        q00/q01/q11: discrete white-noise-acceleration process noise.
        r: measurement variance.

    Returns:
        ``(out, new_mean, new_cov, new_live)`` — fresh arrays; the
        caller scatters them back into its state bank.
    """
    return kernel("kalman_tick")(values, mean, cov, live, dt, q00, q01, q11, r)


@register("numpy", "kalman_tick")
@register("reference", "kalman_tick")
def _kalman_tick_numpy(values, mean, cov, live, dt, q00, q01, q11, r):
    measured = ~np.isnan(values)

    # Predict (all initialized filters advance, measured or not).
    m0, m1 = mean[..., 0], mean[..., 1]
    c00, c01 = cov[..., 0, 0], cov[..., 0, 1]
    c10, c11 = cov[..., 1, 0], cov[..., 1, 1]
    pm0 = m0 + dt * m1
    a00 = c00 + dt * c10
    a01 = c01 + dt * c11
    p00 = (a00 + a01 * dt) + q00
    p01 = a01 + q01
    p10 = (c10 + c11 * dt) + q01
    p11 = c11 + q11

    # Update (initialized filters with a measurement).
    innovation = values - pm0
    s = p00 + r
    g0 = p00 / s
    g1 = p10 / s
    um0 = pm0 + g0 * innovation
    um1 = m1 + g1 * innovation
    u00 = (1.0 - g0) * p00
    u01 = (1.0 - g0) * p01
    u10 = (-g1) * p00 + p10
    u11 = (-g1) * p01 + p11

    # First measurement initializes; NaN before that stays NaN.
    out = np.where(
        measured,
        np.where(live, um0, values),
        np.where(live, pm0, np.nan),
    )
    new = np.empty_like(mean)
    new[..., 0] = np.where(
        measured, np.where(live, um0, values), np.where(live, pm0, m0)
    )
    new[..., 1] = np.where(measured, np.where(live, um1, 0.0), m1)
    newc = np.empty_like(cov)
    newc[..., 0, 0] = np.where(
        measured, np.where(live, u00, r), np.where(live, p00, c00)
    )
    newc[..., 0, 1] = np.where(
        measured, np.where(live, u01, 0.0), np.where(live, p01, c01)
    )
    newc[..., 1, 0] = np.where(
        measured, np.where(live, u10, 0.0), np.where(live, p10, c10)
    )
    newc[..., 1, 1] = np.where(
        measured, np.where(live, u11, 1.0), np.where(live, p11, c11)
    )
    return out, new, newc, live | measured
