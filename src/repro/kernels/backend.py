"""The array-backend seam under the hot-loop kernels.

Every hot kernel (sweep synthesis, background power + contour scan,
the 2x2 Kalman tick) is registered here per backend and dispatched at
call time, so raw-speed work is a *subsystem* with a switch rather
than a series of one-off rewrites:

* ``numpy`` — the default: restructured, allocation-lean numpy.
  Always available.
* ``reference`` — the original (pre-kernel-tier) implementations,
  kept as the executable specification the fast backends are
  parity-tested against, and as the honest baseline the benchmarks
  measure speedups from.
* ``numba`` — JIT-fused loops. Optional: selecting it on a machine
  without numba warns once and falls back to numpy (graceful
  degradation — the suite must pass with or without the JIT).

Selection: the ``REPRO_BACKEND`` environment variable (read on first
use), :func:`set_backend`, or the :func:`use_backend` context manager
(tests). A backend that lacks a particular kernel falls back to the
numpy implementation for that kernel only, so partial backends are
valid.

Parity: backend == numpy is pinned to tight tolerances by
``tests/test_kernels.py`` (fuzzed per kernel and end-to-end through
``ServingEngine``), exactly the way distributed == single-process is
pinned.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator


class Backend:
    """One named set of kernel implementations.

    Attributes:
        name: registry key (``numpy``, ``reference``, ``numba``).
        static_split: whether :meth:`SweepSynthesizer.synthesize_batch
            <repro.rf.receiver.SweepSynthesizer.synthesize_batch>` may
            hoist static (scalar round-trip/amplitude) paths out of the
            per-sweep scatter. False only for ``reference``, which must
            reproduce the original code's cost and math shape.
        fuse_ticks: whether :meth:`Pipeline.tick
            <repro.pipeline.Pipeline.tick>` may run a compiled
            :class:`~repro.kernels.tick.TickPlan` (the whole stage
            chain as one kernel call) instead of the staged loop.
            False only for ``reference``, which stays the honest
            stage-by-stage cost model the fused paths are measured
            against.
        impls: kernel key -> callable.
    """

    def __init__(
        self,
        name: str,
        static_split: bool = True,
        fuse_ticks: bool = True,
    ) -> None:
        self.name = name
        self.static_split = static_split
        self.fuse_ticks = fuse_ticks
        self.impls: dict[str, Callable] = {}


_BACKENDS: dict[str, Backend] = {
    "numpy": Backend("numpy"),
    "reference": Backend("reference", static_split=False, fuse_ticks=False),
}
_active: Backend | None = None
#: Lazy numba probe state: None = not tried, str = failed with reason.
_numba_error: str | None = None


def register_backend(name: str, static_split: bool = True) -> Backend:
    """Create (or fetch) a backend registry entry."""
    backend = _BACKENDS.get(name)
    if backend is None:
        backend = Backend(name, static_split=static_split)
        _BACKENDS[name] = backend
    return backend


def register(backend_name: str, key: str) -> Callable:
    """Decorator: register a kernel implementation on a backend."""

    def deco(fn: Callable) -> Callable:
        register_backend(backend_name).impls[key] = fn
        return fn

    return deco


def _load_numba() -> Backend | None:
    """Import the numba backend once; None (with a reason) on failure."""
    global _numba_error
    if "numba" in _BACKENDS:
        return _BACKENDS["numba"]
    if _numba_error is not None:
        return None
    try:
        from . import _numba  # noqa: F401  (registers the backend)
    except Exception as exc:  # ImportError, or numba failing to init
        _numba_error = f"{type(exc).__name__}: {exc}"
        return None
    return _BACKENDS["numba"]


def available_backends() -> list[str]:
    """Backends selectable on this machine (numba only if importable)."""
    names = ["numpy", "reference"]
    if _load_numba() is not None:
        names.append("numba")
    return names


def set_backend(name: str) -> str:
    """Select the active backend; returns the *effective* name.

    ``numba`` on a machine without numba warns and falls back to
    ``numpy`` (so ``REPRO_BACKEND=numba`` is safe everywhere); any
    other unknown name raises.
    """
    global _active
    name = (name or "numpy").strip().lower()
    if name == "numba":
        backend = _load_numba()
        if backend is None:
            warnings.warn(
                f"REPRO_BACKEND=numba requested but the JIT backend is "
                f"unavailable ({_numba_error}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            backend = _BACKENDS["numpy"]
    elif name in _BACKENDS:
        backend = _BACKENDS[name]
    else:
        known = ", ".join(sorted(set(_BACKENDS) | {"numba"}))
        raise ValueError(f"unknown backend {name!r}; choose from: {known}")
    _active = backend
    return backend.name


def active_backend() -> Backend:
    """The active backend (initialized from ``REPRO_BACKEND`` once)."""
    global _active
    if _active is None:
        set_backend(os.environ.get("REPRO_BACKEND", "numpy"))
    assert _active is not None
    return _active


def backend_name() -> str:
    """Name of the active backend."""
    return active_backend().name


def kernel(key: str) -> Callable:
    """The active backend's implementation of one kernel.

    Falls back to the numpy implementation when the active backend
    does not provide ``key`` — partial backends are valid.
    """
    backend = active_backend()
    fn = backend.impls.get(key)
    if fn is None:
        fn = _BACKENDS["numpy"].impls[key]
    return fn


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch backends (parity tests, benchmarks)."""
    global _active
    previous = active_backend()
    effective = set_backend(name)
    try:
        yield effective
    finally:
        _active = previous
