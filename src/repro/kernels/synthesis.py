r"""Sweep-synthesis scatter kernel: the factored Hann-Dirichlet write.

One kernel serves every synthesis call in the repo: *scatter each
propagation path's leakage footprint into a stack of sweep spectra*.
The output rows are sweeps — possibly many independent streams
(antennas x sessions of a cohort) stacked into one array — and each
path ``p`` writes its window into rows ``row_base[p] + s`` for sweep
``s``. Fusing streams into one call is what makes cohort-fused
synthesis (all N sessions per tick in one kernel pass) a batching
change instead of a math change.

Equivalence invariants the tests pin:

* **Stream fusion is exact.** Paths scatter one at a time, in input
  order, and a cell's contributing paths all belong to one stream —
  so each (row, bin) cell sees the same sequence of adds whether its
  stream is scattered alone or stacked with others. Fused ==
  per-stream bitwise (up to elementwise transcendental passes, which
  numpy evaluates identically at the sizes the serving tier uses).
* **Sweep chunking is exact.** Chunking splits each path's scatter
  into consecutive sweep ranges; per cell it is the same adds in the
  same order, so results are chunk-size invariant.

The ``reference`` implementation is the pre-kernel-tier code moved
here verbatim (valid-mask gather + unpadded bincount); ``numpy``
replaces it with rank-grouped fancy-index accumulation (streams never
share rows and a path's window cells are distinct, so each stream's
k-th paths scatter together in one exact ``out[rows, bins] +=``; no
dense row x bin accumulator is ever materialized) and evaluates the
window denominators by angle addition against cached per-window
constants — one sin/cos pair per (path, sweep) instead of a
window-sized transcendental pass.
"""

from __future__ import annotations

import numpy as np

from .backend import kernel, register


def accumulate_spectra(
    out: np.ndarray,
    frac_bin: np.ndarray,
    coeff: np.ndarray,
    row_base: np.ndarray,
    half: int,
    n_samples: int,
    hann: bool,
) -> None:
    """Scatter every path's leakage footprint into ``out`` (dispatched).

    Args:
        out: complex128 ``(n_rows, n_bins)`` — stacked sweep spectra,
            modified in place. Path ``p``'s sweep ``s`` writes into row
            ``row_base[p] + s``.
        frac_bin: ``(n_paths, n_sweeps)`` fractional bin position.
        coeff: ``(n_paths, n_sweeps)`` complex amplitude (linear
            amplitude x carrier/reflection phase), precomputed by the
            caller so every backend sees identical inputs.
        row_base: ``(n_paths,)`` int64 first output row of each path's
            stream.
        half: kernel halfwidth in bins (window is ``2*half + 1`` wide).
        n_samples: FMCW samples per sweep (the Dirichlet length).
        hann: True for the Hann three-term combination, False for rect.
    """
    kernel("accumulate_spectra")(
        out, frac_bin, coeff, row_base, half, n_samples, hann
    )


# ---------------------------------------------------------------------------
# numpy backend: angle-addition denominators + per-path fancy scatter.
# ---------------------------------------------------------------------------

#: (half, n_samples, hann) -> (g, rot, pattern) window constants.
_WINDOW_CACHE: dict = {}

#: (half, n_samples) -> (n cos(pi w/n), n sin(pi w/n)) over the
#: extended window, for the angle-addition denominator pass.
_DEN_CACHE: dict = {}


def _den_constants(half: int, n_samples: int):
    key = (half, n_samples)
    cached = _DEN_CACHE.get(key)
    if cached is None:
        n = float(n_samples)
        w_ext = np.arange(-(half + 1), half + 2, dtype=np.float64)
        cached = _DEN_CACHE[key] = (
            n * np.cos(np.pi * w_ext / n),
            n * np.sin(np.pi * w_ext / n),
        )
    return cached


def window_constants(half: int, n_samples: int, hann: bool):
    """Per-window constants of the factored kernel (cached).

    ``g[w] = (-1)^w exp(-j pi ratio w)`` is the integer-offset part of
    the factored Dirichlet numerator; ``rot = exp(j pi ratio)`` is the
    constant phase rotation between adjacent Hann terms; ``pattern`` is
    the exact integer-offset limit (1 at w=0 and, for Hann, -0.5 at
    |w|=1). Shared by the numpy and numba backends.
    """
    key = (half, n_samples, hann)
    cached = _WINDOW_CACHE.get(key)
    if cached is None:
        n = float(n_samples)
        ratio = (n - 1.0) / n
        w = np.arange(-half, half + 1)
        sign = np.where(w % 2 == 0, 1.0, -1.0)
        g = sign * np.exp(-1j * np.pi * ratio * w)
        rot = complex(np.exp(1j * np.pi * ratio))
        if hann:
            pattern = np.where(
                w == 0, 1.0 + 0j, np.where(np.abs(w) == 1, -0.5 + 0j, 0j)
            )
        else:
            pattern = (w == 0).astype(np.complex128)
        cached = _WINDOW_CACHE[key] = (g, rot, np.ascontiguousarray(pattern))
    return cached


#: Sweep-tile size target, in (path, sweep, window) cells. The window
#: pipeline makes ~15 elementwise passes over its temporaries; tiling
#: the sweep axis keeps them cache-resident so those passes run at
#: cache bandwidth instead of DRAM bandwidth. Sweep chunking is exact
#: (see the module docstring), so tiling never changes a value.
_TILE_CELLS = 1 << 16

#: Single-slot tile-shaped work-buffer cache: every full tile of a
#: call (and of a steady serving cohort's every chunk) reuses the same
#: buffers; a partial final tile uses sliced views of them. One slot
#: bounds the footprint; a shape change just reallocates.
_SCRATCH: list = [None, None]


def _scratch(n_paths: int, tile: int, width: int) -> dict:
    key = (n_paths, tile, width)
    if _SCRATCH[0] != key:
        ext = (n_paths, tile, width + 2)
        win = (n_paths, tile, width)
        _SCRATCH[0] = key
        _SCRATCH[1] = {
            "den": np.empty(ext),
            "tmp": np.empty(ext),
            "re": np.empty(win),
            "im": np.empty(win),
            "contrib": np.empty(win, dtype=np.complex128),
            "sm": np.empty(win, dtype=np.complex128),
        }
    return _SCRATCH[1]


def _stream_ranks(row_base: np.ndarray) -> list:
    """Paths grouped by rank within their stream (see scatter note)."""
    order = np.argsort(row_base, kind="stable")
    rb_sorted = row_base[order]
    new_run = np.empty(len(order), dtype=bool)
    new_run[0] = True
    np.not_equal(rb_sorted[1:], rb_sorted[:-1], out=new_run[1:])
    run_start = np.flatnonzero(new_run)
    rank = np.arange(len(order), dtype=np.int64)
    rank -= run_start[np.cumsum(new_run) - 1]
    return [order[rank == k] for k in range(int(rank.max()) + 1)]


def _tile_contrib(e, coeff, sc, g, rot, pattern, cw, sw, n, ratio, hann):
    """The factored window values for one sweep tile, into scratch."""
    # Per-(path, sweep) factor: sin(pi e) exp(-j pi ratio e) coeff.
    small = np.sin(np.pi * e) * np.exp(-1j * np.pi * ratio * e)
    small *= coeff

    # Denominators n sin(pi (e + w) / n) over the extended window by
    # angle addition — one sin/cos pair per (path, sweep), two fused
    # broadcasts over the window, one shared reciprocal pass, all
    # through the scratch buffers (same ops, same order as the
    # allocating form — reuse never changes a value).
    m = e.shape[1]
    arg = (np.pi / n) * e
    den = np.multiply(np.sin(arg)[:, :, None], cw, out=sc["den"][:, :m])
    den += np.multiply(np.cos(arg)[:, :, None], sw, out=sc["tmp"][:, :m])
    den[den == 0.0] = 1.0
    r = np.divide(1.0, den, out=den)
    contrib = sc["contrib"][:, :m]
    if hann:
        cr = 0.5 * rot.real
        ci = 0.5 * rot.imag
        r0, r1, r2 = r[:, :, :-2], r[:, :, 1:-1], r[:, :, 2:]
        re = np.add(r0, r2, out=sc["re"][:, :m])
        re *= cr
        re += r1
        contrib.real = re
        im = np.subtract(r0, r2, out=sc["im"][:, :m])
        im *= ci
        contrib.imag = im
    else:
        contrib.real = r[:, :, 1:-1]
        contrib.imag = 0.0
    contrib *= np.multiply(small[:, :, None], g, out=sc["sm"][:, :m])

    exact = np.abs(e) < 1e-12
    if np.any(exact):
        contrib[exact] = coeff[exact][:, None] * pattern
    return contrib


@register("numpy", "accumulate_spectra")
def _accumulate_numpy(out, frac_bin, coeff, row_base, half, n_samples, hann):
    n_rows, n_b = out.shape
    n_paths, n_sweeps = frac_bin.shape
    n = float(n_samples)
    ratio = (n - 1.0) / n
    width = 2 * half + 1
    g, rot, pattern = window_constants(half, n_samples, hann)
    cw, sw = _den_constants(half, n_samples)
    w_win = np.arange(-half, half + 1, dtype=np.int64)

    # Clip far-out-of-range centers; a clipped center's whole window
    # falls outside [0, n_b) so its (garbage-phase) cells are dropped
    # by the scatter, and every unclipped path keeps |e| <= 0.5.
    center = np.rint(frac_bin)
    np.clip(center, -(half + 1.0), float(n_b + half), out=center)
    e_all = center - frac_bin
    binc_all = center.astype(np.int64)

    if n_sweeps == 1:
        # Template case (many static paths, one sweep): a padded
        # bincount touches few rows and beats a per-path loop. The
        # branch depends only on n_sweeps, which fusion preserves, so
        # fused and per-stream calls always scatter the same way.
        sc = _scratch(n_paths, 1, width)
        contrib = _tile_contrib(
            e_all, coeff, sc, g, rot, pattern, cw, sw, n, ratio, hann
        )
        pad = width
        n_pad = n_b + 2 * pad
        flat = (
            row_base[:, None] * n_pad + (binc_all[:, 0, None] + w_win + pad)
        ).ravel()
        total = n_rows * n_pad
        acc = np.bincount(
            flat, weights=contrib.real.ravel(), minlength=total
        )
        out.real += acc.reshape(n_rows, n_pad)[:, pad : pad + n_b]
        acc = np.bincount(
            flat, weights=contrib.imag.ravel(), minlength=total
        )
        out.imag += acc.reshape(n_rows, n_pad)[:, pad : pad + n_b]
        return

    # Rank-grouped scatter: a fancy-index add is exact only when its
    # cells are distinct, and only paths of the *same* stream can share
    # a (row, bin) cell (rows already separate sweeps and streams). So
    # paths are grouped by rank within their stream — group k holds
    # each stream's k-th path, whose row ranges are mutually disjoint —
    # and each group scatters in one fancy-index add: max-paths-per-
    # stream dispatches instead of one per path. A cell's colliding
    # paths still land in ascending rank = original within-stream
    # order, so the result is bitwise the per-path loop's.
    groups = _stream_ranks(row_base)
    tile = max(1, _TILE_CELLS // max(n_paths * (width + 2), 1))
    sc = _scratch(n_paths, min(tile, n_sweeps), width)
    for s0 in range(0, n_sweeps, tile):
        s1 = min(s0 + tile, n_sweeps)
        e = e_all[:, s0:s1]
        binc = binc_all[:, s0:s1]
        contrib = _tile_contrib(
            e, coeff[:, s0:s1], sc, g, rot, pattern, cw, sw, n, ratio, hann
        )
        sweep_idx = np.arange(s0, s1, dtype=np.int64)[:, None]
        for sel in groups:
            rows = row_base[sel][:, None, None] + sweep_idx
            bins = binc[sel][:, :, None] + w_win
            if bins[..., 0].min() >= 0 and bins[..., -1].max() < n_b:
                out[rows, bins] += contrib[sel]
            else:
                m = (bins >= 0) & (bins < n_b)
                if m.any():
                    rr = np.broadcast_to(rows, bins.shape)
                    out[rr[m], bins[m]] += contrib[sel][m]


# ---------------------------------------------------------------------------
# reference backend: the pre-kernel-tier implementation, verbatim
# (valid-mask gather + unpadded bincount), generalized only by row_base.
# ---------------------------------------------------------------------------


def reference_fast_kernel(
    e: np.ndarray, window: np.ndarray, n_samples: int, hann: bool
) -> np.ndarray:
    """The original factored leakage kernel (executable specification)."""
    n = n_samples
    ratio = (n - 1.0) / n
    sin_pe = np.sin(np.pi * e)
    phase_e = np.exp(-1j * np.pi * ratio * e)
    sign = np.where(window % 2 == 0, 1.0, -1.0)
    phase_w = np.exp(-1j * np.pi * ratio * window)
    s_c = (sin_pe * phase_e)[:, :, None] * (sign * phase_w)[None, None, :]
    w_ext = np.arange(window[0] - 1, window[-1] + 2)
    den_ext = n * np.sin(np.pi * (w_ext[None, None, :] + e[:, :, None]) / n)
    den_ext = np.where(den_ext == 0.0, 1.0, den_ext)
    inv0 = 1.0 / den_ext[:, :, 1:-1]
    if not hann:
        kernel_v = s_c * inv0
    else:
        rot = np.exp(1j * np.pi * ratio)
        kernel_v = s_c * (
            inv0
            + 0.5 * rot / den_ext[:, :, :-2]
            + 0.5 * np.conj(rot) / den_ext[:, :, 2:]
        )
    exact = np.abs(e) < 1e-12
    if np.any(exact):
        if not hann:
            pattern = (window == 0).astype(np.complex128)
        else:
            pattern = np.where(
                window == 0,
                1.0 + 0j,
                np.where(np.abs(window) == 1, -0.5 + 0j, 0j),
            )
        kernel_v[exact] = pattern
    return kernel_v


@register("reference", "accumulate_spectra")
def _accumulate_reference(
    out, frac_bin, coeff, row_base, half, n_samples, hann
):
    n_rows, n_b = out.shape
    window = np.arange(-half, half + 1)
    center = np.round(frac_bin).astype(np.int64)
    bins = center[:, :, None] + window[None, None, :]
    kernel_v = reference_fast_kernel(
        center - frac_bin, window, n_samples, hann
    )
    contrib = coeff[:, :, None] * kernel_v
    n_sweeps = frac_bin.shape[1]
    rows = np.broadcast_to(
        (row_base[:, None] + np.arange(n_sweeps, dtype=np.int64))[:, :, None],
        bins.shape,
    )
    valid = (bins >= 0) & (bins < n_b)
    flat = rows[valid] * n_b + bins[valid]
    values = contrib[valid]
    total = n_rows * n_b
    acc = np.bincount(
        flat, weights=values.real, minlength=total
    ).astype(np.complex128)
    acc += 1j * np.bincount(flat, weights=values.imag, minlength=total)
    out += acc.reshape(n_rows, n_b)
