"""Background-power + contour-scan kernels.

Two row-independent kernels behind the backend seam:

* :func:`background_power` — ``|diff|^2`` of the background-subtracted
  complex spectra, written into a caller-provided buffer (the stage
  reuses it across ticks; the per-tick ``np.abs`` temporary is gone).
* :func:`first_local_max_above` — per-row index of the first local
  maximum above threshold: the bottom-contour scan of §4.3. The numpy
  implementation is the vectorized scan of PR 4 (moved here verbatim);
  the numba implementation walks each row with early exit — the
  closest reflector usually sits in the first few dozen bins, so the
  scan rarely reads the whole row.
* :func:`row_median` — per-row median (the §4.3 noise-floor estimate).
  The numpy implementation selects via ``np.partition`` instead of
  paying ``np.median``'s dispatch overhead on the small per-tick rows;
  identical values for the finite, NaN-free power rows it is fed.
"""

from __future__ import annotations

import numpy as np

from .backend import kernel, register


def background_power(diff: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``|diff|**2`` into ``out`` (float64, same shape); returns ``out``."""
    return kernel("background_power")(diff, out)


def first_local_max_above(
    power: np.ndarray, threshold: np.ndarray, min_bin: int
) -> np.ndarray:
    """Per-row index of the first local maximum above threshold, or -1.

    A bin is a local maximum if it is not smaller than both neighbours;
    ``min_bin`` skips the DC/Tx-leakage region. Row-independent: the
    result for a row does not depend on which other rows share the
    call, so frames batch across time, antennas, or serving sessions
    interchangeably.
    """
    return kernel("first_local_max_above")(power, threshold, min_bin)


def row_median(power: np.ndarray) -> np.ndarray:
    """Median of each row of a ``(n_rows, n_bins)`` array.

    Caller contract: rows are finite (background-subtracted power is
    ``|diff|^2 >= 0``); NaN handling is unspecified and backends may
    disagree on NaN rows.
    """
    return kernel("row_median")(power)


@register("numpy", "background_power")
def _background_power_numpy(diff, out):
    np.abs(diff, out=out)
    np.multiply(out, out, out=out)
    return out


@register("reference", "background_power")
def _background_power_reference(diff, out):
    # Original form: allocates the |diff| temporary and the result.
    return np.abs(diff) ** 2


@register("numpy", "first_local_max_above")
@register("reference", "first_local_max_above")
def _first_local_max_numpy(power, threshold, min_bin):
    n_bins = power.shape[1]
    if n_bins < 3:  # no interior bin can be a local maximum
        return np.full(power.shape[0], -1)
    center = power[:, 1:-1]
    # ``~(x < t)`` rather than ``x >= t`` keeps the scalar code's NaN
    # semantics: a NaN threshold rejects nothing.
    candidate = (
        ~(center < threshold[:, None])
        & (center >= power[:, :-2])
        & (center >= power[:, 2:])
    )
    lo = max(min_bin, 1)
    if lo > 1:
        candidate[:, : lo - 1] = False
    found = candidate.any(axis=1)
    first = np.argmax(candidate, axis=1) + 1
    return np.where(found, first, -1)


@register("numpy", "row_median")
def _row_median_numpy(power):
    half = power.shape[1] // 2
    if power.shape[1] % 2:
        return np.partition(power, half, axis=1)[:, half]
    part = np.partition(power, (half - 1, half), axis=1)
    # (a + b) / 2, matching np.median's even-count mean bit for bit.
    return (part[:, half - 1] + part[:, half]) / 2.0


@register("reference", "row_median")
def _row_median_reference(power):
    return np.median(power, axis=1)
