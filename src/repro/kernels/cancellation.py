"""Successive-cancellation kernel: all K contour rounds in one call.

The multi-person chain's hot loop (:func:`repro.multi.cancellation.
successive_contours`) traces the bottom contour of a background-
subtracted spectrogram, nulls the detected reflector's energy band,
and repeats up to ``max_targets`` times. The staged implementation
re-entered :func:`~repro.core.contour.track_bottom_contour` per round,
paying a fresh set of result allocations and kernel dispatches every
time; here the whole rounds loop is one backend call over all
(session, antenna) rows of a cohort tick.

Contract (every backend):

    successive_cancel(power, range_bin_m, max_targets, threshold_db,
                      min_range_m, null_halfwidth_m,
                      relative_threshold_db)
        -> (round_trips, peak_powers, thresholds, n_rounds)

with ``round_trips``/``peak_powers`` of shape ``(max_targets, n_rows)``
(NaN marks exhausted rounds), ``thresholds`` of shape ``(n_rounds,
n_rows)`` holding the absolute power threshold each round applied to
each row, and ``n_rounds`` the number of rounds that detected anything
anywhere. The input ``power`` is never mutated — rounds carve their
null bands out of an internal residual copy with one masked scatter
per round instead of per-round array copies.

* ``reference`` is the verbatim pre-kernel loop (``track_bottom_contour``
  + ``null_band`` per round), kept as the executable specification.
* ``numpy`` runs the same rounds loop against preallocated outputs with
  the contour math inlined (partition median, threshold, scan,
  subpixel) — bit-identical to the staged numpy path.
* ``numba`` (in :mod:`repro.kernels._numba`) walks each row
  independently with per-row early exit; a row that stops detecting is
  frozen, which provably reproduces the global break (its residual —
  and therefore its threshold and scan result — never changes again).
"""

from __future__ import annotations

import numpy as np

from .backend import kernel, register
from .contour import first_local_max_above, row_median


def successive_cancel(
    power: np.ndarray,
    range_bin_m: float,
    max_targets: int,
    threshold_db: float,
    min_range_m: float,
    null_halfwidth_m: float,
    relative_threshold_db: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """All cancellation rounds for ``power`` rows, on the active backend."""
    if power.ndim != 2:
        raise ValueError("power must have shape (n_frames, n_bins)")
    return kernel("successive_cancel")(
        power,
        range_bin_m,
        max_targets,
        threshold_db,
        min_range_m,
        null_halfwidth_m,
        relative_threshold_db,
    )


@register("numpy", "successive_cancel")
def _successive_cancel_numpy(
    power: np.ndarray,
    range_bin_m: float,
    max_targets: int,
    threshold_db: float,
    min_range_m: float,
    null_halfwidth_m: float,
    relative_threshold_db: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    residual = np.array(power, dtype=np.float64, copy=True)
    n_rows, n_bins = residual.shape
    round_trips = np.full((max_targets, n_rows), np.nan)
    peaks = np.full((max_targets, n_rows), np.nan)
    thresholds = np.empty((max_targets, n_rows))
    thr_mul = 10.0 ** (threshold_db / 10.0)
    rel_mul = 10.0 ** (-relative_threshold_db / 10.0)
    min_bin = int(np.ceil(min_range_m / range_bin_m))
    half_bins = int(np.ceil(null_halfwidth_m / range_bin_m))
    cols = np.arange(n_bins)
    n_rounds = 0
    for k in range(max_targets):
        floor = row_median(residual)
        frame_peak = residual.max(axis=1)
        threshold = np.maximum(floor * thr_mul, frame_peak * rel_mul)
        first = first_local_max_above(residual, threshold, min_bin)
        rows = np.flatnonzero(first >= 0)
        if not rows.size:
            break
        thresholds[k] = threshold
        n_rounds = k + 1
        sel = first[rows]
        left = residual[rows, sel - 1]
        mid = residual[rows, sel]
        right = residual[rows, sel + 1]
        denom = left - 2.0 * mid + right
        with np.errstate(invalid="ignore", divide="ignore"):
            refined = np.clip(0.5 * (left - right) / denom, -0.5, 0.5)
        offset = np.where(np.abs(denom) > 1e-30, refined, 0.0)
        round_trips[k, rows] = (sel + offset) * range_bin_m
        peaks[k, rows] = mid
        if k + 1 < max_targets:
            # Null carve: one vectorized masked scatter into the
            # residual (the staged path's null_band, without its
            # per-round mask allocations feeding a fresh result object).
            detected = np.zeros(n_rows, dtype=bool)
            detected[rows] = True
            centers = (
                np.where(detected, round_trips[k], 0.0) / range_bin_m
            )
            band = np.abs(cols[None, :] - centers[:, None]) <= half_bins
            residual[band & detected[:, None]] = 0.0
    return round_trips, peaks, thresholds[:n_rounds], n_rounds


@register("reference", "successive_cancel")
def _successive_cancel_reference(
    power: np.ndarray,
    range_bin_m: float,
    max_targets: int,
    threshold_db: float,
    min_range_m: float,
    null_halfwidth_m: float,
    relative_threshold_db: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    # Deferred: multi.cancellation imports this module at load time.
    from ..core.contour import track_bottom_contour
    from ..multi.cancellation import null_band

    residual = np.array(power, dtype=np.float64, copy=True)
    n_rows = residual.shape[0]
    round_trips = np.full((max_targets, n_rows), np.nan)
    peaks = np.full((max_targets, n_rows), np.nan)
    collected: list[np.ndarray] = []
    for k in range(max_targets):
        result = track_bottom_contour(
            residual,
            range_bin_m,
            threshold_db=threshold_db,
            min_range_m=min_range_m,
            relative_threshold_db=relative_threshold_db,
        )
        if not np.any(result.motion_mask):
            break
        collected.append(result.threshold_power)
        round_trips[k] = result.round_trip_m
        peaks[k] = result.peak_power
        if k + 1 < max_targets:
            null_band(
                residual, result.round_trip_m, range_bin_m, null_halfwidth_m
            )
    thresholds = (
        np.stack(collected) if collected else np.empty((0, n_rows))
    )
    return round_trips, peaks, thresholds, len(collected)
