"""Numba JIT backend (optional; imported lazily by the backend seam).

Importing this module registers the ``numba`` backend. On machines
without numba the import fails and :mod:`repro.kernels.backend` falls
back to numpy with a warning — nothing else in the repo imports this
module directly.

Implementation notes:

* ``accumulate_spectra`` walks (path, sweep) pairs and evaluates the
  factored Hann-Dirichlet window with a sin/cos rotation recurrence —
  the 2*half+3 denominators ``n sin(pi (w + e) / n)`` are consecutive
  rotations by ``pi/n``, so the whole window costs one sin/cos pair
  per (path, sweep) instead of a window-sized transcendental pass.
* ``first_local_max_above`` early-exits each row at the first hit;
  the closest reflector usually sits in the first few dozen bins.
* Kernels are compiled with ``cache=True`` so the JIT cost is paid
  once per machine, and without ``parallel=`` — the serving tier
  already uses the cores via shard worker processes.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from .backend import register, register_backend
from .synthesis import window_constants

register_backend("numba")


# ---------------------------------------------------------------------------
# Sweep synthesis.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _accumulate_jit(
    out, frac_bin, center, coeff, row_base, half, n, hann, g, pattern, rot
):
    n_paths, n_sweeps = frac_bin.shape
    n_rows, n_b = out.shape
    ratio = (n - 1.0) / n
    beta = np.pi / n
    cos_b = np.cos(beta)
    sin_b = np.sin(beta)
    width = 2 * half + 1
    for p in range(n_paths):
        base = row_base[p]
        for s in range(n_sweeps):
            fb = frac_bin[p, s]
            c = center[p, s]
            e = c - fb
            row = base + s
            cf = coeff[p, s]
            b0 = int(c)
            if abs(e) < 1e-12:
                # Integer offset: the exact Dirichlet limit pattern.
                for w in range(width):
                    pv = pattern[w]
                    if pv != 0.0:
                        b = b0 - half + w
                        if 0 <= b < n_b:
                            out[row, b] += cf * pv
                continue
            small = (
                np.sin(np.pi * e)
                * complex(
                    np.cos(np.pi * ratio * e), -np.sin(np.pi * ratio * e)
                )
                * cf
            )
            # Rotation recurrence over the extended window's
            # denominators d(w) = n sin(beta (w + e)).
            x0 = beta * (e - (half + 1.0))
            s_cur = np.sin(x0)
            c_cur = np.cos(x0)
            s_nxt = s_cur * cos_b + c_cur * sin_b
            c_nxt = c_cur * cos_b - s_cur * sin_b
            d_prev = n * s_cur
            d_mid = n * s_nxt
            s_cur, c_cur = s_nxt, c_nxt
            for w in range(width):
                s_nxt = s_cur * cos_b + c_cur * sin_b
                c_nxt = c_cur * cos_b - s_cur * sin_b
                d_next = n * s_nxt
                dm = d_prev if d_prev != 0.0 else 1.0
                d0 = d_mid if d_mid != 0.0 else 1.0
                dp = d_next if d_next != 0.0 else 1.0
                if hann:
                    kv = 1.0 / d0 + 0.5 * rot / dm + 0.5 * np.conj(rot) / dp
                else:
                    kv = complex(1.0 / d0, 0.0)
                b = b0 - half + w
                if 0 <= b < n_b:
                    out[row, b] += small * g[w] * kv
                d_prev = d_mid
                d_mid = d_next
                s_cur, c_cur = s_nxt, c_nxt


@register("numba", "accumulate_spectra")
def _accumulate_numba(out, frac_bin, coeff, row_base, half, n_samples, hann):
    if not out.flags.c_contiguous:
        # A copy would swallow the in-place writes; the callers always
        # pass contiguous outputs, but stay correct regardless.
        from .synthesis import _accumulate_numpy

        _accumulate_numpy(
            out, frac_bin, coeff, row_base, half, n_samples, hann
        )
        return
    g, rot, pattern = window_constants(half, n_samples, hann)
    n_b = out.shape[1]
    center = np.rint(frac_bin)
    np.clip(center, -(half + 1.0), float(n_b + half), out=center)
    _accumulate_jit(
        out,
        np.ascontiguousarray(frac_bin),
        center,
        np.ascontiguousarray(coeff),
        np.ascontiguousarray(row_base),
        half,
        float(n_samples),
        hann,
        g,
        pattern,
        rot,
    )


# ---------------------------------------------------------------------------
# Background power + contour scan.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _background_power_jit(diff2, out2):
    n_rows, n_cols = diff2.shape
    for i in range(n_rows):
        for j in range(n_cols):
            v = diff2[i, j]
            out2[i, j] = v.real * v.real + v.imag * v.imag


@register("numba", "background_power")
def _background_power_numba(diff, out):
    if not out.flags.c_contiguous:
        from .contour import _background_power_numpy

        return _background_power_numpy(diff, out)
    flat = diff.reshape(-1, diff.shape[-1]) if diff.ndim > 2 else diff
    _background_power_jit(
        np.ascontiguousarray(flat), out.reshape(-1, out.shape[-1])
    )
    return out


@njit(cache=True)
def _first_local_max_jit(power, threshold, lo, out):
    n_rows, n_bins = power.shape
    for i in range(n_rows):
        t = threshold[i]
        hit = -1
        for k in range(lo, n_bins - 1):
            c = power[i, k]
            # not (c < t) keeps NaN-threshold semantics: rejects nothing.
            if not (c < t) and c >= power[i, k - 1] and c >= power[i, k + 1]:
                hit = k
                break
        out[i] = hit


@register("numba", "first_local_max_above")
def _first_local_max_numba(power, threshold, min_bin):
    n_rows, n_bins = power.shape
    out = np.empty(n_rows, dtype=np.int64)
    if n_bins < 3:
        out[:] = -1
        return out
    _first_local_max_jit(
        np.ascontiguousarray(power),
        np.ascontiguousarray(np.asarray(threshold, dtype=np.float64)),
        max(int(min_bin), 1),
        out,
    )
    return out


# ---------------------------------------------------------------------------
# Kalman tick.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _kalman_jit(values, mean, cov, live, dt, q00, q01, q11, r, out, new_live):
    n, a = values.shape
    for i in range(n):
        for j in range(a):
            v = values[i, j]
            measured = not np.isnan(v)
            alive = live[i, j]
            m0 = mean[i, j, 0]
            m1 = mean[i, j, 1]
            c00 = cov[i, j, 0, 0]
            c01 = cov[i, j, 0, 1]
            c10 = cov[i, j, 1, 0]
            c11 = cov[i, j, 1, 1]
            if alive:
                pm0 = m0 + dt * m1
                a00 = c00 + dt * c10
                a01 = c01 + dt * c11
                p00 = (a00 + a01 * dt) + q00
                p01 = a01 + q01
                p10 = (c10 + c11 * dt) + q01
                p11 = c11 + q11
                if measured:
                    innovation = v - pm0
                    s = p00 + r
                    g0 = p00 / s
                    g1 = p10 / s
                    um0 = pm0 + g0 * innovation
                    out[i, j] = um0
                    mean[i, j, 0] = um0
                    mean[i, j, 1] = m1 + g1 * innovation
                    cov[i, j, 0, 0] = (1.0 - g0) * p00
                    cov[i, j, 0, 1] = (1.0 - g0) * p01
                    cov[i, j, 1, 0] = (-g1) * p00 + p10
                    cov[i, j, 1, 1] = (-g1) * p01 + p11
                else:
                    out[i, j] = pm0
                    mean[i, j, 0] = pm0
                    cov[i, j, 0, 0] = p00
                    cov[i, j, 0, 1] = p01
                    cov[i, j, 1, 0] = p10
                    cov[i, j, 1, 1] = p11
            else:
                if measured:
                    out[i, j] = v
                    mean[i, j, 0] = v
                    mean[i, j, 1] = 0.0
                    cov[i, j, 0, 0] = r
                    cov[i, j, 0, 1] = 0.0
                    cov[i, j, 1, 0] = 0.0
                    cov[i, j, 1, 1] = 1.0
                else:
                    out[i, j] = np.nan
            new_live[i, j] = alive or measured


@register("numba", "kalman_tick")
def _kalman_tick_numba(values, mean, cov, live, dt, q00, q01, q11, r):
    # mean/cov arrive as fancy-indexed copies; mutate them in place and
    # hand them back as the new state.
    values = np.ascontiguousarray(values)
    out = np.empty(values.shape, dtype=np.float64)
    new_live = np.empty(values.shape, dtype=np.bool_)
    _kalman_jit(
        values, mean, cov, live, dt, q00, q01, q11, r, out, new_live
    )
    return out, mean, cov, new_live
