"""Numba JIT backend (optional; imported lazily by the backend seam).

Importing this module registers the ``numba`` backend. On machines
without numba the import fails and :mod:`repro.kernels.backend` falls
back to numpy with a warning — nothing else in the repo imports this
module directly.

Implementation notes:

* ``accumulate_spectra`` walks (path, sweep) pairs and evaluates the
  factored Hann-Dirichlet window with a sin/cos rotation recurrence —
  the 2*half+3 denominators ``n sin(pi (w + e) / n)`` are consecutive
  rotations by ``pi/n``, so the whole window costs one sin/cos pair
  per (path, sweep) instead of a window-sized transcendental pass.
* ``first_local_max_above`` early-exits each row at the first hit;
  the closest reflector usually sits in the first few dozen bins.
* Kernels are compiled with ``cache=True`` so the JIT cost is paid
  once per machine, and without ``parallel=`` — the serving tier
  already uses the cores via shard worker processes.
* ``fused_tick_single`` runs the whole single-person chain (subtract,
  |diff|^2, median floor, contour scan, subpixel, outlier gate, hold,
  Kalman, T localization) as one compiled loop over (session, antenna)
  rows — the numba leg of the tick compiler. The kernel is probed with
  a tiny compile-and-run before any state is touched; a failure warns
  once and raises :class:`~repro.kernels.tick.FusionUnavailable`, so
  the pipeline permanently falls back to the staged loop.
"""

from __future__ import annotations

import warnings

import numpy as np
from numba import njit

from .backend import register, register_backend
from .synthesis import window_constants

register_backend("numba")


# ---------------------------------------------------------------------------
# Sweep synthesis.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _accumulate_jit(
    out, frac_bin, center, coeff, row_base, half, n, hann, g, pattern, rot
):
    n_paths, n_sweeps = frac_bin.shape
    n_rows, n_b = out.shape
    ratio = (n - 1.0) / n
    beta = np.pi / n
    cos_b = np.cos(beta)
    sin_b = np.sin(beta)
    width = 2 * half + 1
    for p in range(n_paths):
        base = row_base[p]
        for s in range(n_sweeps):
            fb = frac_bin[p, s]
            c = center[p, s]
            e = c - fb
            row = base + s
            cf = coeff[p, s]
            b0 = int(c)
            if abs(e) < 1e-12:
                # Integer offset: the exact Dirichlet limit pattern.
                for w in range(width):
                    pv = pattern[w]
                    if pv != 0.0:
                        b = b0 - half + w
                        if 0 <= b < n_b:
                            out[row, b] += cf * pv
                continue
            small = (
                np.sin(np.pi * e)
                * complex(
                    np.cos(np.pi * ratio * e), -np.sin(np.pi * ratio * e)
                )
                * cf
            )
            # Rotation recurrence over the extended window's
            # denominators d(w) = n sin(beta (w + e)).
            x0 = beta * (e - (half + 1.0))
            s_cur = np.sin(x0)
            c_cur = np.cos(x0)
            s_nxt = s_cur * cos_b + c_cur * sin_b
            c_nxt = c_cur * cos_b - s_cur * sin_b
            d_prev = n * s_cur
            d_mid = n * s_nxt
            s_cur, c_cur = s_nxt, c_nxt
            for w in range(width):
                s_nxt = s_cur * cos_b + c_cur * sin_b
                c_nxt = c_cur * cos_b - s_cur * sin_b
                d_next = n * s_nxt
                dm = d_prev if d_prev != 0.0 else 1.0
                d0 = d_mid if d_mid != 0.0 else 1.0
                dp = d_next if d_next != 0.0 else 1.0
                if hann:
                    kv = 1.0 / d0 + 0.5 * rot / dm + 0.5 * np.conj(rot) / dp
                else:
                    kv = complex(1.0 / d0, 0.0)
                b = b0 - half + w
                if 0 <= b < n_b:
                    out[row, b] += small * g[w] * kv
                d_prev = d_mid
                d_mid = d_next
                s_cur, c_cur = s_nxt, c_nxt


@register("numba", "accumulate_spectra")
def _accumulate_numba(out, frac_bin, coeff, row_base, half, n_samples, hann):
    if not out.flags.c_contiguous:
        # A copy would swallow the in-place writes; the callers always
        # pass contiguous outputs, but stay correct regardless.
        from .synthesis import _accumulate_numpy

        _accumulate_numpy(
            out, frac_bin, coeff, row_base, half, n_samples, hann
        )
        return
    g, rot, pattern = window_constants(half, n_samples, hann)
    n_b = out.shape[1]
    center = np.rint(frac_bin)
    np.clip(center, -(half + 1.0), float(n_b + half), out=center)
    _accumulate_jit(
        out,
        np.ascontiguousarray(frac_bin),
        center,
        np.ascontiguousarray(coeff),
        np.ascontiguousarray(row_base),
        half,
        float(n_samples),
        hann,
        g,
        pattern,
        rot,
    )


# ---------------------------------------------------------------------------
# Background power + contour scan.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _background_power_jit(diff2, out2):
    n_rows, n_cols = diff2.shape
    for i in range(n_rows):
        for j in range(n_cols):
            v = diff2[i, j]
            out2[i, j] = v.real * v.real + v.imag * v.imag


@register("numba", "background_power")
def _background_power_numba(diff, out):
    if not out.flags.c_contiguous:
        from .contour import _background_power_numpy

        return _background_power_numpy(diff, out)
    flat = diff.reshape(-1, diff.shape[-1]) if diff.ndim > 2 else diff
    _background_power_jit(
        np.ascontiguousarray(flat), out.reshape(-1, out.shape[-1])
    )
    return out


@njit(cache=True)
def _first_local_max_jit(power, threshold, lo, out):
    n_rows, n_bins = power.shape
    for i in range(n_rows):
        t = threshold[i]
        hit = -1
        for k in range(lo, n_bins - 1):
            c = power[i, k]
            # not (c < t) keeps NaN-threshold semantics: rejects nothing.
            if not (c < t) and c >= power[i, k - 1] and c >= power[i, k + 1]:
                hit = k
                break
        out[i] = hit


@register("numba", "first_local_max_above")
def _first_local_max_numba(power, threshold, min_bin):
    n_rows, n_bins = power.shape
    out = np.empty(n_rows, dtype=np.int64)
    if n_bins < 3:
        out[:] = -1
        return out
    _first_local_max_jit(
        np.ascontiguousarray(power),
        np.ascontiguousarray(np.asarray(threshold, dtype=np.float64)),
        max(int(min_bin), 1),
        out,
    )
    return out


# ---------------------------------------------------------------------------
# Successive cancellation (multi-person contour rounds).
# ---------------------------------------------------------------------------


@njit(cache=True)
def _successive_cancel_jit(
    power, thr_mul, rel_mul, lo, range_bin_m, half_bins, max_targets,
    rt, pk, thr,
):
    """All cancellation rounds, one row at a time with per-row early exit.

    A row that stops detecting is *frozen*: its residual never changes
    again, so its median floor, frame peak, and scan result are the
    same in every later round — recording the frozen threshold forward
    reproduces the staged loop's per-round thresholds bit for bit, and
    the row's remaining candidate slots stay NaN exactly as the staged
    global loop leaves them. The global round count is then the longest
    per-row detection prefix, which is precisely when the staged loop's
    any-row break fires.
    """
    n_rows, n_bins = power.shape
    half = n_bins // 2
    odd = n_bins % 2 == 1
    med = np.empty(n_bins)
    row = np.empty(n_bins)
    n_rounds = 0
    for i in range(n_rows):
        for b in range(n_bins):
            row[b] = power[i, b]
        rounds_i = 0
        for k in range(max_targets):
            peak = row[0]
            for b in range(1, n_bins):
                if row[b] > peak:
                    peak = row[b]
            for b in range(n_bins):
                med[b] = row[b]
            # Same order statistics as the staged np.partition median.
            med.sort()
            if odd:
                floor = med[half]
            else:
                floor = (med[half - 1] + med[half]) / 2.0
            t_abs = floor * thr_mul
            t_rel = peak * rel_mul
            t = t_abs if t_abs > t_rel else t_rel
            thr[k, i] = t
            hit = -1
            for b in range(lo, n_bins - 1):
                c = row[b]
                if not (c < t) and c >= row[b - 1] and c >= row[b + 1]:
                    hit = b
                    break
            if hit < 0:
                for k2 in range(k + 1, max_targets):
                    thr[k2, i] = t
                break
            left = row[hit - 1]
            midv = row[hit]
            right = row[hit + 1]
            denom = left - 2.0 * midv + right
            if abs(denom) > 1e-30:
                off = 0.5 * (left - right) / denom
                if off < -0.5:
                    off = -0.5
                elif off > 0.5:
                    off = 0.5
            else:
                off = 0.0
            rt[k, i] = (hit + off) * range_bin_m
            pk[k, i] = midv
            rounds_i = k + 1
            if k + 1 < max_targets:
                # Null carve from the *stored* round trip, as null_band
                # does — (hit + off) * bin / bin need not round-trip.
                center = rt[k, i] / range_bin_m
                for b in range(n_bins):
                    if abs(b - center) <= half_bins:
                        row[b] = 0.0
        if rounds_i > n_rounds:
            n_rounds = rounds_i
    return n_rounds


#: Cancel-kernel compile-probe state: None = not tried, else success.
_cancel_probe: bool | None = None


def _cancel_ready() -> bool:
    """Compile-and-run the cancel kernel once on tiny throwaway arrays.

    The fused multi-person tick calls this kernel mid-chain; probing
    up front (with a warn-once numpy fallback) keeps a toolchain
    failure from surfacing as a crashed serving tick.
    """
    global _cancel_probe
    if _cancel_probe is None:
        try:
            rt = np.full((1, 1), np.nan)
            pk = np.full((1, 1), np.nan)
            thr = np.empty((1, 1))
            _successive_cancel_jit(
                np.zeros((1, 5)), 1.0, 1.0, 1, 1.0, 2, 1, rt, pk, thr
            )
            _cancel_probe = True
        except Exception as exc:  # pragma: no cover - depends on toolchain
            warnings.warn(
                f"numba successive-cancellation kernel failed to compile "
                f"({type(exc).__name__}: {exc}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            _cancel_probe = False
    return _cancel_probe


@register("numba", "successive_cancel")
def _successive_cancel_numba(
    power, range_bin_m, max_targets, threshold_db, min_range_m,
    null_halfwidth_m, relative_threshold_db,
):
    if not _cancel_ready():
        from .cancellation import _successive_cancel_numpy

        return _successive_cancel_numpy(
            power, range_bin_m, max_targets, threshold_db, min_range_m,
            null_halfwidth_m, relative_threshold_db,
        )
    power = np.ascontiguousarray(np.asarray(power, dtype=np.float64))
    n_rows, n_bins = power.shape
    rt = np.full((max_targets, n_rows), np.nan)
    pk = np.full((max_targets, n_rows), np.nan)
    thr = np.empty((max_targets, n_rows))
    if n_bins < 3 or n_rows == 0:
        return rt, pk, thr[:0], 0
    n_rounds = _successive_cancel_jit(
        power,
        10.0 ** (threshold_db / 10.0),
        10.0 ** (-relative_threshold_db / 10.0),
        max(int(np.ceil(min_range_m / range_bin_m)), 1),
        range_bin_m,
        int(np.ceil(null_halfwidth_m / range_bin_m)),
        max_targets,
        rt,
        pk,
        thr,
    )
    return rt, pk, thr[:n_rounds], n_rounds


# ---------------------------------------------------------------------------
# Kalman tick.
# ---------------------------------------------------------------------------


@njit(cache=True)
def _kalman_jit(values, mean, cov, live, dt, q00, q01, q11, r, out, new_live):
    n, a = values.shape
    for i in range(n):
        for j in range(a):
            v = values[i, j]
            measured = not np.isnan(v)
            alive = live[i, j]
            m0 = mean[i, j, 0]
            m1 = mean[i, j, 1]
            c00 = cov[i, j, 0, 0]
            c01 = cov[i, j, 0, 1]
            c10 = cov[i, j, 1, 0]
            c11 = cov[i, j, 1, 1]
            if alive:
                pm0 = m0 + dt * m1
                a00 = c00 + dt * c10
                a01 = c01 + dt * c11
                p00 = (a00 + a01 * dt) + q00
                p01 = a01 + q01
                p10 = (c10 + c11 * dt) + q01
                p11 = c11 + q11
                if measured:
                    innovation = v - pm0
                    s = p00 + r
                    g0 = p00 / s
                    g1 = p10 / s
                    um0 = pm0 + g0 * innovation
                    out[i, j] = um0
                    mean[i, j, 0] = um0
                    mean[i, j, 1] = m1 + g1 * innovation
                    cov[i, j, 0, 0] = (1.0 - g0) * p00
                    cov[i, j, 0, 1] = (1.0 - g0) * p01
                    cov[i, j, 1, 0] = (-g1) * p00 + p10
                    cov[i, j, 1, 1] = (-g1) * p01 + p11
                else:
                    out[i, j] = pm0
                    mean[i, j, 0] = pm0
                    cov[i, j, 0, 0] = p00
                    cov[i, j, 0, 1] = p01
                    cov[i, j, 1, 0] = p10
                    cov[i, j, 1, 1] = p11
            else:
                if measured:
                    out[i, j] = v
                    mean[i, j, 0] = v
                    mean[i, j, 1] = 0.0
                    cov[i, j, 0, 0] = r
                    cov[i, j, 0, 1] = 0.0
                    cov[i, j, 1, 0] = 0.0
                    cov[i, j, 1, 1] = 1.0
                else:
                    out[i, j] = np.nan
            new_live[i, j] = alive or measured


@register("numba", "kalman_tick")
def _kalman_tick_numba(values, mean, cov, live, dt, q00, q01, q11, r):
    # mean/cov arrive as fancy-indexed copies; mutate them in place and
    # hand them back as the new state.
    values = np.ascontiguousarray(values)
    out = np.empty(values.shape, dtype=np.float64)
    new_live = np.empty(values.shape, dtype=np.bool_)
    _kalman_jit(
        values, mean, cov, live, dt, q00, q01, q11, r, out, new_live
    )
    return out, mean, cov, new_live


# ---------------------------------------------------------------------------
# Whole-chain fused tick (the numba leg of the tick compiler).
# ---------------------------------------------------------------------------


@njit(cache=True, error_model="numpy")
def _fused_chain_jit(
    current,
    previous,
    diff_out,
    power_out,
    raw_out,
    motion_out,
    tof_out,
    thr_mul,
    rel_mul,
    lo,
    range_bin_m,
    last,
    since,
    pending,
    plen,
    max_jump_m,
    agreement_m,
    held,
    hold_enabled,
    mean,
    cov,
    live,
    dt,
    q00,
    q01,
    q11,
    r_noise,
    do_localize,
    two_dd,
    four_d,
    hh,
    two_h,
    d_sep,
    h_below,
    min_y_sq,
    positions_out,
):
    """One compiled pass over (session, antenna) rows.

    Every step reproduces the staged chain's arithmetic under the numba
    backend bit for bit: power is ``re^2 + im^2`` (the staged numba
    power kernel), the median selects the same order statistics as the
    staged ``np.partition``, the contour scan keeps the staged NaN
    semantics, and the gate/hold/Kalman/localize updates are the staged
    elementwise expressions written scalar. State arrays are the
    caller's gathered copies, mutated in place.
    """
    n, n_rx, n_bins = current.shape
    p = pending.shape[2]
    half = n_bins // 2
    odd = n_bins % 2 == 1
    med = np.empty(n_bins)
    pack = np.empty(p)
    for i in range(n):
        for j in range(n_rx):
            # Background subtract + |diff|^2, tracking the frame peak.
            peak = 0.0
            for b in range(n_bins):
                dv = current[i, j, b] - previous[i, j, b]
                diff_out[i, j, b] = dv
                pw = dv.real * dv.real + dv.imag * dv.imag
                power_out[i, j, b] = pw
                med[b] = pw
                if pw > peak:
                    peak = pw
            # Median noise floor: same order statistics as np.partition.
            med.sort()
            if odd:
                floor = med[half]
            else:
                floor = (med[half - 1] + med[half]) / 2.0
            t_abs = floor * thr_mul
            t_rel = peak * rel_mul
            thr = t_abs if t_abs > t_rel else t_rel

            # Contour scan: first local maximum above threshold, with
            # early exit (the closest reflector sits in the first bins).
            hit = -1
            for b in range(lo, n_bins - 1):
                c = power_out[i, j, b]
                if (
                    not (c < thr)
                    and c >= power_out[i, j, b - 1]
                    and c >= power_out[i, j, b + 1]
                ):
                    hit = b
                    break
            if hit >= 0:
                left = power_out[i, j, hit - 1]
                midv = power_out[i, j, hit]
                right = power_out[i, j, hit + 1]
                denom = left - 2.0 * midv + right
                if abs(denom) > 1e-30:
                    refined = 0.5 * (left - right) / denom
                    if refined < -0.5:
                        refined = -0.5
                    elif refined > 0.5:
                        refined = 0.5
                    off = refined
                else:
                    off = 0.0
                v = (hit + off) * range_bin_m
                raw_out[i, j] = v
                motion_out[i, j] = True
            else:
                v = np.nan
                raw_out[i, j] = np.nan
                motion_out[i, j] = False

            # Outlier gate (NaN comparisons are False, as in numpy with
            # invalid ignored).
            lastv = last[i, j]
            miss = np.isnan(v)
            nl = np.isnan(lastv)
            small = abs(v - lastv) <= max_jump_m * since[i, j]
            direct = (not miss) and (nl or small)
            candidate = (not miss) and (not nl) and (not small)
            accept = direct
            if candidate:
                pl = plen[i, j]
                # Stable partition: agreeing pending values first (in
                # order), dropped ones after — the permutation the
                # staged stable argsort produces.
                nk = 0
                for w in range(p):
                    if w < pl and abs(pending[i, j, w] - v) <= agreement_m:
                        pack[nk] = pending[i, j, w]
                        nk += 1
                nd = nk
                for w in range(p):
                    if not (
                        w < pl and abs(pending[i, j, w] - v) <= agreement_m
                    ):
                        pack[nd] = pending[i, j, w]
                        nd += 1
                i2 = nk if nk < p - 1 else p - 1
                pack[i2] = v
                if nk + 1 >= p:
                    accept = True
                for w in range(p):
                    pending[i, j, w] = pack[w]
                plen[i, j] = nk + 1
            if accept:
                g = v
                last[i, j] = v
                since[i, j] = 1
                plen[i, j] = 0
            else:
                g = np.nan
                since[i, j] += 1

            # Hold-last interpolation.
            if np.isfinite(g):
                held[i, j] = g
            h = held[i, j] if hold_enabled else g

            # Kalman predict+update: the staged kernel's body verbatim.
            measured = not np.isnan(h)
            alive = live[i, j]
            m0 = mean[i, j, 0]
            m1 = mean[i, j, 1]
            c00 = cov[i, j, 0, 0]
            c01 = cov[i, j, 0, 1]
            c10 = cov[i, j, 1, 0]
            c11 = cov[i, j, 1, 1]
            if alive:
                pm0 = m0 + dt * m1
                a00 = c00 + dt * c10
                a01 = c01 + dt * c11
                p00 = (a00 + a01 * dt) + q00
                p01 = a01 + q01
                p10 = (c10 + c11 * dt) + q01
                p11 = c11 + q11
                if measured:
                    innovation = h - pm0
                    s = p00 + r_noise
                    g0 = p00 / s
                    g1 = p10 / s
                    um0 = pm0 + g0 * innovation
                    tof_out[i, j] = um0
                    mean[i, j, 0] = um0
                    mean[i, j, 1] = m1 + g1 * innovation
                    cov[i, j, 0, 0] = (1.0 - g0) * p00
                    cov[i, j, 0, 1] = (1.0 - g0) * p01
                    cov[i, j, 1, 0] = (-g1) * p00 + p10
                    cov[i, j, 1, 1] = (-g1) * p01 + p11
                else:
                    tof_out[i, j] = pm0
                    mean[i, j, 0] = pm0
                    cov[i, j, 0, 0] = p00
                    cov[i, j, 0, 1] = p01
                    cov[i, j, 1, 0] = p10
                    cov[i, j, 1, 1] = p11
            else:
                if measured:
                    tof_out[i, j] = h
                    mean[i, j, 0] = h
                    mean[i, j, 1] = 0.0
                    cov[i, j, 0, 0] = r_noise
                    cov[i, j, 0, 1] = 0.0
                    cov[i, j, 1, 0] = 0.0
                    cov[i, j, 1, 1] = 1.0
                else:
                    tof_out[i, j] = np.nan
            live[i, j] = alive or measured

        if do_localize:
            # Closed-form T localization: the solver's expressions,
            # scalar (NaN comparisons are False, so NaN rows invalidate
            # exactly as the masked numpy version).
            k1 = tof_out[i, 0]
            k2 = tof_out[i, 1]
            k3 = tof_out[i, 2]
            r0 = (k1 * k1 + k2 * k2 - two_dd) / (2.0 * (k1 + k2))
            x = (k1 * k1 - k2 * k2 + (2.0 * r0) * (k2 - k1)) / four_d
            z = (k3 * k3 - hh - (2.0 * k3) * r0) / two_h
            y_sq = r0 * r0 - x * x - z * z
            # not (y_sq < 0) keeps NaN (np.maximum semantics).
            m = y_sq if not (y_sq < 0.0) else 0.0
            y = np.sqrt(m)
            valid = (
                (k1 > d_sep)
                and (k2 > d_sep)
                and (k3 > h_below)
                and (r0 > 0.0)
                and (y_sq > min_y_sq)
            )
            if valid:
                for j in range(n_rx):
                    if not np.isfinite(tof_out[i, j]):
                        valid = False
                        break
            if valid:
                positions_out[i, 0] = x
                positions_out[i, 1] = y
                positions_out[i, 2] = z
            else:
                positions_out[i, 0] = np.nan
                positions_out[i, 1] = np.nan
                positions_out[i, 2] = np.nan


#: Compile-probe state: None = not tried, else success flag.
_fused_probe: bool | None = None


def _fused_chain_ready() -> bool:
    """Compile-and-run the fused chain once on tiny throwaway arrays.

    Runs *before* any real state is touched so a compile failure can
    never leave a tick half-advanced. The dummy call uses the exact
    dtypes and layouts of real calls, so they reuse the compiled
    specialization.
    """
    global _fused_probe
    if _fused_probe is None:
        try:
            n, a, nb, p = 1, 3, 5, 2
            _fused_chain_jit(
                np.zeros((n, a, nb), dtype=np.complex128),
                np.zeros((n, a, nb), dtype=np.complex128),
                np.empty((n, a, nb), dtype=np.complex128),
                np.empty((n, a, nb)),
                np.empty((n, a)),
                np.empty((n, a), dtype=np.bool_),
                np.empty((n, a)),
                1.0,
                1.0,
                1,
                1.0,
                np.full((n, a), np.nan),
                np.ones((n, a), dtype=np.int64),
                np.full((n, a, p), np.nan),
                np.zeros((n, a), dtype=np.int64),
                0.15,
                0.3,
                np.full((n, a), np.nan),
                True,
                np.zeros((n, a, 2)),
                np.zeros((n, a, 2, 2)),
                np.zeros((n, a), dtype=np.bool_),
                0.0125,
                1e-6,
                1e-4,
                1e-2,
                1e-3,
                True,
                2.0,
                4.0,
                1.0,
                2.0,
                1.0,
                1.0,
                0.01,
                np.empty((n, 3)),
            )
            _fused_probe = True
        except Exception as exc:  # pragma: no cover - depends on toolchain
            warnings.warn(
                f"numba fused tick kernel failed to compile "
                f"({type(exc).__name__}: {exc}); serving stays on the "
                f"staged loop",
                RuntimeWarning,
                stacklevel=2,
            )
            _fused_probe = False
    return _fused_probe


@register("numba", "fused_tick_single")
def _fused_tick_numba(plan, tick):
    from .tick import FusionUnavailable, _prologue

    if not _fused_chain_ready():
        plan.disabled = True
        raise FusionUnavailable("numba fused tick kernel unavailable")
    hot = plan._hot is not None and plan._hot == (
        tick.slots.tobytes(),
        plan.state_epoch,
    )
    plan._hot = None
    if not hot:
        plan.flush()
    tick, current, previous, sc = _prologue(plan, tick, hot)
    if current is None:
        return tick
    n, n_rx, _ = current.shape
    slots = tick.slots
    gate = plan.gate
    hold = plan.hold
    kal = plan.kalman
    gate._ensure(n_rx)
    hold._ensure(n_rx)
    kal._ensure(n_rx)
    last = sc["glast"]
    since = sc["gsince"]
    pending = sc["gpending"]
    plen = sc["gplen"]
    held = sc["hheld"]
    mean = sc["kmean"]
    cov = sc["kcov"]
    live = sc["klive"]
    if not hot:
        np.take(gate._last, slots, axis=0, out=last)
        np.take(gate._since, slots, axis=0, out=since)
        np.take(gate._pending, slots, axis=0, out=pending)
        np.take(gate._pending_len, slots, axis=0, out=plen)
        np.take(hold._held, slots, axis=0, out=held)
        np.take(kal._mean, slots, axis=0, out=mean)
        np.take(kal._cov, slots, axis=0, out=cov)
        np.take(kal._initialized, slots, axis=0, out=live)
    # Outputs sessions retain row views of: freshly allocated per tick.
    diff = np.empty_like(current)
    raw = np.empty((n, n_rx))
    motion = np.empty((n, n_rx), dtype=np.bool_)
    tof = np.empty((n, n_rx))
    do_loc = plan.localize is not None
    if do_loc:
        positions = np.empty((n, 3))
        two_dd, four_d = plan.two_dd, plan.four_d
        hh, two_h = plan.hh, plan.two_h
        d_sep, h_below, min_y_sq = plan.sep_m, plan.below_m, plan.min_y_sq
    else:
        positions = np.empty((0, 3))
        two_dd = four_d = hh = two_h = d_sep = h_below = min_y_sq = 0.0
    _fused_chain_jit(
        np.ascontiguousarray(current),
        previous,
        diff,
        sc["power"],
        raw,
        motion,
        tof,
        plan.thr_mul,
        plan.rel_mul,
        max(plan.min_bin, 1),
        plan.range_bin_m,
        last,
        since,
        pending,
        plen,
        gate.max_jump_m,
        gate.agreement_m,
        held,
        plan.hold_enabled,
        mean,
        cov,
        live,
        kal.frame_dt_s,
        kal._q00,
        kal._q01,
        kal._q11,
        kal.measurement_noise,
        do_loc,
        two_dd,
        four_d,
        hh,
        two_h,
        d_sep,
        h_below,
        min_y_sq,
        positions,
    )
    tick.spectrum = diff
    tick.power = sc["power"]
    tick.raw_tof_m = raw
    tick.motion = motion
    tick.tof_m = tof
    if do_loc:
        tick.positions = positions
    # Lazy writeback: the scratch copies (including this frame as the
    # next tick's background reference) are now authoritative; the
    # pipeline flushes them before any slab-level read.
    np.copyto(sc["prev"], current)
    plan._hot = (slots.tobytes(), plan.state_epoch)
    plan._hot_slots = slots
    plan._dirty = True
    return tick
