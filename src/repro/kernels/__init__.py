"""The kernel tier: pluggable array backends under the hot loops.

Importing this package registers the ``numpy`` and ``reference``
implementations of every kernel; the optional ``numba`` backend is
imported lazily the first time it is selected. See
:mod:`repro.kernels.backend` for the selection rules
(``REPRO_BACKEND=numpy|reference|numba``),
:mod:`repro.kernels.tick` for the tick compiler that fuses the whole
per-cohort stage chain into one kernel call (``REPRO_FUSED=0|1``), and
:mod:`repro.kernels.profile` for the per-stage profiling hooks
(``REPRO_PROFILE=1``).
"""

from . import (  # noqa: F401  (register kernels)
    cancellation,
    contour,
    kalman,
    synthesis,
    tick,
)
from .backend import (
    active_backend,
    available_backends,
    backend_name,
    kernel,
    register,
    register_backend,
    set_backend,
    use_backend,
)
from .cancellation import successive_cancel
from .contour import background_power, first_local_max_above, row_median
from .kalman import kalman_tick
from .profile import (
    StageProfiler,
    enable_profiling,
    profiling_enabled,
    reset_profiling_override,
)
from .synthesis import accumulate_spectra
from .tick import (
    TickPlan,
    compile_tick_plan,
    enable_fusion,
    fused_enabled,
    fusion_active,
    reset_fusion_override,
)

__all__ = [
    "StageProfiler",
    "TickPlan",
    "accumulate_spectra",
    "active_backend",
    "available_backends",
    "backend_name",
    "background_power",
    "compile_tick_plan",
    "enable_fusion",
    "enable_profiling",
    "first_local_max_above",
    "fused_enabled",
    "fusion_active",
    "kalman_tick",
    "kernel",
    "profiling_enabled",
    "register",
    "register_backend",
    "reset_fusion_override",
    "reset_profiling_override",
    "row_median",
    "set_backend",
    "successive_cancel",
    "use_backend",
]
