"""Configuration dataclasses for every subsystem.

A single :class:`SystemConfig` aggregates the radio, array, pipeline and
simulation settings. All dataclasses are frozen so configurations can be
shared between threads and used as dictionary keys in caches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from . import constants


@dataclass(frozen=True)
class FMCWConfig:
    """Parameters of the FMCW sweep (paper Section 4.1 and Section 7)."""

    start_hz: float = constants.SWEEP_START_HZ
    bandwidth_hz: float = constants.SWEEP_BANDWIDTH_HZ
    sweep_duration_s: float = constants.SWEEP_DURATION_S
    sample_rate_hz: float = constants.BASEBAND_SAMPLE_RATE_HZ
    tx_power_w: float = constants.TX_POWER_W

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")
        if self.sweep_duration_s <= 0:
            raise ValueError("sweep_duration_s must be positive")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.tx_power_w <= 0:
            raise ValueError("tx_power_w must be positive")

    @property
    def end_hz(self) -> float:
        """Sweep end frequency (Hz)."""
        return self.start_hz + self.bandwidth_hz

    @property
    def center_hz(self) -> float:
        """Sweep center frequency (Hz)."""
        return self.start_hz + self.bandwidth_hz / 2.0

    @property
    def slope_hz_per_s(self) -> float:
        """Sweep slope: bandwidth / sweep time (Hz/s). Used in Eq. 1."""
        return self.bandwidth_hz / self.sweep_duration_s

    @property
    def samples_per_sweep(self) -> int:
        """Baseband samples captured during one sweep."""
        return int(round(self.sweep_duration_s * self.sample_rate_hz))

    @property
    def range_resolution_m(self) -> float:
        """One-way range resolution C / (2 B) (Eq. 3)."""
        return constants.SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)

    @property
    def sweeps_per_second(self) -> float:
        """Sweep repetition rate (Hz)."""
        return 1.0 / self.sweep_duration_s

    def beat_frequency_for_round_trip(self, round_trip_m: float) -> float:
        """Beat (baseband) frequency for a given round-trip distance (Eq. 1/4)."""
        tof = round_trip_m / constants.SPEED_OF_LIGHT
        return self.slope_hz_per_s * tof

    def round_trip_for_beat_frequency(self, beat_hz: float) -> float:
        """Round-trip distance for a given beat frequency (inverse of Eq. 4)."""
        return beat_hz / self.slope_hz_per_s * constants.SPEED_OF_LIGHT

    @property
    def max_unambiguous_round_trip_m(self) -> float:
        """Largest round-trip distance representable at the Nyquist bin."""
        return self.round_trip_for_beat_frequency(self.sample_rate_hz / 2.0)


@dataclass(frozen=True)
class ArrayConfig:
    """Geometry of the antenna array (paper Section 5, Fig. 1a).

    The array lives in the x-z plane; the y axis points into the room,
    orthogonal to the plane of the "T". The transmit antenna sits at the
    crossing point of the T, two receive antennas at the horizontal edges,
    and one receive antenna below the transmit antenna.
    """

    separation_m: float = constants.DEFAULT_ANTENNA_SEPARATION_M
    height_m: float = constants.DEFAULT_DEVICE_HEIGHT_M
    #: Directional-beam half-power exponent for the cos^n gain model.
    beam_exponent: float = 2.0
    #: Number of receive antennas (3 = the paper's T; more over-constrains).
    num_receivers: int = 3

    def __post_init__(self) -> None:
        if self.separation_m <= 0:
            raise ValueError("separation_m must be positive")
        if self.num_receivers < 3:
            raise ValueError("at least 3 receive antennas are required for 3D")


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of the TOF-estimation pipeline (paper Sections 4.2-4.4, 7)."""

    sweeps_per_frame: int = constants.SWEEPS_PER_FRAME
    #: Power threshold over the per-frame noise floor for contour peaks (dB).
    contour_threshold_db: float = 12.0
    #: Maximum plausible change in *round-trip* distance between frames (m).
    #: A person cannot move much in 12.5 ms (Section 7); 0.15 m round trip
    #: per frame corresponds to a 6 m/s body speed.
    max_jump_m: float = 0.15
    #: Frames a jump must persist before we accept it as a real relocation.
    jump_confirmation_frames: int = 4
    #: Kalman white-acceleration spectral density (m^2/s^3). Must be
    #: large enough for the filter to follow indoor walking speeds;
    #: values below ~1 make the filter lag a moving person by meters.
    kalman_process_noise: float = 10.0
    #: Kalman measurement-noise variance (m^2) of one contour sample.
    kalman_measurement_noise: float = 1e-3
    #: Interpolate (hold) the last position during silence (Section 4.4).
    interpolate_when_static: bool = True
    #: Maximum range of interest (m, round trip) for the spectrogram crop.
    max_range_m: float = 30.0

    def __post_init__(self) -> None:
        if self.sweeps_per_frame < 1:
            raise ValueError("sweeps_per_frame must be >= 1")
        if self.max_jump_m <= 0:
            raise ValueError("max_jump_m must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Settings of the RF/world simulator (our substitute for hardware)."""

    #: "time" synthesizes baseband sample streams and FFTs them (slow,
    #: exact); "spectrum" synthesizes per-sweep spectra directly from the
    #: Dirichlet kernel of each propagation path (fast, benchmark default).
    signal_model: str = "spectrum"
    #: One-traversal wall attenuation (dB). 6-inch hollow wall with sheet
    #: rock over steel studs, ~6 GHz.
    wall_attenuation_db: float = 5.0
    #: Receiver noise figure (dB) of the LNA chain.
    noise_figure_db: float = 8.0
    #: Residual VCO sweep nonlinearity after the feedback loop (fraction of
    #: bandwidth; the phase-frequency-detector loop makes this small).
    vco_nonlinearity: float = 1e-4
    #: Number of static clutter reflectors to synthesize.
    num_static_reflectors: int = 18
    #: Number of dynamic multipath images (body -> wall -> device paths).
    num_multipath_images: int = 4
    #: ADC bits for quantization (LFRX-LF 14-bit path).
    adc_bits: int = 14
    #: Extra antenna/system losses (dB).
    system_loss_db: float = 6.0

    def __post_init__(self) -> None:
        if self.signal_model not in ("time", "spectrum"):
            raise ValueError("signal_model must be 'time' or 'spectrum'")
        if self.adc_bits < 4:
            raise ValueError("adc_bits must be at least 4")


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration for a full WiTrack deployment."""

    fmcw: FMCWConfig = field(default_factory=FMCWConfig)
    array: ArrayConfig = field(default_factory=ArrayConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)

    def replace(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with the given top-level sections replaced."""
        return dataclasses.replace(self, **kwargs)


def default_config() -> SystemConfig:
    """The paper's default deployment: 1 m T-array, through-wall tunables."""
    return SystemConfig()
