"""Scenario composition: room + body + motion -> received sweep spectra.

This is the top of the simulation substrate. A :class:`Scenario` wires a
room, a human body, a body-center trajectory and (optionally) a pointing
gesture to the antenna array, resolves every propagation path per sweep —
direct body reflection, dynamic multipath images off the side/back walls
and ceiling, static clutter, the moving hand — and synthesizes the
per-antenna spectra the WiTrack pipeline consumes.

All physical effects the paper's pipeline exists to fight are present:

* static clutter 10-30 dB above the body echo (the Flash Effect, §4.2);
* dynamic multipath that can be *stronger* than the attenuated direct
  path but always arrives later (§4.3);
* through-wall attenuation on every front-wall traversal (§9.1);
* thermal noise, phase jitter, and body-surface wander (§9.1-9.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import SystemConfig, default_config
from ..geometry.antennas import Antenna, AntennaArray, t_array
from ..kernels.backend import active_backend
from ..rf.fmcw import range_axis
from ..rf.multipath import make_static_clutter, mirror_point
from ..rf.noise import NoiseModel
from ..rf.propagation import wavelength
from ..rf.receiver import Path, SweepSynthesizer
from .body import GatedAR1, HumanBody, ReflectionModel
from .gestures import PointingGesture
from .motion import Trajectory
from .room import Room

#: Hand scattering-center wander std along (x, y, z), in meters.
_HAND_WANDER_STD_M = np.array([0.055, 0.04, 0.07])
#: AR(1) time constants: hand wander and in-wall traversal jitter.
_HAND_WANDER_TAU_S = 0.25
_WALL_JITTER_TAU_S = 0.5


def _vector_gain(
    position: np.ndarray,
    boresight: np.ndarray,
    points: np.ndarray,
    exponent: float,
) -> np.ndarray:
    """cos^n antenna power gain toward each of ``points`` (vectorized)."""
    offsets = points - position[None, :]
    dist = np.linalg.norm(offsets, axis=1)
    dist = np.where(dist < 1e-9, 1.0, dist)
    cosine = offsets @ boresight / dist
    return np.where(cosine > 0.0, np.maximum(cosine, 0.0) ** exponent, 0.0)


def _segment_lengths(position: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Distance from a fixed position to each point (vectorized)."""
    return np.linalg.norm(points - position[None, :], axis=1)


@dataclass
class ScenarioOutput:
    """Everything a pipeline run and its evaluation need.

    Attributes:
        spectra: complex sweep spectra, shape ``(n_rx, n_sweeps, n_bins)``.
        sweep_times_s: time of each sweep, shape ``(n_sweeps,)``.
        range_bin_m: round-trip distance per spectrum bin.
        truth: the body-center ground-truth trajectory.
        surface_truth: per-sweep reflection-surface points ``(n_sweeps, 3)``.
        hand_truth: per-sweep hand positions or ``None`` (no gesture).
        true_round_trips: ideal per-antenna round-trip distances of the
            body surface, shape ``(n_rx, n_sweeps)``.
        config: the system configuration used.
        room: the room simulated.
        body: the subject simulated.
    """

    spectra: np.ndarray
    sweep_times_s: np.ndarray
    range_bin_m: float
    truth: Trajectory
    surface_truth: np.ndarray
    hand_truth: np.ndarray | None
    true_round_trips: np.ndarray
    config: SystemConfig
    room: Room
    body: HumanBody

    @property
    def num_sweeps(self) -> int:
        """Number of sweeps synthesized."""
        return self.spectra.shape[1]

    @property
    def num_rx(self) -> int:
        """Number of receive antennas."""
        return self.spectra.shape[0]

    def truth_at(self, times_s: np.ndarray) -> np.ndarray:
        """Ground-truth body-center positions at arbitrary times."""
        return self.truth.resample(times_s)


class Scenario:
    """A complete simulated experiment.

    Args:
        trajectory: body-center trajectory in the device frame.
        room: room geometry; defaults to the paper's through-wall room.
        body: subject model; defaults to an average adult.
        config: full system configuration.
        gesture: optional pointing gesture performed during the session.
        gesture_start_s: session time at which the gesture's clock starts.
        seed: seed for every random draw in the scenario.
        array: override antenna array (defaults to the configured T).
    """

    def __init__(
        self,
        trajectory: Trajectory,
        room: Room | None = None,
        body: HumanBody | None = None,
        config: SystemConfig | None = None,
        gesture: PointingGesture | None = None,
        gesture_start_s: float = 0.0,
        seed: int = 0,
        array: AntennaArray | None = None,
    ) -> None:
        self.trajectory = trajectory
        self.room = room if room is not None else Room()
        self.body = body or HumanBody()
        self.config = config or default_config()
        self.gesture = gesture
        self.gesture_start_s = gesture_start_s
        self.seed = seed
        self.array = array if array is not None else t_array(self.config.array)

    @property
    def range_bin_m(self) -> float:
        """Round-trip distance per spectrum bin (as :meth:`run` reports)."""
        return float(range_axis(self.config.fmcw).round_trip_per_bin_m)

    @property
    def num_sweeps(self) -> int:
        """Sweeps the session spans (what :meth:`run` synthesizes)."""
        return max(
            int(self.trajectory.duration_s / self.config.fmcw.sweep_duration_s),
            2,
        )

    @property
    def num_stream_frames(self) -> int:
        """Frames :meth:`frames` will yield for this trajectory."""
        return self.num_sweeps // self.config.pipeline.sweeps_per_frame

    def frames(
        self,
        chunk_frames: int = 256,
        start_frame: int = 0,
        stop_frame: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Lazily synthesize the session as per-frame sweep blocks.

        Yields one ``(n_rx, sweeps_per_frame, n_bins)`` block per 12.5 ms
        frame — the exact input of
        :meth:`repro.pipeline.Pipeline.push` — while synthesizing
        internally in chunks of ``chunk_frames`` frames, so arbitrarily
        long scenarios stream in bounded memory instead of
        materializing the ``(n_rx, n_sweeps, n_bins)`` block
        :meth:`run` returns.

        Every stochastic texture (surface wander, in-wall jitter, hand
        wander) is an explicit streaming state, so the output is
        deterministic in ``seed`` and independent of ``chunk_frames``
        (up to last-ulp jitter from numpy's vectorized transcendentals,
        ~1e-21). The trajectory and AR textures match :meth:`run`'s
        draws; the static-clutter field and the thermal noise/phase
        jitter come from dedicated streams (noise is keyed per frame so
        chunking cannot change it), giving statistically — not
        bitwise — identical recordings to :meth:`run`.

        Args:
            chunk_frames: frames synthesized per internal chunk (the
                memory/speed knob; the output does not depend on it).
            start_frame: first frame to yield. The skipped prefix only
                advances the streaming AR states (cheap: no sweep
                synthesis), so frame ``f`` of a shard is bitwise frame
                ``f`` of the full stream — what
                :class:`repro.exec.ShardedStreamRunner` shards on.
            stop_frame: yield frames ``[start_frame, stop_frame)``;
                ``None`` runs to the end of the trajectory.
        """
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        stream = ScenarioStream(self)
        n_frames = stream.n_frames  # num_sweeps // spf, as run()

        stop = n_frames if stop_frame is None else int(stop_frame)
        start = int(start_frame)
        if not 0 <= start <= stop <= n_frames:
            raise ValueError(
                f"need 0 <= start_frame <= stop_frame <= {n_frames}, got "
                f"[{start_frame}, {stop_frame})"
            )

        # Fast-forward the skipped prefix: the AR textures are sequential
        # per sweep, so a shard must advance them — but not run the
        # (expensive) sweep synthesis; noise is keyed per frame and needs
        # no advancing at all.
        for f0 in range(0, start, chunk_frames):
            stream.advance(f0, min(f0 + chunk_frames, start))

        spf = stream.spf
        for f0 in range(start, stop, chunk_frames):
            f1 = min(f0 + chunk_frames, stop)
            # All antennas fused into one scatter-kernel pass; noise is
            # then keyed per (antenna, frame) so output stays
            # chunk-size invariant.
            chunk = stream.synthesize(f0, f1, *stream.advance(f0, f1))
            for i in range(chunk.shape[0]):
                stream.add_keyed_noise(chunk[i], i, f0, f1)
            for f in range(f0, f1):
                row = (f - f0) * spf
                yield chunk[:, row : row + spf, :]

    def _hand_chunk(
        self,
        sweep_times: np.ndarray,
        dt: float,
        walk: GatedAR1,
        prev_hand: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One chunk of streaming hand positions (state carried by caller)."""
        assert self.gesture is not None
        local = sweep_times - self.gesture_start_s
        positions = self.gesture.hand_positions(np.clip(local, 0.0, None))
        positions[local < 0.0] = self.gesture.rest_hand
        n = len(positions)
        if prev_hand is not None:
            extended = np.concatenate([prev_hand[None], positions])
            speed = np.linalg.norm(np.diff(extended, axis=0), axis=1) / dt
        elif n > 1:
            step = np.linalg.norm(np.diff(positions, axis=0), axis=1)
            speed = np.concatenate([step[:1], step]) / dt
        else:
            speed = np.zeros(n)
        activity = np.clip(speed / 0.5, 0.0, 1.0)
        wander = walk.advance(activity) * _HAND_WANDER_STD_M[None, :]
        return positions + wander, positions[-1].copy()

    def run(self) -> ScenarioOutput:
        """Synthesize the received spectra for the whole session."""
        cfg = self.config
        fmcw = cfg.fmcw
        rng = np.random.default_rng(self.seed)

        n_sweeps = self.num_sweeps
        sweep_times = np.arange(n_sweeps) * fmcw.sweep_duration_s

        centers = self.trajectory.resample(sweep_times)
        reflection = ReflectionModel(self.body)
        surface = reflection.surface_points(
            centers,
            fmcw.sweep_duration_s,
            rng,
            self.array.tx.position,
            floor_z=self.room.floor_z,
        )

        hand = self._hand_positions(sweep_times)

        noise = NoiseModel(
            noise_figure_db=cfg.simulation.noise_figure_db,
            bandwidth_hz=1.0 / fmcw.sweep_duration_s,
        )
        synthesizer = SweepSynthesizer(
            fmcw, noise, max_range_m=cfg.pipeline.max_range_m
        )

        clutter = self._clutter(rng)
        spectra = np.empty(
            (self.array.num_receivers, n_sweeps, synthesizer.num_bins),
            dtype=np.complex128,
        )
        true_round_trips = np.empty((self.array.num_receivers, n_sweeps))
        step = np.linalg.norm(np.diff(centers, axis=0), axis=1)
        speed = np.concatenate([step[:1], step]) / fmcw.sweep_duration_s
        activity = np.clip(speed / 0.5, 0.0, 1.0)

        # Transmit-side hoisting is a kernel-tier optimization; the
        # reference backend recomputes per antenna (the original cost
        # model). Values are identical either way.
        tx_cache = {} if active_backend().static_split else None
        for i, rx in enumerate(self.array.rx):
            rx_rng = np.random.default_rng(self.seed * 7919 + i + 1)
            wall_jitter = self._wall_jitter(
                n_sweeps, fmcw.sweep_duration_s, rx_rng, activity
            )
            paths = self._paths_for_antenna(
                rx, surface, hand, clutter, wall_jitter, tx_cache=tx_cache
            )
            spectra[i] = synthesizer.synthesize(paths, n_sweeps, rx_rng)
            true_round_trips[i] = _segment_lengths(
                self.array.tx.position, surface
            ) + _segment_lengths(rx.position, surface)

        return ScenarioOutput(
            spectra=spectra,
            sweep_times_s=sweep_times,
            range_bin_m=synthesizer.axis.round_trip_per_bin_m,
            truth=self.trajectory,
            surface_truth=surface,
            hand_truth=hand,
            true_round_trips=true_round_trips,
            config=cfg,
            room=self.room,
            body=self.body,
        )

    # -- internals --------------------------------------------------------

    def _hand_positions(self, sweep_times: np.ndarray) -> np.ndarray | None:
        """Per-sweep hand positions during a gesture session, else None.

        Like the torso, the moving arm's dominant scattering center
        wanders over its surface (forearm vs hand vs elbow), so an
        activity-gated mean-reverting jitter rides on the kinematic hand
        path. This is what keeps the simulated pointing accuracy at the
        paper's level rather than implausibly perfect.
        """
        if self.gesture is None:
            return None
        local = sweep_times - self.gesture_start_s
        positions = self.gesture.hand_positions(np.clip(local, 0.0, None))
        before = local < 0.0
        positions[before] = self.gesture.rest_hand

        rng = np.random.default_rng(self.seed * 31 + 5)
        dt = float(sweep_times[1] - sweep_times[0])
        walk = GatedAR1(float(np.exp(-dt / _HAND_WANDER_TAU_S)), rng, dim=3)
        step = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        speed = np.concatenate([step[:1], step]) / dt
        activity = np.clip(speed / 0.5, 0.0, 1.0)
        return positions + walk.advance(activity) * _HAND_WANDER_STD_M[None, :]

    def _wall_jitter(
        self,
        n_sweeps: int,
        dt_s: float,
        rng: np.random.Generator,
        activity: np.ndarray,
    ) -> np.ndarray:
        """Excess round-trip delay from in-wall wavefront distortion.

        A mean-reverting (AR(1)) walk: the wall-traversal point moves as
        the person moves, so the excess delay is temporally correlated —
        and frozen while she is still (a static geometry has a constant
        wall delay, which background subtraction must cancel). Zero in
        line-of-sight rooms.
        """
        std = self.room.wall_tof_jitter_std_m if self.room.is_through_wall else 0.0
        if std <= 0.0:
            return np.zeros(n_sweeps)
        walk = GatedAR1(float(np.exp(-dt_s / _WALL_JITTER_TAU_S)), rng)
        return std * walk.advance(activity)

    def _wall_traversals(self) -> int:
        """Front-wall crossings of one segment (device side <-> room side)."""
        return 1 if self.room.is_through_wall else 0

    def _amplitudes(
        self,
        tx: Antenna,
        rx_position: np.ndarray,
        rx_boresight: np.ndarray,
        points: np.ndarray,
        rcs_m2: float,
        extra_loss_db: float,
        tx_side: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Vectorized bistatic radar amplitude toward each point.

        ``tx_side`` optionally supplies precomputed ``(g_tx, d_tx)``
        toward ``points`` — the transmit side is identical for every
        receive antenna, so per-chunk path resolution hoists it.
        """
        cfg = self.config
        lam = wavelength(cfg.fmcw)
        beam = cfg.array.beam_exponent
        if tx_side is None:
            g_tx = _vector_gain(tx.position, tx.boresight, points, beam)
            d_tx = np.maximum(_segment_lengths(tx.position, points), 0.1)
        else:
            g_tx, d_tx = tx_side
        g_rx = _vector_gain(rx_position, rx_boresight, points, beam)
        d_rx = np.maximum(_segment_lengths(rx_position, points), 0.1)
        total_loss_db = (
            extra_loss_db
            + cfg.simulation.system_loss_db
            + 2 * self._wall_traversals() * self.room.wall_attenuation_db
        )
        power = (
            cfg.fmcw.tx_power_w
            * g_tx
            * g_rx
            * lam**2
            * rcs_m2
            / ((4.0 * np.pi) ** 3 * d_tx**2 * d_rx**2)
        )
        return np.sqrt(power) * 10.0 ** (-total_loss_db / 20.0)

    def _reference_human_amplitude(self) -> float:
        """Body-echo amplitude at a reference 5 m range (anchors clutter)."""
        cfg = self.config
        lam = wavelength(cfg.fmcw)
        d = 5.0
        power = (
            cfg.fmcw.tx_power_w
            * lam**2
            * self.body.torso_rcs_m2
            / ((4.0 * np.pi) ** 3 * d**4)
        )
        loss_db = (
            cfg.simulation.system_loss_db
            + 2 * self._wall_traversals() * self.room.wall_attenuation_db
        )
        return float(np.sqrt(power) * 10.0 ** (-loss_db / 20.0))

    def _clutter(self, rng: np.random.Generator) -> list[Path]:
        """Static clutter paths shared across antennas (fresh phases each)."""
        clutter = make_static_clutter(
            rng,
            self.config.simulation.num_static_reflectors,
            human_amplitude=self._reference_human_amplitude(),
            max_round_trip_m=self.config.pipeline.max_range_m - 2.0,
        )
        return [
            Path(
                round_trip_m=np.float64(rt),
                amplitude=np.float64(amp),
                phase0_rad=float(ph),
                name=f"clutter-{k}",
            )
            for k, (rt, amp, ph) in enumerate(
                zip(clutter.round_trips_m, clutter.amplitudes, clutter.phases_rad)
            )
        ]

    def _paths_for_antenna(
        self,
        rx: Antenna,
        surface: np.ndarray,
        hand: np.ndarray | None,
        clutter: list[Path],
        wall_jitter: np.ndarray,
        tx_cache: dict | None = None,
    ) -> list[Path]:
        """Resolve every propagation path seen by one receive antenna.

        ``wall_jitter`` is added to the round trip of every path that
        traverses the front wall (all body-related paths in the
        through-wall setting); static clutter keeps its exact delay so
        background subtraction still cancels it.

        ``tx_cache`` (a dict shared across the antennas of one chunk)
        memoizes the transmit-side distances and gains, which do not
        depend on the receive antenna — reuse is exact, the values are
        the same arrays every antenna would recompute.
        """
        tx = self.array.tx
        beam = self.config.array.beam_exponent
        cache = tx_cache if tx_cache is not None else {}
        paths: list[Path] = list(clutter)

        # Direct body reflection.
        if "surface" not in cache:
            d = _segment_lengths(tx.position, surface)
            cache["surface"] = (
                d,
                (
                    _vector_gain(tx.position, tx.boresight, surface, beam),
                    np.maximum(d, 0.1),
                ),
            )
        d_tx, tx_side = cache["surface"]
        d_rx = _segment_lengths(rx.position, surface)
        paths.append(
            Path(
                round_trip_m=d_tx + d_rx + wall_jitter,
                amplitude=self._amplitudes(
                    tx, rx.position, rx.boresight, surface,
                    self.body.torso_rcs_m2, extra_loss_db=0.0,
                    tx_side=tx_side,
                ),
                name="body-direct",
            )
        )

        # Dynamic multipath: body -> wall -> Rx via image antennas.
        planes = self.room.bounce_planes[
            : self.config.simulation.num_multipath_images
        ]
        for wall_point, wall_normal, wall_name in planes:
            image_pos = mirror_point(rx.position, wall_point, wall_normal)
            image_boresight = rx.boresight - 2.0 * np.dot(
                rx.boresight, wall_normal
            ) * np.asarray(wall_normal)
            d_img = _segment_lengths(image_pos, surface)
            paths.append(
                Path(
                    round_trip_m=d_tx + d_img + wall_jitter,
                    amplitude=self._amplitudes(
                        tx, image_pos, image_boresight, surface,
                        self.body.torso_rcs_m2,
                        extra_loss_db=self.room.side_wall_reflection_loss_db,
                        tx_side=tx_side,
                    ),
                    name=f"multipath-{wall_name}",
                )
            )

        # The moving hand during a pointing gesture.
        if hand is not None:
            if "hand" not in cache:
                d = _segment_lengths(tx.position, hand)
                cache["hand"] = (
                    d,
                    (
                        _vector_gain(tx.position, tx.boresight, hand, beam),
                        np.maximum(d, 0.1),
                    ),
                )
            d_tx_hand, hand_side = cache["hand"]
            paths.append(
                Path(
                    round_trip_m=(
                        d_tx_hand
                        + _segment_lengths(rx.position, hand)
                        + wall_jitter
                    ),
                    amplitude=self._amplitudes(
                        tx, rx.position, rx.boresight, hand,
                        self.body.arm_rcs_m2, extra_loss_db=0.0,
                        tx_side=hand_side,
                    ),
                    name="hand",
                )
            )
        return paths


class ScenarioStream:
    """Streaming synthesis state of one scenario.

    Owns everything :meth:`Scenario.frames` carries between chunks —
    the surface-wander stream, the static clutter field, the wall and
    hand AR(1) walks, the synthesizer — and splits chunk production
    into the three steps a cohort-fused source needs individually:
    :meth:`advance` (sequential AR-texture state), :meth:`path_sets`
    (per-antenna propagation paths), and synthesis. ``frames()`` is one
    stream consumed alone; :class:`repro.sim.cohort.CohortFrameSource`
    advances N of these and hands all their path sets to a single
    fused ``synthesize_batch`` call per chunk.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        cfg = scenario.config
        self.dt = cfg.fmcw.sweep_duration_s
        self.spf = cfg.pipeline.sweeps_per_frame
        self.n_frames = scenario.num_stream_frames
        reflection = ReflectionModel(scenario.body)
        self._surface_stream = reflection.stream(
            self.dt,
            np.random.default_rng(scenario.seed),
            device_position=scenario.array.tx.position,
            floor_z=scenario.room.floor_z,
        )
        self._clutter = scenario._clutter(
            np.random.default_rng([scenario.seed, 104_729])
        )
        noise = NoiseModel(
            noise_figure_db=cfg.simulation.noise_figure_db,
            bandwidth_hz=1.0 / self.dt,
        )
        self.synthesizer = SweepSynthesizer(
            cfg.fmcw, noise, max_range_m=cfg.pipeline.max_range_m
        )
        self.num_rx = scenario.array.num_receivers
        wall_std = (
            scenario.room.wall_tof_jitter_std_m
            if scenario.room.is_through_wall
            else 0.0
        )
        self._wall_std = wall_std
        self._wall_walks = None
        if wall_std > 0.0:
            wall_rho = float(np.exp(-self.dt / _WALL_JITTER_TAU_S))
            self._wall_walks = [
                GatedAR1(
                    wall_rho,
                    np.random.default_rng(scenario.seed * 7919 + i + 1),
                )
                for i in range(self.num_rx)
            ]
        self._hand_walk = None
        self._prev_hand: np.ndarray | None = None
        if scenario.gesture is not None:
            self._hand_walk = GatedAR1(
                float(np.exp(-self.dt / _HAND_WANDER_TAU_S)),
                np.random.default_rng(scenario.seed * 31 + 5),
                dim=3,
            )

    def advance(self, f0: int, f1: int) -> tuple:
        """Advance every streaming state over frames ``[f0, f1)``.

        Returns ``(surface, hand, jitters)`` for :meth:`path_sets`.
        Chunks must be consumed in order without gaps — the AR textures
        are sequential per sweep.
        """
        scn = self.scenario
        sweep_times = np.arange(f0 * self.spf, f1 * self.spf) * self.dt
        centers = scn.trajectory.resample(sweep_times)
        activity = self._surface_stream.activity(centers)
        surface = self._surface_stream.points(centers, activity=activity)
        hand = None
        if scn.gesture is not None:
            assert self._hand_walk is not None
            hand, self._prev_hand = scn._hand_chunk(
                sweep_times, self.dt, self._hand_walk, self._prev_hand
            )
        jitters = None
        if self._wall_walks is not None:
            jitters = [
                self._wall_std * walk.advance(activity)
                for walk in self._wall_walks
            ]
        return surface, hand, jitters

    def path_sets(self, surface, hand, jitters) -> list:
        """Per-antenna path lists for one advanced chunk (length n_rx)."""
        scn = self.scenario
        n_sweeps = len(surface)
        # Cross-antenna tx-side reuse only under optimizing backends;
        # see Scenario.run.
        tx_cache = {} if active_backend().static_split else None
        return [
            scn._paths_for_antenna(
                rx,
                surface,
                hand,
                self._clutter,
                jitters[i] if jitters is not None else np.zeros(n_sweeps),
                tx_cache=tx_cache,
            )
            for i, rx in enumerate(scn.array.rx)
        ]

    def synthesize(self, f0: int, f1: int, surface, hand, jitters):
        """Noise-free chunk spectra ``(n_rx, (f1-f0)*spf, n_bins)``."""
        return self.synthesizer.synthesize_batch(
            self.path_sets(surface, hand, jitters), (f1 - f0) * self.spf
        )

    def add_keyed_noise(self, block, i: int, f0: int, f1: int) -> None:
        """Thermal noise + phase jitter for one antenna's chunk, in place.

        Keyed per (antenna, frame) so the result is chunk-size
        invariant and shards reproduce the full stream bitwise.
        """
        spf = self.spf
        for f in range(f0, f1):
            row = (f - f0) * spf
            self.synthesizer.add_noise(
                block[row : row + spf],
                np.random.default_rng([self.scenario.seed, 65_537, i, f]),
            )
