"""Cohort-fused synthetic frame source for the serving tier.

A :class:`CohortFrameSource` drives N concurrent scenario sessions and
synthesizes *all* of them — every antenna of every session — through
one fused :meth:`repro.rf.receiver.SweepSynthesizer.synthesize_batch`
call per chunk. Against N per-session :meth:`repro.sim.Scenario.frames`
generators this removes the dominant serving-tier source cost: the
scatter kernel runs once per chunk instead of 3N times, and static
clutter (most of the path count) is evaluated once per stream instead
of once per sweep (see :mod:`repro.kernels.synthesis`).

The deterministic part — the noise-free spectra — is bitwise what the
per-session path produces under the same backend; tests pin this.

**Serving noise model.** Receiver noise keeps the same physical model
as :meth:`repro.rf.receiver.SweepSynthesizer.add_noise` but a cheaper
realization, keyed independently of the per-session path:

* Noise is drawn at *frame* rate and broadcast across the
  ``sweeps_per_frame`` sweeps of the frame, scaled by ``1/sqrt(spf)``.
  The pipeline coherently averages the sweep axis on entry
  (``Pipeline.tick``), and the mean of ``spf`` i.i.d. complex Gaussians
  equals one Gaussian of ``1/spf`` the power — identical in
  distribution for every downstream consumer, at a fifth of the draws.
* Draws come from an ``SFC64`` stream keyed per
  ``(session seed, antenna, 64-frame block)``, so the stream is
  deterministic in the scenario seeds and invariant to both the chunk
  size and the cohort's composition.

Use :meth:`ticks` to drive a serving engine (one list of per-session
``(n_rx, spf, n_bins)`` blocks per frame step) or :meth:`session_streams`
for per-session iterators consumed in lockstep.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

import numpy as np

from ..kernels.backend import active_backend
from .scenario import Scenario, ScenarioStream

#: Domain-separation key of the serving noise streams (vs the
#: per-session frames() noise keyed with 65_537).
_NOISE_KEY = 131_071
#: Frames per noise block; fixed so draws do not depend on chunking.
_NOISE_BLOCK_FRAMES = 64


class CohortFrameSource:
    """Fused synthetic sweep-frame source for N concurrent sessions.

    Args:
        scenarios: one :class:`Scenario` per session. All must share
            the same FMCW/pipeline geometry (same bins per sweep,
            sweeps per frame); seeds should differ or sessions will be
            correlated.
        chunk_frames: frames synthesized per fused kernel pass — the
            memory/latency knob; the output does not depend on it.
        noise: apply the serving noise model (see module docstring).
            ``False`` yields the noise-free spectra the parity tests
            pin against per-session synthesis.
    """

    def __init__(
        self,
        scenarios: list[Scenario],
        chunk_frames: int = 64,
        noise: bool = True,
    ) -> None:
        if not scenarios:
            raise ValueError("need at least one scenario")
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        self.streams = [ScenarioStream(s) for s in scenarios]
        first = self.streams[0]
        for st in self.streams[1:]:
            if (
                st.synthesizer.num_bins != first.synthesizer.num_bins
                or st.spf != first.spf
                or st.num_rx != first.num_rx
            ):
                raise ValueError(
                    "cohort sessions must share FMCW/pipeline geometry"
                )
        self.chunk_frames = chunk_frames
        self.noise = noise
        self.num_sessions = len(self.streams)
        self.num_rx = first.num_rx
        self.num_bins = first.synthesizer.num_bins
        self.spf = first.spf
        self.n_frames = min(st.n_frames for st in self.streams)
        self._template: np.ndarray | None = None

    def _clutter_template(self) -> np.ndarray:
        """Per-stream static clutter spectra, shape ``(n_streams, n_bins)``.

        Clutter never changes between chunks, so the template that
        ``synthesize_batch``'s static-path split would rebuild every
        chunk is computed once here and pre-filled into the fused
        output buffer. The add order is unchanged — template first,
        then the dynamic scatters — so results stay bitwise identical.
        """
        if self._template is None:
            clutter_sets = [
                list(st._clutter)
                for st in self.streams
                for _ in range(self.num_rx)
            ]
            self._template = self.streams[0].synthesizer.synthesize_batch(
                clutter_sets, 1
            )[:, 0, :]
        return self._template

    def ticks(self) -> Iterator[list[np.ndarray]]:
        """Yield one list of per-session blocks per frame step.

        Each yielded list holds ``num_sessions`` views of shape
        ``(n_rx, spf, n_bins)`` — the exact per-session input of
        ``ServingSession.offer``.
        """
        synthesizer = self.streams[0].synthesizer
        spf = self.spf
        n_rx = self.num_rx
        # Only backends that split static paths build a clutter
        # template; under the reference backend the full path sets go
        # through unchanged so per-session parity holds there too.
        template = (
            self._clutter_template()
            if active_backend().static_split
            else None
        )
        for f0 in range(0, self.n_frames, self.chunk_frames):
            f1 = min(f0 + self.chunk_frames, self.n_frames)
            n_sweeps = (f1 - f0) * spf
            path_sets: list = []
            for st in self.streams:
                sets = st.path_sets(*st.advance(f0, f1))
                if template is not None:
                    sets = [ps[len(st._clutter) :] for ps in sets]
                path_sets.extend(sets)
            if template is not None:
                out = np.empty(
                    (len(path_sets), n_sweeps, self.num_bins),
                    dtype=np.complex128,
                )
                out[:] = template[:, None, :]
                fused = synthesizer.synthesize_batch(
                    path_sets, n_sweeps, out=out
                )
            else:
                fused = synthesizer.synthesize_batch(path_sets, n_sweeps)
            chunk = fused.reshape(
                self.num_sessions, n_rx, n_sweeps, self.num_bins
            )
            if self.noise:
                for k, st in enumerate(self.streams):
                    self._serving_noise(chunk[k], st, f0, f1)
            for f in range(f0, f1):
                row = (f - f0) * spf
                yield [
                    chunk[k][:, row : row + spf, :]
                    for k in range(self.num_sessions)
                ]

    def session_streams(self) -> list[Iterator[np.ndarray]]:
        """Per-session block iterators backed by the shared fused ticks.

        Intended for lockstep consumption (a serving loop offering one
        frame per session per tick); a lagging consumer only grows the
        leader's buffer by the lag, not the whole stream.
        """
        buffers = [deque() for _ in range(self.num_sessions)]
        ticks = self.ticks()

        def gen(k: int) -> Iterator[np.ndarray]:
            while True:
                if not buffers[k]:
                    try:
                        blocks = next(ticks)
                    except StopIteration:
                        return
                    for q, b in zip(buffers, blocks):
                        q.append(b)
                yield buffers[k].popleft()

        return [gen(k) for k in range(self.num_sessions)]

    def _serving_noise(
        self, block: np.ndarray, st: ScenarioStream, f0: int, f1: int
    ) -> None:
        """Frame-rate thermal noise + phase jitter, in place.

        ``block`` is ``(n_rx, (f1-f0)*spf, n_bins)``. Per antenna and
        64-frame noise block, one keyed SFC64 stream supplies the
        frame-level complex floor (broadcast across the frame's sweeps
        at ``1/sqrt(spf)`` power) and the per-frame phase jitter.
        """
        syn = st.synthesizer
        noise = syn.noise
        spf = self.spf
        seed = st.scenario.seed
        sigma = (
            syn._noise_scale()
            * noise.noise_amplitude
            / np.sqrt(2.0)
            / np.sqrt(spf)
        )
        nb = self.num_bins
        frames = block.reshape(self.num_rx, f1 - f0, spf, nb)
        bsz = _NOISE_BLOCK_FRAMES
        for i in range(self.num_rx):
            for b in range(f0 // bsz, (f1 - 1) // bsz + 1):
                rng = np.random.Generator(
                    np.random.SFC64(
                        np.random.SeedSequence([seed, _NOISE_KEY, i, b])
                    )
                )
                w = rng.standard_normal((2, bsz, nb))
                eps = rng.standard_normal((bsz, 1))
                lo = max(f0, b * bsz)
                hi = min(f1, (b + 1) * bsz)
                sel = slice(lo - b * bsz, hi - b * bsz)
                rows = frames[i, lo - f0 : hi - f0]
                c = sigma * (w[0, sel] + 1j * w[1, sel])
                rows += c[:, None, :]
                rows *= np.exp(
                    1j * noise.phase_noise_std_rad * eps[sel]
                )[:, :, None]
        return None
