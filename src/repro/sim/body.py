"""Human body model: radar cross-section and reflection-surface behaviour.

WiTrack measures "the 3D location of the body surface where the signal
reflects" (Section 8a), not the body center. Two properties of that
surface drive the paper's error structure:

* the dominant scattering center wanders over the torso as the person
  moves, more along the body's large vertical extent than across it —
  "the accuracy along the z-dimension is worse ... the result of the
  human body being larger along the z dimension" (Section 9.1);
* the surface sits some depth in front of the body center, which the
  evaluation calibrates out per person exactly as the paper does with
  VICON (Section 8a).

The wander is modelled as a mean-reverting (AR(1)/Ornstein-Uhlenbeck)
walk so that consecutive frames see a *consistent* reflection point —
uncorrelated jitter would average away and underestimate the error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.backend import active_backend


@dataclass(frozen=True)
class HumanBody:
    """Physical parameters of one tracked person.

    Attributes:
        height_m: standing height; sets the torso extent along z.
        torso_rcs_m2: radar cross-section of the torso at ~6 GHz.
        arm_rcs_m2: radar cross-section of one arm (Section 6.1 relies on
            the arm reflecting far less than the whole body).
        torso_depth_m: distance from body center to the reflecting front
            surface (the depth the evaluation compensates).
        waist_height_m: height of the torso reflection center above floor.
        name: subject label.
    """

    height_m: float = 1.75
    torso_rcs_m2: float = 0.50
    arm_rcs_m2: float = 0.05
    torso_depth_m: float = 0.12
    waist_height_m: float = 1.0
    name: str = "subject"

    def __post_init__(self) -> None:
        if not 1.2 <= self.height_m <= 2.2:
            raise ValueError("height_m outside plausible human range")
        if self.torso_rcs_m2 <= 0 or self.arm_rcs_m2 <= 0:
            raise ValueError("radar cross sections must be positive")

    @property
    def torso_halfheight_m(self) -> float:
        """Half the torso's vertical extent (sets z reflection wander)."""
        return 0.16 * self.height_m

    @property
    def torso_halfwidth_m(self) -> float:
        """Half the torso's horizontal extent (sets x/y wander)."""
        return 0.055 * self.height_m


@dataclass
class ReflectionModel:
    """Generates the per-sweep reflection-surface point for a body.

    The reflection point is the body center, pushed ``torso_depth``
    toward the device in the x-y plane, plus a mean-reverting surface
    wander whose per-axis scale follows the torso extents. The wander is
    what ultimately bounds WiTrack's accuracy in each dimension.

    Args:
        body: the tracked person.
        correlation_time_s: time constant of the AR(1) wander.
        scale: multiplier on the wander amplitudes (1.0 = calibrated
            default; 0 disables wander for geometry-only tests).
    """

    body: HumanBody
    correlation_time_s: float = 0.4
    scale: float = 1.0

    def wander_stds(self) -> np.ndarray:
        """Stationary std of the wander along (x, y, z), in meters."""
        return self.scale * np.array(
            [
                0.68 * self.body.torso_halfwidth_m * 2.0,
                0.42 * self.body.torso_halfwidth_m * 2.0,
                0.72 * self.body.torso_halfheight_m,
            ]
        )

    def stream(
        self,
        dt_s: float,
        rng: np.random.Generator,
        device_position: np.ndarray | None = None,
        floor_z: float | None = None,
    ) -> "SurfaceWanderStream":
        """A chunkable surface-point generator (state carried across calls).

        :meth:`surface_points` is this stream applied to the whole
        trajectory in one call; :meth:`repro.sim.Scenario.frames` feeds
        it chunk by chunk so arbitrarily long sessions need only
        chunk-sized memory. Identical ``rng`` and centers produce
        identical surfaces regardless of how the calls are chunked.
        """
        return SurfaceWanderStream(
            self, dt_s, rng, device_position=device_position, floor_z=floor_z
        )

    def surface_points(
        self,
        centers: np.ndarray,
        dt_s: float,
        rng: np.random.Generator,
        device_position: np.ndarray | None = None,
        floor_z: float | None = None,
    ) -> np.ndarray:
        """Reflection-surface trajectory for body-center trajectory.

        Args:
            centers: body-center positions, shape ``(n, 3)``.
            dt_s: sampling interval of the trajectory.
            rng: random source.
            device_position: point the surface faces (default: origin).
            floor_z: floor height in the device frame. When given, the
                vertical wander shrinks as the torso approaches the floor
                — a lying or seated body presents a much smaller vertical
                scattering extent than a standing one.

        Returns:
            Surface points, shape ``(n, 3)``.
        """
        return self.stream(
            dt_s, rng, device_position=device_position, floor_z=floor_z
        ).points(centers)


class GatedAR1:
    """An activity-gated mean-reverting (OU / AR(1)) random walk.

    The simulator's stochastic textures — surface wander, in-wall TOF
    jitter, hand wander — all share this process: mean reversion *and*
    innovation are scaled by the subject's activity, so a still body
    freezes its state entirely (even millimetre-scale random motion per
    sweep would decorrelate the ~5 cm carrier and keep a still person
    visible after background subtraction — paper Sections 4.4 and 10).

    The state lives on the object, so a walk can be advanced chunk by
    chunk: the concatenation of chunked :meth:`advance` calls is
    bitwise-identical to one big call with the same random stream. That
    is what lets :meth:`repro.sim.Scenario.frames` synthesize unbounded
    sessions in bounded memory.

    Args:
        rho: per-step correlation ``exp(-dt / tau)``.
        rng: random source (consumed one draw per step).
        dim: state dimension; ``None`` for a scalar walk.
    """

    def __init__(
        self, rho: float, rng: np.random.Generator, dim: int | None = None
    ) -> None:
        self.rho = float(rho)
        self.innovation = float(np.sqrt(max(1.0 - self.rho * self.rho, 0.0)))
        self.rng = rng
        self.dim = dim
        self.state = (
            rng.standard_normal() if dim is None else rng.standard_normal(dim)
        )

    def advance(self, activity: np.ndarray) -> np.ndarray:
        """Advance one step per activity sample; returns the visited states.

        Output shape is ``(len(activity),)`` for scalar walks and
        ``(len(activity), dim)`` otherwise.

        The noise draws are batched (``standard_normal`` consumes the
        stream identically whether drawn singly or as an array) and the
        sequential recurrence runs on native floats — same IEEE-754
        operations in the same order as the one-step-at-a-time loop,
        so chunked output stays bitwise reproducible. The ``reference``
        backend keeps the one-draw-per-step loop (the executable spec,
        and the honest pre-kernel-tier cost model); both paths emit
        identical values.
        """
        n = len(activity)
        if not active_backend().static_split:
            out = np.empty(n) if self.dim is None else np.empty((n, self.dim))
            state = self.state
            for i in range(n):
                out[i] = state
                noise = (
                    self.rng.standard_normal()
                    if self.dim is None
                    else self.rng.standard_normal(self.dim)
                )
                # Scale the *whole* OU update (mean reversion and
                # noise) by the activity level: a still body freezes
                # its scattering center instead of relaxing it toward
                # the torso center.
                state = state + activity[i] * (
                    (self.rho - 1.0) * state + self.innovation * noise
                )
            self.state = state
            return out
        decay = self.rho - 1.0
        inn = self.innovation
        acts = np.asarray(activity, dtype=np.float64).tolist()
        if self.dim is None:
            out = np.empty(n)
            draws = self.rng.standard_normal(n).tolist()
            s = float(self.state)
            for i in range(n):
                out[i] = s
                # Scale the *whole* OU update (mean reversion and
                # noise) by the activity level: a still body freezes
                # its scattering center instead of relaxing it toward
                # the torso center.
                s = s + acts[i] * (decay * s + inn * draws[i])
            self.state = s
            return out
        out = np.empty((n, self.dim))
        draws = self.rng.standard_normal((n, self.dim)).tolist()
        state = [float(x) for x in np.atleast_1d(self.state)]
        dims = range(self.dim)
        for i in range(n):
            out[i] = state
            a = acts[i]
            row = draws[i]
            state = [
                state[j] + a * (decay * state[j] + inn * row[j])
                for j in dims
            ]
        self.state = np.asarray(state)
        return out


class SurfaceWanderStream:
    """Chunkable reflection-surface generator for one body.

    Carries the wander state and the previous body center across calls,
    so feeding a trajectory in chunks yields exactly the same surface as
    one :meth:`ReflectionModel.surface_points` call.
    """

    def __init__(
        self,
        model: ReflectionModel,
        dt_s: float,
        rng: np.random.Generator,
        device_position: np.ndarray | None = None,
        floor_z: float | None = None,
    ) -> None:
        self.model = model
        self.dt_s = dt_s
        self.device = (
            np.zeros(3)
            if device_position is None
            else np.asarray(device_position, dtype=np.float64)
        )
        self.floor_z = floor_z
        rho = float(np.exp(-dt_s / model.correlation_time_s))
        self._ar = GatedAR1(rho, rng, dim=3)
        self._prev_center: np.ndarray | None = None

    def activity(self, centers: np.ndarray) -> np.ndarray:
        """Activity level (0..1) per sample, continuous across chunks."""
        n = len(centers)
        if self.dt_s <= 0:
            return np.zeros(n)
        if self._prev_center is not None:
            extended = np.concatenate([self._prev_center[None], centers])
            speed = (
                np.linalg.norm(np.diff(extended, axis=0), axis=1) / self.dt_s
            )
        elif n > 1:
            step = np.linalg.norm(np.diff(centers, axis=0), axis=1)
            speed = np.concatenate([step[:1], step]) / self.dt_s
        else:
            return np.zeros(n)
        return np.clip(speed / 0.5, 0.0, 1.0)

    def points(
        self, centers: np.ndarray, activity: np.ndarray | None = None
    ) -> np.ndarray:
        """Surface points for the next chunk of body centers.

        Args:
            centers: body-center positions, shape ``(n, 3)``.
            activity: precomputed :meth:`activity` (avoids recomputing
                it when the caller also needs it); must match
                ``centers``.

        Returns:
            Surface points, shape ``(n, 3)``.
        """
        centers = np.asarray(centers, dtype=np.float64)
        if activity is None:
            activity = self.activity(centers)
        if len(centers):
            self._prev_center = centers[-1].copy()
        # Depth offset toward the device, horizontal only.
        toward = self.device[None, :2] - centers[:, :2]
        dist = np.linalg.norm(toward, axis=1, keepdims=True)
        dist = np.where(dist < 1e-9, 1.0, dist)
        offset_xy = self.model.body.torso_depth_m * toward / dist

        # The scattering center wanders because gait and posture change
        # while the person moves; a still body keeps a (nearly) fixed
        # reflection point — which is what makes her vanish under
        # background subtraction (paper Sections 4.4 and 10).
        wander = self._ar.advance(activity) * self.model.wander_stds()[None, :]
        if self.floor_z is not None:
            # Vertical extent shrinks with torso height above the floor:
            # full wander when standing (torso ~1 m up), ~30% when lying.
            height = np.clip(centers[:, 2] - self.floor_z, 0.0, None)
            shrink = np.clip(height / 1.0, 0.3, 1.0)
            wander[:, 2] *= shrink

        surface = centers.copy()
        surface[:, :2] += offset_xy
        surface += wander
        return surface


def sample_population(
    rng: np.random.Generator, count: int = 11
) -> list[HumanBody]:
    """Draw a population like the paper's subject pool (Section 8c).

    "eleven human subjects: two females and nine males ... of different
    heights and builds ... age range of 22 to 56 years."
    """
    bodies = []
    for i in range(count):
        height = float(np.clip(rng.normal(1.74, 0.09), 1.55, 1.98))
        build = float(np.clip(rng.normal(1.0, 0.18), 0.6, 1.5))
        bodies.append(
            HumanBody(
                height_m=height,
                torso_rcs_m2=0.5 * build,
                arm_rcs_m2=0.05 * build,
                torso_depth_m=float(np.clip(rng.normal(0.12, 0.02), 0.07, 0.2)),
                waist_height_m=0.57 * height,
                name=f"subject-{i + 1:02d}",
            )
        )
    return bodies
