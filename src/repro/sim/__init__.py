"""World simulation: rooms, human bodies, motion, and ground truth.

These modules substitute for the paper's physical experiment apparatus:
the VICON room with its 6-inch hollow wall, the eleven human subjects,
and the VICON motion-capture ground truth (see DESIGN.md Section 2).
"""

from .room import Room, through_wall_room, line_of_sight_room
from .body import HumanBody, ReflectionModel, sample_population
from .motion import (
    Trajectory,
    fall_trace,
    non_colliding_walks,
    random_walk,
    sit_on_chair_trace,
    sit_on_floor_trace,
    stand_still,
    walk_trace,
    waypoint_walk,
)
from .gestures import PointingGesture, pointing_session
from .scenario import Scenario, ScenarioOutput, ScenarioStream
from .cohort import CohortFrameSource
from .vicon import DepthCalibration, ViconSystem

__all__ = [
    "Room",
    "through_wall_room",
    "line_of_sight_room",
    "HumanBody",
    "ReflectionModel",
    "sample_population",
    "Trajectory",
    "fall_trace",
    "non_colliding_walks",
    "random_walk",
    "sit_on_chair_trace",
    "sit_on_floor_trace",
    "stand_still",
    "walk_trace",
    "waypoint_walk",
    "PointingGesture",
    "pointing_session",
    "Scenario",
    "ScenarioOutput",
    "ScenarioStream",
    "CohortFrameSource",
    "DepthCalibration",
    "ViconSystem",
]
