"""Human motion models: trajectories for every paper workload.

All evaluation workloads reduce to a body-center trajectory sampled on a
uniform time grid: free walking (Fig. 8-10), standing still (pointing,
Section 9.4), and the four fall-detection activities of Fig. 6 — walk,
sit on a chair, sit on the floor, and a (simulated) fall.

Trajectories respect the paper's physical assumptions: indoor human
speeds (~0.5-2 m/s), continuous motion, and the speed asymmetry between
falling and sitting that the fall detector exploits ("people fall quicker
than they sit", Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.vec import Vec3
from .room import Room


@dataclass(frozen=True)
class Trajectory:
    """A body-center trajectory on a uniform time grid.

    Attributes:
        times_s: sample times, shape ``(n,)``, uniformly spaced.
        positions: body-center positions, shape ``(n, 3)`` (device frame;
            z is the height of the torso center above the device plane).
        label: workload name ("walk", "fall", ...), used by the fall
            benchmarks as the classification ground truth.
    """

    times_s: np.ndarray
    positions: np.ndarray
    label: str = "walk"

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.positions):
            raise ValueError("times and positions must have equal length")
        if len(self.times_s) < 2:
            raise ValueError("a trajectory needs at least two samples")

    @property
    def dt_s(self) -> float:
        """Sampling interval."""
        return float(self.times_s[1] - self.times_s[0])

    @property
    def duration_s(self) -> float:
        """Total duration."""
        return float(self.times_s[-1] - self.times_s[0])

    def resample(self, times_s: np.ndarray) -> np.ndarray:
        """Linearly interpolate positions at arbitrary times."""
        times_s = np.asarray(times_s, dtype=np.float64)
        out = np.empty((len(times_s), 3))
        for axis in range(3):
            out[:, axis] = np.interp(
                times_s, self.times_s, self.positions[:, axis]
            )
        return out

    def speeds(self) -> np.ndarray:
        """Instantaneous speed magnitude per interval, shape ``(n-1,)``."""
        deltas = np.diff(self.positions, axis=0)
        return np.linalg.norm(deltas, axis=1) / self.dt_s

    def with_label(self, label: str) -> "Trajectory":
        """Copy with a different workload label."""
        return Trajectory(self.times_s, self.positions, label)


def _time_grid(duration_s: float, dt_s: float) -> np.ndarray:
    n = max(int(round(duration_s / dt_s)) + 1, 2)
    return np.arange(n) * dt_s


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Moving-average smoothing used to keep synthetic paths human-like."""
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    out = np.empty_like(values)
    for axis in range(values.shape[1]):
        padded = np.concatenate(
            [
                np.full(window // 2, values[0, axis]),
                values[:, axis],
                np.full(window - window // 2 - 1, values[-1, axis]),
            ]
        )
        out[:, axis] = np.convolve(padded, kernel, mode="valid")
    return out


def waypoint_walk(
    waypoints: np.ndarray,
    speed_mps: float = 1.0,
    dt_s: float = 0.0125,
    torso_z: float = 0.0,
    label: str = "walk",
) -> Trajectory:
    """Walk through waypoints at constant speed (piecewise linear).

    ``torso_z`` is the standing torso-center height in the device frame
    (0 when the torso center is level with the antennas).
    """
    waypoints = np.asarray(waypoints, dtype=np.float64)
    if waypoints.ndim != 2 or waypoints.shape[1] != 2:
        raise ValueError("waypoints must have shape (k, 2) in the x-y plane")
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    if speed_mps <= 0:
        raise ValueError("speed must be positive")
    segments = np.diff(waypoints, axis=0)
    seg_lengths = np.linalg.norm(segments, axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    total_time = cum[-1] / speed_mps
    times = _time_grid(total_time, dt_s)
    arc = np.minimum(times * speed_mps, cum[-1])
    xy = np.empty((len(times), 2))
    xy[:, 0] = np.interp(arc, cum, waypoints[:, 0])
    xy[:, 1] = np.interp(arc, cum, waypoints[:, 1])
    positions = np.column_stack([xy, np.full(len(times), torso_z)])
    return Trajectory(times, _smooth(positions, 16), label)


def random_walk(
    room: Room,
    rng: np.random.Generator,
    duration_s: float = 60.0,
    dt_s: float = 0.0125,
    speed_range_mps: tuple[float, float] = (0.5, 1.6),
    area: tuple[tuple[float, float], tuple[float, float]] | None = None,
    torso_z: float = 0.0,
    label: str = "walk",
) -> Trajectory:
    """Move "at will" inside the room (the Fig. 8-10 workload).

    The walker picks a random waypoint inside ``area`` (default: the
    VICON 6 x 5 m capture area starting 2.5 m behind the wall, Section
    9.1), walks to it at a random speed, pauses briefly, and repeats.
    """
    if area is None:
        y0 = (room.front_wall_y or 0.0) + 2.5
        area = ((-3.0, 3.0), (y0, y0 + 5.0))
    (x_lo, x_hi), (y_lo, y_hi) = area
    times = _time_grid(duration_s, dt_s)
    positions = np.empty((len(times), 3))
    positions[:, 2] = torso_z

    current = Vec3(
        rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi), torso_z
    )
    target = current.copy()
    speed = rng.uniform(*speed_range_mps)
    pause_left = 0.0
    for i, __ in enumerate(times):
        to_target = target[:2] - current[:2]
        remaining = float(np.linalg.norm(to_target))
        if pause_left > 0.0:
            pause_left -= dt_s
        elif remaining < speed * dt_s:
            current[:2] = target[:2]
            target = Vec3(rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi), torso_z)
            target[:2] = room.clamp(target)[:2]
            speed = rng.uniform(*speed_range_mps)
            if rng.random() < 0.15:
                pause_left = rng.uniform(0.3, 1.2)
        else:
            step = speed * dt_s * to_target / remaining
            current[:2] += step
        positions[i, :2] = current[:2]
    return Trajectory(times, _smooth(positions, 24), label)


def non_colliding_walks(
    room: Room,
    rng: np.random.Generator,
    count: int,
    duration_s: float = 30.0,
    dt_s: float = 0.0125,
    min_separation_m: float = 1.0,
    speed_range_mps: tuple[float, float] = (0.5, 1.6),
    area: tuple[tuple[float, float], tuple[float, float]] | None = None,
    torso_z: float = 0.0,
) -> list[Trajectory]:
    """Generate ``count`` random walks that never come close to colliding.

    The capture area is partitioned into ``count`` *depth* (y) bands
    separated by ``min_separation_m`` corridors; each walker
    random-walks freely inside its own band, so any two walkers stay at
    least ``min_separation_m`` apart at all times — and, because range
    to the device is dominated by depth, they also stay separated in
    round-trip space, which is what makes them radar-separable. This is
    the "well-separated" multi-person workload the multi-target
    benchmarks score against (crossing workloads are built from
    :func:`waypoint_walk` instead).

    Args:
        room: room the walkers move in.
        rng: random source shared by all walkers.
        count: number of walkers (K).
        duration_s: session length.
        dt_s: trajectory sampling interval.
        min_separation_m: guaranteed minimum inter-person distance.
        speed_range_mps: walking-speed range per leg.
        area: overall ``((x_lo, x_hi), (y_lo, y_hi))`` capture area;
            defaults to the paper's VICON area (as :func:`random_walk`).
        torso_z: standing torso-center height in the device frame.

    Returns:
        One :class:`Trajectory` per walker, nearest band first.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if min_separation_m < 0:
        raise ValueError("min_separation_m must be non-negative")
    if area is None:
        y0 = (room.front_wall_y or 0.0) + 2.5
        area = ((-3.0, 3.0), (y0, y0 + 5.0))
    x_range, (y_lo, y_hi) = area
    band_m = (y_hi - y_lo - (count - 1) * min_separation_m) / count
    if band_m < 0.3:
        raise ValueError(
            f"cannot fit {count} walkers {min_separation_m} m apart in a "
            f"{y_hi - y_lo:.1f} m deep area"
        )
    walks = []
    for k in range(count):
        lo = y_lo + k * (band_m + min_separation_m)
        walks.append(
            random_walk(
                room,
                rng,
                duration_s=duration_s,
                dt_s=dt_s,
                speed_range_mps=speed_range_mps,
                area=(x_range, (lo, lo + band_m)),
                torso_z=torso_z,
                label=f"walk-{k + 1}",
            )
        )
    return walks


def stand_still(
    position: np.ndarray,
    duration_s: float = 5.0,
    dt_s: float = 0.0125,
    label: str = "stand",
) -> Trajectory:
    """Stand at a fixed position (used around pointing gestures)."""
    times = _time_grid(duration_s, dt_s)
    positions = np.tile(np.asarray(position, dtype=np.float64), (len(times), 1))
    return Trajectory(times, positions, label)


def _elevation_profile(
    times: np.ndarray,
    start_s: float,
    transition_s: float,
    z_start: float,
    z_end: float,
) -> np.ndarray:
    """Smoothstep elevation transition from z_start to z_end."""
    t = np.clip((times - start_s) / transition_s, 0.0, 1.0)
    smooth = t * t * (3.0 - 2.0 * t)
    return z_start + (z_end - z_start) * smooth


def _activity_trace(
    position_xy: np.ndarray,
    duration_s: float,
    dt_s: float,
    walk_in_s: float,
    transition_start_s: float,
    transition_s: float,
    z_stand: float,
    z_final: float,
    label: str,
    rng: np.random.Generator,
) -> Trajectory:
    """Shared skeleton: walk in, then change elevation, then rest."""
    times = _time_grid(duration_s, dt_s)
    x0, y0 = float(position_xy[0]), float(position_xy[1])
    entry = waypoint_walk(
        np.array([[x0 - 2.0, y0], [x0, y0]]), speed_mps=1.0, dt_s=dt_s
    )
    positions = np.empty((len(times), 3))
    walk_mask = times <= walk_in_s
    walk_times = np.minimum(times, entry.duration_s)
    entry_pos = entry.resample(walk_times)
    positions[:, 0] = np.where(walk_mask, entry_pos[:, 0], x0)
    positions[:, 1] = np.where(walk_mask, entry_pos[:, 1], y0)
    positions[:, 2] = _elevation_profile(
        times, transition_start_s, transition_s, z_stand, z_final
    )
    # Small sway while resting keeps the reflector detectable.
    sway = 0.01 * rng.standard_normal((len(times), 2))
    positions[:, :2] += _smooth(sway, 40)
    return Trajectory(times, positions, label)


def walk_trace(
    room: Room,
    rng: np.random.Generator,
    duration_s: float = 30.0,
    dt_s: float = 0.0125,
    torso_z: float = 0.0,
) -> Trajectory:
    """Plain walking (fall-detection negative class)."""
    return random_walk(
        room, rng, duration_s=duration_s, dt_s=dt_s, torso_z=torso_z,
        label="walk",
    )


def sit_on_chair_trace(
    position_xy: np.ndarray,
    rng: np.random.Generator,
    duration_s: float = 30.0,
    dt_s: float = 0.0125,
    torso_z_stand: float = 0.0,
) -> Trajectory:
    """Walk in and sit on a chair: torso drops ~0.4 m over ~1.5 s."""
    return _activity_trace(
        position_xy,
        duration_s,
        dt_s,
        walk_in_s=4.0,
        transition_start_s=6.0,
        transition_s=float(rng.uniform(1.2, 1.8)),
        z_stand=torso_z_stand,
        z_final=torso_z_stand - 0.40,
        label="sit_chair",
        rng=rng,
    )


def sit_on_floor_trace(
    position_xy: np.ndarray,
    rng: np.random.Generator,
    duration_s: float = 30.0,
    dt_s: float = 0.0125,
    torso_z_stand: float = 0.0,
    device_height_m: float = 1.0,
) -> Trajectory:
    """Walk in and sit on the floor: torso ends ~0.3 m above the floor.

    The *descent* is voluntary and slow (~2-3 s) — the property that
    separates it from a fall (Section 6.2).
    """
    return _activity_trace(
        position_xy,
        duration_s,
        dt_s,
        walk_in_s=4.0,
        transition_start_s=6.0,
        transition_s=float(rng.uniform(2.5, 3.5)),
        z_stand=torso_z_stand,
        z_final=-device_height_m + 0.30,
        label="sit_floor",
        rng=rng,
    )


def fall_trace(
    position_xy: np.ndarray,
    rng: np.random.Generator,
    duration_s: float = 30.0,
    dt_s: float = 0.0125,
    torso_z_stand: float = 0.0,
    device_height_m: float = 1.0,
) -> Trajectory:
    """Walk in and fall: torso crashes to ~0.15 m above floor in <0.7 s."""
    return _activity_trace(
        position_xy,
        duration_s,
        dt_s,
        walk_in_s=4.0,
        transition_start_s=6.0,
        transition_s=float(rng.uniform(0.3, 0.55)),
        z_stand=torso_z_stand,
        z_final=-device_height_m + 0.15,
        label="fall",
        rng=rng,
    )
