"""Simulated VICON motion-capture ground truth (paper Section 8a).

The paper validates WiTrack against a VICON system: sub-centimeter
infrared tracking of markers on an instrumented jacket, hat and glove,
valid only inside a 6 x 5 m capture area in direct line of sight of the
ceiling cameras. This module reproduces that measurement instrument:

* marker-level Gaussian noise (sub-centimeter);
* a bounded capture area outside which accuracy degrades;
* the body-center vs reflection-surface *depth calibration*: WiTrack sees
  the body surface, VICON reports the center, so the paper measures each
  person's average center-to-surface depth offline and compensates it
  before computing errors. :class:`DepthCalibration` implements that
  offline procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .body import HumanBody, ReflectionModel
from .motion import Trajectory


@dataclass(frozen=True)
class CaptureArea:
    """The region where the IR cameras are focused (Section 9.1).

    "the VICON IR cameras are set to accurately track the target only
    when she moves in a 6 x 5 m^2 area ... about 2.5 m away from the
    wall."
    """

    x_range: tuple[float, float] = (-3.0, 3.0)
    y_range: tuple[float, float] = (2.8, 7.8)

    def contains(self, point: np.ndarray) -> bool:
        """True when an x-y position is inside the calibrated area."""
        x, y = float(point[0]), float(point[1])
        return (
            self.x_range[0] <= x <= self.x_range[1]
            and self.y_range[0] <= y <= self.y_range[1]
        )


@dataclass
class ViconSystem:
    """The ground-truth instrument.

    Attributes:
        capture_area: calibrated tracking region.
        marker_noise_std_m: in-area position noise (sub-centimeter).
        out_of_area_noise_std_m: degraded accuracy outside the area.
        sample_rate_hz: VICON frame rate.
    """

    capture_area: CaptureArea = field(default_factory=CaptureArea)
    marker_noise_std_m: float = 0.004
    out_of_area_noise_std_m: float = 0.05
    sample_rate_hz: float = 120.0

    def capture(
        self,
        trajectory: Trajectory,
        rng: np.random.Generator,
    ) -> Trajectory:
        """Record a trajectory as the VICON would.

        Returns a new trajectory on the VICON's own clock with marker
        noise applied; samples outside the capture area get the degraded
        noise level (the paper avoids this by keeping subjects inside).
        """
        dt = 1.0 / self.sample_rate_hz
        times = np.arange(0.0, trajectory.duration_s, dt)
        positions = trajectory.resample(times)
        noise = np.empty_like(positions)
        for i, pos in enumerate(positions):
            std = (
                self.marker_noise_std_m
                if self.capture_area.contains(pos)
                else self.out_of_area_noise_std_m
            )
            noise[i] = rng.normal(0.0, std, 3)
        return Trajectory(times, positions + noise, trajectory.label)


@dataclass
class DepthCalibration:
    """Offline center-to-surface depth measurement (Section 8a).

    "we use the VICON to run offline measurements with the person
    standing and having infrared markers around her body at the same
    height as the WiTrack transmit antenna ... we measure the average
    depth of the center from surface for each person."
    """

    num_standing_samples: int = 200

    def measure_depth(
        self, body: HumanBody, rng: np.random.Generator
    ) -> float:
        """Measured average center-to-surface depth for one person (m).

        Simulates the standing calibration: the reflection model produces
        surface samples around a fixed center; the measured depth is the
        mean forward offset.
        """
        model = ReflectionModel(body)
        center = np.array([0.0, 4.0, 0.0])
        centers = np.tile(center, (self.num_standing_samples, 1))
        surface = model.surface_points(centers, 0.0125, rng)
        # Depth is measured along the device direction (-y here).
        return float(np.mean(center[1] - surface[:, 1]))

    def compensate(
        self,
        vicon_centers: np.ndarray,
        depth_m: float,
        device_position: np.ndarray | None = None,
    ) -> np.ndarray:
        """Shift VICON centers onto the expected reflection surface.

        Moves each center ``depth_m`` toward the device in the x-y plane,
        producing the position WiTrack is expected to report. Euclidean
        error against WiTrack's output is then meaningful (Section 8a).
        """
        centers = np.asarray(vicon_centers, dtype=np.float64)
        device = (
            np.zeros(3)
            if device_position is None
            else np.asarray(device_position, dtype=np.float64)
        )
        toward = device[None, :2] - centers[:, :2]
        dist = np.linalg.norm(toward, axis=1, keepdims=True)
        dist = np.where(dist < 1e-9, 1.0, dist)
        out = centers.copy()
        out[:, :2] += depth_m * toward / dist
        return out
