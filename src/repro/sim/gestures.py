"""Arm-pointing gesture kinematics (paper Section 6.1).

The gesture: "the user starts from a state where her arm is rested next
to her body. She raises the arm in a direction of her choice ... and then
drops her hand to the first position", with ~1 s of stillness before,
between, and after the lift and drop phases (the segmentation in Section
6.1 depends on those silences).

The hand trajectory is what the radio sees during the gesture — the rest
of the body is static and vanishes under background subtraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.vec import unit


@dataclass(frozen=True)
class PointingGesture:
    """One lift-hold-drop pointing gesture.

    Attributes:
        body_position: standing body-center position, shape ``(3,)``.
        direction: unit pointing direction (3D) of the extended arm.
        arm_length_m: shoulder-to-hand distance when extended.
        lift_duration_s: duration of the raise phase.
        hold_duration_s: stillness between raise and drop.
        drop_duration_s: duration of the drop phase.
        lead_in_s: stillness before the raise (segmentation needs >= 1 s).
        lead_out_s: stillness after the drop.
        shoulder_offset: shoulder position relative to body center.
    """

    body_position: np.ndarray
    direction: np.ndarray
    arm_length_m: float = 0.68
    lift_duration_s: float = 0.8
    hold_duration_s: float = 1.2
    drop_duration_s: float = 0.8
    lead_in_s: float = 1.5
    lead_out_s: float = 1.5
    shoulder_offset: np.ndarray = field(
        default_factory=lambda: np.array([0.18, 0.0, 0.45])
    )

    def __post_init__(self) -> None:
        d = np.asarray(self.direction, dtype=np.float64)
        if np.linalg.norm(d) < 1e-9:
            raise ValueError("pointing direction must be non-zero")

    @property
    def duration_s(self) -> float:
        """Total gesture duration including lead-in/out stillness."""
        return (
            self.lead_in_s
            + self.lift_duration_s
            + self.hold_duration_s
            + self.drop_duration_s
            + self.lead_out_s
        )

    @property
    def shoulder(self) -> np.ndarray:
        """Absolute shoulder position."""
        return np.asarray(self.body_position, dtype=np.float64) + np.asarray(
            self.shoulder_offset
        )

    @property
    def rest_hand(self) -> np.ndarray:
        """Hand position with the arm rested next to the body."""
        return self.shoulder + np.array([0.05, 0.02, -self.arm_length_m])

    @property
    def extended_hand(self) -> np.ndarray:
        """Hand position with the arm extended along the direction."""
        return self.shoulder + self.arm_length_m * unit(self.direction)

    def hand_positions(self, times_s: np.ndarray) -> np.ndarray:
        """Hand trajectory at the given times (gesture-local clock).

        The raise and drop follow a smoothstep arc between the rest and
        extended positions; lead-in/hold/lead-out phases are static.
        Returns shape ``(n, 3)``.
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        t1 = self.lead_in_s
        t2 = t1 + self.lift_duration_s
        t3 = t2 + self.hold_duration_s
        t4 = t3 + self.drop_duration_s
        rest = self.rest_hand
        ext = self.extended_hand

        out = np.empty((len(times_s), 3))
        for i, t in enumerate(times_s):
            if t < t1:
                frac = 0.0
            elif t < t2:
                u = (t - t1) / self.lift_duration_s
                frac = u * u * (3.0 - 2.0 * u)
            elif t < t3:
                frac = 1.0
            elif t < t4:
                u = (t - t3) / self.drop_duration_s
                u = 1.0 - u
                frac = u * u * (3.0 - 2.0 * u)
            else:
                frac = 0.0
            out[i] = rest + frac * (ext - rest)
        return out

    def hand_is_moving(self, times_s: np.ndarray) -> np.ndarray:
        """Boolean mask of times during the lift or drop phases."""
        times_s = np.asarray(times_s, dtype=np.float64)
        t1 = self.lead_in_s
        t2 = t1 + self.lift_duration_s
        t3 = t2 + self.hold_duration_s
        t4 = t3 + self.drop_duration_s
        lifting = (times_s >= t1) & (times_s < t2)
        dropping = (times_s >= t3) & (times_s < t4)
        return lifting | dropping

    def true_direction(self) -> np.ndarray:
        """Ground-truth pointing direction (unit vector)."""
        return unit(np.asarray(self.extended_hand) - np.asarray(self.rest_hand))


def pointing_session(
    body_position: np.ndarray,
    rng: np.random.Generator,
    azimuth_range_deg: tuple[float, float] = (-60.0, 60.0),
    elevation_range_deg: tuple[float, float] = (-10.0, 45.0),
) -> PointingGesture:
    """Draw a random pointing gesture like the Section 9.4 protocol.

    Subjects "stand in random different locations ... and point in a
    direction of their choice". Directions are confined to the frontal
    hemisphere the instrumented appliances occupy.
    """
    az = np.radians(rng.uniform(*azimuth_range_deg))
    el = np.radians(rng.uniform(*elevation_range_deg))
    direction = np.array(
        [
            np.sin(az) * np.cos(el),
            np.cos(az) * np.cos(el),
            np.sin(el),
        ]
    )
    return PointingGesture(
        body_position=np.asarray(body_position, dtype=np.float64),
        direction=direction,
        lift_duration_s=float(rng.uniform(0.6, 1.0)),
        hold_duration_s=float(rng.uniform(1.0, 1.5)),
        drop_duration_s=float(rng.uniform(0.6, 1.0)),
    )
