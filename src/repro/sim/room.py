"""Room geometry: walls, occlusion, and the through-wall scenario.

The paper's evaluation room is the VICON room: "no windows ... 6-inch
hollow walls supported by steel frames with sheet rock on top, which is a
standard setup for office buildings" (Section 9.1). The device sits
either behind the front wall (through-wall) or inside the room next to
that wall (line-of-sight). The room frame matches the device frame: the
antenna T is in the x-z plane at y=0 and the room extends in +y.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.vec import Vec3
from ..rf.propagation import Wall


@dataclass(frozen=True)
class Room:
    """A rectangular room observed by the device.

    Attributes:
        width_m: extent along x, centered on the device axis.
        depth_m: extent along y, starting at ``front_wall_y``.
        height_m: floor-to-ceiling height; the floor is at device z =
            ``-device_height`` (the device hangs at waist height).
        front_wall_y: y position of the wall between device and room;
            ``None`` means line-of-sight (device inside the room).
        wall_attenuation_db: one-traversal attenuation of the front wall.
        side_wall_reflection_loss_db: loss of one bounce off a side wall,
            used by the dynamic-multipath image paths.
        device_height_m: height of the antenna plane above the floor.
    """

    width_m: float = 8.0
    depth_m: float = 12.0
    height_m: float = 2.7
    front_wall_y: float | None = 0.3
    wall_attenuation_db: float = 6.5
    side_wall_reflection_loss_db: float = 6.0
    device_height_m: float = 1.0
    #: RMS excess round-trip delay (m) from wavefront distortion inside
    #: the wall (sheet rock over steel studs is electrically
    #: inhomogeneous, so the traversal delay varies with the crossing
    #: point). Zero in line-of-sight rooms; this is the physical origin
    #: of the paper's LOS-vs-through-wall accuracy gap (Section 9.1).
    wall_tof_jitter_std_m: float = 0.022

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.depth_m <= 0 or self.height_m <= 0:
            raise ValueError("room dimensions must be positive")

    @property
    def is_through_wall(self) -> bool:
        """True when a front wall separates the device from the room."""
        return self.front_wall_y is not None

    @property
    def floor_z(self) -> float:
        """z of the floor in the device frame."""
        return -self.device_height_m

    @property
    def walls(self) -> list[Wall]:
        """Attenuating wall planes (only the front wall attenuates)."""
        if self.front_wall_y is None:
            return []
        return [
            Wall(
                point=Vec3(0.0, self.front_wall_y, 0.0),
                normal=Vec3(0.0, 1.0, 0.0),
                attenuation_db=self.wall_attenuation_db,
            )
        ]

    @property
    def bounce_planes(self) -> list[tuple[np.ndarray, np.ndarray, str]]:
        """Planes that generate dynamic multipath images.

        Side walls, the back wall, and the ceiling; the floor is excluded
        because floor bounces are blocked by the body itself at waist-high
        antenna elevations.
        """
        half = self.width_m / 2.0
        back_y = (self.front_wall_y or 0.0) + self.depth_m
        ceiling_z = self.height_m - self.device_height_m
        return [
            (Vec3(-half, 0.0, 0.0), Vec3(1.0, 0.0, 0.0), "left"),
            (Vec3(+half, 0.0, 0.0), Vec3(-1.0, 0.0, 0.0), "right"),
            (Vec3(0.0, back_y, 0.0), Vec3(0.0, -1.0, 0.0), "back"),
            (Vec3(0.0, 0.0, ceiling_z), Vec3(0.0, 0.0, -1.0), "ceiling"),
        ]

    def contains(self, point: np.ndarray, margin_m: float = 0.0) -> bool:
        """True if an x-y position is inside the room (z ignored)."""
        x, y = float(point[0]), float(point[1])
        half = self.width_m / 2.0 - margin_m
        y_lo = (self.front_wall_y or 0.0) + margin_m
        y_hi = (self.front_wall_y or 0.0) + self.depth_m - margin_m
        return -half <= x <= half and y_lo <= y <= y_hi

    def clamp(self, point: np.ndarray, margin_m: float = 0.3) -> np.ndarray:
        """Clamp an x-y position into the walkable interior."""
        out = np.asarray(point, dtype=np.float64).copy()
        half = self.width_m / 2.0 - margin_m
        y_lo = (self.front_wall_y or 0.0) + margin_m
        y_hi = (self.front_wall_y or 0.0) + self.depth_m - margin_m
        out[0] = np.clip(out[0], -half, half)
        out[1] = np.clip(out[1], y_lo, y_hi)
        return out


def through_wall_room(**overrides: object) -> Room:
    """The paper's default setting: device behind the VICON-room wall."""
    defaults: dict[str, object] = {"front_wall_y": 0.3}
    defaults.update(overrides)
    return Room(**defaults)  # type: ignore[arg-type]


def line_of_sight_room(**overrides: object) -> Room:
    """Device inside the room, next to the wall (Fig. 8a setting)."""
    defaults: dict[str, object] = {"front_wall_y": None}
    defaults.update(overrides)
    return Room(**defaults)  # type: ignore[arg-type]
