"""Elderly fall monitoring application (paper Section 1, application 2).

"Current solutions ... include inertial sensors which old people tend to
forget to wear, or cameras which infringe on privacy ... In contrast,
WiTrack does not require the user to wear any device and protects her
privacy much better than a camera."

:class:`FallMonitor` wraps the tracking stack and the Section 6.2
detector into the application a deployment would run: feed it recorded
sessions (or stream them), get back fall alerts with timestamps. Since
the serving engine landed, each analyzed session is a single-session
view over the same :class:`~repro.serve.ServingEngine` the realtime
apps and the ``repro serve`` multiplexer run — a fall-monitoring
deployment watching many rooms is just one engine with many admitted
sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, default_config
from ..core.falls import FallDetector
from ..geometry.antennas import AntennaArray
from ..serve import ServingEngine, single_session
from ..sim.room import Room


@dataclass(frozen=True)
class FallAlert:
    """An emitted fall alert.

    Attributes:
        time_s: session time at which the elevation settled at the floor.
        final_elevation_m: settled elevation above the floor.
        drop_duration_s: measured duration of the drop.
    """

    time_s: float
    final_elevation_m: float
    drop_duration_s: float


class FallMonitor:
    """Track a session and raise an alert if the person fell.

    Args:
        room: deployment room (provides the floor level).
        config: system configuration.
        detector: fall-classification override.
        array: antenna array override.
    """

    def __init__(
        self,
        room: Room,
        config: SystemConfig | None = None,
        detector: FallDetector | None = None,
        array: AntennaArray | None = None,
    ) -> None:
        self.room = room
        self.config = config or default_config()
        self.detector = detector or FallDetector()
        self.array = array

    def analyze_session(
        self, spectra: np.ndarray, range_bin_m: float
    ) -> FallAlert | None:
        """Process one recorded session; return an alert if it was a fall.

        The session is streamed through a fresh single-session view of
        the serving engine — the same stage graph every other consumer
        runs, frame-at-a-time as a live monitor would see it.

        Args:
            spectra: per-antenna sweep spectra ``(n_rx, n_sweeps, n_bins)``.
            range_bin_m: round-trip distance per bin.

        Returns:
            A :class:`FallAlert`, or None for non-fall activity.
        """
        engine = ServingEngine()
        session = engine.admit(
            single_session(self.config, range_bin_m, array=self.array)
        )
        spectra = np.asarray(spectra)
        spf = self.config.pipeline.sweeps_per_frame
        for f in range(spectra.shape[1] // spf):
            engine.submit(session, spectra[:, f * spf : (f + 1) * spf, :])
        engine.drain()
        track = engine.close(session)
        if track.positions is None:
            raise ValueError(
                "session too short: nothing came out of the pipeline"
            )
        elevation = track.positions[:, 2] - self.room.floor_z
        verdict = self.detector.classify(track.frame_times_s, elevation)
        if not verdict.is_fall:
            return None
        settle_time = self._settle_time(track.frame_times_s, elevation)
        return FallAlert(
            time_s=settle_time,
            final_elevation_m=verdict.final_elevation_m,
            drop_duration_s=verdict.drop_duration_s,
        )

    @staticmethod
    def _settle_time(times_s: np.ndarray, elevation: np.ndarray) -> float:
        """First time the elevation reaches its settled low band."""
        finite = np.isfinite(elevation)
        t, e = times_s[finite], elevation[finite]
        low = np.percentile(e, 10)
        idx = np.where(e <= low + 0.1)[0]
        return float(t[idx[0]]) if idx.size else float(t[-1])
