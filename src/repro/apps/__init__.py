"""The paper's three applications built on the tracking primitive.

* :mod:`realtime` — streaming 3D tracking with the <75 ms latency budget
  of Section 7;
* :mod:`fall_monitor` — elderly fall detection (Section 1, app 2);
* :mod:`appliances` — pointing-based appliance control with a simulated
  Insteon-style command bus (Section 6.1).
"""

from .realtime import LatencyReport, RealtimeTracker
from .fall_monitor import FallAlert, FallMonitor
from .appliances import (
    Appliance,
    ApplianceRegistry,
    InsteonBus,
    PointAndControl,
)

__all__ = [
    "LatencyReport",
    "RealtimeTracker",
    "FallAlert",
    "FallMonitor",
    "Appliance",
    "ApplianceRegistry",
    "InsteonBus",
    "PointAndControl",
]
