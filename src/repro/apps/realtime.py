"""Streaming real-time tracking with latency accounting (Section 7).

"Software processing has a total delay less than 75 ms between when the
signal is received and a corresponding 3D location is output."

:class:`RealtimeTracker` consumes sweeps one frame (5 sweeps) at a time
and emits one 3D fix per frame. Since the unified engine landed it is a
thin wrapper around the single-person
:class:`~repro.pipeline.Pipeline` in streaming mode — the identical
stage objects the batch :class:`~repro.core.tracker.WiTrack` drives
vectorized, so the realtime app can no longer drift from the evaluated
pipeline. Wall-clock processing time is recorded per frame so the
latency benchmark can check the 75 ms budget.

:class:`RealtimeMultiTracker` is the K-person counterpart: the same
wrapper around :class:`~repro.multi.tracker.MultiWiTrack`'s pipeline
(successive cancellation + track association), still inside the same
latency budget.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, default_config
from ..core.localize import make_solver
from ..geometry.antennas import AntennaArray, t_array
from ..multi.tracker import MultiWiTrack
from ..multi.tracks import MultiTrack, TrackManagerConfig
from ..pipeline.multi import Associate
from ..pipeline.runner import LatencyReport, single_person_pipeline
from ..sim.room import Room

__all__ = ["LatencyReport", "RealtimeTracker", "RealtimeMultiTracker"]


class RealtimeTracker:
    """Frame-by-frame streaming 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
    ) -> None:
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.solver = make_solver(self.array)
        self.range_bin_m = range_bin_m
        self.pipeline = single_person_pipeline(
            self.config, range_bin_m, solver=self.solver
        )

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output fix."""
        return self.config.pipeline.sweeps_per_frame

    @property
    def latency(self) -> LatencyReport:
        """Per-frame processing-time statistics."""
        return self.pipeline.latency

    def process_frame(self, sweep_block: np.ndarray) -> np.ndarray:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            3D position, shape ``(3,)`` (NaN until localizable).
        """
        frame = self.pipeline.push(sweep_block)
        if frame is None or frame.position is None:
            return np.full(3, np.nan)
        return frame.position

    def run(self, spectra: np.ndarray) -> np.ndarray:
        """Stream a whole recording; returns ``(n_frames, 3)`` positions.

        The first row is NaN: it primes the background subtractor.
        """
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, n_bins = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        positions = np.empty((n_frames, 3))
        for f in range(n_frames):
            block = spectra[:, f * spf : (f + 1) * spf, :]
            positions[f] = self.process_frame(block)
        return positions


class RealtimeMultiTracker:
    """Frame-by-frame streaming multi-person 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
        max_people: upper bound K on concurrently tracked people.
        room: when given, tightens ghost gating to the room's volume.
        track_config: track lifecycle tunables.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
        max_people: int = 3,
        room: Room | None = None,
        track_config: TrackManagerConfig | None = None,
    ) -> None:
        self._tracker = MultiWiTrack(
            config,
            array=array,
            max_people=max_people,
            room=room,
            track_config=track_config,
        )
        self.config = self._tracker.config
        self.array = self._tracker.array
        self.range_bin_m = range_bin_m
        self.pipeline = self._tracker.pipeline(range_bin_m)

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output frame."""
        return self.config.pipeline.sweeps_per_frame

    @property
    def max_people(self) -> int:
        """Upper bound on concurrently tracked people."""
        return self._tracker.max_people

    @property
    def latency(self) -> LatencyReport:
        """Per-frame processing-time statistics."""
        return self.pipeline.latency

    @property
    def manager(self):
        """The shared :class:`~repro.multi.tracks.TrackManager`."""
        return self.pipeline.stage(Associate).manager

    def process_frame(
        self, sweep_block: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            ``(track_id, position)`` for every currently reported
            person (empty until the first track confirms).
        """
        frame = self.pipeline.push(sweep_block)
        if frame is None or frame.tracks is None:
            return []
        return frame.tracks

    def run(self, spectra: np.ndarray) -> MultiTrack:
        """Stream a recording; returns ALL tracks accumulated so far.

        Timestamps cover every frame this tracker has ever processed,
        so interleaving :meth:`process_frame` calls and repeated
        :meth:`run` calls (continued streaming, as with
        :class:`RealtimeTracker`) keeps the history consistent.
        """
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, _ = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        for f in range(n_frames):
            self.process_frame(spectra[:, f * spf : (f + 1) * spf, :])
        manager = self.manager
        frame_duration = spf * self.config.fmcw.sweep_duration_s
        # The priming frame emits nothing, so processed frame i lands at
        # (i + 1.5) frame durations — the batch timestamp convention.
        times = (np.arange(manager.num_frames) + 1.5) * frame_duration
        return manager.result(times)
