"""Streaming real-time tracking with latency accounting (Section 7).

"Software processing has a total delay less than 75 ms between when the
signal is received and a corresponding 3D location is output."

:class:`RealtimeTracker` consumes sweeps one frame (5 sweeps) at a time,
keeping online state per antenna — previous averaged frame for background
subtraction, outlier gate, hold-last interpolation, and a running Kalman
filter — and emits one 3D fix per frame. Wall-clock processing time is
recorded per frame so the latency benchmark can check the 75 ms budget.

:class:`RealtimeMultiTracker` is the K-person counterpart: per frame it
runs successive echo cancellation on each antenna's background-subtracted
row, feeds the candidate TOF sets to the shared
:class:`~repro.multi.TrackManager`, and emits every confirmed person's
identity and 3D position — still inside the same latency budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig, default_config
from ..core.contour import track_bottom_contour
from ..core.kalman import KalmanFilter1D
from ..core.localize import make_solver
from ..geometry.antennas import AntennaArray, t_array
from ..multi.cancellation import successive_contours
from ..multi.tracker import MultiWiTrack
from ..multi.tracks import MultiTrack, TrackManagerConfig
from ..sim.room import Room


@dataclass
class LatencyReport:
    """Per-frame processing-time statistics.

    Attributes:
        latencies_s: wall-clock processing time per frame.
    """

    latencies_s: list[float] = field(default_factory=list)

    @property
    def median_s(self) -> float:
        """Median per-frame latency."""
        return float(np.median(self.latencies_s))

    @property
    def p95_s(self) -> float:
        """95th-percentile per-frame latency."""
        return float(np.percentile(self.latencies_s, 95))

    @property
    def max_s(self) -> float:
        """Worst-case per-frame latency."""
        return float(np.max(self.latencies_s))

    def within_budget(self, budget_s: float = 0.075) -> bool:
        """True when the 95th percentile meets the paper's budget."""
        return self.p95_s <= budget_s


class _AntennaState:
    """Online per-antenna pipeline state."""

    def __init__(self, config: SystemConfig, range_bin_m: float) -> None:
        pipeline = config.pipeline
        self.range_bin_m = range_bin_m
        self.threshold_db = pipeline.contour_threshold_db
        self.max_jump_m = pipeline.max_jump_m
        self.confirmation = pipeline.jump_confirmation_frames
        self.interpolate = pipeline.interpolate_when_static
        self.previous_frame: np.ndarray | None = None
        self.last_value: float | None = None
        self.frames_since_accept = 1
        self.pending: list[float] = []
        self.kalman = KalmanFilter1D(
            pipeline.sweeps_per_frame * config.fmcw.sweep_duration_s,
            process_noise=pipeline.kalman_process_noise,
            measurement_noise=pipeline.kalman_measurement_noise,
        )

    def process_frame(self, frame: np.ndarray) -> float:
        """One averaged frame in, one smoothed round-trip distance out."""
        if self.previous_frame is None:
            self.previous_frame = frame
            return float("nan")
        diff = frame - self.previous_frame
        self.previous_frame = frame
        power = np.abs(diff[None, :]) ** 2
        contour = track_bottom_contour(
            power, self.range_bin_m, threshold_db=self.threshold_db
        )
        raw = float(contour.round_trip_m[0])
        accepted = self._gate(raw)
        if np.isnan(accepted) and self.interpolate and self.last_value is not None:
            accepted = self.last_value
        if np.isnan(accepted):
            return (
                self.kalman.predict() if self.kalman.initialized else float("nan")
            )
        return self.kalman.update(accepted)

    def _gate(self, raw: float) -> float:
        """Online version of the Section 4.4 outlier rejection."""
        if np.isnan(raw):
            self.frames_since_accept += 1
            return float("nan")
        if self.last_value is None:
            self.last_value = raw
            self.frames_since_accept = 1
            return raw
        allowed = self.max_jump_m * self.frames_since_accept
        if abs(raw - self.last_value) <= allowed:
            self.last_value = raw
            self.frames_since_accept = 1
            self.pending.clear()
            return raw
        self.pending = [
            v for v in self.pending if abs(v - raw) <= 2 * self.max_jump_m
        ]
        self.pending.append(raw)
        self.frames_since_accept += 1
        if len(self.pending) >= self.confirmation:
            self.last_value = raw
            self.frames_since_accept = 1
            self.pending.clear()
            return raw
        return float("nan")


class RealtimeTracker:
    """Frame-by-frame streaming 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
    ) -> None:
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.solver = make_solver(self.array)
        self.range_bin_m = range_bin_m
        self._states = [
            _AntennaState(self.config, range_bin_m)
            for _ in range(self.array.num_receivers)
        ]
        self.latency = LatencyReport()

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output fix."""
        return self.config.pipeline.sweeps_per_frame

    def process_frame(self, sweep_block: np.ndarray) -> np.ndarray:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            3D position, shape ``(3,)`` (NaN until localizable).
        """
        start = time.perf_counter()
        averaged = sweep_block.mean(axis=1)
        k = np.array(
            [
                state.process_frame(averaged[i])
                for i, state in enumerate(self._states)
            ]
        )
        if np.any(np.isnan(k)):
            position = np.full(3, np.nan)
        else:
            position = self.solver.solve_one(k)
        self.latency.latencies_s.append(time.perf_counter() - start)
        return position

    def run(self, spectra: np.ndarray) -> np.ndarray:
        """Stream a whole recording; returns ``(n_frames, 3)`` positions."""
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, n_bins = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        positions = np.empty((n_frames, 3))
        for f in range(n_frames):
            block = spectra[:, f * spf : (f + 1) * spf, :]
            positions[f] = self.process_frame(block)
        return positions


class RealtimeMultiTracker:
    """Frame-by-frame streaming multi-person 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
        max_people: upper bound K on concurrently tracked people.
        room: when given, tightens ghost gating to the room's volume.
        track_config: track lifecycle tunables.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
        max_people: int = 3,
        room: Room | None = None,
        track_config: TrackManagerConfig | None = None,
    ) -> None:
        self._pipeline = MultiWiTrack(
            config,
            array=array,
            max_people=max_people,
            room=room,
            track_config=track_config,
        )
        self.config = self._pipeline.config
        self.array = self._pipeline.array
        self.range_bin_m = range_bin_m
        self.manager = self._pipeline.make_manager()
        self._previous: list[np.ndarray | None] = [
            None for _ in range(self.array.num_receivers)
        ]
        self.latency = LatencyReport()

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output frame."""
        return self.config.pipeline.sweeps_per_frame

    @property
    def max_people(self) -> int:
        """Upper bound on concurrently tracked people."""
        return self._pipeline.max_people

    def process_frame(
        self, sweep_block: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            ``(track_id, position)`` for every currently reported
            person (empty until the first track confirms).
        """
        start = time.perf_counter()
        averaged = sweep_block.mean(axis=1)
        n_rx = averaged.shape[0]
        tof_sets: list[np.ndarray] = []
        power_sets: list[np.ndarray] = []
        empty = np.full(self._pipeline.num_candidates, np.nan)
        for i in range(n_rx):
            previous = self._previous[i]
            self._previous[i] = averaged[i]
            if previous is None:
                tof_sets.append(empty)
                power_sets.append(empty)
                continue
            power = np.abs(averaged[i] - previous)[None, :] ** 2
            contours = successive_contours(
                power,
                self.range_bin_m,
                max_targets=self._pipeline.num_candidates,
            )
            tof_sets.append(contours.round_trips_m[:, 0])
            power_sets.append(contours.peak_powers[:, 0])
        tracks = self.manager.step(tof_sets, power_sets)
        output = [(t.track_id, t.position.copy()) for t in tracks]
        self.latency.latencies_s.append(time.perf_counter() - start)
        return output

    def run(self, spectra: np.ndarray) -> MultiTrack:
        """Stream a recording; returns ALL tracks accumulated so far.

        Timestamps cover every frame this tracker has ever processed,
        so interleaving :meth:`process_frame` calls and repeated
        :meth:`run` calls (continued streaming, as with
        :class:`RealtimeTracker`) keeps the history consistent.
        """
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, _ = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        for f in range(n_frames):
            self.process_frame(spectra[:, f * spf : (f + 1) * spf, :])
        frame_duration = spf * self.config.fmcw.sweep_duration_s
        times = (np.arange(self.manager.num_frames) + 0.5) * frame_duration
        return self.manager.result(times)
