"""Streaming real-time tracking with latency accounting (Section 7).

"Software processing has a total delay less than 75 ms between when the
signal is received and a corresponding 3D location is output."

:class:`RealtimeTracker` consumes sweeps one frame (5 sweeps) at a time
and emits one 3D fix per frame. Since the serving engine landed it is a
thin *single-session view* over :class:`~repro.serve.ServingEngine` —
the same engine that multiplexes N concurrent sessions through one
vectorized pipeline. There is no second code path: an N=1 lockstep tick
is bitwise today's stream (pinned by ``tests/test_serve.py``), so the
realtime app can never drift from either the batch-evaluated pipeline
or the serving deployment. Per-frame latency (enqueue to emit, queue
wait included) is recorded per session so the latency benchmark can
check the 75 ms budget.

:class:`RealtimeMultiTracker` is the K-person counterpart: the same
single-session view over a multi-person serving cohort (successive
cancellation + track association), still inside the same latency
budget.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, default_config
from ..geometry.antennas import AntennaArray, t_array
from ..multi.tracks import MultiTrack, TrackManagerConfig
from ..pipeline.runner import LatencyReport
from ..pipeline.stages import Localize
from ..serve import ServingEngine, multi_session, single_session
from ..sim.room import Room

__all__ = ["LatencyReport", "RealtimeTracker", "RealtimeMultiTracker"]


class _SingleSessionView:
    """Shared plumbing: one engine, one admitted session."""

    def __init__(self, spec) -> None:
        self.engine = ServingEngine()
        self.session = self.engine.admit(spec)
        #: The cohort's session-vectorized pipeline (this session is its
        #: only occupant here; the serving engine shares it among many).
        self.pipeline = self.session.cohort.pipeline

    @property
    def latency(self) -> LatencyReport:
        """Per-frame enqueue-to-emit latency of this session."""
        return self.session.latency

    def _advance(self, sweep_block: np.ndarray) -> bool:
        """Feed one frame and tick; True when a new output row emitted."""
        emitted_before = self.session.frames_out
        self.engine.submit(self.session, sweep_block)
        self.engine.tick()
        return self.session.frames_out > emitted_before


class RealtimeTracker(_SingleSessionView):
    """Frame-by-frame streaming 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
    ) -> None:
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.range_bin_m = range_bin_m
        super().__init__(
            single_session(self.config, range_bin_m, array=array)
        )

    @property
    def solver(self):
        """The live localization solver inside the pipeline."""
        return self.pipeline.stage(Localize).solver

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output fix."""
        return self.config.pipeline.sweeps_per_frame

    def process_frame(self, sweep_block: np.ndarray) -> np.ndarray:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            3D position, shape ``(3,)`` (NaN until localizable).
        """
        if not self._advance(sweep_block):
            return np.full(3, np.nan)
        position = self.session.last_position
        if position is None:
            return np.full(3, np.nan)
        return position

    def run(self, spectra: np.ndarray) -> np.ndarray:
        """Stream a whole recording; returns ``(n_frames, 3)`` positions.

        The first row is NaN: it primes the background subtractor.
        """
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, n_bins = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        positions = np.empty((n_frames, 3))
        for f in range(n_frames):
            block = spectra[:, f * spf : (f + 1) * spf, :]
            positions[f] = self.process_frame(block)
        return positions


class RealtimeMultiTracker(_SingleSessionView):
    """Frame-by-frame streaming multi-person 3D tracker.

    Args:
        config: system configuration.
        range_bin_m: round-trip distance per spectrum bin.
        array: antenna array override.
        max_people: upper bound K on concurrently tracked people.
        room: when given, tightens ghost gating to the room's volume.
        track_config: track lifecycle tunables.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        range_bin_m: float = 0.1774,
        array: AntennaArray | None = None,
        max_people: int = 3,
        room: Room | None = None,
        track_config: TrackManagerConfig | None = None,
    ) -> None:
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.range_bin_m = range_bin_m
        self._max_people = max_people
        super().__init__(
            multi_session(
                self.config,
                range_bin_m,
                array=array,
                max_people=max_people,
                room=room,
                track_config=track_config,
            )
        )

    @property
    def sweeps_per_frame(self) -> int:
        """Sweeps consumed per output frame."""
        return self.config.pipeline.sweeps_per_frame

    @property
    def max_people(self) -> int:
        """Upper bound on concurrently tracked people."""
        return self._max_people

    @property
    def manager(self):
        """This session's :class:`~repro.multi.tracks.TrackManager`."""
        return self.engine.track_manager(self.session)

    def process_frame(
        self, sweep_block: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Process one frame worth of sweeps for all antennas.

        Args:
            sweep_block: shape ``(n_rx, sweeps_per_frame, n_bins)``.

        Returns:
            ``(track_id, position)`` for every currently reported
            person (empty until the first track confirms).
        """
        if not self._advance(sweep_block):
            return []
        return self.session.last_tracks or []

    def run(self, spectra: np.ndarray) -> MultiTrack:
        """Stream a recording; returns ALL tracks accumulated so far.

        Timestamps cover every frame this tracker has ever processed,
        so interleaving :meth:`process_frame` calls and repeated
        :meth:`run` calls (continued streaming, as with
        :class:`RealtimeTracker`) keeps the history consistent.
        """
        spectra = np.asarray(spectra)
        n_rx, n_sweeps, _ = spectra.shape
        if n_rx != self.array.num_receivers:
            raise ValueError("antenna count mismatch")
        spf = self.sweeps_per_frame
        n_frames = n_sweeps // spf
        for f in range(n_frames):
            self.process_frame(spectra[:, f * spf : (f + 1) * spf, :])
        manager = self.manager
        frame_duration = spf * self.config.fmcw.sweep_duration_s
        # The priming frame emits nothing, so processed frame i lands at
        # (i + 1.5) frame durations — the batch timestamp convention.
        times = (np.arange(manager.num_frames) + 1.5) * frame_duration
        return manager.result(times)
