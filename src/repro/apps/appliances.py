"""Pointing-based appliance control (paper Section 6.1).

"We created a setup where the user can control the operation mode of a
device or appliance by pointing at it. Based on the current 3D position
of the user and the direction of her hand, WiTrack automatically
identifies the desired appliance from a small set of appliances that we
instrumented (lamp, computer screen, automatic shades) ... WiTrack
issues a command via Insteon home drivers to control the devices."

The Insteon home drivers are simulated by :class:`InsteonBus`: a command
log with per-device on/off state, which the examples and tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pointing import PointingResult
from ..geometry.vec import angle_between_deg, unit


@dataclass(frozen=True)
class Appliance:
    """An instrumented device at a known position.

    Attributes:
        name: device label ("lamp", "screen", "shades", ...).
        position: device position in the device frame, shape ``(3,)``.
        insteon_id: address on the simulated Insteon bus.
    """

    name: str
    position: np.ndarray
    insteon_id: str


@dataclass
class InsteonBus:
    """Simulated Insteon home-automation driver.

    Tracks per-device on/off state and logs every issued command, which
    is what the paper's demo instrumentation amounts to ("a basic mode
    change (turn on or turn off)").
    """

    states: dict[str, bool] = field(default_factory=dict)
    command_log: list[tuple[str, str]] = field(default_factory=list)

    def toggle(self, insteon_id: str) -> bool:
        """Flip a device's mode; returns the new state."""
        new_state = not self.states.get(insteon_id, False)
        self.states[insteon_id] = new_state
        self.command_log.append((insteon_id, "on" if new_state else "off"))
        return new_state

    def state_of(self, insteon_id: str) -> bool:
        """Current on/off state of a device."""
        return self.states.get(insteon_id, False)


class ApplianceRegistry:
    """The set of instrumented appliances and their geometry."""

    def __init__(self, appliances: list[Appliance]) -> None:
        if not appliances:
            raise ValueError("registry needs at least one appliance")
        names = [a.name for a in appliances]
        if len(set(names)) != len(names):
            raise ValueError("appliance names must be unique")
        self.appliances = list(appliances)

    def __len__(self) -> int:
        return len(self.appliances)

    def angular_offsets_deg(
        self,
        origin: np.ndarray,
        direction: np.ndarray,
        elevation_weight: float = 0.35,
    ) -> list[tuple[Appliance, float]]:
        """Weighted angle between the pointing ray and each bearing.

        Azimuth dominates the score: appliances are separated around the
        room, while the gesture's elevation is both noisier (z error is
        geometrically amplified) and biased (the lift starts at the hip,
        not the shoulder). ``elevation_weight`` down-weights the
        elevation mismatch accordingly.
        """
        direction = unit(np.asarray(direction, dtype=np.float64))
        az_dir = np.degrees(np.arctan2(direction[0], direction[1]))
        el_dir = np.degrees(
            np.arcsin(np.clip(direction[2], -1.0, 1.0))
        )
        out = []
        for appliance in self.appliances:
            bearing = unit(np.asarray(appliance.position) - np.asarray(origin))
            az = np.degrees(np.arctan2(bearing[0], bearing[1]))
            el = np.degrees(np.arcsin(np.clip(bearing[2], -1.0, 1.0)))
            d_az = (az_dir - az + 180.0) % 360.0 - 180.0
            d_el = el_dir - el
            score = float(np.hypot(d_az, elevation_weight * d_el))
            out.append((appliance, score))
        return out

    def select(
        self,
        origin: np.ndarray,
        direction: np.ndarray,
        max_offset_deg: float = 30.0,
    ) -> Appliance | None:
        """The appliance the ray points at, or None if nothing is close.

        The winner must score within ``max_offset_deg``; ties go to the
        smallest weighted angular offset.
        """
        offsets = self.angular_offsets_deg(origin, direction)
        appliance, best = min(offsets, key=lambda pair: pair[1])
        return appliance if best <= max_offset_deg else None


def default_registry() -> ApplianceRegistry:
    """The paper's demo set: lamp, computer screen, automatic shades."""
    return ApplianceRegistry(
        [
            Appliance("lamp", np.array([-2.5, 6.0, 0.3]), "insteon-01"),
            Appliance("screen", np.array([0.5, 7.5, 0.4]), "insteon-02"),
            Appliance("shades", np.array([3.0, 5.5, 0.9]), "insteon-03"),
        ]
    )


class PointAndControl:
    """The end-to-end pointing application.

    Args:
        registry: instrumented appliances.
        bus: simulated Insteon driver.
        max_offset_deg: selection tolerance around the pointing ray.
    """

    def __init__(
        self,
        registry: ApplianceRegistry | None = None,
        bus: InsteonBus | None = None,
        max_offset_deg: float = 30.0,
    ) -> None:
        self.registry = registry or default_registry()
        self.bus = bus or InsteonBus()
        self.max_offset_deg = max_offset_deg

    def handle_gesture(
        self,
        pointing: PointingResult,
        user_position: np.ndarray | None = None,
    ) -> Appliance | None:
        """Act on a detected pointing gesture.

        Selects the appliance nearest the pointing ray and toggles its
        mode on the bus. The ray origin is "the current 3D position of
        the user" (Section 6.1) when provided — the tracked body position
        is far more accurate than the localized hand, whose z error is
        geometrically amplified — and falls back to the estimated hand
        position otherwise.

        Returns:
            The controlled appliance, or None if the gesture pointed at
            nothing in the registry.
        """
        origin = (
            np.asarray(user_position, dtype=np.float64)
            if user_position is not None
            else pointing.hand_end
        )
        appliance = self.registry.select(
            origin, pointing.direction, self.max_offset_deg
        )
        if appliance is None:
            return None
        self.bus.toggle(appliance.insteon_id)
        return appliance
