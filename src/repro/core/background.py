"""Background subtraction: removing the Flash Effect (paper Section 4.2).

Walls and furniture reflect 10-30 dB more strongly than a human and would
mask her completely. Because static reflectors keep a constant TOF,
"we can eliminate the power from these static reflectors by simply
subtracting the output of the FFT in a given sweep from the FFT of the
signal in the previous sweep" — applied, per Section 7, at the level of
the averaged frames.

A moving body survives subtraction because its path length changes by a
significant fraction of the ~5 cm carrier wavelength between frames,
decorrelating the phase of its reflection.
"""

from __future__ import annotations

import numpy as np

from .spectrogram import Spectrogram


def background_subtract(spectrogram: Spectrogram) -> Spectrogram:
    """Subtract each averaged frame from its predecessor.

    Returns a spectrogram with one fewer frame whose static components
    cancel; timestamps are those of the later frame of each pair.
    """
    frames = spectrogram.frames
    if len(frames) < 2:
        raise ValueError("background subtraction needs at least two frames")
    diff = frames[1:] - frames[:-1]
    return Spectrogram(
        frames=diff,
        frame_times_s=spectrogram.frame_times_s[1:],
        range_bin_m=spectrogram.range_bin_m,
    )


def static_residual_power(spectrogram: Spectrogram) -> float:
    """Mean residual power of a subtracted spectrogram.

    Diagnostic used by tests: on a purely static scene this collapses to
    (twice) the noise floor, confirming the cancellation.
    """
    return float(np.mean(np.abs(spectrogram.frames) ** 2))
