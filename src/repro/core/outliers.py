"""Outlier rejection on the raw contour (paper Section 4.4).

"WiTrack rejects impractical jumps in distance estimates that correspond
to unnatural human motion over a very short period of time" — e.g. the
5 m jumps over a few milliseconds in Fig. 3(c). The realtime rule of
Section 7: "the contour should not jump significantly between two
successive FFT frames (because a person cannot move much in 12.5 ms)".

One subtlety: a hard gate would lock onto the first estimate forever if
the tracker ever latched onto a noise peak. We therefore accept a large
jump once it *persists*: if several consecutive frames agree on the new
distance, the person genuinely is there and the track relocates.
"""

from __future__ import annotations

import numpy as np


def reject_outliers(
    round_trip_m: np.ndarray,
    max_jump_m: float = 0.15,
    confirmation_frames: int = 4,
    agreement_m: float | None = None,
) -> np.ndarray:
    """Remove impractical frame-to-frame jumps from a contour series.

    Args:
        round_trip_m: raw contour (NaN marks silent frames).
        max_jump_m: largest believable change per frame (0.15 m round
            trip per 12.5 ms frame = a 6 m/s body — generous).
        confirmation_frames: consecutive mutually-consistent far samples
            needed to accept a relocation.
        agreement_m: spread tolerance within the confirmation window
            (defaults to ``2 * max_jump_m``).

    Returns:
        A copy with rejected samples set to NaN. Gaps widen the accepted
        jump window proportionally (the person kept moving while we were
        not tracking her).
    """
    if max_jump_m <= 0:
        raise ValueError("max_jump_m must be positive")
    if confirmation_frames < 1:
        raise ValueError("confirmation_frames must be >= 1")
    if agreement_m is None:
        agreement_m = 2.0 * max_jump_m

    series = np.asarray(round_trip_m, dtype=np.float64)
    out = np.full_like(series, np.nan)
    last_value = np.nan
    frames_since_accept = 1
    pending: list[tuple[int, float]] = []

    for i, value in enumerate(series):
        if np.isnan(value):
            frames_since_accept += 1
            continue
        if np.isnan(last_value):
            out[i] = value
            last_value = value
            frames_since_accept = 1
            continue
        allowed = max_jump_m * frames_since_accept
        if abs(value - last_value) <= allowed:
            out[i] = value
            last_value = value
            frames_since_accept = 1
            pending.clear()
            continue
        # Candidate relocation: require persistence before believing it.
        pending = [(j, v) for j, v in pending if abs(v - value) <= agreement_m]
        pending.append((i, value))
        frames_since_accept += 1
        if len(pending) >= confirmation_frames:
            for j, v in pending:
                out[j] = v
            last_value = value
            frames_since_accept = 1
            pending.clear()
    return out


def jump_statistics(round_trip_m: np.ndarray) -> dict[str, float]:
    """Summary of frame-to-frame jumps (diagnostics for Fig. 3c).

    Returns the max and 99th-percentile absolute jump between valid
    consecutive samples, plus the fraction of NaN samples.
    """
    series = np.asarray(round_trip_m, dtype=np.float64)
    valid = ~np.isnan(series)
    jumps = np.abs(np.diff(series[valid])) if valid.sum() > 1 else np.array([0.0])
    return {
        "max_jump_m": float(np.max(jumps)) if jumps.size else 0.0,
        "p99_jump_m": float(np.percentile(jumps, 99)) if jumps.size else 0.0,
        "nan_fraction": float(np.mean(~valid)),
    }
