"""Sweep FFTs and frame averaging (paper Sections 4.1 and 7).

"The signal from each receiving antenna is transformed to the frequency
domain using an FFT whose size matches the FMCW sweep period of 2.5 ms.
To improve resilience to noise, every five consecutive sweeps are
averaged creating one FFT frame."

Averaging is *coherent* (complex): over 12.5 ms a human is effectively
static, so her reflection adds in phase while noise adds incoherently,
buying ~7 dB of SNR (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Spectrogram:
    """Averaged FFT frames for one receive antenna.

    Attributes:
        frames: complex averaged spectra, shape ``(n_frames, n_bins)``.
        frame_times_s: center time of each frame.
        range_bin_m: round-trip distance covered by one bin.
    """

    frames: np.ndarray
    frame_times_s: np.ndarray
    range_bin_m: float

    def __post_init__(self) -> None:
        if len(self.frames) != len(self.frame_times_s):
            raise ValueError("frames and frame_times_s must align")
        if self.range_bin_m <= 0:
            raise ValueError("range_bin_m must be positive")

    @property
    def num_frames(self) -> int:
        """Number of averaged frames."""
        return self.frames.shape[0]

    @property
    def num_bins(self) -> int:
        """Number of range bins per frame."""
        return self.frames.shape[1]

    @property
    def power(self) -> np.ndarray:
        """Per-bin power ``|frame|^2``, shape ``(n_frames, n_bins)``."""
        return np.abs(self.frames) ** 2

    @property
    def range_bins_m(self) -> np.ndarray:
        """Round-trip distance at each bin center."""
        return np.arange(self.num_bins) * self.range_bin_m

    def power_db(self, floor: float = 1e-30) -> np.ndarray:
        """Per-bin power in dB (floored to avoid log of zero)."""
        return 10.0 * np.log10(np.maximum(self.power, floor))

    def crop(self, max_range_m: float) -> "Spectrogram":
        """Restrict the spectrogram to ranges up to ``max_range_m``."""
        bins = int(np.ceil(max_range_m / self.range_bin_m)) + 1
        bins = min(bins, self.num_bins)
        return Spectrogram(
            frames=self.frames[:, :bins],
            frame_times_s=self.frame_times_s,
            range_bin_m=self.range_bin_m,
        )


def average_frames(
    sweep_spectra: np.ndarray, sweeps_per_frame: int
) -> np.ndarray:
    """Coherently average consecutive sweeps into frames.

    Trailing sweeps that do not fill a frame are dropped, as the realtime
    implementation would wait for a full frame.

    Args:
        sweep_spectra: complex spectra, shape ``(n_sweeps, n_bins)``.
        sweeps_per_frame: sweeps per averaged frame (paper: 5).

    Returns:
        Averaged frames, shape ``(n_sweeps // sweeps_per_frame, n_bins)``.
    """
    if sweeps_per_frame < 1:
        raise ValueError("sweeps_per_frame must be >= 1")
    n_sweeps, n_bins = sweep_spectra.shape
    n_frames = n_sweeps // sweeps_per_frame
    if n_frames == 0:
        raise ValueError(
            f"need at least {sweeps_per_frame} sweeps, got {n_sweeps}"
        )
    trimmed = sweep_spectra[: n_frames * sweeps_per_frame]
    return trimmed.reshape(n_frames, sweeps_per_frame, n_bins).mean(axis=1)


def spectrogram_from_sweeps(
    sweep_spectra: np.ndarray,
    sweep_duration_s: float,
    range_bin_m: float,
    sweeps_per_frame: int = 5,
) -> Spectrogram:
    """Build the averaged :class:`Spectrogram` from raw sweep spectra."""
    frames = average_frames(sweep_spectra, sweeps_per_frame)
    frame_duration = sweeps_per_frame * sweep_duration_s
    times = (np.arange(len(frames)) + 0.5) * frame_duration
    return Spectrogram(
        frames=frames, frame_times_s=times, range_bin_m=range_bin_m
    )
