"""The assembled per-antenna TOF estimator (paper Section 4 end to end).

Raw sweep spectra in, clean round-trip distances out:

    sweeps -> 5-sweep frames -> background subtraction -> bottom contour
    -> outlier rejection -> gap interpolation -> Kalman smoothing

Each stage is an independently-tested module; :class:`TOFEstimator`
composes them under one :class:`~repro.config.PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PipelineConfig
from .background import background_subtract
from .contour import ContourResult, track_bottom_contour
from .interpolation import interpolate_gaps
from .kalman import smooth_series
from .outliers import reject_outliers
from .spectrogram import Spectrogram, spectrogram_from_sweeps


@dataclass(frozen=True)
class TOFEstimate:
    """De-noised round-trip distance track for one receive antenna.

    Attributes:
        frame_times_s: time of each background-subtracted frame.
        round_trip_m: final clean estimate (the red plot of Fig. 3c).
        raw_contour_m: contour before de-noising (the blue plot).
        motion_mask: frames where motion was actually observed (False
            during interpolated stretches).
        spectrogram: the background-subtracted spectrogram (power input
            to the contour stage), kept for the pointing pipeline and
            for plotting Fig. 3(b).
    """

    frame_times_s: np.ndarray
    round_trip_m: np.ndarray
    raw_contour_m: np.ndarray
    motion_mask: np.ndarray
    spectrogram: Spectrogram

    @property
    def num_frames(self) -> int:
        """Number of output frames."""
        return len(self.frame_times_s)

    @property
    def valid_mask(self) -> np.ndarray:
        """Frames with a finite final estimate."""
        return ~np.isnan(self.round_trip_m)


class TOFEstimator:
    """Section 4's pipeline for a single receive antenna.

    Args:
        sweep_duration_s: FMCW sweep period.
        range_bin_m: round-trip distance per spectrum bin.
        config: pipeline tunables (thresholds, Kalman noise, ...).
    """

    def __init__(
        self,
        sweep_duration_s: float,
        range_bin_m: float,
        config: PipelineConfig | None = None,
    ) -> None:
        if sweep_duration_s <= 0 or range_bin_m <= 0:
            raise ValueError("sweep_duration_s and range_bin_m must be positive")
        self.sweep_duration_s = sweep_duration_s
        self.range_bin_m = range_bin_m
        self.config = config or PipelineConfig()

    @property
    def frame_duration_s(self) -> float:
        """Duration of one averaged frame."""
        return self.config.sweeps_per_frame * self.sweep_duration_s

    def estimate(self, sweep_spectra: np.ndarray) -> TOFEstimate:
        """Run the full Section 4 pipeline on one antenna's sweeps.

        Args:
            sweep_spectra: complex spectra, shape ``(n_sweeps, n_bins)``.

        Returns:
            The de-noised TOF track.
        """
        cfg = self.config
        spectrogram = spectrogram_from_sweeps(
            sweep_spectra,
            self.sweep_duration_s,
            self.range_bin_m,
            sweeps_per_frame=cfg.sweeps_per_frame,
        ).crop(cfg.max_range_m)
        subtracted = background_subtract(spectrogram)
        contour = self.contour(subtracted)
        cleaned = reject_outliers(
            contour.round_trip_m,
            max_jump_m=cfg.max_jump_m,
            confirmation_frames=cfg.jump_confirmation_frames,
        )
        if cfg.interpolate_when_static:
            cleaned = interpolate_gaps(cleaned)
        smoothed = self._smooth(cleaned)
        return TOFEstimate(
            frame_times_s=subtracted.frame_times_s,
            round_trip_m=smoothed,
            raw_contour_m=contour.round_trip_m,
            motion_mask=contour.motion_mask,
            spectrogram=subtracted,
        )

    def contour(self, subtracted: Spectrogram) -> ContourResult:
        """Bottom-contour stage, exposed for the pointing pipeline."""
        return track_bottom_contour(
            subtracted.power,
            subtracted.range_bin_m,
            threshold_db=self.config.contour_threshold_db,
        )

    def _smooth(self, series: np.ndarray) -> np.ndarray:
        """Kalman smoothing (skipping leading NaNs if interpolation off)."""
        if np.all(np.isnan(series)):
            return series
        return smooth_series(
            series,
            self.frame_duration_s,
            process_noise=self.config.kalman_process_noise,
            measurement_noise=self.config.kalman_measurement_noise,
        )
