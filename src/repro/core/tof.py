"""The assembled per-antenna TOF estimator (paper Section 4 end to end).

Raw sweep spectra in, clean round-trip distances out:

    sweeps -> 5-sweep frames -> background subtraction -> bottom contour
    -> outlier rejection -> gap interpolation -> Kalman smoothing

Since the unified engine landed, :class:`TOFEstimator` is a thin wrapper
around a single-antenna :class:`~repro.pipeline.Pipeline` — the same
stage objects that drive the batch tracker and the realtime app, so
offline and online estimates can no longer drift apart. The estimator
is *causal* throughout: a relocation is accepted only once confirmed
(never rewritten into the past) and frames before the first detection
stay NaN, exactly as a live tracker would emit them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PipelineConfig
from .spectrogram import Spectrogram


@dataclass(frozen=True)
class TOFEstimate:
    """De-noised round-trip distance track for one receive antenna.

    Attributes:
        frame_times_s: time of each background-subtracted frame.
        round_trip_m: final clean estimate (the red plot of Fig. 3c).
        raw_contour_m: contour before de-noising (the blue plot).
        motion_mask: frames where motion was actually observed (False
            during interpolated stretches).
        spectrogram: the background-subtracted spectrogram (power input
            to the contour stage), kept for the pointing pipeline and
            for plotting Fig. 3(b).
    """

    frame_times_s: np.ndarray
    round_trip_m: np.ndarray
    raw_contour_m: np.ndarray
    motion_mask: np.ndarray
    spectrogram: Spectrogram

    @property
    def num_frames(self) -> int:
        """Number of output frames."""
        return len(self.frame_times_s)

    @property
    def valid_mask(self) -> np.ndarray:
        """Frames with a finite final estimate."""
        return ~np.isnan(self.round_trip_m)


class TOFEstimator:
    """Section 4's pipeline for a single receive antenna.

    Args:
        sweep_duration_s: FMCW sweep period.
        range_bin_m: round-trip distance per spectrum bin.
        config: pipeline tunables (thresholds, Kalman noise, ...).
    """

    def __init__(
        self,
        sweep_duration_s: float,
        range_bin_m: float,
        config: PipelineConfig | None = None,
    ) -> None:
        if sweep_duration_s <= 0 or range_bin_m <= 0:
            raise ValueError("sweep_duration_s and range_bin_m must be positive")
        self.sweep_duration_s = sweep_duration_s
        self.range_bin_m = range_bin_m
        self.config = config or PipelineConfig()

    @property
    def frame_duration_s(self) -> float:
        """Duration of one averaged frame."""
        return self.config.sweeps_per_frame * self.sweep_duration_s

    def pipeline(self):
        """A fresh single-antenna :class:`~repro.pipeline.Pipeline`."""
        # Deferred import: repro.pipeline composes repro.core primitives.
        from ..config import FMCWConfig, SystemConfig
        from ..pipeline.runner import single_person_pipeline

        cfg = SystemConfig(
            fmcw=FMCWConfig(sweep_duration_s=self.sweep_duration_s),
            pipeline=self.config,
        )
        return single_person_pipeline(cfg, self.range_bin_m, localize=False)

    def estimate(self, sweep_spectra: np.ndarray) -> TOFEstimate:
        """Run the full Section 4 pipeline on one antenna's sweeps.

        Args:
            sweep_spectra: complex spectra, shape ``(n_sweeps, n_bins)``.

        Returns:
            The de-noised TOF track.
        """
        sweep_spectra = np.asarray(sweep_spectra)
        if sweep_spectra.ndim != 2:
            raise ValueError("sweep_spectra must have shape (n_sweeps, n_bins)")
        result = self.pipeline().run_batch(
            sweep_spectra[None, :, :], record_spectra=True
        )
        return TOFEstimate(
            frame_times_s=result.frame_times_s,
            round_trip_m=result.tof_m[:, 0],
            raw_contour_m=result.raw_tof_m[:, 0],
            motion_mask=result.motion[:, 0],
            spectrogram=Spectrogram(
                frames=result.subtracted[:, 0, :],
                frame_times_s=result.frame_times_s,
                range_bin_m=self.range_bin_m,
            ),
        )

    def contour(self, subtracted: Spectrogram):
        """Bottom-contour stage, exposed for the pointing pipeline."""
        from .contour import track_bottom_contour

        return track_bottom_contour(
            subtracted.power,
            subtracted.range_bin_m,
            threshold_db=self.config.contour_threshold_db,
        )
