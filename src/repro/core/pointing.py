"""Pointing-direction estimation from arm gestures (paper Section 6.1).

The user stands still, raises an arm toward a target, pauses, and drops
it. Because the rest of the body is static, background subtraction leaves
only the moving arm; the pipeline then:

1. detects that the mover is a *body part* (the reflection surface of an
   arm is much smaller than a whole body — measured as the spatial
   variance of the reflected power along the range axis);
2. segments the lift and drop bursts, which are separated by >= 1 s of
   stillness by protocol;
3. robust-regresses each antenna's contour over each burst to extract
   clean start/end round-trip distances;
4. localizes the hand's initial and final positions with the ellipsoid
   solver and takes the lift direction;
5. repeats for the drop and averages the two directions — "being able to
   leverage the approximate mirroring effect between the arm lifting and
   arm dropping motions adds significant robustness".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.vec import angle_between_deg, unit
from .contour import motion_extent
from .localize import LeastSquaresSolver, TGeometrySolver
from .regression import robust_endpoints
from .tof import TOFEstimate


@dataclass(frozen=True)
class GestureSegment:
    """One contiguous burst of body-part motion.

    Attributes:
        start_frame: first frame index of the burst.
        end_frame: one past the last frame index.
        median_extent_m: median spatial extent of the mover (arm vs body).
    """

    start_frame: int
    end_frame: int
    median_extent_m: float

    @property
    def num_frames(self) -> int:
        """Frames in the burst."""
        return self.end_frame - self.start_frame


@dataclass(frozen=True)
class PointingResult:
    """Estimated pointing gesture.

    Attributes:
        direction: unit pointing direction (lift/drop averaged).
        lift_direction: direction from the lift burst alone.
        drop_direction: direction from the drop burst alone (None if the
            drop was not observed).
        hand_start: localized hand position at the start of the lift.
        hand_end: localized hand position at full extension.
        is_body_part: True when the mover was classified as a body part.
        segments: the detected motion bursts.
    """

    direction: np.ndarray
    lift_direction: np.ndarray
    drop_direction: np.ndarray | None
    hand_start: np.ndarray
    hand_end: np.ndarray
    is_body_part: bool
    segments: tuple[GestureSegment, ...]

    def error_deg(self, true_direction: np.ndarray) -> float:
        """Angle between the estimate and a ground-truth direction."""
        return angle_between_deg(self.direction, true_direction)


class PointingEstimator:
    """Section 6.1's gesture pipeline on top of per-antenna TOF outputs.

    Args:
        solver: ellipsoid solver matching the antenna array.
        body_part_extent_m: mover extents below this are "a body part";
            whole-body motion spreads over more range bins (Fig. 5).
        min_silence_s: stillness that separates two bursts.
        min_segment_s: bursts shorter than this are noise.
        max_gap_s: detection dropouts shorter than this stay within one
            burst.
    """

    def __init__(
        self,
        solver: TGeometrySolver | LeastSquaresSolver,
        body_part_extent_m: float = 0.55,
        min_silence_s: float = 0.5,
        min_segment_s: float = 0.25,
        max_gap_s: float = 0.15,
    ) -> None:
        self.solver = solver
        self.body_part_extent_m = body_part_extent_m
        self.min_silence_s = min_silence_s
        self.min_segment_s = min_segment_s
        self.max_gap_s = max_gap_s

    def estimate(
        self, tof_estimates: tuple[TOFEstimate, ...]
    ) -> PointingResult | None:
        """Run the full gesture pipeline.

        Args:
            tof_estimates: per-antenna Section 4 outputs of the session
                (stand still, point, stand still).

        Returns:
            The pointing estimate, or None when no body-part gesture was
            found (no motion, or the mover was a whole body).
        """
        n_frames = min(e.num_frames for e in tof_estimates)
        frame_times = tof_estimates[0].frame_times_s[:n_frames]
        dt = float(frame_times[1] - frame_times[0])

        combined_motion = np.any(
            np.stack([e.motion_mask[:n_frames] for e in tof_estimates]), axis=0
        )
        extent = self._combined_extent(tof_estimates, n_frames)
        segments = self._segment(combined_motion, extent, dt)
        if not segments:
            return None
        arm_segments = [
            s for s in segments if s.median_extent_m <= self.body_part_extent_m
        ]
        if not arm_segments:
            return None

        lift = arm_segments[0]
        drop = arm_segments[1] if len(arm_segments) >= 2 else None

        lift_start, lift_end = self._segment_positions(
            tof_estimates, frame_times, lift
        )
        if lift_start is None or lift_end is None:
            return None
        lift_dir = unit(lift_end - lift_start)

        drop_dir: np.ndarray | None = None
        if drop is not None:
            drop_start, drop_end = self._segment_positions(
                tof_estimates, frame_times, drop
            )
            if drop_start is not None and drop_end is not None:
                # The drop mirrors the lift: hand goes extended -> rest.
                drop_dir = unit(drop_start - drop_end)

        if drop_dir is not None:
            direction = unit(lift_dir + drop_dir)
        else:
            direction = lift_dir

        return PointingResult(
            direction=direction,
            lift_direction=lift_dir,
            drop_direction=drop_dir,
            hand_start=lift_start,
            hand_end=lift_end,
            is_body_part=True,
            segments=tuple(segments),
        )

    # -- internals --------------------------------------------------------

    def _combined_extent(
        self, tof_estimates: tuple[TOFEstimate, ...], n_frames: int
    ) -> np.ndarray:
        """Median mover extent across antennas, per frame."""
        extents = []
        for est in tof_estimates:
            spec = est.spectrogram
            extents.append(
                motion_extent(spec.power, spec.range_bin_m)[:n_frames]
            )
        stacked = np.stack(extents)
        out = np.full(stacked.shape[1], np.nan)
        any_finite = np.any(np.isfinite(stacked), axis=0)
        if np.any(any_finite):
            out[any_finite] = np.nanmedian(stacked[:, any_finite], axis=0)
        return out

    def _segment(
        self, motion: np.ndarray, extent: np.ndarray, dt: float
    ) -> list[GestureSegment]:
        """Group motion frames into bursts separated by stillness."""
        max_gap = max(int(round(self.max_gap_s / dt)), 1)
        min_len = max(int(round(self.min_segment_s / dt)), 2)

        segments: list[GestureSegment] = []
        start: int | None = None
        gap = 0

        def close(end: int) -> None:
            if start is None:
                return
            # A real burst is densely detected; isolated noise blips
            # produce sparse short runs that are discarded here.
            detections = int(np.sum(motion[start:end]))
            if end - start >= min_len and detections >= min_len // 2:
                segments.append(self._make_segment(start, end, extent))

        for i, moving in enumerate(motion):
            if moving:
                if start is None:
                    start = i
                gap = 0
            elif start is not None:
                gap += 1
                if gap > max_gap:
                    close(i - gap + 1)
                    start = None
                    gap = 0
        close(len(motion))
        return segments

    @staticmethod
    def _make_segment(
        start: int, end: int, extent: np.ndarray
    ) -> GestureSegment:
        window = extent[start:end]
        finite = window[np.isfinite(window)]
        median_extent = float(np.median(finite)) if finite.size else np.inf
        return GestureSegment(
            start_frame=start, end_frame=end, median_extent_m=median_extent
        )

    def _segment_positions(
        self,
        tof_estimates: tuple[TOFEstimate, ...],
        frame_times: np.ndarray,
        segment: GestureSegment,
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Localize the hand at a burst's start and end.

        Per antenna, robust-regress the *raw* contour over the burst and
        read off its endpoints. The hand *displacement* is then solved
        differentially: the midpoint position comes from the ellipsoid
        solver, and the endpoint difference is mapped through the local
        Jacobian of the round-trip model. Differencing suppresses the
        common-mode TOF error that the absolute z solution amplifies
        (z sensitivity grows like range / antenna-separation), which is
        what keeps the direction estimate out of the error tail.
        """
        sl = slice(segment.start_frame, segment.end_frame)
        times = frame_times[sl]
        k_start = []
        k_end = []
        for est in tof_estimates:
            contour = est.raw_contour_m[sl]
            finite = np.isfinite(contour)
            if finite.sum() < 4:
                return None, None
            start_val, end_val = robust_endpoints(times[finite], contour[finite])
            k_start.append(start_val)
            k_end.append(end_val)
        k_start_arr = np.asarray(k_start)
        k_end_arr = np.asarray(k_end)

        p_mid = self.solver.solve_one((k_start_arr + k_end_arr) / 2.0)
        if not np.all(np.isfinite(p_mid)):
            return None, None
        jacobian = self._round_trip_jacobian(p_mid)
        delta_k = k_end_arr - k_start_arr
        delta_p, *_ = np.linalg.lstsq(jacobian, delta_k, rcond=None)
        p_start = p_mid - delta_p / 2.0
        p_end = p_mid + delta_p / 2.0
        return p_start, p_end

    def _round_trip_jacobian(self, point: np.ndarray) -> np.ndarray:
        """d(round trip)/d(position) rows, one per receive antenna.

        ``k_i(p) = |p - tx| + |p - rx_i|`` differentiates to the sum of
        the two unit vectors from the antennas to the point.
        """
        array = self.solver.array
        tx = array.tx.position
        u_tx = (point - tx) / max(np.linalg.norm(point - tx), 1e-9)
        rows = []
        for rx in array.rx:
            u_rx = (point - rx.position) / max(
                np.linalg.norm(point - rx.position), 1e-9
            )
            rows.append(u_tx + u_rx)
        return np.asarray(rows)
