"""WiTrack: the public 3D-tracking API (paper Sections 3-5 assembled).

:class:`WiTrack` is the class a downstream user instantiates: feed it the
per-antenna sweep spectra (from hardware or from :mod:`repro.sim`) and it
returns the 3D track of the moving person.

Both entry points compose the same
:class:`~repro.pipeline.Pipeline` stage graph: :meth:`WiTrack.track`
drives it block-vectorized (``run_batch``), :meth:`WiTrack.track_stream`
drives it frame-at-a-time (``run_stream``), and the two provably agree —
batch evaluation scores exactly the code that runs live.

Example:
    >>> from repro import WiTrack, default_config
    >>> from repro.sim import Scenario, random_walk, through_wall_room
    >>> import numpy as np
    >>> room = through_wall_room()
    >>> walk = random_walk(room, np.random.default_rng(0), duration_s=10)
    >>> output = Scenario(walk, room=room, seed=1).run()
    >>> track = WiTrack(output.config).track(output.spectra, output.range_bin_m)
    >>> track.positions.shape[1]
    3
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, default_config
from ..geometry.antennas import AntennaArray, t_array
from .localize import LeastSquaresSolver, TGeometrySolver, make_solver
from .spectrogram import Spectrogram
from .tof import TOFEstimate


@dataclass(frozen=True)
class TrackResult:
    """A 3D track and its per-antenna intermediates.

    Attributes:
        frame_times_s: timestamp of each output frame (12.5 ms cadence).
        positions: 3D positions, shape ``(n_frames, 3)``; NaN rows mark
            frames that could not be localized.
        round_trips_m: clean per-antenna round-trip distances, shape
            ``(n_rx, n_frames)``.
        tof_estimates: full per-antenna pipeline outputs (spectrograms,
            raw contours) for inspection and for the pointing pipeline.
        motion_mask: frames where at least one antenna saw actual motion
            (False during interpolated stillness).
    """

    frame_times_s: np.ndarray
    positions: np.ndarray
    round_trips_m: np.ndarray
    tof_estimates: tuple[TOFEstimate, ...]
    motion_mask: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of output frames."""
        return len(self.frame_times_s)

    @property
    def valid_mask(self) -> np.ndarray:
        """Frames with a finite 3D fix."""
        return np.isfinite(self.positions).all(axis=1)

    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        """Interpolate the track at arbitrary times (valid frames only)."""
        times_s = np.asarray(times_s, dtype=np.float64)
        mask = self.valid_mask
        if mask.sum() < 2:
            raise ValueError("not enough valid frames to interpolate")
        out = np.empty((len(times_s), 3))
        for axis in range(3):
            out[:, axis] = np.interp(
                times_s,
                self.frame_times_s[mask],
                self.positions[mask, axis],
            )
        return out


class WiTrack:
    """The 3D motion-tracking system.

    Args:
        config: full system configuration (radio + array + pipeline).
        array: antenna array override; defaults to the configured T.
        solver_method: "auto", "closed_form" or "least_squares".
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        array: AntennaArray | None = None,
        solver_method: str = "auto",
    ) -> None:
        self.config = config or default_config()
        self.array = array if array is not None else t_array(self.config.array)
        self.solver: TGeometrySolver | LeastSquaresSolver = make_solver(
            self.array, method=solver_method
        )

    def pipeline(self, range_bin_m: float):
        """A fresh single-person :class:`~repro.pipeline.Pipeline`."""
        # Deferred import: repro.pipeline composes repro.core primitives.
        from ..pipeline.runner import single_person_pipeline

        return single_person_pipeline(
            self.config, range_bin_m, solver=self.solver
        )

    def track(self, spectra: np.ndarray, range_bin_m: float) -> TrackResult:
        """Track the moving person through a block of sweep spectra.

        Args:
            spectra: complex sweep spectra per antenna, shape
                ``(n_rx, n_sweeps, n_bins)``.
            range_bin_m: round-trip distance per spectrum bin.

        Returns:
            The 3D :class:`TrackResult`.
        """
        spectra = self._validate(spectra)
        result = self.pipeline(range_bin_m).run_batch(
            spectra, record_spectra=True
        )
        return self.package_result(result, range_bin_m)

    def track_stream(
        self,
        spectra: np.ndarray,
        range_bin_m: float,
        record_spectra: bool = True,
    ) -> TrackResult:
        """Track frame-at-a-time through the same pipeline as :meth:`track`.

        Accepts either a full recording (sliced into 5-sweep frames) or
        any iterable of ``(n_rx, sweeps_per_frame, n_bins)`` blocks,
        e.g. :meth:`repro.sim.Scenario.frames`.

        Args:
            spectra: recording or iterable of per-frame sweep blocks.
            range_bin_m: round-trip distance per spectrum bin.
            record_spectra: keep the per-antenna subtracted
                spectrograms in ``tof_estimates`` (the pointing
                pipeline needs them). Pass False for long sessions —
                the spectrograms are the one per-frame intermediate
                with significant memory (``tof_estimates`` is then
                empty).
        """
        if isinstance(spectra, np.ndarray):
            spectra = self._validate(spectra)
        result = self.pipeline(range_bin_m).run_stream(
            spectra, record_spectra=record_spectra
        )
        return self.package_result(result, range_bin_m)

    def localize_estimates(
        self, estimates: tuple[TOFEstimate, ...]
    ) -> TrackResult:
        """Turn per-antenna TOF estimates into a 3D track."""
        n_frames = min(e.num_frames for e in estimates)
        round_trips = np.stack(
            [e.round_trip_m[:n_frames] for e in estimates]
        )
        result = self.solver.solve(round_trips.T)
        motion = np.any(
            np.stack([e.motion_mask[:n_frames] for e in estimates]), axis=0
        )
        return TrackResult(
            frame_times_s=estimates[0].frame_times_s[:n_frames],
            positions=result.positions,
            round_trips_m=round_trips,
            tof_estimates=estimates,
            motion_mask=motion,
        )

    # -- internals --------------------------------------------------------

    def _validate(self, spectra: np.ndarray) -> np.ndarray:
        spectra = np.asarray(spectra)
        if spectra.ndim != 3:
            raise ValueError("spectra must have shape (n_rx, n_sweeps, n_bins)")
        n_rx = spectra.shape[0]
        if n_rx != self.array.num_receivers:
            raise ValueError(
                f"got {n_rx} antenna streams for a "
                f"{self.array.num_receivers}-receiver array"
            )
        return spectra

    def package_result(self, result, range_bin_m: float) -> TrackResult:
        """Assemble a :class:`TrackResult` from a pipeline result.

        Public because the result-level cache
        (:func:`repro.exec.cache.tracked_scenario`) re-packages stored
        :class:`~repro.pipeline.PipelineResult` arrays on a hit.
        """
        if result.tof_m is None:
            raise ValueError(
                "recording produced no output frames (at least two "
                "averaged frames are needed to prime background "
                "subtraction)"
            )
        n_rx = result.tof_m.shape[1]
        estimates: tuple[TOFEstimate, ...] = ()
        if result.subtracted is not None:
            estimates = tuple(
                TOFEstimate(
                    frame_times_s=result.frame_times_s,
                    round_trip_m=result.tof_m[:, a],
                    raw_contour_m=result.raw_tof_m[:, a],
                    motion_mask=result.motion[:, a],
                    spectrogram=Spectrogram(
                        frames=result.subtracted[:, a, :],
                        frame_times_s=result.frame_times_s,
                        range_bin_m=range_bin_m,
                    ),
                )
                for a in range(n_rx)
            )
        return TrackResult(
            frame_times_s=result.frame_times_s,
            positions=result.positions,
            round_trips_m=result.tof_m.T,
            tof_estimates=estimates,
            motion_mask=result.motion.any(axis=1),
        )
