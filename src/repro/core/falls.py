"""Fall detection from elevation tracking (paper Section 6.2).

"To detect a fall, WiTrack requires two conditions to be met: First, the
person's elevation along the z axis must change significantly (by more
than one third of its value), and the final value for her elevation must
be close to the ground level. The second condition is the change in
elevation has to occur within a very short period to reflect that people
fall quicker than they sit."

The detector classifies a logged elevation trace into one of the four
Section 9.5 activities — walk, sit on a chair, sit on the floor, fall —
and reports whether it is a fall. Because z is WiTrack's noisiest
dimension (Section 9.1), every statistic here is computed on a
median-filtered trace with percentile-based levels rather than raw
minima/maxima.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np


def median_filter(values: np.ndarray, window: int) -> np.ndarray:
    """NaN-aware centered running median."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 1 or len(values) < 3:
        return values.copy()
    half = window // 2
    padded = np.concatenate(
        [np.full(half, values[0]), values, np.full(window - half - 1, values[-1])]
    )
    # Stride trick: windows as rows, nanmedian per row.
    shape = (len(values), window)
    strides = (padded.strides[0], padded.strides[0])
    windows = np.lib.stride_tricks.as_strided(padded, shape=shape, strides=strides)
    with np.errstate(invalid="ignore"), warnings.catch_warnings():
        # All-NaN windows are expected before the tracker's first
        # detection (the causal pipeline emits NaN until it locks on).
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmedian(windows, axis=1)


@dataclass(frozen=True)
class FallVerdict:
    """Outcome of analysing one elevation trace.

    Attributes:
        is_fall: final decision.
        activity: classified label: "fall", "sit_floor", "sit_chair" or
            "walk" (walking and chair-sitting are the non-ground classes).
        drop_fraction: elevation change relative to standing elevation.
        final_elevation_m: elevation above floor after the event.
        drop_duration_s: time the elevation change took (NaN when no
            significant drop occurred).
    """

    is_fall: bool
    activity: str
    drop_fraction: float
    final_elevation_m: float
    drop_duration_s: float


class FallDetector:
    """Section 6.2's two-condition fall classifier.

    Args:
        min_drop_fraction: required elevation change as a fraction of the
            standing elevation ("more than one third of its value").
        ground_level_m: final elevations below this count as "close to
            the ground level".
        max_fall_duration_s: ground-reaching drops faster than this are
            falls; slower ones are voluntary floor-sits.
        smoothing_window_s: running-median window applied to the trace
            before any statistic is computed.
        frame_dt_s: trace cadence (the paper's 12.5 ms frames).
    """

    def __init__(
        self,
        min_drop_fraction: float = 1.0 / 3.0,
        ground_level_m: float = 0.45,
        max_fall_duration_s: float = 1.4,
        smoothing_window_s: float = 0.6,
        frame_dt_s: float = 0.0125,
    ) -> None:
        if not 0.0 < min_drop_fraction < 1.0:
            raise ValueError("min_drop_fraction must be in (0, 1)")
        if max_fall_duration_s <= 0:
            raise ValueError("max_fall_duration_s must be positive")
        if smoothing_window_s < 0:
            raise ValueError("smoothing_window_s must be non-negative")
        self.min_drop_fraction = min_drop_fraction
        self.ground_level_m = ground_level_m
        self.max_fall_duration_s = max_fall_duration_s
        self.smoothing_window_s = smoothing_window_s
        self.frame_dt_s = frame_dt_s

    def classify(
        self, times_s: np.ndarray, elevation_m: np.ndarray
    ) -> FallVerdict:
        """Classify one elevation-above-floor trace.

        Args:
            times_s: frame timestamps.
            elevation_m: tracked elevation of the body reflection center
                *above the floor* (callers convert from the device frame).

        Returns:
            The :class:`FallVerdict`.
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        elevation_m = np.asarray(elevation_m, dtype=np.float64)
        if len(times_s) != len(elevation_m):
            raise ValueError("times and elevations must align")
        window = max(int(round(self.smoothing_window_s / self.frame_dt_s)), 1)
        smooth = median_filter(elevation_m, window)
        finite = np.isfinite(smooth)
        if finite.sum() < 10:
            raise ValueError("elevation trace too short or too sparse")
        times_s = times_s[finite]
        smooth = smooth[finite]

        standing = self._standing_elevation(times_s, smooth)
        lowest = float(np.percentile(smooth, 5))
        tail = smooth[times_s >= times_s[-1] - 3.0]
        final = float(np.median(tail)) if tail.size else lowest

        drop = standing - final
        drop_fraction = drop / max(standing, 1e-6)
        significant = drop_fraction > self.min_drop_fraction
        near_ground = final <= self.ground_level_m

        if not significant:
            return FallVerdict(
                is_fall=False,
                activity="walk",
                drop_fraction=drop_fraction,
                final_elevation_m=final,
                drop_duration_s=float("nan"),
            )
        if not near_ground:
            return FallVerdict(
                is_fall=False,
                activity="sit_chair",
                drop_fraction=drop_fraction,
                final_elevation_m=final,
                drop_duration_s=float("nan"),
            )

        duration = self._drop_duration(times_s, smooth, standing, final)
        is_fall = duration <= self.max_fall_duration_s
        return FallVerdict(
            is_fall=is_fall,
            activity="fall" if is_fall else "sit_floor",
            drop_fraction=drop_fraction,
            final_elevation_m=final,
            drop_duration_s=duration,
        )

    # -- internals --------------------------------------------------------

    @staticmethod
    def _standing_elevation(times_s: np.ndarray, smooth: np.ndarray) -> float:
        """Standing reference: 75th percentile of the first 5 seconds."""
        head = smooth[times_s <= times_s[0] + 5.0]
        if head.size < 5:
            head = smooth
        return float(np.percentile(head, 75))

    def _drop_duration(
        self,
        times_s: np.ndarray,
        smooth: np.ndarray,
        standing: float,
        final: float,
    ) -> float:
        """Transition time estimated from the peak descent *rate*.

        Level-crossing measurements are fragile on WiTrack's noisy z
        (a single dip shortens a sit, a spike stretches a fall), so the
        duration is instead ``drop / max descent rate``, with the rate
        taken from a moving least-squares slope over ~0.5 s windows —
        a statistic that averages the noise instead of keying on it.
        """
        # Re-filter heavily for the timing measurement only: a 1.2 s
        # running median leaves crossing times nearly unbiased while
        # flattening the z noise that breaks level-crossing logic.
        heavy = median_filter(smooth, max(int(round(1.2 / self.frame_dt_s)), 3))
        # Levels must come from the *same* trace the crossings are read
        # on: the lightly-filtered percentiles sit above the heavy
        # median's plateau and would shift every crossing.
        head = heavy[times_s <= times_s[0] + 5.0]
        standing = float(np.median(head)) if head.size else standing
        tail = heavy[times_s >= times_s[-1] - 3.0]
        final = float(np.median(tail)) if tail.size else final
        drop = standing - final
        if drop <= 0.05:
            return float("inf")
        mid_level = (standing + final) / 2.0

        # Midpoint of the descent: the first crossing of the half-drop
        # level that *persists* (the following two seconds stay below).
        mid_index = None
        for i in np.where(heavy < mid_level)[0]:
            ahead = (times_s >= times_s[i]) & (times_s <= times_s[i] + 2.0)
            if np.median(heavy[ahead]) < mid_level:
                mid_index = i
                break
        if mid_index is None:
            return float("inf")

        # The person may keep slumping slowly after landing; the timing
        # levels must reference the level settled *right after* the
        # transition, not the end of the trace.
        settle_window = (
            (times_s >= times_s[mid_index] + 0.7)
            & (times_s <= times_s[mid_index] + 3.5)
        )
        if np.any(settle_window):
            final = float(np.median(heavy[settle_window]))
            drop = standing - final
            if drop <= 0.05:
                return float("inf")

        # Last 75%-level crossing before the midpoint, first 25%-level
        # crossing after it; the 75->25 band spans ~35% of a natural
        # sit/fall transition, so rescale to the full duration.
        hi_level = standing - 0.25 * drop
        lo_level = final + 0.25 * drop
        before = np.where(heavy[: mid_index + 1] >= hi_level)[0]
        t_hi = times_s[before[-1]] if before.size else times_s[0]
        after = np.where(
            (times_s >= t_hi) & (heavy <= lo_level)
        )[0]
        t_lo = times_s[after[0]] if after.size else times_s[mid_index]
        span = max(float(t_lo - t_hi), self.frame_dt_s)
        return span / 0.35

    @staticmethod
    def _moving_slope(
        times_s: np.ndarray, values: np.ndarray, window: int
    ) -> np.ndarray:
        """Least-squares slope of each centered window (vectorized)."""
        n = len(values)
        if n < window:
            return np.full(n, np.nan)
        t = times_s - times_s[0]
        kernel = np.ones(window)
        sum_t = np.convolve(t, kernel, mode="valid")
        sum_e = np.convolve(values, kernel, mode="valid")
        sum_tt = np.convolve(t * t, kernel, mode="valid")
        sum_te = np.convolve(t * values, kernel, mode="valid")
        denom = window * sum_tt - sum_t**2
        with np.errstate(invalid="ignore", divide="ignore"):
            slopes = (window * sum_te - sum_t * sum_e) / np.where(
                denom == 0, np.nan, denom
            )
        pad_left = (n - len(slopes)) // 2
        pad_right = n - len(slopes) - pad_left
        return np.concatenate(
            [np.full(pad_left, np.nan), slopes, np.full(pad_right, np.nan)]
        )
