"""Robust regression used by the pointing estimator (Section 6.1).

"We perform robust regression on the location estimates of the moving
hand, and we use the start and end points of the regression from all of
the antennas to solve for the initial and final position of the hand."

Two estimators are provided: Theil-Sen (median of pairwise slopes —
breakdown point 29%, the default) and Huber IRLS (iteratively reweighted
least squares with the Huber loss), both pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = slope * x + intercept``.

    Attributes:
        slope: fitted slope.
        intercept: fitted intercept.
    """

    slope: float
    intercept: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the line."""
        out = self.slope * np.asarray(x, dtype=np.float64) + self.intercept
        return float(out) if np.isscalar(x) else out


def theil_sen(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Theil-Sen estimator: median of all pairwise slopes.

    O(n^2) pairs — fine for gesture segments (tens of frames). NaNs in
    ``y`` are ignored.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    n = len(x)
    if n < 2:
        raise ValueError("need at least two finite points")
    dx = x[None, :] - x[:, None]
    dy = y[None, :] - y[:, None]
    upper = np.triu_indices(n, k=1)
    dxu, dyu = dx[upper], dy[upper]
    keep = np.abs(dxu) > 1e-12
    if not np.any(keep):
        raise ValueError("all x values are identical")
    slope = float(np.median(dyu[keep] / dxu[keep]))
    intercept = float(np.median(y - slope * x))
    return LinearFit(slope=slope, intercept=intercept)


def huber_regression(
    x: np.ndarray,
    y: np.ndarray,
    delta: float | None = None,
    max_iter: int = 50,
    tol: float = 1e-10,
) -> LinearFit:
    """Huber-loss linear fit via iteratively reweighted least squares.

    Args:
        x, y: data (NaNs in y ignored).
        delta: Huber transition point; defaults to 1.345 * MAD-sigma of
            the initial OLS residuals (the classical 95%-efficiency tuning).
        max_iter: IRLS iteration cap.
        tol: convergence tolerance on the parameters.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    if len(x) < 2:
        raise ValueError("need at least two finite points")

    design = np.column_stack([x, np.ones_like(x)])
    params, *_ = np.linalg.lstsq(design, y, rcond=None)
    for _ in range(max_iter):
        residuals = y - design @ params
        mad = np.median(np.abs(residuals - np.median(residuals)))
        sigma = max(1.4826 * mad, 1e-12)
        d = delta if delta is not None else 1.345 * sigma
        abs_r = np.abs(residuals)
        weights = np.where(abs_r <= d, 1.0, d / np.maximum(abs_r, 1e-12))
        w_design = design * weights[:, None]
        new_params, *_ = np.linalg.lstsq(w_design.T @ design, w_design.T @ y, rcond=None)
        if np.max(np.abs(new_params - params)) < tol:
            params = new_params
            break
        params = new_params
    return LinearFit(slope=float(params[0]), intercept=float(params[1]))


def robust_endpoints(
    times_s: np.ndarray,
    values: np.ndarray,
    method: str = "theil_sen",
) -> tuple[float, float]:
    """Robust start/end values of a noisy monotone segment.

    Fits a robust line over the segment and evaluates it at the first and
    last timestamps — exactly how the pointing estimator extracts the
    initial and final hand distance per antenna.
    """
    if method == "theil_sen":
        fit = theil_sen(times_s, values)
    elif method == "huber":
        fit = huber_regression(times_s, values)
    else:
        raise ValueError(f"unknown robust regression method: {method!r}")
    return float(fit.predict(times_s[0])), float(fit.predict(times_s[-1]))
