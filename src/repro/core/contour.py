"""Bottom-contour tracking: defeating dynamic multipath (Section 4.3).

After background subtraction, everything left involves the moving human —
but some of it bounced off a wall after her body and arrives along a
longer path. "At any point in time, the direct signal reflected from the
human to our device has travelled a shorter path than indirect
reflections", so the pipeline traces "the bottom contour of all strong
reflectors": per frame, the *closest local maximum* that is substantially
above the noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.contour import first_local_max_above, row_median


def noise_floor(power: np.ndarray) -> np.ndarray:
    """Per-frame noise-floor estimate from the median bin power.

    The human occupies a handful of bins; the median across bins is a
    robust floor estimate even with multipath present. Returns shape
    ``(n_frames,)``. The selection runs in :mod:`repro.kernels.contour`
    behind the array-backend seam.
    """
    if power.ndim != 2:
        raise ValueError("power must have shape (n_frames, n_bins)")
    return row_median(power)


@dataclass(frozen=True)
class ContourResult:
    """Output of bottom-contour tracking.

    Attributes:
        round_trip_m: contour range per frame (NaN when no reflector
            exceeded the threshold — e.g. the person stopped moving).
        peak_power: power at the selected contour bin (NaN when silent).
        motion_mask: True where a reflector was found.
        threshold_power: per-frame absolute power threshold used.
    """

    round_trip_m: np.ndarray
    peak_power: np.ndarray
    motion_mask: np.ndarray
    threshold_power: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of frames processed."""
        return len(self.round_trip_m)

    @property
    def detection_fraction(self) -> float:
        """Fraction of frames with a detected moving reflector."""
        return float(np.mean(self.motion_mask))


def _first_local_max_above(
    power: np.ndarray, threshold: np.ndarray, min_bin: int
) -> np.ndarray:
    """Per-row index of the first local maximum above threshold, or -1.

    The scan itself lives in :mod:`repro.kernels.contour` behind the
    array-backend seam (the numpy implementation is this module's
    original vectorized scan, moved there verbatim); this wrapper is
    kept so every contour consumer keeps one import path.
    """
    return first_local_max_above(power, threshold, min_bin)


def track_bottom_contour(
    power: np.ndarray,
    range_bin_m: float,
    threshold_db: float = 12.0,
    min_range_m: float = 1.0,
    subpixel: bool = True,
    relative_threshold_db: float = 26.0,
) -> ContourResult:
    """Trace the bottom contour of a background-subtracted spectrogram.

    Args:
        power: background-subtracted power, shape ``(n_frames, n_bins)``.
        range_bin_m: round-trip distance per bin.
        threshold_db: required excess over the per-frame noise floor.
        min_range_m: ignore bins below this round-trip range (antenna
            coupling / HPF stopband).
        subpixel: refine each peak with a 3-point parabolic fit, the
            standard trick to beat the FFT bin quantization.
        relative_threshold_db: a peak must also be within this many dB of
            the frame's strongest reflector. This keeps residual window
            sidelobes (-31 dB for Hann) of a strong echo from posing as a
            closer reflector at high SNR, while still admitting a direct
            path that is genuinely weaker than indirect multipath.

    Returns:
        A :class:`ContourResult` with one entry per frame.
    """
    if power.ndim != 2:
        raise ValueError("power must have shape (n_frames, n_bins)")
    n_frames, n_bins = power.shape
    floor = noise_floor(power)
    frame_peak = power.max(axis=1)
    threshold = np.maximum(
        floor * 10.0 ** (threshold_db / 10.0),
        frame_peak * 10.0 ** (-relative_threshold_db / 10.0),
    )
    min_bin = int(np.ceil(min_range_m / range_bin_m))

    contour = np.full(n_frames, np.nan)
    peak_power = np.full(n_frames, np.nan)
    mask = np.zeros(n_frames, dtype=bool)

    first = _first_local_max_above(power, threshold, min_bin)
    rows = np.flatnonzero(first >= 0)
    if rows.size:
        k = first[rows]
        offset = np.zeros(len(rows))
        if subpixel:
            # The scan never selects an edge bin, so k-1/k+1 exist.
            left = power[rows, k - 1]
            mid = power[rows, k]
            right = power[rows, k + 1]
            denom = left - 2.0 * mid + right
            with np.errstate(invalid="ignore", divide="ignore"):
                refined = np.clip(0.5 * (left - right) / denom, -0.5, 0.5)
            offset = np.where(np.abs(denom) > 1e-30, refined, 0.0)
        contour[rows] = (k + offset) * range_bin_m
        peak_power[rows] = power[rows, k]
        mask[rows] = True

    return ContourResult(
        round_trip_m=contour,
        peak_power=peak_power,
        motion_mask=mask,
        threshold_power=threshold,
    )


def dominant_peak_contour(
    power: np.ndarray,
    range_bin_m: float,
    threshold_db: float = 9.0,
    min_range_m: float = 1.0,
) -> ContourResult:
    """Track the *strongest* reflector per frame instead of the closest.

    This is the strawman the paper rejects in Section 4.3: "the point of
    maximum reflection may abruptly shift due to different indirect paths
    in the environment". Kept here (and exposed through
    :mod:`repro.baselines.peak_tracker`) for the ablation benchmark.
    """
    n_frames, n_bins = power.shape
    floor = noise_floor(power)
    threshold = floor * 10.0 ** (threshold_db / 10.0)
    min_bin = int(np.ceil(min_range_m / range_bin_m))

    contour = np.full(n_frames, np.nan)
    peak_power = np.full(n_frames, np.nan)
    mask = np.zeros(n_frames, dtype=bool)
    for i in range(n_frames):
        row = power[i, min_bin:]
        k = int(np.argmax(row)) + min_bin
        if power[i, k] < threshold[i]:
            continue
        contour[i] = k * range_bin_m
        peak_power[i] = power[i, k]
        mask[i] = True
    return ContourResult(
        round_trip_m=contour,
        peak_power=peak_power,
        motion_mask=mask,
        threshold_power=threshold,
    )


def motion_extent(
    power: np.ndarray,
    range_bin_m: float,
    threshold_db: float = 9.0,
    min_range_m: float = 1.0,
) -> np.ndarray:
    """Power-weighted spatial spread of moving reflectors, per frame (m).

    Section 6.1 distinguishes an arm from a whole body by "the size of
    the reflection surface ... the signal variance along the vertical
    [range] axis is significantly larger when the reflector is the entire
    human body". We measure that as the power-weighted standard deviation
    of range across the bins above threshold; frames with no detection
    yield NaN.
    """
    n_frames, n_bins = power.shape
    floor = noise_floor(power)
    threshold = floor * 10.0 ** (threshold_db / 10.0)
    min_bin = int(np.ceil(min_range_m / range_bin_m))
    ranges = np.arange(n_bins) * range_bin_m

    extent = np.full(n_frames, np.nan)
    for i in range(n_frames):
        row = power[i].copy()
        row[:min_bin] = 0.0
        hot = row > threshold[i]
        if not np.any(hot):
            continue
        weights = row[hot]
        locs = ranges[hot]
        mean = float(np.average(locs, weights=weights))
        var = float(np.average((locs - mean) ** 2, weights=weights))
        extent[i] = np.sqrt(var)
    return extent
