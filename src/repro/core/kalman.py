"""Constant-velocity Kalman filter (paper Section 4.4).

"Because human motion is continuous, the variation in a reflector's
distance to each receive antenna should stay smooth over time. Thus,
WiTrack uses a Kalman Filter to smooth the distance estimates."

The filter runs on the 1D round-trip distance per antenna with a
constant-velocity state ``[distance, velocity]``. It is written to be
usable online (one ``update`` per frame, as the realtime loop needs) and
batch (``filter_series``).
"""

from __future__ import annotations

import numpy as np


def dwna_process_noise(dt_s: float, q: float) -> tuple[float, float, float]:
    """Discrete white-noise-acceleration covariance entries.

    Returns ``(q00, q01, q11)`` of the symmetric 2x2 process-noise
    matrix ``q * [[dt^4/4, dt^3/2], [dt^3/2, dt^2]]`` — shared by this
    scalar filter and the vectorized
    :class:`repro.pipeline.stages.KalmanSmooth` bank so the two can
    never drift apart.
    """
    return (
        q * (dt_s**4 / 4.0),
        q * (dt_s**3 / 2.0),
        q * (dt_s**2),
    )


class KalmanFilter1D:
    """Scalar constant-velocity Kalman filter.

    Args:
        dt_s: frame interval (12.5 ms for the paper's 5-sweep frames).
        process_noise: white-acceleration spectral density; larger values
            trust the measurements more.
        measurement_noise: variance of one distance measurement (m^2).
    """

    def __init__(
        self,
        dt_s: float,
        process_noise: float = 5e-4,
        measurement_noise: float = 4e-3,
    ) -> None:
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self.dt_s = dt_s
        self.transition = np.array([[1.0, dt_s], [0.0, 1.0]])
        q00, q01, q11 = dwna_process_noise(dt_s, process_noise)
        self.process_cov = np.array([[q00, q01], [q01, q11]])
        self.measurement_var = measurement_noise
        self.state: np.ndarray | None = None
        self.cov = np.diag([1.0, 1.0])

    @property
    def initialized(self) -> bool:
        """True after the first measurement."""
        return self.state is not None

    def reset(self) -> None:
        """Forget all state (new track)."""
        self.state = None
        self.cov = np.diag([1.0, 1.0])

    def predict(self) -> float:
        """Advance one frame without a measurement; returns the estimate."""
        if self.state is None:
            raise RuntimeError("filter not initialized; no measurement yet")
        self.state = self.transition @ self.state
        self.cov = self.transition @ self.cov @ self.transition.T + self.process_cov
        return float(self.state[0])

    def update(self, measurement: float) -> float:
        """Fuse one distance measurement; returns the filtered estimate."""
        if np.isnan(measurement):
            raise ValueError("measurement must be finite; use predict() for gaps")
        if self.state is None:
            self.state = np.array([measurement, 0.0])
            self.cov = np.diag([self.measurement_var, 1.0])
            return measurement
        self.predict()
        assert self.state is not None
        innovation = measurement - self.state[0]
        h = np.array([1.0, 0.0])
        s = float(h @ self.cov @ h + self.measurement_var)
        gain = (self.cov @ h) / s
        self.state = self.state + gain * innovation
        self.cov = (np.eye(2) - np.outer(gain, h)) @ self.cov
        return float(self.state[0])

    def filter_series(self, series: np.ndarray) -> np.ndarray:
        """Run the filter over a whole series (NaNs become predictions)."""
        out = np.empty(len(series), dtype=np.float64)
        for i, value in enumerate(series):
            if np.isnan(value):
                out[i] = self.predict() if self.initialized else np.nan
            else:
                out[i] = self.update(float(value))
        return out


def smooth_series(
    series: np.ndarray,
    dt_s: float,
    process_noise: float = 5e-4,
    measurement_noise: float = 4e-3,
) -> np.ndarray:
    """One-call Kalman smoothing of a distance series."""
    kf = KalmanFilter1D(
        dt_s, process_noise=process_noise, measurement_noise=measurement_noise
    )
    return kf.filter_series(np.asarray(series, dtype=np.float64))
