"""WiTrack's core signal-processing pipeline (the paper's contribution).

The processing chain mirrors Sections 4-6 of the paper:

1. :mod:`spectrogram` — per-sweep FFT and 5-sweep frame averaging;
2. :mod:`background` — static-multipath removal by frame subtraction;
3. :mod:`contour` — bottom-contour tracking against dynamic multipath;
4. :mod:`outliers`, :mod:`interpolation`, :mod:`kalman` — de-noising;
5. :mod:`tof` — the assembled per-antenna TOF estimator;
6. :mod:`localize` — ellipsoid-intersection 3D localization;
7. :mod:`tracker` — the public :class:`~repro.core.tracker.WiTrack` API;
8. :mod:`pointing`, :mod:`falls` — the Section 6 capabilities.
"""

from .spectrogram import Spectrogram, average_frames, spectrogram_from_sweeps
from .background import background_subtract
from .contour import ContourResult, noise_floor, track_bottom_contour
from .outliers import reject_outliers
from .interpolation import interpolate_gaps
from .kalman import KalmanFilter1D, smooth_series
from .tof import TOFEstimate, TOFEstimator
from .localize import (
    LeastSquaresSolver,
    LocalizationResult,
    TGeometrySolver,
    make_solver,
)
from .tracker import TrackResult, WiTrack
from .regression import huber_regression, theil_sen
from .pointing import PointingEstimator, PointingResult
from .falls import FallDetector, FallVerdict

__all__ = [
    "Spectrogram",
    "average_frames",
    "spectrogram_from_sweeps",
    "background_subtract",
    "ContourResult",
    "noise_floor",
    "track_bottom_contour",
    "reject_outliers",
    "interpolate_gaps",
    "KalmanFilter1D",
    "smooth_series",
    "TOFEstimate",
    "TOFEstimator",
    "LeastSquaresSolver",
    "LocalizationResult",
    "TGeometrySolver",
    "make_solver",
    "TrackResult",
    "WiTrack",
    "huber_regression",
    "theil_sen",
    "PointingEstimator",
    "PointingResult",
    "FallDetector",
    "FallVerdict",
]
