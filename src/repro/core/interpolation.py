"""Gap interpolation: tracking a person who stops moving (Section 4.4).

"If a person walks around in a room then sits on a chair and remains
static, the background-subtracted signal would not register any strong
reflector. In such scenarios, we assume that the person is still in the
same position and interpolate the latest location estimate throughout
the period during which we do not observe any motion."
"""

from __future__ import annotations

import numpy as np


def interpolate_gaps(
    series: np.ndarray,
    max_gap_frames: int | None = None,
) -> np.ndarray:
    """Fill NaN gaps by holding the last valid estimate.

    Args:
        series: values with NaN gaps (the de-noised contour).
        max_gap_frames: if given, only gaps up to this many frames are
            filled; longer silences stay NaN (useful when the subject may
            have left the monitored area entirely).

    Returns:
        A copy with gaps filled. Samples before the first valid estimate
        are backfilled from it (the tracker has no earlier knowledge).
    """
    series = np.asarray(series, dtype=np.float64)
    out = series.copy()
    valid = ~np.isnan(series)
    if not np.any(valid):
        return out

    first = int(np.argmax(valid))
    out[:first] = series[first]

    last_value = series[first]
    gap = 0
    gap_start = None
    for i in range(first + 1, len(series)):
        if np.isnan(series[i]):
            gap += 1
            if gap_start is None:
                gap_start = i
            continue
        if gap_start is not None:
            if max_gap_frames is None or gap <= max_gap_frames:
                out[gap_start:i] = last_value
            gap = 0
            gap_start = None
        last_value = series[i]
    if gap_start is not None and (max_gap_frames is None or gap <= max_gap_frames):
        out[gap_start:] = last_value
    return out


def gap_lengths(series: np.ndarray) -> list[int]:
    """Lengths of the NaN runs in a series (diagnostics)."""
    series = np.asarray(series, dtype=np.float64)
    lengths: list[int] = []
    run = 0
    for value in series:
        if np.isnan(value):
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return lengths
