"""3D localization from per-antenna round-trip distances (Section 5).

Each round-trip distance ``k_i`` constrains the reflector to an ellipsoid
with foci (Tx, Rx_i) and major axis ``k_i``. With the T geometry the
intersection admits a closed form — the paper precomputes it symbolically
("the ellipsoid equations need to be solved only once for any fixed
antenna positioning"); :class:`TGeometrySolver` is that closed form.
:class:`LeastSquaresSolver` is the general numerical solver for arbitrary
arrays and for the over-constrained >3-antenna configuration the paper
suggests in its Section 5 note.

Derivation of the closed form (Tx at the origin, ``r0 = |P|``):
squaring ``|P - Rx_i| = k_i - r0`` gives the linear relation
``Rx_i . P = (|Rx_i|^2 - k_i^2 + 2 k_i r0) / 2``. For Rx1 = (-d,0,0) and
Rx2 = (+d,0,0) the sum of the two relations eliminates x and yields
``r0 = (k1^2 + k2^2 - 2 d^2) / (2 (k1 + k2))``; their difference yields
x; the Rx3 = (0,0,-h) relation yields z; and ``y = sqrt(r0^2 - x^2 -
z^2)`` with the positive root selected because the antennas are
directional — only the half-space in front of the array is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..geometry.antennas import AntennaArray


@dataclass(frozen=True)
class LocalizationResult:
    """Positions solved from round-trip distances.

    Attributes:
        positions: shape ``(n_frames, 3)``; NaN rows mark frames where the
            measurements were geometrically infeasible.
        valid: boolean mask of solved frames.
    """

    positions: np.ndarray
    valid: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of frames."""
        return len(self.positions)

    @property
    def solve_fraction(self) -> float:
        """Fraction of frames with a feasible solution."""
        return float(np.mean(self.valid))


class TGeometrySolver:
    """Closed-form ellipsoid intersection for the "T" array.

    Args:
        array: the antenna array; the first three receivers must be the
            canonical T (±d on x, -h on z, all relative to Tx at origin).
        min_y_m: smallest feasible depth into the room; solutions closer
            than this (or behind the array) are rejected.
    """

    #: Each frame's solution depends on that frame alone, so rows may be
    #: batched freely (across time or across serving sessions).
    row_independent = True
    #: Closed-form rowwise solve with three scalar parameters — the tick
    #: compiler can inline it into a fused whole-chain kernel.
    fuse_kind = "t_geometry"

    def __init__(self, array: AntennaArray, min_y_m: float = 0.2) -> None:
        self._validate_t_geometry(array)
        rx = array.rx_positions
        self.separation_m = float(rx[1, 0])
        self.below_m = float(-rx[2, 2])
        self.min_y_m = min_y_m
        self.array = array

    @staticmethod
    def _validate_t_geometry(array: AntennaArray) -> None:
        if array.num_receivers < 3:
            raise ValueError("T solver needs 3 receive antennas")
        tx = array.tx.position
        if not np.allclose(tx, 0.0, atol=1e-9):
            raise ValueError("T solver assumes the Tx antenna at the origin")
        rx = array.rx_positions
        d = rx[1, 0]
        expected = np.array(
            [[-d, 0.0, 0.0], [d, 0.0, 0.0], [0.0, 0.0, rx[2, 2]]]
        )
        if d <= 0 or rx[2, 2] >= 0 or not np.allclose(
            rx[:3], expected, atol=1e-9
        ):
            raise ValueError(
                "receive antennas are not in the canonical T layout; use "
                "LeastSquaresSolver for general geometries"
            )

    def solve(self, round_trips_m: np.ndarray) -> LocalizationResult:
        """Solve every frame of a ``(n_frames, >=3)`` round-trip array."""
        k = np.atleast_2d(np.asarray(round_trips_m, dtype=np.float64))
        if k.shape[1] < 3:
            raise ValueError("need round trips for at least 3 antennas")
        k1, k2, k3 = k[:, 0], k[:, 1], k[:, 2]
        d = self.separation_m
        h = self.below_m

        with np.errstate(invalid="ignore", divide="ignore"):
            r0 = (k1**2 + k2**2 - 2.0 * d * d) / (2.0 * (k1 + k2))
            x = (k1**2 - k2**2 + 2.0 * r0 * (k2 - k1)) / (4.0 * d)
            z = (k3**2 - h * h - 2.0 * k3 * r0) / (2.0 * h)
            y_sq = r0**2 - x**2 - z**2
            y = np.sqrt(np.maximum(y_sq, 0.0))

        positions = np.column_stack([x, y, z])
        valid = (
            np.isfinite(k).all(axis=1)
            & (k1 > d)
            & (k2 > d)
            & (k3 > h)
            & (r0 > 0.0)
            & (y_sq > self.min_y_m**2)
        )
        positions[~valid] = np.nan
        return LocalizationResult(positions=positions, valid=valid)

    def solve_one(self, round_trips_m: np.ndarray) -> np.ndarray:
        """Solve a single frame; returns a ``(3,)`` position (NaN if bad)."""
        return self.solve(np.atleast_2d(round_trips_m)).positions[0]


class LeastSquaresSolver:
    """Numerical ellipsoid intersection for arbitrary (or >3 Rx) arrays.

    Minimizes the sum of squared ellipsoid residuals
    ``|P - Tx| + |P - Rx_i| - k_i`` with y constrained into the beam.
    With more than three receivers the system is over-constrained and
    noise is averaged down — the robustness the paper's Section 5 note
    predicts; ``bench_ablation_antennas`` quantifies it.

    Args:
        array: any antenna array.
        min_y_m: feasibility floor on depth.
        warm_start: seed each frame with the previous frame's solution
            (the continuity prior of human motion).
    """

    #: Batch solves chain a warm start frame to frame, so rows are NOT
    #: independent — lockstep serving must solve row by row.
    row_independent = False

    def __init__(
        self,
        array: AntennaArray,
        min_y_m: float = 0.2,
        warm_start: bool = True,
    ) -> None:
        self.array = array
        self.min_y_m = min_y_m
        self.warm_start = warm_start

    def _residuals(self, p: np.ndarray, k: np.ndarray) -> np.ndarray:
        d_tx = np.linalg.norm(p - self.array.tx.position)
        d_rx = np.linalg.norm(self.array.rx_positions - p[None, :], axis=1)
        return d_tx + d_rx - k

    def _initial_guess(self, k: np.ndarray) -> np.ndarray:
        # Put the guess on the array axis at half the mean round trip.
        depth = max(float(np.mean(k)) / 2.0, self.min_y_m + 0.1)
        return np.array([0.0, depth, 0.0])

    def solve(self, round_trips_m: np.ndarray) -> LocalizationResult:
        """Solve every frame of a ``(n_frames, n_rx)`` round-trip array."""
        k_all = np.atleast_2d(np.asarray(round_trips_m, dtype=np.float64))
        n_frames = len(k_all)
        n_rx = self.array.num_receivers
        if k_all.shape[1] != n_rx:
            raise ValueError(
                f"expected {n_rx} round trips per frame, got {k_all.shape[1]}"
            )
        positions = np.full((n_frames, 3), np.nan)
        valid = np.zeros(n_frames, dtype=bool)
        lower = np.array([-np.inf, self.min_y_m, -np.inf])
        upper = np.array([np.inf, np.inf, np.inf])
        previous: np.ndarray | None = None
        for i in range(n_frames):
            k = k_all[i]
            if not np.all(np.isfinite(k)):
                continue
            guess = (
                previous
                if (self.warm_start and previous is not None)
                else self._initial_guess(k)
            )
            result = optimize.least_squares(
                self._residuals,
                guess,
                args=(k,),
                bounds=(lower, upper),
                method="trf",
                xtol=1e-10,
                ftol=1e-10,
            )
            if not result.success:
                continue
            residual_rms = float(np.sqrt(np.mean(result.fun**2)))
            # Accept only geometrically-consistent fits (residual below a
            # generous fraction of the range resolution).
            if residual_rms > 0.5:
                continue
            positions[i] = result.x
            valid[i] = True
            previous = result.x
        return LocalizationResult(positions=positions, valid=valid)

    def solve_one(self, round_trips_m: np.ndarray) -> np.ndarray:
        """Solve a single frame; returns a ``(3,)`` position (NaN if bad)."""
        return self.solve(np.atleast_2d(round_trips_m)).positions[0]


def make_solver(
    array: AntennaArray, method: str = "auto", **kwargs: object
) -> TGeometrySolver | LeastSquaresSolver:
    """Pick the right solver for an array.

    ``auto`` uses the closed form when the array is a canonical 3-Rx T and
    falls back to least squares otherwise.
    """
    if method not in ("auto", "closed_form", "least_squares"):
        raise ValueError(f"unknown solver method: {method!r}")
    if method == "least_squares":
        return LeastSquaresSolver(array, **kwargs)  # type: ignore[arg-type]
    if method == "closed_form":
        return TGeometrySolver(array, **kwargs)  # type: ignore[arg-type]
    try:
        if array.num_receivers == 3:
            return TGeometrySolver(array, **kwargs)  # type: ignore[arg-type]
    except ValueError:
        pass
    return LeastSquaresSolver(array, **kwargs)  # type: ignore[arg-type]
