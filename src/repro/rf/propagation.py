"""Propagation: the radar equation, walls, and reflection losses.

Each propagation path Tx -> reflector -> Rx carries a complex amplitude
determined by the bistatic radar equation, the antennas' directional
gains, the reflector's radar cross-section (RCS), and any wall
traversals. The paper's through-wall scenario attenuates every traversal
("the extra attenuation and the reduced SNR", Section 9.1); this is what
separates Fig. 8(a) from Fig. 8(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import constants
from ..config import FMCWConfig
from ..geometry.antennas import Antenna
from .noise import db_to_amplitude


@dataclass(frozen=True)
class PathGain:
    """Resolved amplitude and phase of a single propagation path.

    Attributes:
        amplitude: linear voltage amplitude at the receiver (sqrt Watts).
        phase_rad: carrier phase accumulated over the path.
        round_trip_m: total Tx->reflector->Rx path length.
    """

    amplitude: float
    phase_rad: float
    round_trip_m: float

    @property
    def complex_amplitude(self) -> complex:
        """Amplitude as a complex phasor."""
        return self.amplitude * np.exp(1j * self.phase_rad)

    @property
    def power_w(self) -> float:
        """Received power (Watts)."""
        return self.amplitude**2


def wavelength(config: FMCWConfig) -> float:
    """Carrier wavelength at the sweep center frequency (m)."""
    return constants.SPEED_OF_LIGHT / config.center_hz


def radar_amplitude(
    tx_power_w: float,
    gain_tx: float,
    gain_rx: float,
    d_tx_m: float,
    d_rx_m: float,
    rcs_m2: float,
    wavelength_m: float,
    extra_loss_db: float = 0.0,
) -> float:
    """Bistatic radar-equation amplitude (linear, sqrt-Watts).

    ``Pr = Pt Gt Gr lambda^2 rcs / ((4 pi)^3 d_tx^2 d_rx^2)`` with an extra
    multiplicative loss in dB for walls and system losses. Returns the
    voltage amplitude ``sqrt(Pr)``.
    """
    if d_tx_m <= 0 or d_rx_m <= 0:
        raise ValueError("path segment lengths must be positive")
    pr = (
        tx_power_w
        * gain_tx
        * gain_rx
        * wavelength_m**2
        * rcs_m2
        / ((4.0 * np.pi) ** 3 * d_tx_m**2 * d_rx_m**2)
    )
    return float(np.sqrt(pr) * db_to_amplitude(-extra_loss_db))


def path_phase(round_trip_m: float, config: FMCWConfig) -> float:
    """Carrier phase of a path at the sweep start frequency (radians).

    The phase rotates by ``2 pi`` for every wavelength of round-trip
    change; this is what makes a moving body decorrelate between
    consecutive sweeps and survive background subtraction.
    """
    return float(-2.0 * np.pi * config.start_hz * round_trip_m / constants.SPEED_OF_LIGHT)


@dataclass(frozen=True)
class Wall:
    """An infinite wall plane used for attenuation accounting.

    Attributes:
        point: any point on the wall plane.
        normal: unit normal of the plane.
        attenuation_db: one-traversal attenuation.
    """

    point: np.ndarray
    normal: np.ndarray
    attenuation_db: float

    def side_of(self, p: np.ndarray) -> float:
        """Signed distance of ``p`` from the wall plane."""
        return float(np.dot(np.asarray(p) - self.point, self.normal))


def wall_crossings(a: np.ndarray, b: np.ndarray, walls: Sequence[Wall]) -> float:
    """Total attenuation (dB) of the segment a->b through the given walls.

    A wall is crossed when its plane separates the endpoints. Grazing
    (endpoint on the plane) counts as no crossing.
    """
    total_db = 0.0
    for wall in walls:
        sa = wall.side_of(a)
        sb = wall.side_of(b)
        if sa * sb < 0.0:
            total_db += wall.attenuation_db
    return total_db


def resolve_path(
    tx: Antenna,
    rx: Antenna,
    reflector: np.ndarray,
    rcs_m2: float,
    config: FMCWConfig,
    walls: Sequence[Wall] = (),
    extra_loss_db: float = 0.0,
    reflection_loss_db: float = 0.0,
) -> PathGain:
    """Resolve the full amplitude/phase/length of Tx -> reflector -> Rx.

    Combines antenna gains toward the reflector, the radar equation, wall
    attenuation of both segments, and an optional per-bounce reflection
    loss (used by the multipath image paths).
    """
    reflector = np.asarray(reflector, dtype=np.float64)
    d_tx = float(np.linalg.norm(reflector - tx.position))
    d_rx = float(np.linalg.norm(reflector - rx.position))
    g_tx = tx.gain_towards(reflector)
    g_rx = rx.gain_towards(reflector)
    loss_db = (
        extra_loss_db
        + reflection_loss_db
        + wall_crossings(tx.position, reflector, walls)
        + wall_crossings(reflector, rx.position, walls)
    )
    round_trip = d_tx + d_rx
    if g_tx <= 0.0 or g_rx <= 0.0:
        amplitude = 0.0
    else:
        amplitude = radar_amplitude(
            tx_power_w=config.tx_power_w,
            gain_tx=g_tx,
            gain_rx=g_rx,
            d_tx_m=d_tx,
            d_rx_m=d_rx,
            rcs_m2=rcs_m2,
            wavelength_m=wavelength(config),
            extra_loss_db=loss_db,
        )
    return PathGain(
        amplitude=amplitude,
        phase_rad=path_phase(round_trip, config),
        round_trip_m=round_trip,
    )
