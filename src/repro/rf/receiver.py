"""Per-antenna sweep synthesis: the fast spectrum-domain signal model.

The processing pipeline's input is one complex spectrum per sweep per
receive antenna. Rather than generating 2500 time samples per sweep and
FFT-ing them (the exact model in :mod:`repro.rf.frontend`), the spectrum
synthesizer writes each propagation path's Dirichlet-kernel footprint
directly into the FFT bins. The two models agree to numerical precision
for linear sweeps; unit tests enforce this.

The synthesizer is vectorized across sweeps: a path is described by
arrays of per-sweep round-trip distances and amplitudes, so a moving
human is just a path whose distance array varies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..config import FMCWConfig
from .fmcw import RangeAxis, dirichlet_kernel, range_axis
from .noise import NoiseModel


@dataclass
class Path:
    """A propagation path sampled at every sweep.

    Attributes:
        round_trip_m: shape ``(n_sweeps,)`` path length per sweep, or a
            scalar for a static path.
        amplitude: shape ``(n_sweeps,)`` linear amplitude, or a scalar.
        phase0_rad: extra constant phase (e.g. reflection phase).
        name: label for debugging.
    """

    round_trip_m: np.ndarray
    amplitude: np.ndarray
    phase0_rad: float = 0.0
    name: str = "path"

    def broadcast(self, n_sweeps: int) -> tuple[np.ndarray, np.ndarray]:
        """Return per-sweep (round_trip, amplitude) arrays of length n."""
        rt = np.broadcast_to(
            np.asarray(self.round_trip_m, dtype=np.float64), (n_sweeps,)
        )
        amp = np.broadcast_to(
            np.asarray(self.amplitude, dtype=np.float64), (n_sweeps,)
        )
        return rt, amp


class SweepSynthesizer:
    """Generates per-sweep complex spectra for one receive antenna.

    Args:
        config: FMCW sweep parameters.
        noise: receiver noise model (thermal floor + phase jitter).
        max_range_m: spectra are cropped to bins covering this round-trip
            range; everything the pipeline needs lives below 30 m.
        kernel_halfwidth: Dirichlet kernel window, in bins, written per
            path. 8 bins capture >99.9% of a tone's energy.
        window: "hann" (default) or "rect". Windowing the sweep before
            the FFT suppresses spectral sidelobes; without it, a strong
            reflector's -13 dB Dirichlet sidelobes out-shout weaker and
            *closer* reflectors and corrupt the bottom contour.
    """

    def __init__(
        self,
        config: FMCWConfig,
        noise: NoiseModel,
        max_range_m: float = 30.0,
        kernel_halfwidth: int = 8,
        window: str = "hann",
    ) -> None:
        if window not in ("hann", "rect"):
            raise ValueError("window must be 'hann' or 'rect'")
        self.config = config
        self.noise = noise
        self.axis: RangeAxis = range_axis(config)
        self.num_bins = self.axis.crop_bins(max_range_m)
        self.kernel_halfwidth = kernel_halfwidth
        self.window = window
        self._n_samples = config.samples_per_sweep

    def carrier_phase(self, round_trip_m: np.ndarray) -> np.ndarray:
        """Beat-tone phase of a path at sweep start (drives decorrelation).

        Matches the dechirped time-domain model exactly: mixing the
        received chirp with the transmitted one leaves a phase of
        ``2 pi f0 tau - pi slope tau^2`` (carrier term plus the small
        residual video phase). The carrier term rotates a full turn for
        every ~5.4 cm of round-trip change — the decorrelation that lets
        a moving body survive background subtraction.
        """
        tau = np.asarray(round_trip_m) / constants.SPEED_OF_LIGHT
        return (
            2.0 * np.pi * self.config.start_hz * tau
            - np.pi * self.config.slope_hz_per_s * tau**2
        )

    def synthesize(
        self,
        paths: list[Path],
        n_sweeps: int,
        rng: np.random.Generator,
        add_noise: bool = True,
    ) -> np.ndarray:
        """Produce the spectrogram block of shape ``(n_sweeps, num_bins)``.

        Each path contributes ``amp * D(bin - bin_p) * exp(j phase_p)``
        within ``kernel_halfwidth`` bins of its true fractional bin; the
        thermal floor adds circular complex Gaussian noise per bin.

        All paths are stacked and written in one vectorized pass (chunked
        over sweeps to bound the temporaries), so synthesis cost does not
        grow with Python-level loop iterations as scenes gain bodies and
        multipath images.
        """
        spectra = np.zeros((n_sweeps, self.num_bins), dtype=np.complex128)
        half = self.kernel_halfwidth
        window = np.arange(-half, half + 1)
        active = []
        for path in paths:
            rt, amp = path.broadcast(n_sweeps)
            if not np.any(amp):
                continue
            active.append((rt, amp, path.phase0_rad))
        if active:
            rts = np.stack([a[0] for a in active])
            amps = np.stack([a[1] for a in active])
            phase0 = np.array([a[2] for a in active])
            # Keep the (n_paths, chunk, window) temporaries near ~2M cells.
            chunk = max(1, 2_000_000 // (len(active) * len(window)))
            for s0 in range(0, n_sweeps, chunk):
                s1 = min(s0 + chunk, n_sweeps)
                self._accumulate(
                    spectra[s0:s1], rts[:, s0:s1], amps[:, s0:s1],
                    phase0, window,
                )
        if add_noise:
            self.add_noise(spectra, rng)
        return spectra

    def add_noise(
        self, spectra: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Add the thermal floor and phase jitter to a sweep block.

        Modifies ``spectra`` (shape ``(n_sweeps, n_bins)``) in place and
        returns it. Exposed so streaming synthesis can noise each block
        from its own random stream (chunk-size invariant) while batch
        synthesis keeps noising the whole recording in one draw.
        """
        spectra += self._noise_scale() * self.noise.complex_noise(
            spectra.shape, rng
        )
        spectra *= self.noise.phase_jitter((len(spectra), 1), rng)
        return spectra

    def _accumulate(
        self,
        out: np.ndarray,
        rts: np.ndarray,
        amps: np.ndarray,
        phase0: np.ndarray,
        window: np.ndarray,
    ) -> np.ndarray:
        """Add every path's kernel footprint to ``out`` (one sweep block).

        ``rts``/``amps`` have shape ``(n_paths, n_sweeps)``. The scatter
        into bins runs through :func:`numpy.bincount` on flattened
        (sweep, bin) indices — much faster than ``np.add.at`` and exact,
        since bincount sums duplicate indices.
        """
        n_s, n_b = out.shape
        frac_bin = rts / self.axis.round_trip_per_bin_m
        center = np.round(frac_bin).astype(np.int64)
        bins = center[:, :, None] + window[None, None, :]
        kernel = self._fast_kernel(center - frac_bin, window)
        phase = self.carrier_phase(rts) + phase0[:, None]
        contrib = (amps * np.exp(1j * phase))[:, :, None] * kernel
        rows = np.broadcast_to(np.arange(n_s)[None, :, None], bins.shape)
        valid = (bins >= 0) & (bins < n_b)
        flat = rows[valid] * n_b + bins[valid]
        values = contrib[valid]
        total = n_s * n_b
        acc = np.bincount(
            flat, weights=values.real, minlength=total
        ).astype(np.complex128)
        acc += 1j * np.bincount(flat, weights=values.imag, minlength=total)
        out += acc.reshape(n_s, n_b)
        return out

    def _fast_kernel(self, e: np.ndarray, window: np.ndarray) -> np.ndarray:
        r"""Leakage kernel over a window of bins, factored for speed.

        Algebraically identical to evaluating :meth:`_kernel` on the
        ``window + e`` offsets, but exploits that every offset is an
        integer ``w`` plus the per-(path, sweep) fraction ``e``:

        * ``sin(\pi (w + e)) = (-1)^w sin(\pi e)`` — one small sin
          instead of a window-sized one;
        * the Dirichlet phase splits into a per-(path, sweep) factor and
          ``len(window)`` constants — one small complex exp;
        * the three Hann-term denominators are shifted views of a single
          extended-window sin — one big transcendental pass, not nine.

        Args:
            e: ``center_bin - fractional_bin`` per path and sweep, shape
                ``(n_paths, n_sweeps)``, each value in ``[-0.5, 0.5]``.
            window: integer bin offsets around the center bin.

        Returns:
            Complex kernel values, shape ``(n_paths, n_sweeps, len(window))``.
        """
        n = self._n_samples
        ratio = (n - 1.0) / n
        # The evaluated offsets are d = w + e (bins minus fractional bin).
        sin_pe = np.sin(np.pi * e)
        phase_e = np.exp(-1j * np.pi * ratio * e)
        sign = np.where(window % 2 == 0, 1.0, -1.0)
        phase_w = np.exp(-1j * np.pi * ratio * window)
        s_c = (sin_pe * phase_e)[:, :, None] * (sign * phase_w)[None, None, :]
        w_ext = np.arange(window[0] - 1, window[-1] + 2)
        den_ext = n * np.sin(
            np.pi * (w_ext[None, None, :] + e[:, :, None]) / n
        )
        den_ext = np.where(den_ext == 0.0, 1.0, den_ext)
        inv0 = 1.0 / den_ext[:, :, 1:-1]
        if self.window == "rect":
            kernel = s_c * inv0
        else:
            # D(d) - 0.5 D(d-1) - 0.5 D(d+1): the shifted terms flip the
            # numerator sign and rotate the phase by a constant.
            rot = np.exp(1j * np.pi * ratio)
            kernel = s_c * (
                inv0
                + 0.5 * rot / den_ext[:, :, :-2]
                + 0.5 * np.conj(rot) / den_ext[:, :, 2:]
            )
        exact = np.abs(e) < 1e-12
        if np.any(exact):
            # Integer offsets: the Dirichlet limit is 1 at d=0 (and, for
            # Hann, -0.5 at the adjacent bins), 0 elsewhere.
            if self.window == "rect":
                pattern = (window == 0).astype(np.complex128)
            else:
                pattern = np.where(
                    window == 0,
                    1.0 + 0j,
                    np.where(np.abs(window) == 1, -0.5 + 0j, 0j),
                )
            kernel[exact] = pattern
        return kernel

    def _kernel(self, offsets: np.ndarray) -> np.ndarray:
        r"""Reference leakage kernel of one tone (any offsets, any shape).

        :meth:`_fast_kernel` is the production path; this direct form is
        kept as the specification the fast path is tested against.

        The Hann window ``0.5 - 0.25 e^{j2\pi n/N} - 0.25 e^{-j2\pi n/N}``
        turns into the exact three-term Dirichlet combination
        ``0.5 D(d) - 0.25 D(d-1) - 0.25 D(d+1)`` (the phase convention of
        :func:`dirichlet_kernel` carries the minus signs), rescaled by the
        window's coherent gain (0.5) so a unit tone still peaks at 1.0.
        """
        if self.window == "rect":
            return dirichlet_kernel(offsets, self._n_samples)
        combo = (
            0.5 * dirichlet_kernel(offsets, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets - 1.0, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets + 1.0, self._n_samples)
        )
        return combo / 0.5

    def _noise_scale(self) -> float:
        """Noise amplification of the window (ENBW; 1.5 for Hann).

        With the coherent-gain rescale applied to signals, per-bin noise
        power grows by the window's equivalent noise bandwidth.
        """
        return float(np.sqrt(1.5)) if self.window == "hann" else 1.0

    def range_bins_m(self) -> np.ndarray:
        """Round-trip distance of each retained bin, shape ``(num_bins,)``."""
        return self.axis.round_trips_m[: self.num_bins]
