"""Per-antenna sweep synthesis: the fast spectrum-domain signal model.

The processing pipeline's input is one complex spectrum per sweep per
receive antenna. Rather than generating 2500 time samples per sweep and
FFT-ing them (the exact model in :mod:`repro.rf.frontend`), the spectrum
synthesizer writes each propagation path's Dirichlet-kernel footprint
directly into the FFT bins. The two models agree to numerical precision
for linear sweeps; unit tests enforce this.

The synthesizer is vectorized across sweeps: a path is described by
arrays of per-sweep round-trip distances and amplitudes, so a moving
human is just a path whose distance array varies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..config import FMCWConfig
from ..kernels.backend import active_backend
from ..kernels.synthesis import accumulate_spectra
from .fmcw import RangeAxis, dirichlet_kernel, range_axis
from .noise import NoiseModel


@dataclass
class Path:
    """A propagation path sampled at every sweep.

    Attributes:
        round_trip_m: shape ``(n_sweeps,)`` path length per sweep, or a
            scalar for a static path.
        amplitude: shape ``(n_sweeps,)`` linear amplitude, or a scalar.
        phase0_rad: extra constant phase (e.g. reflection phase).
        name: label for debugging.
    """

    round_trip_m: np.ndarray
    amplitude: np.ndarray
    phase0_rad: float = 0.0
    name: str = "path"

    def broadcast(self, n_sweeps: int) -> tuple[np.ndarray, np.ndarray]:
        """Return per-sweep (round_trip, amplitude) arrays of length n."""
        rt = np.broadcast_to(
            np.asarray(self.round_trip_m, dtype=np.float64), (n_sweeps,)
        )
        amp = np.broadcast_to(
            np.asarray(self.amplitude, dtype=np.float64), (n_sweeps,)
        )
        return rt, amp


class SweepSynthesizer:
    """Generates per-sweep complex spectra for one receive antenna.

    Args:
        config: FMCW sweep parameters.
        noise: receiver noise model (thermal floor + phase jitter).
        max_range_m: spectra are cropped to bins covering this round-trip
            range; everything the pipeline needs lives below 30 m.
        kernel_halfwidth: Dirichlet kernel window, in bins, written per
            path. 8 bins capture >99.9% of a tone's energy.
        window: "hann" (default) or "rect". Windowing the sweep before
            the FFT suppresses spectral sidelobes; without it, a strong
            reflector's -13 dB Dirichlet sidelobes out-shout weaker and
            *closer* reflectors and corrupt the bottom contour.
    """

    def __init__(
        self,
        config: FMCWConfig,
        noise: NoiseModel,
        max_range_m: float = 30.0,
        kernel_halfwidth: int = 8,
        window: str = "hann",
    ) -> None:
        if window not in ("hann", "rect"):
            raise ValueError("window must be 'hann' or 'rect'")
        self.config = config
        self.noise = noise
        self.axis: RangeAxis = range_axis(config)
        self.num_bins = self.axis.crop_bins(max_range_m)
        self.kernel_halfwidth = kernel_halfwidth
        self.window = window
        self._n_samples = config.samples_per_sweep

    def carrier_phase(self, round_trip_m: np.ndarray) -> np.ndarray:
        """Beat-tone phase of a path at sweep start (drives decorrelation).

        Matches the dechirped time-domain model exactly: mixing the
        received chirp with the transmitted one leaves a phase of
        ``2 pi f0 tau - pi slope tau^2`` (carrier term plus the small
        residual video phase). The carrier term rotates a full turn for
        every ~5.4 cm of round-trip change — the decorrelation that lets
        a moving body survive background subtraction.
        """
        tau = np.asarray(round_trip_m) / constants.SPEED_OF_LIGHT
        return (
            2.0 * np.pi * self.config.start_hz * tau
            - np.pi * self.config.slope_hz_per_s * tau**2
        )

    def synthesize(
        self,
        paths: list[Path],
        n_sweeps: int,
        rng: np.random.Generator,
        add_noise: bool = True,
    ) -> np.ndarray:
        """Produce the spectrogram block of shape ``(n_sweeps, num_bins)``.

        Each path contributes ``amp * D(bin - bin_p) * exp(j phase_p)``
        within ``kernel_halfwidth`` bins of its true fractional bin; the
        thermal floor adds circular complex Gaussian noise per bin.

        This is the one-stream view of :meth:`synthesize_batch`; the
        serving tier hands the batch entry point all N streams of a
        cohort at once.
        """
        spectra = self.synthesize_batch([paths], n_sweeps)[0]
        if add_noise:
            self.add_noise(spectra, rng)
        return spectra

    def synthesize_batch(
        self,
        path_sets: list[list[Path]],
        n_sweeps: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Synthesize many independent streams in one fused kernel pass.

        Args:
            path_sets: one path list per stream (antennas, or every
                antenna of every session in a cohort). Streams are
                independent; fusing them only batches the scatter.
            n_sweeps: sweeps per stream.
            out: optional ``(n_streams, n_sweeps, num_bins)`` complex128
                C-contiguous array to accumulate into. Callers with a
                precomputed static-path template (e.g. the cohort
                source, whose clutter never changes between chunks)
                broadcast it in here and pass only dynamic paths —
                the add order matches the all-paths call (static
                template first, then dynamic scatters), so results
                stay bitwise identical.

        Returns:
            Noise-free spectra, shape ``(n_streams, n_sweeps, num_bins)``.
            Stream ``t`` is bitwise what a ``synthesize(path_sets[t],
            ..., add_noise=False)`` call under the same backend returns
            — fusion and sweep chunking are exact (see
            :mod:`repro.kernels.synthesis`).

        Two structural optimizations over the per-stream loop (both
        disabled under the ``reference`` backend, which reproduces the
        original math and cost):

        * **Static-path split**: a path with scalar round trip and
          amplitude writes the *same* footprint into every sweep, so
          its kernel is evaluated once per stream and broadcast —
          static clutter dominates path counts (18 of 23 in the
          through-wall scene), so this removes ~80% of the kernel work.
        * **Cohort fusion**: all streams' dynamic paths go through one
          scatter call per sweep chunk, amortizing numpy dispatch.
        """
        n_streams = len(path_sets)
        shape = (n_streams, n_sweeps, self.num_bins)
        if out is None:
            out = np.zeros(shape, dtype=np.complex128)
        elif out.shape != shape or out.dtype != np.complex128:
            raise ValueError(f"out must be complex128 {shape}")
        if n_streams == 0 or n_sweeps == 0:
            return out
        half = self.kernel_halfwidth
        hann = self.window == "hann"
        per_bin = self.axis.round_trip_per_bin_m
        split = active_backend().static_split

        static: list[tuple[float, float, float, int]] = []
        dynamic: list[tuple[np.ndarray, np.ndarray, float, int]] = []
        for t, paths in enumerate(path_sets):
            for path in paths:
                rt_raw = np.asarray(path.round_trip_m, dtype=np.float64)
                amp_raw = np.asarray(path.amplitude, dtype=np.float64)
                if not np.any(amp_raw):
                    continue
                if split and rt_raw.ndim == 0 and amp_raw.ndim == 0:
                    static.append(
                        (float(rt_raw), float(amp_raw), path.phase0_rad, t)
                    )
                else:
                    rt, amp = path.broadcast(n_sweeps)
                    dynamic.append((rt, amp, path.phase0_rad, t))

        if static:
            # One-sweep templates per stream, broadcast across sweeps.
            rts = np.array([p[0] for p in static])[:, None]
            amps = np.array([p[1] for p in static])[:, None]
            phase = self.carrier_phase(rts) + np.array(
                [p[2] for p in static]
            )[:, None]
            template = np.zeros(
                (n_streams, self.num_bins), dtype=np.complex128
            )
            accumulate_spectra(
                template,
                rts / per_bin,
                amps * np.exp(1j * phase),
                np.array([p[3] for p in static], dtype=np.int64),
                half,
                self._n_samples,
                hann,
            )
            out += template[:, None, :]

        if dynamic:
            rts = np.stack([p[0] for p in dynamic])
            amps = np.stack([p[1] for p in dynamic])
            phase = self.carrier_phase(rts) + np.array(
                [p[2] for p in dynamic]
            )[:, None]
            coeff = amps * np.exp(1j * phase)
            frac = rts / per_bin
            stream = np.array([p[3] for p in dynamic], dtype=np.int64)
            # Chunk sweeps to bound the (n_paths, chunk, window)
            # kernel temporaries; chunking is exact (same adds into the
            # same cells, in the same order).
            width = 2 * half + 1
            chunk = max(1, 2_000_000 // (len(dynamic) * width))
            flat = out.reshape(n_streams * n_sweeps, self.num_bins)
            for s0 in range(0, n_sweeps, chunk):
                s1 = min(s0 + chunk, n_sweeps)
                accumulate_spectra(
                    flat,
                    frac[:, s0:s1],
                    coeff[:, s0:s1],
                    stream * n_sweeps + s0,
                    half,
                    self._n_samples,
                    hann,
                )
        return out

    def add_noise(
        self, spectra: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Add the thermal floor and phase jitter to a sweep block.

        Modifies ``spectra`` (shape ``(n_sweeps, n_bins)``) in place and
        returns it. Exposed so streaming synthesis can noise each block
        from its own random stream (chunk-size invariant) while batch
        synthesis keeps noising the whole recording in one draw.
        """
        spectra += self._noise_scale() * self.noise.complex_noise(
            spectra.shape, rng
        )
        spectra *= self.noise.phase_jitter((len(spectra), 1), rng)
        return spectra

    def _kernel(self, offsets: np.ndarray) -> np.ndarray:
        r"""Reference leakage kernel of one tone (any offsets, any shape).

        The production path is the factored scatter kernel in
        :mod:`repro.kernels.synthesis`; this direct form is kept as the
        specification the fast paths are tested against.

        The Hann window ``0.5 - 0.25 e^{j2\pi n/N} - 0.25 e^{-j2\pi n/N}``
        turns into the exact three-term Dirichlet combination
        ``0.5 D(d) - 0.25 D(d-1) - 0.25 D(d+1)`` (the phase convention of
        :func:`dirichlet_kernel` carries the minus signs), rescaled by the
        window's coherent gain (0.5) so a unit tone still peaks at 1.0.
        """
        if self.window == "rect":
            return dirichlet_kernel(offsets, self._n_samples)
        combo = (
            0.5 * dirichlet_kernel(offsets, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets - 1.0, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets + 1.0, self._n_samples)
        )
        return combo / 0.5

    def _noise_scale(self) -> float:
        """Noise amplification of the window (ENBW; 1.5 for Hann).

        With the coherent-gain rescale applied to signals, per-bin noise
        power grows by the window's equivalent noise bandwidth.
        """
        return float(np.sqrt(1.5)) if self.window == "hann" else 1.0

    def range_bins_m(self) -> np.ndarray:
        """Round-trip distance of each retained bin, shape ``(num_bins,)``."""
        return self.axis.round_trips_m[: self.num_bins]
