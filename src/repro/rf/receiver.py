"""Per-antenna sweep synthesis: the fast spectrum-domain signal model.

The processing pipeline's input is one complex spectrum per sweep per
receive antenna. Rather than generating 2500 time samples per sweep and
FFT-ing them (the exact model in :mod:`repro.rf.frontend`), the spectrum
synthesizer writes each propagation path's Dirichlet-kernel footprint
directly into the FFT bins. The two models agree to numerical precision
for linear sweeps; unit tests enforce this.

The synthesizer is vectorized across sweeps: a path is described by
arrays of per-sweep round-trip distances and amplitudes, so a moving
human is just a path whose distance array varies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..config import FMCWConfig
from .fmcw import RangeAxis, dirichlet_kernel, range_axis
from .noise import NoiseModel


@dataclass
class Path:
    """A propagation path sampled at every sweep.

    Attributes:
        round_trip_m: shape ``(n_sweeps,)`` path length per sweep, or a
            scalar for a static path.
        amplitude: shape ``(n_sweeps,)`` linear amplitude, or a scalar.
        phase0_rad: extra constant phase (e.g. reflection phase).
        name: label for debugging.
    """

    round_trip_m: np.ndarray
    amplitude: np.ndarray
    phase0_rad: float = 0.0
    name: str = "path"

    def broadcast(self, n_sweeps: int) -> tuple[np.ndarray, np.ndarray]:
        """Return per-sweep (round_trip, amplitude) arrays of length n."""
        rt = np.broadcast_to(
            np.asarray(self.round_trip_m, dtype=np.float64), (n_sweeps,)
        )
        amp = np.broadcast_to(
            np.asarray(self.amplitude, dtype=np.float64), (n_sweeps,)
        )
        return rt, amp


class SweepSynthesizer:
    """Generates per-sweep complex spectra for one receive antenna.

    Args:
        config: FMCW sweep parameters.
        noise: receiver noise model (thermal floor + phase jitter).
        max_range_m: spectra are cropped to bins covering this round-trip
            range; everything the pipeline needs lives below 30 m.
        kernel_halfwidth: Dirichlet kernel window, in bins, written per
            path. 8 bins capture >99.9% of a tone's energy.
        window: "hann" (default) or "rect". Windowing the sweep before
            the FFT suppresses spectral sidelobes; without it, a strong
            reflector's -13 dB Dirichlet sidelobes out-shout weaker and
            *closer* reflectors and corrupt the bottom contour.
    """

    def __init__(
        self,
        config: FMCWConfig,
        noise: NoiseModel,
        max_range_m: float = 30.0,
        kernel_halfwidth: int = 8,
        window: str = "hann",
    ) -> None:
        if window not in ("hann", "rect"):
            raise ValueError("window must be 'hann' or 'rect'")
        self.config = config
        self.noise = noise
        self.axis: RangeAxis = range_axis(config)
        self.num_bins = self.axis.crop_bins(max_range_m)
        self.kernel_halfwidth = kernel_halfwidth
        self.window = window
        self._n_samples = config.samples_per_sweep

    def carrier_phase(self, round_trip_m: np.ndarray) -> np.ndarray:
        """Beat-tone phase of a path at sweep start (drives decorrelation).

        Matches the dechirped time-domain model exactly: mixing the
        received chirp with the transmitted one leaves a phase of
        ``2 pi f0 tau - pi slope tau^2`` (carrier term plus the small
        residual video phase). The carrier term rotates a full turn for
        every ~5.4 cm of round-trip change — the decorrelation that lets
        a moving body survive background subtraction.
        """
        tau = np.asarray(round_trip_m) / constants.SPEED_OF_LIGHT
        return (
            2.0 * np.pi * self.config.start_hz * tau
            - np.pi * self.config.slope_hz_per_s * tau**2
        )

    def synthesize(
        self,
        paths: list[Path],
        n_sweeps: int,
        rng: np.random.Generator,
        add_noise: bool = True,
    ) -> np.ndarray:
        """Produce the spectrogram block of shape ``(n_sweeps, num_bins)``.

        Each path contributes ``amp * D(bin - bin_p) * exp(j phase_p)``
        within ``kernel_halfwidth`` bins of its true fractional bin; the
        thermal floor adds circular complex Gaussian noise per bin.
        """
        spectra = np.zeros((n_sweeps, self.num_bins), dtype=np.complex128)
        half = self.kernel_halfwidth
        window = np.arange(-half, half + 1)
        for path in paths:
            rt, amp = path.broadcast(n_sweeps)
            if not np.any(amp):
                continue
            frac_bin = rt / self.axis.round_trip_per_bin_m
            center = np.round(frac_bin).astype(np.int64)
            # (n_sweeps, window) absolute bin indices and kernel offsets.
            bins = center[:, None] + window[None, :]
            offsets = bins - frac_bin[:, None]
            kernel = self._kernel(offsets)
            phase = self.carrier_phase(rt) + path.phase0_rad
            contrib = amp[:, None] * np.exp(1j * phase)[:, None] * kernel
            valid = (bins >= 0) & (bins < self.num_bins)
            rows = np.broadcast_to(
                np.arange(n_sweeps)[:, None], bins.shape
            )[valid]
            np.add.at(spectra, (rows, bins[valid]), contrib[valid])
        if add_noise:
            spectra += self._noise_scale() * self.noise.complex_noise(
                spectra.shape, rng
            )
            jitter = self.noise.phase_jitter((n_sweeps, 1), rng)
            spectra *= jitter
        return spectra

    def _kernel(self, offsets: np.ndarray) -> np.ndarray:
        r"""Leakage kernel of one tone, honoring the analysis window.

        The Hann window ``0.5 - 0.25 e^{j2\pi n/N} - 0.25 e^{-j2\pi n/N}``
        turns into the exact three-term Dirichlet combination
        ``0.5 D(d) - 0.25 D(d-1) - 0.25 D(d+1)`` (the phase convention of
        :func:`dirichlet_kernel` carries the minus signs), rescaled by the
        window's coherent gain (0.5) so a unit tone still peaks at 1.0.
        """
        if self.window == "rect":
            return dirichlet_kernel(offsets, self._n_samples)
        combo = (
            0.5 * dirichlet_kernel(offsets, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets - 1.0, self._n_samples)
            - 0.25 * dirichlet_kernel(offsets + 1.0, self._n_samples)
        )
        return combo / 0.5

    def _noise_scale(self) -> float:
        """Noise amplification of the window (ENBW; 1.5 for Hann).

        With the coherent-gain rescale applied to signals, per-bin noise
        power grows by the window's equivalent noise bandwidth.
        """
        return float(np.sqrt(1.5)) if self.window == "hann" else 1.0

    def range_bins_m(self) -> np.ndarray:
        """Round-trip distance of each retained bin, shape ``(num_bins,)``."""
        return self.axis.round_trips_m[: self.num_bins]
