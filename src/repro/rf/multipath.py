"""Static clutter and dynamic multipath synthesis (paper Sections 4.2-4.3).

Two distinct phenomena corrupt the spectrogram:

* **Static multipath** ("the Flash Effect"): walls and furniture reflect
  far more strongly than a human, producing the horizontal stripes of
  Fig. 3(a). Their TOF is constant, so background subtraction removes
  them (Section 4.2).
* **Dynamic multipath**: signals that bounce off the human *and then* off
  a wall. Their TOF changes with the human, so they survive background
  subtraction — but they always travel a *longer* path than the direct
  body reflection, which is why tracking the bottom contour defeats them
  (Section 4.3).

Dynamic multipath is generated with the image method: reflecting the
receive antenna across each wall plane yields a virtual antenna; the
body -> wall -> Rx path length equals the body -> image distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry.vec import Vec3


@dataclass(frozen=True)
class StaticClutter:
    """A set of stationary reflectors (walls, furniture, fixtures).

    Attributes:
        round_trips_m: round-trip distance of each clutter path.
        amplitudes: linear voltage amplitude of each path.
        phases_rad: carrier phase of each path.
    """

    round_trips_m: np.ndarray
    amplitudes: np.ndarray
    phases_rad: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.round_trips_m)
        if len(self.amplitudes) != n or len(self.phases_rad) != n:
            raise ValueError("clutter arrays must have matching lengths")

    @property
    def num_reflectors(self) -> int:
        """Number of static clutter paths."""
        return len(self.round_trips_m)


def make_static_clutter(
    rng: np.random.Generator,
    num_reflectors: int,
    min_round_trip_m: float = 2.0,
    max_round_trip_m: float = 28.0,
    human_amplitude: float = 1.0,
    flash_factor_db: tuple[float, float] = (10.0, 30.0),
) -> StaticClutter:
    """Synthesize static clutter 10-30 dB *stronger* than the human echo.

    "Typically, reflections from walls and furniture are much stronger
    than reflections from a human" (Section 4.2). ``human_amplitude``
    anchors the scale: each clutter path is drawn ``flash_factor_db``
    above it, at a uniform round-trip distance.
    """
    if num_reflectors <= 0:
        return StaticClutter(
            round_trips_m=np.empty(0),
            amplitudes=np.empty(0),
            phases_rad=np.empty(0),
        )
    lo_db, hi_db = flash_factor_db
    round_trips = rng.uniform(min_round_trip_m, max_round_trip_m, num_reflectors)
    boost_db = rng.uniform(lo_db, hi_db, num_reflectors)
    amplitudes = human_amplitude * 10.0 ** (boost_db / 20.0)
    phases = rng.uniform(0.0, 2.0 * np.pi, num_reflectors)
    return StaticClutter(
        round_trips_m=np.sort(round_trips),
        amplitudes=amplitudes[np.argsort(round_trips)],
        phases_rad=phases,
    )


def mirror_point(point: np.ndarray, wall_point: np.ndarray, wall_normal: np.ndarray) -> np.ndarray:
    """Mirror a point across a wall plane (the image method)."""
    p = np.asarray(point, dtype=np.float64)
    n = np.asarray(wall_normal, dtype=np.float64)
    n = n / np.linalg.norm(n)
    d = np.dot(p - np.asarray(wall_point, dtype=np.float64), n)
    return p - 2.0 * d * n


@dataclass(frozen=True)
class MultipathImage:
    """A virtual receive antenna created by one wall bounce.

    The dynamic multipath path length for a body at ``p`` is
    ``|p - tx| + |p - image_position|``, always greater than or equal to
    the direct ``|p - tx| + |p - rx|`` (triangle inequality through the
    bounce point) — the invariant the bottom-contour tracker relies on.
    """

    image_position: np.ndarray
    reflection_loss_db: float
    wall_name: str = "wall"


def mirror_images(
    rx_position: np.ndarray,
    walls: Sequence[tuple[np.ndarray, np.ndarray, str]],
    reflection_loss_db: float = 6.0,
) -> list[MultipathImage]:
    """Build one virtual antenna per wall for a given receiver.

    ``walls`` is a sequence of ``(point_on_wall, normal, name)``. Bounce
    paths lose ``reflection_loss_db`` relative to a specular mirror.
    """
    images = []
    for wall_point, wall_normal, name in walls:
        images.append(
            MultipathImage(
                image_position=mirror_point(rx_position, wall_point, wall_normal),
                reflection_loss_db=reflection_loss_db,
                wall_name=name,
            )
        )
    return images


def default_side_walls(
    room_width_m: float = 8.0,
    room_depth_m: float = 12.0,
) -> list[tuple[np.ndarray, np.ndarray, str]]:
    """Side/back wall planes of a generic room centered on the device.

    Returns ``(point, normal, name)`` triples for the left, right and back
    walls, which produce the dominant body->wall->device bounce paths.
    """
    half = room_width_m / 2.0
    return [
        (Vec3(-half, 0.0, 0.0), Vec3(1.0, 0.0, 0.0), "left"),
        (Vec3(+half, 0.0, 0.0), Vec3(-1.0, 0.0, 0.0), "right"),
        (Vec3(0.0, room_depth_m, 0.0), Vec3(0.0, -1.0, 0.0), "back"),
    ]
