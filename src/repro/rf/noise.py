"""Receiver noise models: thermal floor, noise figure, phase noise.

The paper's accuracy analysis notes that Eq. 3's resolution "neglects the
impact of noise" and that the practical system is noise-limited. We model
the receive chain's noise with the standard ``kTB`` thermal floor raised
by the LNA noise figure, plus a small multiplicative phase-noise term on
each path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants


def db_to_power(db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(db, dtype=np.float64) / 10.0)


def power_to_db(power: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to decibels."""
    return 10.0 * np.log10(np.asarray(power, dtype=np.float64))


def db_to_amplitude(db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a linear amplitude (voltage) ratio."""
    return 10.0 ** (np.asarray(db, dtype=np.float64) / 20.0)


@dataclass(frozen=True)
class NoiseModel:
    """Thermal + oscillator noise of the receive chain.

    Attributes:
        noise_figure_db: LNA/chain noise figure (dB).
        bandwidth_hz: noise bandwidth of one FFT bin (1/T_sweep).
        phase_noise_std_rad: per-sweep RMS residual phase jitter. Small
            by construction: dechirping mixes the received signal with
            the *same* chirp that produced it, so oscillator phase noise
            mostly cancels for short delays (the range-correlation
            effect); what remains is the PLL's residual jitter.
        temperature_k: physical temperature.
    """

    noise_figure_db: float = 8.0
    bandwidth_hz: float = 400.0
    phase_noise_std_rad: float = 3e-4
    temperature_k: float = constants.T0_KELVIN

    @property
    def noise_power_w(self) -> float:
        """Noise power in one FFT bin: ``k T B F`` (Watts)."""
        ktb = constants.BOLTZMANN * self.temperature_k * self.bandwidth_hz
        return float(ktb * db_to_power(self.noise_figure_db))

    @property
    def noise_amplitude(self) -> float:
        """RMS noise amplitude per complex FFT bin (sqrt of power)."""
        return float(np.sqrt(self.noise_power_w))

    def complex_noise(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Circularly-symmetric complex Gaussian noise of the floor power."""
        sigma = self.noise_amplitude / np.sqrt(2.0)
        return sigma * (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        )

    def phase_jitter(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative unit-magnitude phase jitter samples."""
        return np.exp(1j * self.phase_noise_std_rad * rng.standard_normal(shape))

    def snr_db(self, signal_power_w: float) -> float:
        """SNR of a signal against the per-bin noise floor (dB)."""
        return float(power_to_db(signal_power_w / self.noise_power_w))
