"""Time-domain front-end simulation: VCO, mixer, high-pass filter, ADC.

This mirrors the analog daughterboard of paper Fig. 7. The transmitted
chirp comes from a feedback-linearized VCO (we keep a small residual
quadratic nonlinearity); the received signal is a sum of delayed copies;
the mixer multiplies the two, leaving a baseband beat tone per path; a
high-pass filter suppresses the DC/Tx-leakage ridge; and the 1 MS/s ADC
quantizes the result.

The time-domain model is exact but slow, so the benchmarks default to the
spectrum-domain synthesizer in :mod:`repro.rf.receiver`; unit tests cross
check the two models against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import signal as sp_signal

from .. import constants
from ..config import FMCWConfig


@dataclass(frozen=True)
class TimeDomainPath:
    """A single propagation path for the exact time-domain model.

    Attributes:
        round_trip_m: Tx -> reflector -> Rx path length at sweep start.
        amplitude: linear voltage amplitude at the receiver.
    """

    round_trip_m: float
    amplitude: float


def vco_phase(
    t: np.ndarray, config: FMCWConfig, nonlinearity: float = 0.0
) -> np.ndarray:
    """Integrated phase of the swept carrier at times ``t`` within a sweep.

    The phase is the integral of the instantaneous frequency
    ``f0 + slope * t`` plus the quadratic bow term of the residual VCO
    nonlinearity (integrated analytically).
    """
    t = np.asarray(t, dtype=np.float64)
    tau = t / config.sweep_duration_s
    linear = config.start_hz * t + 0.5 * config.slope_hz_per_s * t**2
    # Integral of 4 * nl * B * tau * (1 - tau) dt.
    bow = (
        nonlinearity
        * config.bandwidth_hz
        * config.sweep_duration_s
        * (2.0 * tau**2 - (4.0 / 3.0) * tau**3)
    )
    return 2.0 * np.pi * (linear + bow)


def synthesize_sweep_time_domain(
    paths: Sequence[TimeDomainPath],
    config: FMCWConfig,
    nonlinearity: float = 0.0,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Produce the complex baseband samples of one sweep, post-mixer.

    Mixing the received chirp (delayed by ``tof``) against the transmitted
    chirp leaves ``exp(j (phi(t) - phi(t - tof)))`` per path, whose
    instantaneous frequency is the beat tone ``slope * tof`` of Eq. 1.
    """
    n = config.samples_per_sweep
    t = np.arange(n) / config.sample_rate_hz
    phase_tx = vco_phase(t, config, nonlinearity)
    out = np.zeros(n, dtype=np.complex128)
    for path in paths:
        tof = path.round_trip_m / constants.SPEED_OF_LIGHT
        phase_rx = vco_phase(t - tof, config, nonlinearity)
        out += path.amplitude * np.exp(1j * (phase_tx - phase_rx))
    if noise_std > 0.0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        out += (noise_std / np.sqrt(2.0)) * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )
    return out


def high_pass_filter(
    samples: np.ndarray,
    config: FMCWConfig,
    cutoff_hz: float = 1.0e3,
    order: int = 4,
) -> np.ndarray:
    """High-pass the baseband to suppress Tx leakage near DC (Fig. 7).

    A reflector closer than ``cutoff / slope * C`` round trip is inside the
    stopband; with the paper's parameters a 1 kHz cutoff corresponds to a
    44 cm round trip, i.e. only the antenna-coupling ridge is removed.
    """
    nyquist = config.sample_rate_hz / 2.0
    sos = sp_signal.butter(order, cutoff_hz / nyquist, btype="high", output="sos")
    return sp_signal.sosfilt(sos, samples)


def adc_quantize(
    samples: np.ndarray, bits: int, full_scale: float
) -> np.ndarray:
    """Quantize complex samples to a ``bits``-deep ADC with clipping.

    Models the LFRX-LF capture path. Real and imaginary rails are
    quantized independently, as two ADC channels would.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if full_scale <= 0:
        raise ValueError("full_scale must be positive")
    levels = 2 ** (bits - 1)
    step = full_scale / levels

    def quantize_rail(x: np.ndarray) -> np.ndarray:
        clipped = np.clip(x, -full_scale, full_scale - step)
        return np.round(clipped / step) * step

    return quantize_rail(samples.real) + 1j * quantize_rail(samples.imag)


def sweep_spectrum(samples: np.ndarray, window: str = "hann") -> np.ndarray:
    """Windowed FFT of one sweep, scaled so a unit tone peaks at 1.0.

    Only the non-negative-frequency half is returned (beat frequencies of
    physical reflections are positive). The Hann window trades the -13 dB
    Dirichlet sidelobes for -31 dB ones so that a strong far reflector
    cannot masquerade as a *closer* one in the bottom-contour stage; the
    coherent-gain rescale keeps tone peaks at their input amplitude.
    """
    n = len(samples)
    if window == "hann":
        taper = np.hanning(n)
        scale = 1.0 / taper.mean()
        samples = samples * taper
    elif window == "rect":
        scale = 1.0
    else:
        raise ValueError("window must be 'hann' or 'rect'")
    spectrum = scale * np.fft.fft(samples) / n
    return spectrum[: n // 2 + 1]
