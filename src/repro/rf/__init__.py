"""RF substrate: FMCW math and a physics-level front-end simulator.

The paper built an analog FMCW daughterboard for USRP because no
off-the-shelf radio performs FMCW. This package is our software substitute
(see DESIGN.md Section 2): it models sweep generation (with residual VCO
nonlinearity), propagation (radar equation, walls, multipath), the receive
chain (LNA noise figure, mixer/dechirp, high-pass filter) and the 1 MS/s
ADC, and emits per-sweep baseband spectra identical in structure to what
the hardware pipeline would FFT.
"""

from .fmcw import RangeAxis, beat_frequency, dirichlet_kernel, range_axis
from .noise import NoiseModel, db_to_power, power_to_db
from .propagation import PathGain, radar_amplitude, wall_crossings
from .multipath import StaticClutter, make_static_clutter, mirror_images
from .receiver import Path, SweepSynthesizer

__all__ = [
    "RangeAxis",
    "beat_frequency",
    "dirichlet_kernel",
    "range_axis",
    "NoiseModel",
    "db_to_power",
    "power_to_db",
    "PathGain",
    "radar_amplitude",
    "wall_crossings",
    "StaticClutter",
    "make_static_clutter",
    "mirror_images",
    "Path",
    "SweepSynthesizer",
]
