"""FMCW chirp mathematics (paper Section 4.1).

FMCW transmits a narrowband tone whose carrier sweeps linearly across a
wide band. A reflection delayed by TOF appears, after mixing with the
transmitted chirp, as a baseband tone at ``beat = slope * TOF`` (Eq. 1).
An FFT over one sweep therefore resolves reflectors in range with
resolution ``C / 2B`` (Eq. 3). This module holds those relations plus the
FFT range axis and the Dirichlet (periodic sinc) kernel that describes how
a single path's energy spreads across FFT bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..config import FMCWConfig


def beat_frequency(round_trip_m: float | np.ndarray, config: FMCWConfig) -> float | np.ndarray:
    """Baseband beat frequency for a round-trip path length (Eq. 1 and 4).

    ``TOF = round_trip / C`` and ``beat = slope * TOF``.
    """
    tof = np.asarray(round_trip_m, dtype=np.float64) / constants.SPEED_OF_LIGHT
    out = config.slope_hz_per_s * tof
    return float(out) if np.isscalar(round_trip_m) else out


def round_trip_from_beat(beat_hz: float | np.ndarray, config: FMCWConfig) -> float | np.ndarray:
    """Inverse of :func:`beat_frequency`: round-trip distance from beat."""
    out = np.asarray(beat_hz, dtype=np.float64) / config.slope_hz_per_s * constants.SPEED_OF_LIGHT
    return float(out) if np.isscalar(beat_hz) else out


@dataclass(frozen=True)
class RangeAxis:
    """Mapping between FFT bins and round-trip distance.

    The pipeline takes a real FFT of each 2.5 ms sweep (2500 samples at
    1 MS/s), so bin spacing is ``1 / T_sweep = 400 Hz``, i.e. one bin per
    ``C / B ~= 17.7 cm`` of *round-trip* distance (= 8.87 cm one-way, the
    Eq. 3 resolution).

    Attributes:
        num_bins: number of rFFT bins (``N // 2 + 1``).
        bin_spacing_hz: frequency width of one bin.
        round_trip_per_bin_m: round-trip distance per bin.
    """

    num_bins: int
    bin_spacing_hz: float
    round_trip_per_bin_m: float

    @property
    def round_trips_m(self) -> np.ndarray:
        """Round-trip distance at each bin center, shape ``(num_bins,)``."""
        return np.arange(self.num_bins) * self.round_trip_per_bin_m

    @property
    def max_round_trip_m(self) -> float:
        """Round-trip distance of the last (Nyquist) bin."""
        return (self.num_bins - 1) * self.round_trip_per_bin_m

    def bin_of(self, round_trip_m: float) -> float:
        """Fractional bin index of a round-trip distance."""
        return round_trip_m / self.round_trip_per_bin_m

    def round_trip_of(self, bin_index: float | np.ndarray) -> float | np.ndarray:
        """Round-trip distance at a (possibly fractional) bin index."""
        out = np.asarray(bin_index, dtype=np.float64) * self.round_trip_per_bin_m
        return float(out) if np.isscalar(bin_index) else out

    def crop_bins(self, max_round_trip_m: float) -> int:
        """Number of bins needed to cover ranges up to ``max_round_trip_m``."""
        needed = int(np.ceil(max_round_trip_m / self.round_trip_per_bin_m)) + 1
        return min(needed, self.num_bins)


def range_axis(config: FMCWConfig) -> RangeAxis:
    """Build the :class:`RangeAxis` for a sweep configuration."""
    n = config.samples_per_sweep
    num_bins = n // 2 + 1
    bin_hz = config.sample_rate_hz / n
    per_bin = bin_hz / config.slope_hz_per_s * constants.SPEED_OF_LIGHT
    return RangeAxis(
        num_bins=num_bins,
        bin_spacing_hz=bin_hz,
        round_trip_per_bin_m=per_bin,
    )


def dirichlet_kernel(offsets: np.ndarray, n_samples: int) -> np.ndarray:
    """Normalized Dirichlet kernel D(delta) of an N-point DFT.

    ``offsets`` is the distance (in bins) between a tone's true fractional
    bin and the bin being evaluated. Returns complex leakage coefficients
    with ``D(0) = 1``; the magnitude falls off as ``sin(pi d) / (N sin(pi
    d / N))`` and the phase term accounts for the half-sample offset of a
    non-integer tone. Vectorized over any shape.
    """
    d = np.asarray(offsets, dtype=np.float64)
    num = np.sin(np.pi * d)
    den = n_samples * np.sin(np.pi * d / n_samples)
    with np.errstate(invalid="ignore", divide="ignore"):
        mag = np.where(np.abs(den) < 1e-30, 1.0, num / np.where(den == 0, 1.0, den))
    # Integer offsets give exact zeros except at d == 0.
    mag = np.where(np.isclose(d % n_samples, 0.0, atol=1e-12), 1.0, mag)
    phase = np.exp(-1j * np.pi * d * (n_samples - 1) / n_samples)
    return mag * phase


def sweep_instantaneous_frequency(
    t: np.ndarray, config: FMCWConfig, nonlinearity: float = 0.0
) -> np.ndarray:
    """Instantaneous transmitted frequency over one sweep (Fig. 2).

    ``nonlinearity`` is the residual fractional bow left after the
    phase-frequency-detector feedback loop (Section 7): we model it as a
    quadratic deviation peaking mid-sweep at ``nonlinearity * B``.
    """
    t = np.asarray(t, dtype=np.float64)
    tau = np.clip(t / config.sweep_duration_s, 0.0, 1.0)
    linear = config.start_hz + config.bandwidth_hz * tau
    bow = nonlinearity * config.bandwidth_hz * 4.0 * tau * (1.0 - tau)
    return linear + bow
