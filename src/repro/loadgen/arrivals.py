"""Open-loop arrival processes: when do sessions show up?

Production traffic is *open-loop*: users arrive on their own clock,
indifferent to whether the serving tier keeps up. Each process here is
a deterministic, seeded model of session-arrival intensity
:math:`\\lambda(t)`; concrete arrival times are drawn by Lewis-Shedler
thinning against the process's peak rate, so the same
``(process, seed, horizon)`` always produces the same arrival sequence
— the property every SLO artifact downstream leans on (same seed ->
identical JSON).

Three intensity shapes cover the ROADMAP's "heavy, bursty traffic":

* :class:`PoissonArrivals` — homogeneous baseline load;
* :class:`DiurnalArrivals` — a sinusoidal day/night swing;
* :class:`FlashCrowdArrivals` — a trapezoidal burst (ramp up, plateau,
  ramp down) riding on baseline load: the overload case that makes
  admission control and backpressure actually fire.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ArrivalProcess:
    """A deterministic session-arrival intensity :math:`\\lambda(t)`."""

    def rate_at(self, t_s: float) -> float:
        """Instantaneous arrival rate (sessions/s) at time ``t_s``."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` over all ``t`` (thinning)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-serializable parameters (echoed into the SLO artifact)."""
        raise NotImplementedError

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival times over ``[0, horizon_s)`` by thinning.

        Candidate arrivals are drawn from a homogeneous Poisson process
        at :meth:`peak_rate` and accepted with probability
        ``rate_at(t) / peak_rate`` — the standard exact simulation of an
        inhomogeneous Poisson process. Deterministic in ``rng``'s seed.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        lam = self.peak_rate()
        if lam <= 0:
            return np.empty(0)
        times = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / lam)
            if t >= horizon_s:
                break
            if rng.uniform() * lam <= self.rate_at(t):
                times.append(t)
        return np.asarray(times)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a constant rate.

    Attributes:
        rate_hz: mean session arrivals per second.
    """

    rate_hz: float

    def __post_init__(self) -> None:
        if self.rate_hz < 0:
            raise ValueError("rate_hz must be >= 0")

    def rate_at(self, t_s: float) -> float:
        return self.rate_hz

    def peak_rate(self) -> float:
        return self.rate_hz

    def describe(self) -> dict:
        return {"process": "poisson", "rate_hz": self.rate_hz}


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load swing around a base rate.

    :math:`\\lambda(t) = base \\cdot (1 + swing \\cdot
    \\sin(2\\pi (t + phase)/period))`, floored at zero. A ``period_s``
    far shorter than 24 h compresses the diurnal cycle into a test- or
    benchmark-sized horizon without changing its shape.

    Attributes:
        base_rate_hz: mean arrivals per second.
        swing: relative amplitude of the swing (0..1 keeps the rate
            nonnegative everywhere; larger values clip at zero).
        period_s: one full day/night cycle.
        phase_s: time offset of the cycle start.
    """

    base_rate_hz: float
    swing: float = 0.8
    period_s: float = 60.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_hz < 0:
            raise ValueError("base_rate_hz must be >= 0")
        if self.swing < 0:
            raise ValueError("swing must be >= 0")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def rate_at(self, t_s: float) -> float:
        phase = 2.0 * np.pi * (t_s + self.phase_s) / self.period_s
        return max(self.base_rate_hz * (1.0 + self.swing * np.sin(phase)), 0.0)

    def peak_rate(self) -> float:
        return self.base_rate_hz * (1.0 + self.swing)

    def describe(self) -> dict:
        return {
            "process": "diurnal",
            "base_rate_hz": self.base_rate_hz,
            "swing": self.swing,
            "period_s": self.period_s,
            "phase_s": self.phase_s,
        }


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalProcess):
    """A trapezoidal flash crowd riding on baseline Poisson load.

    Outside the flash window the rate is ``base_rate_hz``; over
    ``ramp_s`` it climbs linearly to ``flash_rate_hz``, holds for
    ``flash_duration_s``, and ramps back down — the canonical
    "everyone opens the app at once" overload that admission control
    exists for.

    Attributes:
        base_rate_hz: steady-state arrivals per second.
        flash_rate_hz: plateau arrivals per second during the flash.
        flash_start_s: when the up-ramp begins.
        flash_duration_s: plateau length at the flash rate.
        ramp_s: up- and down-ramp duration.
    """

    base_rate_hz: float
    flash_rate_hz: float
    flash_start_s: float
    flash_duration_s: float
    ramp_s: float = 1.0

    def __post_init__(self) -> None:
        if self.base_rate_hz < 0 or self.flash_rate_hz < 0:
            raise ValueError("rates must be >= 0")
        if self.flash_duration_s < 0 or self.ramp_s < 0:
            raise ValueError("flash_duration_s and ramp_s must be >= 0")

    def rate_at(self, t_s: float) -> float:
        t0 = self.flash_start_s
        t1 = t0 + self.ramp_s
        t2 = t1 + self.flash_duration_s
        t3 = t2 + self.ramp_s
        if t_s < t0 or t_s >= t3:
            return self.base_rate_hz
        if t_s < t1:  # up-ramp
            frac = (t_s - t0) / self.ramp_s if self.ramp_s else 1.0
        elif t_s < t2:  # plateau
            frac = 1.0
        else:  # down-ramp
            frac = (t3 - t_s) / self.ramp_s if self.ramp_s else 1.0
        return self.base_rate_hz + frac * (
            self.flash_rate_hz - self.base_rate_hz
        )

    def peak_rate(self) -> float:
        return max(self.base_rate_hz, self.flash_rate_hz)

    def describe(self) -> dict:
        return {
            "process": "flash",
            "base_rate_hz": self.base_rate_hz,
            "flash_rate_hz": self.flash_rate_hz,
            "flash_start_s": self.flash_start_s,
            "flash_duration_s": self.flash_duration_s,
            "ramp_s": self.ramp_s,
        }


def arrival_process(name: str, **params) -> ArrivalProcess:
    """Build an arrival process by name (the CLI/benchmark factory).

    Args:
        name: ``"poisson"``, ``"diurnal"``, or ``"flash"``.
        **params: forwarded to the process constructor.
    """
    kinds = {
        "poisson": PoissonArrivals,
        "diurnal": DiurnalArrivals,
        "flash": FlashCrowdArrivals,
    }
    if name not in kinds:
        raise ValueError(
            f"unknown arrival process {name!r} "
            f"(expected one of {sorted(kinds)})"
        )
    return kinds[name](**params)
