"""The SLO ledger: everything a load run owes the operator, in one JSON.

Latency here is **virtual**: the harness runs on a simulated session
clock (one step per frame period), a frame's latency is the number of
steps between its producer offering it and the engine consuming it,
scaled to seconds. That keeps every number in the artifact a pure
function of (workload seed, engine configuration, capacity model) —
same seed, byte-identical JSON — which is what lets CI trend the
artifact and pin determinism. Wall-clock throughput belongs to the
benchmarks (``bench_serving.py``), not this ledger.

The report covers the paper's Section 7 budget (75 ms) end to end:
p50/p95/p99/max latency against it, goodput (within-budget consumed
frames/s) vs offered load, admission-rejection and frame-drop rates,
and queue-depth / live-session / slot-occupancy time series (decimated
to a bounded length so the artifact stays small at any horizon).
"""

from __future__ import annotations

import numpy as np

#: The paper's Section 7 realtime budget.
DEFAULT_BUDGET_S = 0.075

#: Ceiling on the length of each emitted time series.
MAX_SERIES_POINTS = 256


def _percentiles(values: list[float]) -> dict:
    """p50/p95/p99/max/mean of a latency list, in milliseconds."""
    if not values:
        nan = float("nan")
        return {
            "count": 0, "p50_ms": nan, "p95_ms": nan, "p99_ms": nan,
            "max_ms": nan, "mean_ms": nan,
        }
    arr = np.asarray(values)
    return {
        "count": len(values),
        "p50_ms": 1e3 * float(np.percentile(arr, 50)),
        "p95_ms": 1e3 * float(np.percentile(arr, 95)),
        "p99_ms": 1e3 * float(np.percentile(arr, 99)),
        "max_ms": 1e3 * float(np.max(arr)),
        "mean_ms": 1e3 * float(np.mean(arr)),
    }


def _decimate(series: list, stride: int) -> list:
    """Every ``stride``-th sample (the series' deterministic thumbnail)."""
    return list(series[::stride])


class _KindTally:
    """Per-spec-kind counters (sessions and frames)."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.offered = 0
        self.dropped = 0
        self.consumed = 0
        self.latencies_s: list[float] = []

    def report(self, budget_s: float) -> dict:
        out = {
            "sessions_admitted": self.admitted,
            "sessions_rejected": self.rejected,
            "sessions_completed": self.completed,
            "frames_offered": self.offered,
            "frames_dropped": self.dropped,
            "frames_consumed": self.consumed,
            "latency": _percentiles(self.latencies_s),
        }
        if self.latencies_s:
            arr = np.asarray(self.latencies_s)
            out["within_budget_fraction"] = float(np.mean(arr <= budget_s))
        else:
            out["within_budget_fraction"] = float("nan")
        return out


class SLOLedger:
    """Accumulate one load run's SLO evidence; emit the JSON artifact.

    The harness feeds it events (admissions, rejections, offers, drops,
    consumptions with virtual latency, completions) plus one
    :meth:`sample` per step; :meth:`report` folds everything into the
    deterministic artifact dict.

    Args:
        step_dt_s: virtual seconds per harness step (the frame period).
        budget_s: the latency SLO (default: the paper's 75 ms).
    """

    def __init__(
        self, step_dt_s: float, budget_s: float = DEFAULT_BUDGET_S
    ) -> None:
        if step_dt_s <= 0 or budget_s <= 0:
            raise ValueError("step_dt_s and budget_s must be positive")
        self.step_dt_s = step_dt_s
        self.budget_s = budget_s
        self.sessions_planned = 0
        self.sessions_evicted_at_horizon = 0
        self.frames_emitted = 0
        self.frames_abandoned = 0
        self._kinds: dict[str, _KindTally] = {}
        self._latencies_s: list[float] = []
        self._queue_depth: list[int] = []
        self._live_sessions: list[int] = []
        self._slots_attached: list[int] = []
        self._offered_per_step: list[int] = []
        self._consumed_per_step: list[int] = []

    def _kind(self, kind: str) -> _KindTally:
        tally = self._kinds.get(kind)
        if tally is None:
            tally = self._kinds[kind] = _KindTally()
        return tally

    # -- session events ----------------------------------------------------

    def session_planned(self, kind: str) -> None:
        """A workload session reached its arrival time."""
        self.sessions_planned += 1

    def session_admitted(self, kind: str) -> None:
        """The engine accepted an arriving session."""
        self._kind(kind).admitted += 1

    def session_rejected(self, kind: str) -> None:
        """Admission control refused an arriving session."""
        self._kind(kind).rejected += 1

    def session_completed(self, kind: str, frames_emitted: int) -> None:
        """A session produced its full lifetime and closed cleanly."""
        tally = self._kind(kind)
        tally.completed += 1
        self.frames_emitted += frames_emitted

    def session_evicted(
        self, kind: str, frames_emitted: int, frames_pending: int
    ) -> None:
        """The horizon ended with the session still live (evicted)."""
        self.sessions_evicted_at_horizon += 1
        self.frames_emitted += frames_emitted
        self.frames_abandoned += frames_pending

    # -- frame events ------------------------------------------------------

    def frame_offered(self, kind: str, accepted: bool) -> None:
        """A producer offered one frame; ``accepted=False`` is a drop."""
        tally = self._kind(kind)
        tally.offered += 1
        if not accepted:
            tally.dropped += 1

    def frame_consumed(self, kind: str, latency_s: float) -> None:
        """The engine consumed one accepted frame after ``latency_s``."""
        tally = self._kind(kind)
        tally.consumed += 1
        tally.latencies_s.append(latency_s)
        self._latencies_s.append(latency_s)

    # -- per-step sampling -------------------------------------------------

    def sample(
        self,
        queue_depth: int,
        live_sessions: int,
        slots_attached: int,
        offered: int,
        consumed: int,
    ) -> None:
        """Record one step's queue/occupancy/flow observation."""
        self._queue_depth.append(queue_depth)
        self._live_sessions.append(live_sessions)
        self._slots_attached.append(slots_attached)
        self._offered_per_step.append(offered)
        self._consumed_per_step.append(consumed)

    # -- the artifact ------------------------------------------------------

    def report(self, context: dict | None = None) -> dict:
        """The deterministic SLO artifact for this run.

        Args:
            context: extra JSON-serializable keys merged in under
                ``"context"`` (workload echo, engine mode, capacity).
        """
        steps = len(self._queue_depth)
        horizon_s = steps * self.step_dt_s
        offered = sum(t.offered for t in self._kinds.values())
        dropped = sum(t.dropped for t in self._kinds.values())
        consumed = sum(t.consumed for t in self._kinds.values())
        admitted = sum(t.admitted for t in self._kinds.values())
        rejected = sum(t.rejected for t in self._kinds.values())
        completed = sum(t.completed for t in self._kinds.values())
        arrived = admitted + rejected
        lat = np.asarray(self._latencies_s) if self._latencies_s else None
        within = (
            int(np.sum(lat <= self.budget_s)) if lat is not None else 0
        )
        stride = max(1, -(-steps // MAX_SERIES_POINTS))  # ceil division
        return {
            "schema": "load-slo.v1",
            "budget_ms": 1e3 * self.budget_s,
            "step_dt_ms": 1e3 * self.step_dt_s,
            "steps": steps,
            "horizon_s": horizon_s,
            "context": dict(context or {}),
            "sessions": {
                "arrived": arrived,
                "admitted": admitted,
                "rejected": rejected,
                "completed": completed,
                "evicted_at_horizon": self.sessions_evicted_at_horizon,
                "rejection_rate": (
                    rejected / arrived if arrived else 0.0
                ),
            },
            "frames": {
                "offered": offered,
                "dropped": dropped,
                "consumed": consumed,
                "emitted": self.frames_emitted,
                "abandoned_in_queue": self.frames_abandoned,
                "drop_rate": dropped / offered if offered else 0.0,
            },
            "throughput": {
                "offered_fps": offered / horizon_s if horizon_s else 0.0,
                "consumed_fps": consumed / horizon_s if horizon_s else 0.0,
                "goodput_fps": within / horizon_s if horizon_s else 0.0,
            },
            "latency": _percentiles(self._latencies_s),
            "within_budget_fraction": (
                float(np.mean(lat <= self.budget_s))
                if lat is not None
                else float("nan")
            ),
            "per_kind": {
                kind: tally.report(self.budget_s)
                for kind, tally in sorted(self._kinds.items())
            },
            "series": {
                "stride_steps": stride,
                "queue_depth": _decimate(self._queue_depth, stride),
                "live_sessions": _decimate(self._live_sessions, stride),
                "slots_attached": _decimate(self._slots_attached, stride),
                "offered": _decimate(self._offered_per_step, stride),
                "consumed": _decimate(self._consumed_per_step, stride),
                "queue_depth_max": (
                    max(self._queue_depth) if self._queue_depth else 0
                ),
                "live_sessions_max": (
                    max(self._live_sessions) if self._live_sessions else 0
                ),
            },
        }
