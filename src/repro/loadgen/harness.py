"""The open-loop load harness: workload in, SLO artifact out.

:class:`LoadHarness` drives a :class:`~repro.serve.ServingEngine` on a
virtual session clock, one step per frame period. Each step it

1. **admits** every workload session whose arrival time has come —
   through :meth:`ServingEngine.try_admit
   <repro.serve.ServingEngine.try_admit>`, so a memory governor or
   shard budget can refuse it (counted, not retried: open-loop users
   who are turned away leave);
2. **produces** one frame per live session *on the session's own
   clock*: a full bounded queue drops the frame (counted — the
   backpressure the closed-loop benchmarks never exercise);
3. **serves** under a capacity model: the engine ticks until queues
   are empty or the step's frame budget (``capacity_frames_per_step``)
   is spent. Offered load above capacity therefore backs queues up,
   latency climbs, drops and rejections begin — exactly the overload
   regime the SLO ledger exists to measure;
4. **accounts**: consumed frames get their virtual queue-wait +
   service latency, finished sessions close, and the ledger samples
   queue depth and occupancy.

Determinism: every number in the resulting artifact is a pure function
of (workload, specs, capacity, engine configuration). Wall-clock never
enters the ledger, so the same seed produces a byte-identical SLO JSON
whether the run was fast or slow, in-process or distributed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..serve.engine import ServingEngine
from ..serve.session import Session, SessionSpec
from .slo import DEFAULT_BUDGET_S, SLOLedger
from .workload import SessionPlan, SyntheticFrameSource, Workload, next_blocks


@dataclass
class _LiveSession:
    """Harness bookkeeping for one admitted session."""

    session: Session
    plan: SessionPlan
    source: SyntheticFrameSource
    offered_steps: deque
    produced: int = 0
    consumed: int = 0


class LoadHarness:
    """Drive one engine through one workload; collect the SLO ledger.

    Args:
        engine: the serving engine under load (in-process or
            distributed — the harness is identical either way).
        workload: the expanded session plan to realize.
        specs: spec per workload ``kind`` (e.g. ``{"single": ...}``).
            Every spec must share one frame period — it is the virtual
            clock.
        capacity_frames_per_step: frames the engine may consume per
            step — the service-capacity model that makes overload
            *possible* in virtual time. Enforced as a token bucket:
            each step deposits this many frame-tokens, and a tick
            (which atomically serves every ready session) spends its
            consumed count, going into *debt* on overshoot — so when
            offered load exceeds capacity, service is withheld on
            subsequent steps until tokens recover, queues back up, and
            virtual latency actually climbs. None means unbounded (the
            engine always keeps up; queues never grow).
        budget_s: the latency SLO (default: the paper's 75 ms).
    """

    def __init__(
        self,
        engine: ServingEngine,
        workload: Workload,
        specs: dict[str, SessionSpec],
        capacity_frames_per_step: int | None = None,
        budget_s: float = DEFAULT_BUDGET_S,
    ) -> None:
        if capacity_frames_per_step is not None and capacity_frames_per_step < 1:
            raise ValueError("capacity_frames_per_step must be >= 1")
        kinds = {plan.kind for plan in workload.plans}
        missing = kinds - set(specs)
        if missing:
            raise ValueError(
                f"workload kinds {sorted(missing)} have no spec in `specs`"
            )
        dts = {
            spec.config.pipeline.sweeps_per_frame
            * spec.config.fmcw.sweep_duration_s
            for spec in specs.values()
        }
        if len(dts) > 1:
            raise ValueError(
                "all specs must share one frame period (it is the "
                f"harness's virtual clock); got {sorted(dts)}"
            )
        self.engine = engine
        self.workload = workload
        self.specs = specs
        self.capacity = capacity_frames_per_step
        self.step_dt_s = dts.pop() if dts else 0.0125
        self.ledger = SLOLedger(self.step_dt_s, budget_s=budget_s)
        self._tokens = 0.0  # service token bucket (frames)

    # -- step phases -------------------------------------------------------

    def _admit_due(
        self, pending: deque, now_s: float, live: dict[int, _LiveSession]
    ) -> None:
        while pending and pending[0].arrival_s <= now_s:
            plan = pending.popleft()
            self.ledger.session_planned(plan.kind)
            session = self.engine.try_admit(self.specs[plan.kind])
            if session is None:
                self.ledger.session_rejected(plan.kind)
                continue
            self.ledger.session_admitted(plan.kind)
            live[session.session_id] = _LiveSession(
                session=session,
                plan=plan,
                source=SyntheticFrameSource(self.specs[plan.kind], plan.seed),
                offered_steps=deque(),
            )

    def _produce(self, live: dict[int, _LiveSession], step: int) -> int:
        producing = [
            ls for ls in live.values()
            if ls.produced < ls.plan.lifetime_frames
        ]
        blocks = next_blocks([ls.source for ls in producing])
        for ls, block in zip(producing, blocks):
            ls.produced += 1
            accepted = self.engine.offer(ls.session, block)
            self.ledger.frame_offered(ls.plan.kind, accepted)
            if accepted:
                ls.offered_steps.append(step)
        return len(producing)

    def _serve(self) -> int:
        served = 0
        if self.capacity is None:
            while True:
                consumed = self.engine.tick()
                if consumed == 0:
                    return served
                served += consumed
        # Token bucket: a tick is atomic across every ready session, so
        # one tick can overshoot the step's deposit — the overshoot is
        # carried as debt and repaid by withholding service on later
        # steps, keeping the long-run rate at the configured capacity.
        self._tokens = min(self._tokens + self.capacity, float(self.capacity))
        while self._tokens > 0:
            consumed = self.engine.tick()
            if consumed == 0:
                break
            served += consumed
            self._tokens -= consumed
        return served

    def _account(self, live: dict[int, _LiveSession], step: int) -> None:
        for ls in live.values():
            done = ls.session.frames_in - len(ls.session.queue)
            while ls.consumed < done:
                offered_step = ls.offered_steps.popleft()
                self.ledger.frame_consumed(
                    ls.plan.kind, (step - offered_step + 1) * self.step_dt_s
                )
                ls.consumed += 1

    def _retire_finished(self, live: dict[int, _LiveSession]) -> None:
        finished = [
            sid
            for sid, ls in live.items()
            if ls.produced >= ls.plan.lifetime_frames
            and not ls.session.queue
        ]
        for sid in finished:
            ls = live.pop(sid)
            # The queue is empty, so close() drains nothing: retiring a
            # finished session never spends service capacity.
            result = self.engine.close(ls.session)
            self.ledger.session_completed(ls.plan.kind, result.num_frames)

    # -- the run -----------------------------------------------------------

    def run(self, drain_steps: int | None = None) -> dict:
        """Execute the workload; return the SLO artifact dict.

        Args:
            drain_steps: extra steps after the horizon during which no
                new frame is produced but service continues, letting
                queued backlog finish (default: just enough steps, at
                the configured capacity, to clear the backlog standing
                at the horizon). Sessions still live after the drain
                are evicted and their queued frames counted as
                abandoned.
        """
        pending = deque(
            sorted(self.workload.plans, key=lambda p: p.arrival_s)
        )
        live: dict[int, _LiveSession] = {}
        horizon_steps = max(
            int(round(self.workload.horizon_s / self.step_dt_s)), 1
        )

        def one_step(step: int, offered: int) -> None:
            served = self._serve()
            self._account(live, step)
            self._retire_finished(live)
            self.ledger.sample(
                queue_depth=sum(len(ls.session.queue) for ls in live.values()),
                live_sessions=len(live),
                slots_attached=self.engine.num_sessions,
                offered=offered,
                consumed=served,
            )

        for step in range(horizon_steps):
            self._admit_due(pending, step * self.step_dt_s, live)
            one_step(step, self._produce(live, step))

        if drain_steps is None:
            backlog = sum(len(ls.session.queue) for ls in live.values())
            per_step = self.capacity or max(backlog, 1)
            drain_steps = -(-backlog // per_step) + 2  # ceil, plus slack
        for extra in range(drain_steps):
            if not any(ls.session.queue for ls in live.values()):
                break
            one_step(horizon_steps + extra, 0)
        for ls in list(live.values()):
            self.ledger.session_evicted(
                ls.plan.kind,
                frames_emitted=ls.session.frames_out,
                frames_pending=len(ls.session.queue),
            )
            self.engine.evict(ls.session)
        context = {
            "workload": self.workload.describe(),
            "capacity_frames_per_step": self.capacity,
            "queue_capacity": (
                self.engine.scheduler.queue_capacity
                if self.engine.distributed
                else self.engine.manager.queue_capacity
            ),
            "workers": self.engine.workers,
            "engine": {
                "ticks": self.engine.scheduler.ticks,
                "frames_processed": self.engine.scheduler.frames_processed,
                "splits": self.engine.scheduler.splits,
                "rejoins": self.engine.scheduler.rejoins,
                "rejected_admissions": self.engine.rejected_admissions,
            },
        }
        if self.engine.admission is not None and hasattr(
            self.engine.admission, "stats"
        ):
            context["memory"] = self.engine.admission.stats()
        transport_stats = self.engine.transport_stats()
        if transport_stats is not None:
            context["transport"] = transport_stats
        stage_profile = self.engine.stage_profile().as_dict()
        if stage_profile:
            context["stage_profile"] = stage_profile
        return self.ledger.report(context)
