"""Workloads: the full deterministic plan of who arrives, when, for how long.

A :class:`Workload` expands one arrival process into a concrete,
seeded plan: per session an arrival time, a lifetime (frames the user
will produce on their own clock), a spec kind drawn from the mix, and a
private frame seed. Everything downstream — the harness, the SLO
ledger, the CI artifact — is a pure function of this plan plus the
engine configuration, which is what makes a load run reproducible.

:class:`SyntheticFrameSource` supplies the actual sweep blocks: a
cheap, deterministic moving-target synthesizer (Gaussian range bumps
random-walking across bins over complex noise) shaped exactly like the
spec's pipeline input. It costs microseconds per frame, so the load
harness measures *serving* behavior, not synthesis throughput; the
fidelity-first path (:meth:`Scenario.frames
<repro.sim.scenario.Scenario.frames>`) remains what ``repro serve``
drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.antennas import t_array
from ..serve.session import SessionSpec
from .arrivals import ArrivalProcess


@dataclass(frozen=True)
class SessionPlan:
    """One planned session: arrival, lifetime, spec kind, frame seed.

    Attributes:
        arrival_s: when the session asks to be admitted.
        lifetime_frames: frames its producer will emit, one per frame
            period, before hanging up.
        kind: key into the harness's spec map (e.g. ``"single"``).
        seed: per-session frame-synthesis seed.
    """

    arrival_s: float
    lifetime_frames: int
    kind: str
    seed: int


@dataclass(frozen=True)
class Workload:
    """A fully expanded, deterministic load plan.

    Attributes:
        plans: sessions in arrival order.
        horizon_s: length of the generation window.
        seed: the master seed the plan was expanded from.
        arrival: the arrival process's :meth:`describe` echo.
        lifetime_mean_s: configured mean session lifetime.
        mix: the spec-kind mix the plan was drawn from.
    """

    plans: tuple[SessionPlan, ...]
    horizon_s: float
    seed: int
    arrival: dict = field(default_factory=dict)
    lifetime_mean_s: float = 0.0
    mix: tuple[tuple[str, float], ...] = ()

    @property
    def num_sessions(self) -> int:
        """Planned sessions over the horizon."""
        return len(self.plans)

    def describe(self) -> dict:
        """JSON-serializable parameters (echoed into the SLO artifact)."""
        return {
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "sessions": self.num_sessions,
            "lifetime_mean_s": self.lifetime_mean_s,
            "mix": {kind: weight for kind, weight in self.mix},
            **self.arrival,
        }


def build_workload(
    process: ArrivalProcess,
    horizon_s: float,
    frame_dt_s: float,
    seed: int = 0,
    lifetime_mean_s: float = 4.0,
    lifetime_sigma: float = 0.6,
    mix: dict[str, float] | None = None,
) -> Workload:
    """Expand an arrival process into a concrete session plan.

    Lifetimes are lognormal in seconds (heavy-tailed, like real session
    lengths: many short visits, a few long ones), converted to frames at
    the engine's frame period and floored at two frames so every session
    produces at least one output past background priming. The spec kind
    is drawn per session from ``mix`` weights.

    Args:
        process: the arrival intensity to realize.
        horizon_s: generation window; arrivals land in ``[0, horizon)``.
        frame_dt_s: frame period (converts lifetimes to frame counts).
        seed: master seed; everything derives from it.
        lifetime_mean_s: mean session lifetime in seconds.
        lifetime_sigma: lognormal shape parameter.
        mix: spec-kind weights, e.g. ``{"single": 0.9, "multi": 0.1}``
            (default: all ``"single"``).
    """
    if frame_dt_s <= 0:
        raise ValueError("frame_dt_s must be positive")
    if lifetime_mean_s <= 0:
        raise ValueError("lifetime_mean_s must be positive")
    mix = dict(mix) if mix else {"single": 1.0}
    total = sum(mix.values())
    if total <= 0 or any(w < 0 for w in mix.values()):
        raise ValueError("mix weights must be nonnegative with a positive sum")
    kinds = sorted(mix)  # deterministic draw order
    weights = np.asarray([mix[k] / total for k in kinds])

    rng = np.random.default_rng(seed)
    arrivals = process.sample(horizon_s, rng)
    # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
    mu = np.log(lifetime_mean_s) - 0.5 * lifetime_sigma**2
    plans = []
    for i, t in enumerate(arrivals):
        life_s = float(rng.lognormal(mu, lifetime_sigma))
        frames = max(int(round(life_s / frame_dt_s)), 2)
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        plans.append(
            SessionPlan(
                arrival_s=float(t),
                lifetime_frames=frames,
                kind=kind,
                seed=seed + 7919 * (i + 1),
            )
        )
    return Workload(
        plans=tuple(plans),
        horizon_s=horizon_s,
        seed=seed,
        arrival=process.describe(),
        lifetime_mean_s=lifetime_mean_s,
        mix=tuple(sorted(mix.items())),
    )


def frame_shape(spec: SessionSpec) -> tuple[int, int, int]:
    """The ``(n_rx, sweeps_per_frame, n_bins)`` block shape a spec eats.

    ``n_bins`` is the spec pipeline's *cropped* bin count (the
    max-range crop), so synthetic frames carry no bins the pipeline
    would immediately discard.
    """
    array = spec.array if spec.array is not None else t_array(spec.config.array)
    n_rx = len(array.rx)
    spf = spec.config.pipeline.sweeps_per_frame
    max_range = spec.config.pipeline.max_range_m
    n_bins = int(np.ceil(max_range / spec.range_bin_m)) + 1
    return n_rx, spf, n_bins


class SyntheticFrameSource:
    """Deterministic, cheap sweep-block generator for one session.

    Each frame is complex noise plus ``n_targets`` Gaussian range bumps
    whose centers random-walk across bins — enough structure that the
    full pipeline (background subtract, contour, Kalman, localize or
    cancel/associate) does real work on every frame, at microseconds
    per block. Identical ``(spec, seed)`` always produces the identical
    block sequence.

    Args:
        spec: the session spec the blocks must fit.
        seed: per-session generator seed.
        n_targets: moving range bumps per frame (2+ for multi specs).
    """

    def __init__(
        self, spec: SessionSpec, seed: int, n_targets: int | None = None
    ) -> None:
        if n_targets is None:
            n_targets = 2 if spec.kind == "multi" else 1
        if n_targets < 1:
            raise ValueError("n_targets must be >= 1")
        self.shape = frame_shape(spec)
        self._rng = np.random.default_rng(seed)
        n_bins = self.shape[2]
        lo, hi = 0.1 * n_bins, 0.85 * n_bins
        self._lo, self._hi = lo, hi
        self._pos = self._rng.uniform(lo, hi, size=n_targets)
        self._bins = np.arange(n_bins, dtype=np.float64)
        self.frames_produced = 0

    def next_block(self) -> np.ndarray:
        """The next ``(n_rx, spf, n_bins)`` complex sweep block."""
        rng = self._rng
        n_rx, spf, n_bins = self.shape
        self._pos = np.clip(
            self._pos + rng.normal(0.0, 0.4, size=self._pos.shape),
            self._lo,
            self._hi,
        )
        noise = 0.05 * (
            rng.standard_normal((n_rx, spf, n_bins))
            + 1j * rng.standard_normal((n_rx, spf, n_bins))
        )
        bumps = np.exp(
            -0.5 * ((self._bins[None, :] - self._pos[:, None]) / 2.5) ** 2
        )
        phases = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=len(self._pos)))
        signal = (phases[:, None] * bumps).sum(axis=0)
        self.frames_produced += 1
        return noise + signal[None, None, :]


def next_blocks(sources: list[SyntheticFrameSource]) -> list[np.ndarray]:
    """Advance many frame sources one frame each; one block per source.

    The batch mirror of :meth:`SyntheticFrameSource.next_block`, and
    the seam the load harness produces frames through. Per-source RNG
    streams are the determinism contract — identical ``(spec, seed)``
    must yield the identical block sequence regardless of who else is
    producing — so blocks are drawn source by source, in order; a
    fused generator that batches same-shape sources may slot in here
    later but must preserve exactly those per-source streams.
    """
    return [source.next_block() for source in sources]
