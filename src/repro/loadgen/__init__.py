"""Traffic-realistic load harness for the serving tier.

The serving benchmarks so far were **closed-loop**: a driver feeds a
frame, waits for the engine, feeds the next. Real deployments are
**open-loop** — users arrive on their own schedule, stream frames on
their sensors' clocks, and leave; when the engine falls behind, load
does not politely pause, it queues, drops, and gets rejected. This
package supplies that missing regime, deterministically:

* :mod:`~repro.loadgen.arrivals` — seeded arrival processes
  (:class:`PoissonArrivals`, :class:`DiurnalArrivals`,
  :class:`FlashCrowdArrivals`) sampled by Lewis-Shedler thinning.
* :mod:`~repro.loadgen.workload` — expands an arrival process into a
  concrete session plan (lifetimes, spec mix, per-session seeds) plus
  :class:`SyntheticFrameSource`, a cheap deterministic sweep-block
  generator so hundreds of sessions stay affordable.
* :mod:`~repro.loadgen.harness` — :class:`LoadHarness` drives a
  :class:`~repro.serve.ServingEngine` on a virtual clock under a
  service-capacity model, so overload is reproducible byte-for-byte.
* :mod:`~repro.loadgen.slo` — :class:`SLOLedger` accounts latency
  percentiles against the paper's 75 ms budget, goodput vs offered
  load, rejection/drop rates, and queue-depth series, emitting one
  JSON artifact CI can trend.
* :mod:`~repro.loadgen.memory` — :class:`SpecMemoryModel` calibrates
  bytes-per-session per spec; :class:`MemoryGovernor` turns that into
  an admission gate so overload is met with refusals, not OOM.

Entry points: ``repro load`` (CLI) and ``benchmarks/bench_load.py``.
"""

from .arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    arrival_process,
)
from .harness import LoadHarness
from .memory import MemoryGovernor, SpecMemoryModel, pipeline_state_nbytes
from .slo import DEFAULT_BUDGET_S, SLOLedger
from .workload import (
    SessionPlan,
    SyntheticFrameSource,
    Workload,
    build_workload,
    frame_shape,
    next_blocks,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "arrival_process",
    "SessionPlan",
    "Workload",
    "build_workload",
    "frame_shape",
    "next_blocks",
    "SyntheticFrameSource",
    "LoadHarness",
    "SLOLedger",
    "DEFAULT_BUDGET_S",
    "SpecMemoryModel",
    "MemoryGovernor",
    "pipeline_state_nbytes",
]
