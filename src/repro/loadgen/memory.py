"""Memory-governed admission: predict a session's footprint, then gate.

The predict-before-you-allocate idea (PAPERS.md arXiv:2307.04488 —
where a cheap structural feature predicts peak memory, and jobs are
placed so no machine's predicted total exceeds its budget) applied to
the serving tier: a session's marginal memory is *measurable before
admission* — it is the per-slot growth of its spec's stage state
(structure-of-arrays rows) plus its bounded input queue at worst case
— so the engine can refuse the session *before* anything allocates,
instead of OOMing a shard after.

Two pieces:

* :class:`SpecMemoryModel` — calibrates bytes-per-session per
  :class:`~repro.serve.SessionSpec` by building the spec's pipeline
  once and measuring state growth across attached slots (cached by
  cohort key, so calibration is paid once per spec ever).
* :class:`MemoryGovernor` — the admission gate a
  :class:`~repro.serve.ServingEngine` consults: tracks committed bytes
  across live sessions and refuses admissions that would exceed the
  budget. The same model plugs into
  :class:`~repro.serve.shard.DistributedScheduler` as ``memory_model``
  so cohort *placement* weighs predicted bytes instead of raw session
  counts, and ``shard_budget_bytes`` caps any one shard.
"""

from __future__ import annotations

import numpy as np

from ..serve.session import Session, SessionSpec
from .workload import frame_shape

#: Bytes per complex128 spectrum sample (the queue entries' dtype).
_COMPLEX_BYTES = 16

#: Flat per-session allowance for non-array bookkeeping (queue deque,
#: accumulator lists, Session object itself). Deliberately coarse — the
#: array state dominates — but nonzero so even an array-free spec has a
#: positive footprint.
_SESSION_OVERHEAD_BYTES = 16 * 1024


def _state_nbytes(obj, seen: set[int] | None = None) -> int:
    """Total ndarray bytes reachable from ``obj`` (cycle-safe).

    Recurses through dicts, sequences, and plain-object ``__dict__``\\ s
    — deep enough to reach e.g. the per-slot
    :class:`~repro.multi.tracks.TrackManager` banks inside an
    ``Associate`` stage.
    """
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, dict):
        return sum(_state_nbytes(v, seen) for v in obj.values())
    if isinstance(obj, (list, tuple, set)):
        return sum(_state_nbytes(v, seen) for v in obj)
    if hasattr(obj, "__dict__") and not isinstance(obj, type):
        return _state_nbytes(vars(obj), seen)
    return 0


def pipeline_state_nbytes(pipeline) -> int:
    """Bytes of mutable stage state a pipeline currently holds."""
    return _state_nbytes([s.__dict__ for s in pipeline.stages]) + int(
        pipeline._frames_in.nbytes
    )


class SpecMemoryModel:
    """Calibrated bytes-per-session estimates, one probe per spec.

    Stage state allocates *lazily* — slots grow their structure-of-
    arrays rows on the first frame that flows, not at attach — so
    calibration must actually serve frames: it builds the spec's
    pipeline twice (1 slot vs ``1 + probe_slots`` slots), ticks a few
    deterministic synthetic frames through every slot of each, and
    takes the per-slot difference in reachable ndarray bytes. The
    estimate adds the session's bounded input queue at worst case
    (``queue_capacity`` raw sweep blocks) and a flat bookkeeping
    allowance. Estimates are cached by cohort key, so calibration is
    paid once per spec ever.

    Args:
        queue_capacity: the engine's per-session queue bound (sizes the
            worst-case queue term).
        probe_slots: extra slots served during calibration; more slots
            average out one-off allocation rounding.
        probe_ticks: frames ticked through each calibration pipeline —
            enough that lazily allocated state (backgrounds, trackers)
            has materialized.
    """

    def __init__(
        self,
        queue_capacity: int = 64,
        probe_slots: int = 8,
        probe_ticks: int = 3,
    ) -> None:
        if queue_capacity < 1 or probe_slots < 1 or probe_ticks < 1:
            raise ValueError(
                "queue_capacity, probe_slots, and probe_ticks must be >= 1"
            )
        self.queue_capacity = queue_capacity
        self.probe_slots = probe_slots
        self.probe_ticks = probe_ticks
        self._per_session: dict[str, int] = {}

    def _served_state_nbytes(self, spec: SessionSpec, n_slots: int) -> int:
        """Stage-state bytes after serving frames through ``n_slots``."""
        from .workload import SyntheticFrameSource

        pipeline = spec.build_pipeline()
        pipeline.attach_sessions(n_slots)
        source = SyntheticFrameSource(spec, seed=0)
        slots = list(range(n_slots))
        for _ in range(self.probe_ticks):
            block = source.next_block()
            pipeline.tick(np.stack([block] * n_slots), slots=slots)
        return pipeline_state_nbytes(pipeline)

    def estimate(self, spec: SessionSpec) -> int:
        """Predicted bytes one live session of ``spec`` will commit."""
        key = spec.cohort_key()
        cached = self._per_session.get(key)
        if cached is not None:
            return cached
        one = self._served_state_nbytes(spec, 1)
        many = self._served_state_nbytes(spec, 1 + self.probe_slots)
        marginal = max((many - one) // self.probe_slots, 0)
        n_rx, spf, n_bins = frame_shape(spec)
        queue_bytes = self.queue_capacity * n_rx * spf * n_bins * _COMPLEX_BYTES
        estimate = int(marginal + queue_bytes + _SESSION_OVERHEAD_BYTES)
        self._per_session[key] = estimate
        return estimate

    def arena_estimate(
        self,
        spec: SessionSpec,
        shard_budget_bytes: int | None = None,
        burst: int = 4,
    ) -> int:
        """Predicted shm arena bytes (per direction) one shard needs.

        The transport analogue of :meth:`estimate`: a step's
        parent→shard payload is at most one ``burst`` of raw sweep
        blocks per session, and the number of sessions a shard can
        host is itself bounded by the memory budget — so the arena,
        like the shard, is sized before anything allocates. Without a
        budget, sizes for ``probe_slots`` worth of sessions (a
        deliberate floor, not a cap: overflow degrades to the pipe,
        counted, never wrong).

        Args:
            spec: the (dominant) session spec the tier will serve.
            shard_budget_bytes: per-shard predicted-bytes cap, when the
                tier runs memory-governed placement.
            burst: worst-case frames per session per step (the
                scheduler's ``catchup_burst``).
        """
        n_rx, spf, n_bins = frame_shape(spec)
        frame_bytes = n_rx * spf * n_bins * _COMPLEX_BYTES
        if shard_budget_bytes is None:
            sessions = self.probe_slots
        else:
            sessions = max(
                int(shard_budget_bytes) // max(self.estimate(spec), 1), 1
            )
        return int(max(burst, 1) * sessions * frame_bytes)


class MemoryGovernor:
    """Budget-enforcing admission gate for a :class:`ServingEngine`.

    Plug into ``ServingEngine(admission=governor)``: before every
    admission the engine asks :meth:`admit`; the governor projects the
    spec's calibrated footprint onto the bytes already committed by
    live sessions and refuses when the budget would be exceeded. The
    engine reports back :meth:`admitted`/:meth:`retired` so the ledger
    tracks actual membership (rejected sessions commit nothing).

    Args:
        budget_bytes: total bytes live sessions may commit.
        model: the estimator (built from ``queue_capacity`` when None).
        queue_capacity: used only when ``model`` is None.
    """

    def __init__(
        self,
        budget_bytes: int,
        model: SpecMemoryModel | None = None,
        queue_capacity: int = 64,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = int(budget_bytes)
        self.model = model or SpecMemoryModel(queue_capacity=queue_capacity)
        self.committed_bytes = 0
        self.peak_committed_bytes = 0
        self.rejections = 0
        self._per_session: dict[int, int] = {}

    def admit(self, spec: SessionSpec, engine=None) -> bool:
        """True when the spec's footprint fits the remaining budget."""
        if self.committed_bytes + self.model.estimate(spec) <= self.budget_bytes:
            return True
        self.rejections += 1
        return False

    def admitted(self, session: Session) -> None:
        """Commit an admitted session's predicted footprint."""
        cost = self.model.estimate(session.spec)
        self._per_session[session.session_id] = cost
        self.committed_bytes += cost
        self.peak_committed_bytes = max(
            self.peak_committed_bytes, self.committed_bytes
        )

    def retired(self, session: Session) -> None:
        """Release a retired session's committed footprint."""
        self.committed_bytes -= self._per_session.pop(session.session_id, 0)

    def stats(self) -> dict:
        """Governor counters for the SLO artifact."""
        return {
            "budget_bytes": self.budget_bytes,
            "committed_bytes": self.committed_bytes,
            "peak_committed_bytes": self.peak_committed_bytes,
            "rejections": self.rejections,
        }
