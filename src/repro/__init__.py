"""WiTrack reproduction: 3D tracking via body radio reflections.

A full-system reproduction of *3D Tracking via Body Radio Reflections*
(Adib, Kabelac, Katabi, Miller — NSDI 2014): the FMCW front end (as a
physics-level simulator), the TOF-estimation pipeline, ellipsoid-based 3D
localization, pointing-direction estimation, fall detection, baselines,
and the paper's full evaluation harness.

Quickstart::

    import numpy as np
    from repro import WiTrack, default_config
    from repro.sim import Scenario, random_walk, through_wall_room

    room = through_wall_room()
    walk = random_walk(room, np.random.default_rng(0), duration_s=15.0)
    measured = Scenario(walk, room=room, seed=1).run()
    track = WiTrack(measured.config).track(
        measured.spectra, measured.range_bin_m
    )
    print(track.positions)
"""

from . import constants
from .config import (
    ArrayConfig,
    FMCWConfig,
    PipelineConfig,
    SimulationConfig,
    SystemConfig,
    default_config,
)
from .core.falls import FallDetector, FallVerdict
from .core.localize import LeastSquaresSolver, TGeometrySolver, make_solver
from .core.pointing import PointingEstimator, PointingResult
from .core.tof import TOFEstimate, TOFEstimator
from .core.tracker import TrackResult, WiTrack
from .exec import (
    ExperimentPlan,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
    ShardedStreamRunner,
    SpectraCache,
    WorkItem,
    default_runner,
)
from .multi import MultiScenario, MultiTrack, MultiWiTrack
from .pipeline import (
    Pipeline,
    PipelineResult,
    multi_person_pipeline,
    single_person_pipeline,
)
from .serve import ServingEngine, multi_session, single_session

__version__ = "1.3.0"

__all__ = [
    "constants",
    "ArrayConfig",
    "FMCWConfig",
    "PipelineConfig",
    "SimulationConfig",
    "SystemConfig",
    "default_config",
    "FallDetector",
    "FallVerdict",
    "LeastSquaresSolver",
    "TGeometrySolver",
    "make_solver",
    "PointingEstimator",
    "PointingResult",
    "TOFEstimate",
    "TOFEstimator",
    "TrackResult",
    "WiTrack",
    "ExperimentPlan",
    "ProcessPoolRunner",
    "ResultCache",
    "SerialRunner",
    "ServingEngine",
    "ShardedStreamRunner",
    "SpectraCache",
    "WorkItem",
    "default_runner",
    "multi_session",
    "single_session",
    "MultiScenario",
    "MultiTrack",
    "MultiWiTrack",
    "Pipeline",
    "PipelineResult",
    "single_person_pipeline",
    "multi_person_pipeline",
    "__version__",
]
