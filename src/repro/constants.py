"""Physical constants and the WiTrack paper's parameter table.

Every number that appears in the paper text is centralized here so that
tests and benchmarks can reference the authoritative value instead of
re-typing magic numbers.
"""

from __future__ import annotations

#: Speed of light in vacuum (m/s). The paper's C in Eq. 2-4.
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant (J/K), used for the thermal-noise floor.
BOLTZMANN = 1.380649e-23

#: Reference temperature for noise figure calculations (K).
T0_KELVIN = 290.0

# --- FMCW sweep parameters (Section 4.1 and Section 7) -------------------

#: Sweep start frequency (Hz): "sweeps ... from 5.56 GHz" (Section 4.1).
SWEEP_START_HZ = 5.56e9

#: Sweep end frequency (Hz): "... to 7.25 GHz" (Section 4.1).
SWEEP_END_HZ = 7.25e9

#: Total swept bandwidth (Hz): "a total bandwidth of 1.69 GHz".
SWEEP_BANDWIDTH_HZ = SWEEP_END_HZ - SWEEP_START_HZ

#: Sweep duration (s): "an FFT whose size matches the FMCW sweep period of
#: 2.5 ms" (Section 7).
SWEEP_DURATION_S = 2.5e-3

#: Baseband sample rate (S/s): "the LFRX-LF daughterboard on USRP2 which
#: samples it at 1 MHz" (Section 7).
BASEBAND_SAMPLE_RATE_HZ = 1.0e6

#: Number of baseband samples in one sweep.
SAMPLES_PER_SWEEP = int(round(SWEEP_DURATION_S * BASEBAND_SAMPLE_RATE_HZ))

#: Sweep slope (Hz/s): bandwidth divided by sweep time.
SWEEP_SLOPE_HZ_PER_S = SWEEP_BANDWIDTH_HZ / SWEEP_DURATION_S

#: Consecutive sweeps averaged into one processing frame (Section 4.3):
#: "we average over five consecutive sweeps, which together span 12.5 ms".
SWEEPS_PER_FRAME = 5

#: Duration of one averaged frame (s).
FRAME_DURATION_S = SWEEPS_PER_FRAME * SWEEP_DURATION_S

#: Transmit power (W): "transmits at 0.75 milliWatts" (Section 4.1).
TX_POWER_W = 0.75e-3

#: Theoretical one-way range resolution (m), Eq. 3: C / (2 B) = 8.87 cm.
RANGE_RESOLUTION_M = SPEED_OF_LIGHT / (2.0 * SWEEP_BANDWIDTH_HZ)

# --- Default deployment geometry (Section 8b) -----------------------------

#: Default Tx-to-Rx antenna separation (m): "The distance between the
#: transmit antenna and each receive antenna is 1m".
DEFAULT_ANTENNA_SEPARATION_M = 1.0

#: Physical antenna aperture (m): "dimension of each antenna: 5cm x 5cm".
ANTENNA_APERTURE_M = 0.05

#: Height of the antenna plane above the floor (m). The paper mounts the
#: Tx "about the waist" of a standing person (Section 8a).
DEFAULT_DEVICE_HEIGHT_M = 1.0

# --- Paper-reported headline results (used by benchmark assertions) -------

#: Median through-wall localization error (m) along x, y, z (Section 9.1).
PAPER_MEDIAN_ERROR_TW_M = (0.131, 0.1025, 0.210)

#: Median line-of-sight localization error (m) along x, y, z (Section 9.1).
PAPER_MEDIAN_ERROR_LOS_M = (0.099, 0.086, 0.177)

#: Median / 90th-percentile pointing-direction error (degrees, Section 9.4).
PAPER_POINTING_MEDIAN_DEG = 11.2
PAPER_POINTING_P90_DEG = 37.9

#: Fall-detection precision / recall / F-measure (Section 9.5).
PAPER_FALL_PRECISION = 0.969
PAPER_FALL_RECALL = 0.939
PAPER_FALL_F_MEASURE = 0.944

#: End-to-end processing latency bound (s): "less than 75 ms" (Section 7).
PAPER_LATENCY_BOUND_S = 0.075

#: Claimed 2D accuracy advantage over radio tomographic imaging (Section 2).
PAPER_RTI_ADVANTAGE_FACTOR = 5.0
