"""Geometric primitives: vectors, ellipsoids, and antenna layouts."""

from .vec import Vec3, angle_between_deg, direction, distance, norm, unit
from .ellipsoid import Ellipsoid, ellipse_points_2d, round_trip_distance
from .antennas import Antenna, AntennaArray, t_array

__all__ = [
    "Vec3",
    "angle_between_deg",
    "direction",
    "distance",
    "norm",
    "unit",
    "Ellipsoid",
    "ellipse_points_2d",
    "round_trip_distance",
    "Antenna",
    "AntennaArray",
    "t_array",
]
