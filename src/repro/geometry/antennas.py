"""Antenna and array geometry (paper Fig. 1a and Section 5).

The device frame places the transmit antenna at the origin of the x-z
plane, with y pointing into the monitored space (through the wall). The
default "T" layout puts two receive antennas on the horizontal bar at
``(+-separation, 0, 0)`` and one below the transmitter at
``(0, 0, -separation)`` to resolve elevation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import ArrayConfig
from .vec import Vec3, unit


@dataclass(frozen=True)
class Antenna:
    """A directional antenna with a cos^n power beam pattern.

    Attributes:
        position: antenna phase-center position (device frame, meters).
        boresight: unit vector of maximum gain (default +y, into the room).
        beam_exponent: exponent n of the cos^n(angle) one-way power gain;
            larger n means a narrower beam. WA5VJB log-periodics at 6 GHz
            have roughly 60-70 degree half-power beamwidth, n ~= 2.
        name: label used in logs and plots.
    """

    position: np.ndarray
    boresight: np.ndarray = field(default_factory=lambda: Vec3(0.0, 1.0, 0.0))
    beam_exponent: float = 2.0
    name: str = "ant"

    def gain_towards(self, point: np.ndarray) -> float:
        """One-way power gain toward ``point`` (1.0 at boresight, 0 behind).

        The paper relies on the antennas being directional: everything
        behind the array is outside the beam and invisible (Section 3).
        """
        offset = np.asarray(point, dtype=np.float64) - self.position
        dist = float(np.linalg.norm(offset))
        if dist < 1e-9:
            return 1.0
        cosine = float(np.dot(offset / dist, unit(self.boresight)))
        if cosine <= 0.0:
            return 0.0
        return cosine**self.beam_exponent

    def in_beam(self, point: np.ndarray) -> bool:
        """True if ``point`` is in front of the antenna (positive gain)."""
        return self.gain_towards(point) > 0.0


@dataclass(frozen=True)
class AntennaArray:
    """A transmit antenna plus a set of receive antennas.

    The localization geometry (Section 5) only needs the positions; the
    simulator additionally uses the beam patterns to weight path gains and
    to discard the infeasible ellipsoid intersection behind the array.
    """

    tx: Antenna
    rx: tuple[Antenna, ...]

    def __post_init__(self) -> None:
        if len(self.rx) < 3:
            raise ValueError("3D localization requires at least 3 Rx antennas")

    @property
    def num_receivers(self) -> int:
        """Number of receive antennas."""
        return len(self.rx)

    @property
    def rx_positions(self) -> np.ndarray:
        """Stacked receive positions, shape ``(n_rx, 3)``."""
        return np.stack([a.position for a in self.rx])

    def round_trip_distances(self, point: np.ndarray) -> np.ndarray:
        """Ideal round-trip distances Tx -> point -> Rx_i, shape ``(n_rx,)``.

        This is the forward model of the geometric solver; the simulator
        and the tests both use it as ground truth.
        """
        point = np.asarray(point, dtype=np.float64)
        d_tx = float(np.linalg.norm(point - self.tx.position))
        d_rx = np.linalg.norm(self.rx_positions - point[None, :], axis=1)
        return d_tx + d_rx

    def in_beam(self, point: np.ndarray) -> bool:
        """True if ``point`` is inside every antenna's beam."""
        if not self.tx.in_beam(point):
            return False
        return all(a.in_beam(point) for a in self.rx)


def t_array(config: ArrayConfig | None = None) -> AntennaArray:
    """Build the paper's default "T" array (Fig. 1a).

    With separation ``d``: Tx at the origin, Rx1 at ``(-d, 0, 0)``, Rx2 at
    ``(+d, 0, 0)`` and Rx3 at ``(0, 0, -d)`` (below the transmitter, to
    "help determine elevation", Section 5). Additional receivers beyond
    three are placed above the transmitter and at the diagonal midpoints,
    matching the paper's note that extra antennas over-constrain the
    solution.
    """
    config = config or ArrayConfig()
    d = config.separation_m
    n = config.beam_exponent

    def make(name: str, pos: np.ndarray) -> Antenna:
        return Antenna(position=pos, beam_exponent=n, name=name)

    positions = [
        Vec3(-d, 0.0, 0.0),
        Vec3(+d, 0.0, 0.0),
        Vec3(0.0, 0.0, -d),
        # Extras used by the over-constrained ablation (Section 5 note).
        Vec3(0.0, 0.0, +d),
        Vec3(-d / 2.0, 0.0, -d / 2.0),
        Vec3(+d / 2.0, 0.0, -d / 2.0),
    ]
    if config.num_receivers > len(positions):
        raise ValueError(
            f"t_array supports at most {len(positions)} receive antennas"
        )
    rx = tuple(
        make(f"rx{i + 1}", positions[i]) for i in range(config.num_receivers)
    )
    return AntennaArray(tx=make("tx", Vec3(0.0, 0.0, 0.0)), rx=rx)
