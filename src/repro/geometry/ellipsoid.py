"""Ellipsoid algebra for TOF-based localization (paper Section 5).

A round-trip distance measured between the transmit antenna and a receive
antenna constrains the reflector to an *ellipsoid of revolution* whose two
foci are the antennas and whose major axis equals the round-trip distance.
This module provides that ellipsoid as a first-class object plus the small
amount of conic algebra the localization solvers and tests need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vec import distance, unit


def round_trip_distance(tx: np.ndarray, point: np.ndarray, rx: np.ndarray) -> float:
    """Round-trip path length Tx -> point -> Rx (the ellipsoid constraint)."""
    return float(distance(tx, point) + distance(point, rx))


@dataclass(frozen=True)
class Ellipsoid:
    """Prolate spheroid defined by two foci and a major-axis length.

    Attributes:
        focus_a: first focus (transmit antenna position), shape ``(3,)``.
        focus_b: second focus (receive antenna position), shape ``(3,)``.
        major_axis: the round-trip distance; must exceed the focal distance.
    """

    focus_a: np.ndarray
    focus_b: np.ndarray
    major_axis: float

    def __post_init__(self) -> None:
        focal = float(distance(self.focus_a, self.focus_b))
        if self.major_axis <= focal:
            raise ValueError(
                f"major axis {self.major_axis:.3f} m must exceed the focal "
                f"separation {focal:.3f} m; the TOF is shorter than the "
                "direct Tx->Rx path"
            )

    @property
    def focal_distance(self) -> float:
        """Distance between the two foci (the antenna separation)."""
        return float(distance(self.focus_a, self.focus_b))

    @property
    def semi_major(self) -> float:
        """Semi-major axis a = major_axis / 2."""
        return self.major_axis / 2.0

    @property
    def semi_minor(self) -> float:
        """Semi-minor axis b = sqrt(a^2 - c^2) with c half the focal dist."""
        a = self.semi_major
        c = self.focal_distance / 2.0
        return float(np.sqrt(a * a - c * c))

    @property
    def center(self) -> np.ndarray:
        """Midpoint between the foci."""
        return (np.asarray(self.focus_a) + np.asarray(self.focus_b)) / 2.0

    @property
    def eccentricity(self) -> float:
        """Eccentricity c / a in [0, 1)."""
        return (self.focal_distance / 2.0) / self.semi_major

    def contains(self, point: np.ndarray, tol_m: float = 1e-9) -> bool:
        """True if ``point`` lies on the ellipsoid surface within ``tol_m``."""
        return abs(self.residual(point)) <= tol_m

    def residual(self, point: np.ndarray) -> float:
        """Signed surface residual: sum-of-focal-distances minus major axis.

        Positive outside the ellipsoid, negative inside. This is the
        quantity the least-squares localizer drives to zero.
        """
        total = round_trip_distance(self.focus_a, point, self.focus_b)
        return total - self.major_axis

    def point_at(self, theta: float, phi: float) -> np.ndarray:
        """Surface point at spheroidal angles (theta about axis, phi around).

        ``theta`` is the polar angle from the major axis and ``phi`` the
        azimuth about it. Used by tests to sample valid surface points.
        """
        a = self.semi_major
        b = self.semi_minor
        axis = unit(np.asarray(self.focus_b) - np.asarray(self.focus_a))
        # Build an orthonormal frame (axis, u, v).
        helper = np.array([0.0, 0.0, 1.0])
        if abs(np.dot(axis, helper)) > 0.9:
            helper = np.array([0.0, 1.0, 0.0])
        u = unit(np.cross(axis, helper))
        v = np.cross(axis, u)
        local = (
            a * np.cos(theta) * axis
            + b * np.sin(theta) * np.cos(phi) * u
            + b * np.sin(theta) * np.sin(phi) * v
        )
        return self.center + local


def ellipse_points_2d(
    focus_a: np.ndarray,
    focus_b: np.ndarray,
    major_axis: float,
    num_points: int = 360,
) -> np.ndarray:
    """Sample the 2D ellipse (x-y plane) with the given foci.

    Used by the examples to draw the Fig. 4(a) construction. Returns an
    array of shape ``(num_points, 2)``.
    """
    fa = np.asarray(focus_a, dtype=np.float64)[:2]
    fb = np.asarray(focus_b, dtype=np.float64)[:2]
    c = float(np.linalg.norm(fb - fa)) / 2.0
    a = major_axis / 2.0
    if a <= c:
        raise ValueError("major axis must exceed the focal separation")
    b = float(np.sqrt(a * a - c * c))
    center = (fa + fb) / 2.0
    axis = (fb - fa) / (2.0 * c) if c > 0 else np.array([1.0, 0.0])
    perp = np.array([-axis[1], axis[0]])
    t = np.linspace(0.0, 2.0 * np.pi, num_points, endpoint=False)
    pts = (
        center[None, :]
        + a * np.cos(t)[:, None] * axis[None, :]
        + b * np.sin(t)[:, None] * perp[None, :]
    )
    return pts
