"""Small 3D vector helpers built on numpy arrays.

Positions throughout the library are numpy arrays of shape ``(3,)`` (or
``(n, 3)`` for trajectories) in the device reference frame of the paper:
the antenna "T" lies in the x-z plane, y points into the room, and z is up.
:class:`Vec3` is a thin convenience constructor; all math accepts plain
arrays so callers are never forced through a wrapper type.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def Vec3(x: float, y: float, z: float) -> np.ndarray:
    """Build a float64 3-vector. Named like a class for readability."""
    return np.array([x, y, z], dtype=np.float64)


def norm(v: np.ndarray) -> float | np.ndarray:
    """Euclidean norm along the last axis."""
    return np.linalg.norm(v, axis=-1)


def distance(a: np.ndarray, b: np.ndarray) -> float | np.ndarray:
    """Euclidean distance between points (broadcasts over leading axes)."""
    return np.linalg.norm(np.asarray(a) - np.asarray(b), axis=-1)


def unit(v: np.ndarray) -> np.ndarray:
    """Unit vector in the direction of ``v``.

    Raises:
        ValueError: if ``v`` has (near-)zero length.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v, axis=-1, keepdims=True)
    if np.any(n < 1e-12):
        raise ValueError("cannot normalize a zero-length vector")
    return v / n


def direction(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Unit vector pointing from ``src`` to ``dst``."""
    return unit(np.asarray(dst) - np.asarray(src))


def angle_between_deg(a: np.ndarray, b: np.ndarray) -> float:
    """Angle between two vectors in degrees, in [0, 180].

    Robust to slight numerical overshoot of the cosine outside [-1, 1].
    """
    ua = unit(a)
    ub = unit(b)
    cosine = float(np.clip(np.dot(ua, ub), -1.0, 1.0))
    return float(np.degrees(np.arccos(cosine)))


def centroid(points: Iterable[np.ndarray]) -> np.ndarray:
    """Mean of a collection of points."""
    stacked = np.asarray(list(points), dtype=np.float64)
    if stacked.size == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return stacked.mean(axis=0)


def project_onto_plane(v: np.ndarray, plane_normal: np.ndarray) -> np.ndarray:
    """Project vector ``v`` onto the plane with the given normal."""
    n = unit(plane_normal)
    return np.asarray(v, dtype=np.float64) - np.dot(v, n) * n


def rotate_about_z(v: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rotate a vector (or ``(n, 3)`` stack) about the z axis."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    rot = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    return np.asarray(v, dtype=np.float64) @ rot.T
