"""Sharded experiment execution: one parallel runner under every loop.

The paper's Section 8 protocol — 100 × 1-minute experiments per figure
— is embarrassingly parallel, and this package is the one place the
repository schedules it:

* :mod:`repro.exec.plan` — :class:`WorkItem` / :class:`ExperimentPlan`
  turn a figure's grid (seeds × distances × separations × activities)
  into picklable, schedulable units;
* :mod:`repro.exec.pool` — :class:`WorkerPool`, the persistent
  process runtime both tiers share: long-lived ``fork`` workers behind
  request/response IPC, stateless ``apply`` requests for plan chunks
  and per-worker actors (``invoke``) for the distributed serving
  shards (:mod:`repro.serve.shard`), with crash isolation
  (:class:`WorkerCrash`/:class:`RemoteError`);
* :mod:`repro.exec.runners` — :class:`SerialRunner` and the chunked
  :class:`ProcessPoolRunner` execute a plan with results in plan order
  (``REPRO_WORKERS`` picks the default pool size; the pool persists
  across runs);
* :mod:`repro.exec.stream` — :class:`ShardedStreamRunner` splits one
  long :meth:`Scenario.frames` stream at pipeline-reset boundaries and
  merges the per-shard :class:`~repro.pipeline.runner.PipelineResult`\\ s;
* :mod:`repro.exec.cache` — :class:`SpectraCache` and
  :class:`ResultCache`, content-keyed on-disk ``.npz`` caches so
  repeated figure/benchmark runs skip re-synthesis — and, at the
  result level, re-tracking (``REPRO_CACHE`` / ``REPRO_CACHE_DIR``);
  process-wide hit/miss/eviction counters via :func:`cache_stats`.

The load-bearing invariant, pinned by ``tests/test_exec_*``: for a
fixed plan, every runner produces bitwise-identical results.
"""

from .cache import (
    CacheAdmissionFilter,
    NpzLruCache,
    ResultCache,
    SpectraCache,
    cache_stats,
    content_key,
    default_cache,
    default_result_cache,
    multi_result_key,
    reset_cache_stats,
    result_key,
    scenario_key,
    synthesize,
    tracked_multi_scenario,
    tracked_scenario,
)
from .plan import ExperimentPlan, WorkItem
from .pool import RemoteError, WorkerCrash, WorkerPool, pool_available
from .transport import (
    DEFAULT_ARENA_BYTES,
    TRANSPORT_ENV,
    TRANSPORTS,
    TransportCounters,
    resolve_transport,
    shm_available,
)
from .runners import (
    ProcessPoolRunner,
    Runner,
    SerialRunner,
    WORKERS_ENV,
    default_runner,
    resolve_workers,
)
from .stream import (
    MIN_SHARD_FRAMES,
    Shard,
    ShardedStreamRunner,
    merge_results,
    plan_shards,
    results_identical,
    sharded_speedup_benchmark,
    track_scenario_shard,
)

__all__ = [
    "CacheAdmissionFilter",
    "DEFAULT_ARENA_BYTES",
    "ExperimentPlan",
    "MIN_SHARD_FRAMES",
    "NpzLruCache",
    "ProcessPoolRunner",
    "RemoteError",
    "ResultCache",
    "Runner",
    "SerialRunner",
    "Shard",
    "ShardedStreamRunner",
    "SpectraCache",
    "TRANSPORTS",
    "TRANSPORT_ENV",
    "TransportCounters",
    "WORKERS_ENV",
    "WorkItem",
    "WorkerCrash",
    "WorkerPool",
    "cache_stats",
    "content_key",
    "default_cache",
    "default_result_cache",
    "default_runner",
    "merge_results",
    "multi_result_key",
    "plan_shards",
    "pool_available",
    "resolve_workers",
    "reset_cache_stats",
    "resolve_transport",
    "result_key",
    "results_identical",
    "scenario_key",
    "sharded_speedup_benchmark",
    "shm_available",
    "synthesize",
    "tracked_multi_scenario",
    "tracked_scenario",
    "track_scenario_shard",
]
