"""Runners: execute an :class:`~repro.exec.plan.ExperimentPlan`.

Two executors under one interface:

* :class:`SerialRunner` — the in-process reference implementation.
* :class:`ProcessPoolRunner` — chunked fan-out over a **persistent**
  :class:`~repro.exec.pool.WorkerPool` of long-lived ``fork`` workers;
  the pool is created on first use, reused across ``run`` calls (a
  figure sweep stops paying fork + import per plan), and degrades
  gracefully to serial execution when only one worker is requested,
  when the plan is trivial, or when the platform cannot fork.

Both return results **in plan order**, so swapping one for the other
cannot change what a figure computes — the determinism invariant the
``tests/test_exec_runners.py`` equivalence tests pin. Worker count
defaults to the ``REPRO_WORKERS`` environment variable.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

from .plan import ExperimentPlan, WorkItem
from .pool import WorkerPool, pool_available

#: Environment variable holding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``.

    Unset (or ``0``) means serial: parallelism is opt-in, so plain test
    and CLI runs stay single-process unless asked otherwise.
    """
    if workers is not None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        return max(workers, 1)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {WORKERS_ENV}: {raw!r} (expected an integer, "
            "e.g. REPRO_WORKERS=4)"
        ) from None
    if value < 0:
        raise ValueError(f"invalid {WORKERS_ENV}: {raw!r} (must be >= 0)")
    return max(value, 1)


def _run_items(items: Sequence[WorkItem]) -> list[Any]:
    """Module-level chunk trampoline so pools pickle items, not closures."""
    return [item.run() for item in items]


class Runner:
    """Executes a plan; subclasses define where the work happens."""

    #: Label recorded in benchmark artifacts.
    name = "runner"

    def run(self, plan: ExperimentPlan) -> list[Any]:
        """Execute every item and return results in plan order."""
        raise NotImplementedError


class SerialRunner(Runner):
    """Run every item in the current process, one after another."""

    name = "serial"

    def run(self, plan: ExperimentPlan) -> list[Any]:
        return [item.run() for item in plan]


class ProcessPoolRunner(Runner):
    """Fan a plan across a persistent worker pool, chunked.

    Args:
        max_workers: pool size; ``None`` reads ``REPRO_WORKERS``.
        chunksize: items handed to a worker per round trip; ``None``
            picks ``ceil(len(plan) / (4 * workers))`` — large enough to
            amortize pickling, small enough to balance uneven items.

    The underlying :class:`~repro.exec.pool.WorkerPool` is built lazily
    on the first parallel ``run`` and kept alive for subsequent plans;
    :meth:`close` (or context-manager exit) releases it. Chunks are
    dispatched dynamically — an idle worker immediately receives the
    next chunk — and results are reassembled in plan order, so uneven
    item costs balance without changing any output.

    Long-lived workers see the parent's process-global state (env
    vars, module globals) as of the fork at pool creation. Work items
    are pure functions of their pickled kwargs throughout this repo,
    so that cannot change results here — but a caller who mutates
    process state between runs and needs workers to observe it must
    :meth:`close` first so the next run re-forks.

    Falls back to in-process serial execution when the effective worker
    count is 1, the plan has at most one item, or the platform lacks
    ``fork`` (results are identical either way; only wall clock moves).
    """

    name = "process_pool"

    def __init__(
        self, max_workers: int | None = None, chunksize: int | None = None
    ) -> None:
        self.max_workers = resolve_workers(max_workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.chunksize = chunksize
        self._pool: WorkerPool | None = None

    def _chunksize(self, n_items: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-n_items // (4 * workers)))

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or not self._pool.live_workers():
            if self._pool is not None:
                self._pool.close()
            self._pool = WorkerPool(self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ProcessPoolRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def run(self, plan: ExperimentPlan) -> list[Any]:
        workers = min(self.max_workers, len(plan))
        if workers <= 1 or not pool_available():
            return SerialRunner().run(plan)
        pool = self._ensure_pool()
        size = self._chunksize(len(plan), workers)
        chunks = [
            (start, plan.items[start : start + size])
            for start in range(0, len(plan), size)
        ]
        results: list[Any] = [None] * len(plan)
        next_chunk = 0
        assigned: dict[int, tuple[int, Sequence[WorkItem]]] = {}
        live = pool.live_workers()[:workers]
        try:
            for worker in live:
                if next_chunk >= len(chunks):
                    break
                start, items = chunks[next_chunk]
                pool.submit(worker, "apply", _run_items, (items,))
                assigned[worker] = chunks[next_chunk]
                next_chunk += 1
            while assigned:
                for worker in pool.ready():
                    start, items = assigned.pop(worker)
                    chunk_results = pool.result(worker)
                    results[start : start + len(items)] = chunk_results
                    if next_chunk < len(chunks):
                        start, items = chunks[next_chunk]
                        pool.submit(worker, "apply", _run_items, (items,))
                        assigned[worker] = chunks[next_chunk]
                        next_chunk += 1
        except BaseException:
            # A failed plan poisons in-flight requests; drop the pool so
            # the next run starts from a clean slate.
            self.close()
            raise
        return results


def default_runner(workers: int | None = None) -> Runner:
    """The runner every experiment loop uses unless told otherwise.

    ``workers`` (or ``REPRO_WORKERS``) of 0/1/unset gives the
    :class:`SerialRunner`; anything larger gives a
    :class:`ProcessPoolRunner` of that size.
    """
    count = resolve_workers(workers)
    if count <= 1:
        return SerialRunner()
    return ProcessPoolRunner(max_workers=count)
