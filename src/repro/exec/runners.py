"""Runners: execute an :class:`~repro.exec.plan.ExperimentPlan`.

Two executors under one interface:

* :class:`SerialRunner` — the in-process reference implementation.
* :class:`ProcessPoolRunner` — chunked fan-out over a ``fork`` process
  pool; degrades gracefully to serial execution when only one worker is
  requested, when the plan is trivial, or when the platform cannot
  fork.

Both return results **in plan order**, so swapping one for the other
cannot change what a figure computes — the determinism invariant the
``tests/test_exec_runners.py`` equivalence tests pin. Worker count
defaults to the ``REPRO_WORKERS`` environment variable.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from .plan import ExperimentPlan, WorkItem

#: Environment variable holding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``.

    Unset (or ``0``) means serial: parallelism is opt-in, so plain test
    and CLI runs stay single-process unless asked otherwise.
    """
    if workers is not None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        return max(workers, 1)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {WORKERS_ENV}: {raw!r} (expected an integer, "
            "e.g. REPRO_WORKERS=4)"
        ) from None
    if value < 0:
        raise ValueError(f"invalid {WORKERS_ENV}: {raw!r} (must be >= 0)")
    return max(value, 1)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _run_item(item: WorkItem) -> Any:
    """Module-level trampoline so pools pickle items, not closures."""
    return item.run()


class Runner:
    """Executes a plan; subclasses define where the work happens."""

    #: Label recorded in benchmark artifacts.
    name = "runner"

    def run(self, plan: ExperimentPlan) -> list[Any]:
        """Execute every item and return results in plan order."""
        raise NotImplementedError


class SerialRunner(Runner):
    """Run every item in the current process, one after another."""

    name = "serial"

    def run(self, plan: ExperimentPlan) -> list[Any]:
        return [item.run() for item in plan]


class ProcessPoolRunner(Runner):
    """Fan a plan across a ``fork`` process pool, chunked.

    Args:
        max_workers: pool size; ``None`` reads ``REPRO_WORKERS``.
        chunksize: items handed to a worker per round trip; ``None``
            picks ``ceil(len(plan) / (4 * workers))`` — large enough to
            amortize pickling, small enough to balance uneven items.

    Falls back to in-process serial execution when the effective worker
    count is 1, the plan has at most one item, or the platform lacks
    ``fork`` (results are identical either way; only wall clock moves).
    """

    name = "process_pool"

    def __init__(
        self, max_workers: int | None = None, chunksize: int | None = None
    ) -> None:
        self.max_workers = resolve_workers(max_workers)
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.chunksize = chunksize

    def _chunksize(self, n_items: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-n_items // (4 * workers)))

    def run(self, plan: ExperimentPlan) -> list[Any]:
        workers = min(self.max_workers, len(plan))
        if workers <= 1 or not _fork_available():
            return SerialRunner().run(plan)
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            return list(
                pool.map(
                    _run_item,
                    plan.items,
                    chunksize=self._chunksize(len(plan), workers),
                )
            )


def default_runner(workers: int | None = None) -> Runner:
    """The runner every experiment loop uses unless told otherwise.

    ``workers`` (or ``REPRO_WORKERS``) of 0/1/unset gives the
    :class:`SerialRunner`; anything larger gives a
    :class:`ProcessPoolRunner` of that size.
    """
    count = resolve_workers(workers)
    if count <= 1:
        return SerialRunner()
    return ProcessPoolRunner(max_workers=count)
