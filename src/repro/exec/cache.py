"""Content-keyed on-disk spectra cache.

Scenario synthesis — the Dirichlet-kernel sweep synthesis behind every
experiment — dominates figure and benchmark wall clock, yet a figure's
grid is deterministic in its parameters and seed. This cache keys the
*content* of a scenario (trajectory samples, room, body, antenna array,
full :class:`~repro.config.SystemConfig`, gesture, seed) to a SHA-256
digest and stores the synthesized arrays as one ``.npz`` per scenario,
so repeated figure/benchmark runs skip re-synthesis entirely. Any
parameter change — a config tweak, a different walk — changes the key,
so stale hits are impossible by construction.

Opt-in via environment (off by default so plain test runs stay
write-free):

* ``REPRO_CACHE=1`` enables it (``0``/``off`` disables even if a
  directory is configured);
* ``REPRO_CACHE_DIR=/path`` sets (and implies) the cache directory,
  default ``~/.cache/repro/spectra``;
* ``REPRO_CACHE_MAX_MB`` bounds on-disk size (default 2048); least
  recently *used* entries are evicted after each store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path
from typing import Any

import numpy as np

#: Environment switches (read at call time, so tests can monkeypatch).
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

_FALSY = ("0", "off", "false", "no", "")


def _hash_update(h: "hashlib._Hash", value: Any) -> None:
    """Fold one (possibly nested) value into the digest, type-tagged."""
    if value is None:
        h.update(b"\x00none")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(f"\x00nd{arr.dtype.str}{arr.shape}".encode())
        h.update(arr.tobytes())
    elif isinstance(value, (bool, int, float, complex, str, bytes)):
        h.update(f"\x00{type(value).__name__}{value!r}".encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(f"\x00dc{type(value).__qualname__}".encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _hash_update(h, getattr(value, f.name))
    elif isinstance(value, dict):
        h.update(b"\x00dict")
        for k in sorted(value):
            h.update(str(k).encode())
            _hash_update(h, value[k])
    elif isinstance(value, (list, tuple)):
        h.update(f"\x00seq{len(value)}".encode())
        for item in value:
            _hash_update(h, item)
    else:
        raise TypeError(
            f"cannot content-hash {type(value).__name__!r}; add picklable "
            "primitives, arrays, or dataclasses only"
        )


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of arbitrarily nested parameter content."""
    h = hashlib.sha256()
    for part in parts:
        _hash_update(h, part)
    return h.hexdigest()


def scenario_key(scenario: Any) -> str:
    """Content key of a :class:`~repro.sim.scenario.Scenario` (or multi).

    Everything the synthesized spectra depend on goes in; evaluation-side
    parameters (VICON seeds, depth calibration) stay out.
    """
    from ..multi.scenario import MultiScenario
    from ..sim.scenario import Scenario

    if isinstance(scenario, Scenario):
        return content_key(
            "scenario.v1",
            scenario.seed,
            scenario.trajectory,
            scenario.room,
            scenario.body,
            scenario.config,
            scenario.array,
            scenario.gesture,
            scenario.gesture_start_s,
        )
    if isinstance(scenario, MultiScenario):
        return content_key(
            "multi_scenario.v1",
            scenario.seed,
            scenario.people,
            scenario.room,
            scenario.config,
            scenario.array,
        )
    raise TypeError(f"unsupported scenario type: {type(scenario).__name__}")


class SpectraCache:
    """Get-or-synthesize cache for scenario outputs.

    Args:
        root: cache directory (created on first store).
        max_bytes: on-disk budget; ``None`` disables eviction.
    """

    def __init__(self, root: Path | str, max_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def run(self, scenario: Any) -> Any:
        """``scenario.run()``, memoized on the scenario's content key."""
        key = scenario_key(scenario)
        cached = self._load(scenario, key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        output = scenario.run()
        self._store(key, output)
        return output

    # -- storage ----------------------------------------------------------

    def _load(self, scenario: Any, key: str) -> Any:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, ValueError):
            return None  # torn write or foreign file: treat as a miss
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass  # a sibling worker evicted it; the data is already read
        return self._unpack(scenario, arrays)

    def _store(self, key: str, output: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **self._pack(output))
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self.evict()

    def _pack(self, output: Any) -> dict[str, np.ndarray]:
        from ..multi.scenario import MultiScenarioOutput
        from ..sim.scenario import ScenarioOutput

        if isinstance(output, ScenarioOutput):
            arrays = {
                "spectra": output.spectra,
                "sweep_times_s": output.sweep_times_s,
                "range_bin_m": np.float64(output.range_bin_m),
                "surface_truth": output.surface_truth,
                "true_round_trips": output.true_round_trips,
            }
            if output.hand_truth is not None:
                arrays["hand_truth"] = output.hand_truth
            return arrays
        if isinstance(output, MultiScenarioOutput):
            return {
                "spectra": output.spectra,
                "sweep_times_s": output.sweep_times_s,
                "range_bin_m": np.float64(output.range_bin_m),
                "surface_truths": output.surface_truths,
                "true_round_trips": output.true_round_trips,
            }
        raise TypeError(f"unsupported output type: {type(output).__name__}")

    def _unpack(self, scenario: Any, arrays: dict[str, np.ndarray]) -> Any:
        from ..multi.scenario import MultiScenario, MultiScenarioOutput
        from ..sim.scenario import ScenarioOutput

        # Non-array fields are reconstructed from the scenario itself —
        # they are inputs of the content key, so they match by definition.
        if isinstance(scenario, MultiScenario):
            return MultiScenarioOutput(
                spectra=arrays["spectra"],
                sweep_times_s=arrays["sweep_times_s"],
                range_bin_m=float(arrays["range_bin_m"]),
                truths=tuple(traj for _, traj in scenario.people),
                surface_truths=arrays["surface_truths"],
                true_round_trips=arrays["true_round_trips"],
                config=scenario.config,
                room=scenario.room,
                bodies=tuple(body for body, _ in scenario.people),
            )
        return ScenarioOutput(
            spectra=arrays["spectra"],
            sweep_times_s=arrays["sweep_times_s"],
            range_bin_m=float(arrays["range_bin_m"]),
            truth=scenario.trajectory,
            surface_truth=arrays["surface_truth"],
            hand_truth=arrays.get("hand_truth"),
            true_round_trips=arrays["true_round_trips"],
            config=scenario.config,
            room=scenario.room,
            body=scenario.body,
        )

    # -- maintenance ------------------------------------------------------

    def _entries_with_stats(self) -> list[tuple[Path, float, int]]:
        """``(path, mtime, size)`` per entry, least recently used first.

        Stats are captured once and missing files skipped, so a sibling
        worker evicting concurrently cannot crash maintenance here.
        """
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:
                continue  # evicted by a sibling between glob and stat
            out.append((path, st.st_mtime, st.st_size))
        out.sort(key=lambda t: t[1])
        return out

    def entries(self) -> list[Path]:
        """Cached files, least recently used first."""
        return [path for path, _, _ in self._entries_with_stats()]

    def size_bytes(self) -> int:
        """Total on-disk size of the cache."""
        return sum(size for _, _, size in self._entries_with_stats())

    def evict(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        removed = 0
        entries = self._entries_with_stats()
        total = sum(size for _, _, size in entries)
        for path, _, size in entries:
            if total <= self.max_bytes:
                break
            total -= size
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> None:
        """Remove every cached entry."""
        for path in self.entries():
            path.unlink(missing_ok=True)


def default_cache() -> SpectraCache | None:
    """The environment-configured cache, or ``None`` when disabled.

    Enabled by ``REPRO_CACHE`` truthy or ``REPRO_CACHE_DIR`` set; an
    explicit ``REPRO_CACHE=0`` wins over a configured directory.
    """
    flag = os.environ.get(CACHE_ENV)
    directory = os.environ.get(CACHE_DIR_ENV)
    if flag is not None and flag.strip().lower() in _FALSY:
        return None
    if flag is None and not directory:
        return None
    root = Path(directory) if directory else Path.home() / ".cache/repro/spectra"
    max_mb = float(os.environ.get(CACHE_MAX_MB_ENV, "2048"))
    return SpectraCache(root, max_bytes=int(max_mb * 1e6))


def synthesize(scenario: Any) -> Any:
    """``scenario.run()`` through the default cache when one is enabled.

    This is the seam every harness experiment goes through; with the
    cache disabled (the default) it is exactly ``scenario.run()``.
    """
    cache = default_cache()
    if cache is None:
        return scenario.run()
    return cache.run(scenario)
