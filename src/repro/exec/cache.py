"""Content-keyed on-disk caches: spectra and pipeline results.

Scenario synthesis — the Dirichlet-kernel sweep synthesis behind every
experiment — dominates figure and benchmark wall clock, yet a figure's
grid is deterministic in its parameters and seed. :class:`SpectraCache`
keys the *content* of a scenario (trajectory samples, room, body,
antenna array, full :class:`~repro.config.SystemConfig`, gesture, seed)
to a SHA-256 digest and stores the synthesized arrays as one ``.npz``
per scenario, so repeated figure/benchmark runs skip re-synthesis
entirely. Any parameter change — a config tweak, a different walk —
changes the key, so stale hits are impossible by construction.

:class:`ResultCache` goes one level higher — the adaptivity lesson of
Bender et al.'s adaptive filters: a cache that stops at spectra still
pays full *tracking* price on every pure re-aggregation run. It keys
(scenario content, pipeline configuration) to the
:class:`~repro.pipeline.PipelineResult` arrays — multi-person track
lists included, via the stable array serialization in
:mod:`repro.multi.tracks` — so a figure rerun that only re-scores
existing parameters skips synthesis **and** tracking (the
:func:`tracked_scenario` / :func:`tracked_multi_scenario` seams). Both caches share the same
storage/LRU machinery and environment switches, and feed the
process-wide :func:`cache_stats` counters that ``repro bench`` and the
throughput benchmarks surface.

Opt-in via environment (off by default so plain test runs stay
write-free):

* ``REPRO_CACHE=1`` enables it (``0``/``off`` disables even if a
  directory is configured);
* ``REPRO_CACHE_DIR=/path`` sets (and implies) the cache directory,
  default ``~/.cache/repro/spectra`` (pipeline results live in a
  ``results/`` subdirectory of the same root);
* ``REPRO_CACHE_MAX_MB`` bounds on-disk size (default 2048, applied to
  each cache separately); least recently *used* entries are evicted
  after each store.
* ``REPRO_CACHE_ADMIT=1`` arms a :class:`CacheAdmissionFilter` in front
  of both caches — a TinyLFU-style *doorkeeper* (PAPERS.md
  arXiv:1711.01616) that stores a key only on its second touch within a
  sliding window, so a scan of one-shot keys cannot churn the LRU and
  evict the hot working set. An integer value >= 2 sets the window
  (default 1024). Off by default: admission changes store-on-first-put
  semantics, which existing workflows pin.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path
from typing import Any

import numpy as np

#: Environment switches (read at call time, so tests can monkeypatch).
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"
CACHE_ADMIT_ENV = "REPRO_CACHE_ADMIT"

_FALSY = ("0", "off", "false", "no", "")

#: Default doorkeeper window when ``REPRO_CACHE_ADMIT`` is truthy but
#: not an explicit integer >= 2.
_DEFAULT_ADMIT_WINDOW = 1024

#: Process-wide hit/miss/eviction counters per cache kind. Instances are
#: short-lived (``default_cache()`` builds one per call site), so the
#: benchmarks read these aggregates instead.
_STATS: dict[str, dict[str, int]] = {
    "spectra": {"hits": 0, "misses": 0, "evictions": 0, "filtered": 0},
    "results": {"hits": 0, "misses": 0, "evictions": 0, "filtered": 0},
}

#: Process-wide admission filters, keyed by cache kind — like
#: :data:`_STATS`, these outlive the short-lived cache instances, so a
#: key's first touch in one ``default_cache()`` call is remembered when
#: its second arrives through another.
_ADMISSIONS: dict[str, "CacheAdmissionFilter"] = {}


def cache_stats() -> dict[str, dict[str, int]]:
    """Copy of the process-wide cache counters, keyed by cache kind."""
    return {kind: dict(counts) for kind, counts in _STATS.items()}


def reset_cache_stats() -> None:
    """Zero the process-wide cache counters (test/benchmark isolation).

    Also forgets the process-wide admission doorkeepers, so a test that
    arms ``REPRO_CACHE_ADMIT`` starts from an empty window.
    """
    for counts in _STATS.values():
        for key in counts:
            counts[key] = 0
    _ADMISSIONS.clear()


def _hash_update(h: "hashlib._Hash", value: Any) -> None:
    """Fold one (possibly nested) value into the digest, type-tagged."""
    if value is None:
        h.update(b"\x00none")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(f"\x00nd{arr.dtype.str}{arr.shape}".encode())
        h.update(arr.tobytes())
    elif isinstance(value, (bool, int, float, complex, str, bytes)):
        h.update(f"\x00{type(value).__name__}{value!r}".encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(f"\x00dc{type(value).__qualname__}".encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _hash_update(h, getattr(value, f.name))
    elif isinstance(value, dict):
        h.update(b"\x00dict")
        for k in sorted(value):
            h.update(str(k).encode())
            _hash_update(h, value[k])
    elif isinstance(value, (list, tuple)):
        h.update(f"\x00seq{len(value)}".encode())
        for item in value:
            _hash_update(h, item)
    else:
        raise TypeError(
            f"cannot content-hash {type(value).__name__!r}; add picklable "
            "primitives, arrays, or dataclasses only"
        )


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of arbitrarily nested parameter content."""
    h = hashlib.sha256()
    for part in parts:
        _hash_update(h, part)
    return h.hexdigest()


def scenario_key(scenario: Any) -> str:
    """Content key of a :class:`~repro.sim.scenario.Scenario` (or multi).

    Everything the synthesized spectra depend on goes in; evaluation-side
    parameters (VICON seeds, depth calibration) stay out.
    """
    from ..multi.scenario import MultiScenario
    from ..sim.scenario import Scenario

    if isinstance(scenario, Scenario):
        return content_key(
            "scenario.v1",
            scenario.seed,
            scenario.trajectory,
            scenario.room,
            scenario.body,
            scenario.config,
            scenario.array,
            scenario.gesture,
            scenario.gesture_start_s,
        )
    if isinstance(scenario, MultiScenario):
        return content_key(
            "multi_scenario.v1",
            scenario.seed,
            scenario.people,
            scenario.room,
            scenario.config,
            scenario.array,
        )
    raise TypeError(f"unsupported scenario type: {type(scenario).__name__}")


class CacheAdmissionFilter:
    """Second-touch doorkeeper: admit a key only once it has recurred.

    An LRU eviction policy has a classic failure mode under scans: a
    burst of one-shot keys (a parameter sweep that will never repeat)
    each gets stored, and storing them evicts the small hot working set
    that *does* repeat. The TinyLFU remedy (PAPERS.md arXiv:1711.01616)
    is a *doorkeeper* in front of the cache: a key's first touch only
    registers it; the store is admitted on its second touch within the
    window. One-shot keys never come back, so they never get stored —
    and never evict anything.

    The window is a bounded LRU of recently touched keys: a touch
    refreshes the key's recency, and when the window overflows the
    stalest registration is forgotten (aging, so ancient first touches
    cannot admit forever).

    Args:
        window: distinct keys remembered; a key must recur within this
            many distinct-key touches to be admitted.
    """

    def __init__(self, window: int = _DEFAULT_ADMIT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._seen: dict[str, None] = {}

    def should_store(self, key: str) -> bool:
        """Touch ``key``; True when this store should be admitted."""
        if key in self._seen:
            del self._seen[key]  # refresh recency below
            self._seen[key] = None
            return True
        self._seen[key] = None
        if len(self._seen) > self.window:
            del self._seen[next(iter(self._seen))]  # forget the stalest
        return False


def _default_admission(kind: str) -> CacheAdmissionFilter | None:
    """The env-armed process-wide doorkeeper for ``kind``, or ``None``."""
    raw = os.environ.get(CACHE_ADMIT_ENV)
    if raw is None or raw.strip().lower() in _FALSY:
        return None
    window = _DEFAULT_ADMIT_WINDOW
    try:
        parsed = int(raw)
        if parsed >= 2:
            window = parsed
    except ValueError:
        pass  # truthy non-integer ("on", "true"): default window
    filt = _ADMISSIONS.get(kind)
    if filt is None or filt.window != window:
        filt = CacheAdmissionFilter(window)
        _ADMISSIONS[kind] = filt
    return filt


class NpzLruCache:
    """Shared storage layer: atomic ``.npz`` entries with LRU eviction.

    Both caches store one content-keyed ``.npz`` per entry, touch
    entries on read, and evict least-recently-used files after each
    store. Per-instance counters (``hits``/``misses``/``evictions``/
    ``filtered``) also aggregate into the process-wide
    :func:`cache_stats` under the subclass's ``stats_kind``.

    Args:
        root: cache directory (created on first store).
        max_bytes: on-disk budget; ``None`` disables eviction.
        admission: optional :class:`CacheAdmissionFilter` consulted
            before every store; a declined store is counted as
            ``filtered`` and skipped (reads are never filtered).
    """

    #: Which :func:`cache_stats` bucket this cache reports into.
    stats_kind = "spectra"

    def __init__(
        self,
        root: Path | str,
        max_bytes: int | None = None,
        admission: CacheAdmissionFilter | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.admission = admission
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.filtered = 0

    def _count(self, event: str, n: int = 1) -> None:
        setattr(self, event, getattr(self, event) + n)
        _STATS[self.stats_kind][event] += n

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    # -- storage ----------------------------------------------------------

    def _load_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, ValueError):
            return None  # torn write or foreign file: treat as a miss
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass  # a sibling worker evicted it; the data is already read
        return arrays

    def _store_arrays(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        if self.admission is not None and not self.admission.should_store(key):
            self._count("filtered")
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self.evict()

    # -- maintenance ------------------------------------------------------

    def _entries_with_stats(self) -> list[tuple[Path, float, int]]:
        """``(path, mtime, size)`` per entry, least recently used first.

        Stats are captured once and missing files skipped, so a sibling
        worker evicting concurrently cannot crash maintenance here.
        """
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:
                continue  # evicted by a sibling between glob and stat
            out.append((path, st.st_mtime, st.st_size))
        out.sort(key=lambda t: t[1])
        return out

    def entries(self) -> list[Path]:
        """Cached files, least recently used first."""
        return [path for path, _, _ in self._entries_with_stats()]

    def size_bytes(self) -> int:
        """Total on-disk size of the cache."""
        return sum(size for _, _, size in self._entries_with_stats())

    def evict(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        removed = 0
        entries = self._entries_with_stats()
        total = sum(size for _, _, size in entries)
        for path, _, size in entries:
            if total <= self.max_bytes:
                break
            total -= size
            path.unlink(missing_ok=True)
            removed += 1
        if removed:
            self._count("evictions", removed)
        return removed

    def clear(self) -> None:
        """Remove every cached entry."""
        for path in self.entries():
            path.unlink(missing_ok=True)


class SpectraCache(NpzLruCache):
    """Get-or-synthesize cache for scenario outputs."""

    stats_kind = "spectra"

    def run(self, scenario: Any) -> Any:
        """``scenario.run()``, memoized on the scenario's content key."""
        key = scenario_key(scenario)
        arrays = self._load_arrays(key)
        if arrays is not None:
            self._count("hits")
            return self._unpack(scenario, arrays)
        self._count("misses")
        output = scenario.run()
        self._store_arrays(key, self._pack(output))
        return output

    def _pack(self, output: Any) -> dict[str, np.ndarray]:
        from ..multi.scenario import MultiScenarioOutput
        from ..sim.scenario import ScenarioOutput

        if isinstance(output, ScenarioOutput):
            arrays = {
                "spectra": output.spectra,
                "sweep_times_s": output.sweep_times_s,
                "range_bin_m": np.float64(output.range_bin_m),
                "surface_truth": output.surface_truth,
                "true_round_trips": output.true_round_trips,
            }
            if output.hand_truth is not None:
                arrays["hand_truth"] = output.hand_truth
            return arrays
        if isinstance(output, MultiScenarioOutput):
            return {
                "spectra": output.spectra,
                "sweep_times_s": output.sweep_times_s,
                "range_bin_m": np.float64(output.range_bin_m),
                "surface_truths": output.surface_truths,
                "true_round_trips": output.true_round_trips,
            }
        raise TypeError(f"unsupported output type: {type(output).__name__}")

    def _unpack(self, scenario: Any, arrays: dict[str, np.ndarray]) -> Any:
        from ..multi.scenario import MultiScenario, MultiScenarioOutput
        from ..sim.scenario import ScenarioOutput

        # Non-array fields are reconstructed from the scenario itself —
        # they are inputs of the content key, so they match by definition.
        if isinstance(scenario, MultiScenario):
            return MultiScenarioOutput(
                spectra=arrays["spectra"],
                sweep_times_s=arrays["sweep_times_s"],
                range_bin_m=float(arrays["range_bin_m"]),
                truths=tuple(traj for _, traj in scenario.people),
                surface_truths=arrays["surface_truths"],
                true_round_trips=arrays["true_round_trips"],
                config=scenario.config,
                room=scenario.room,
                bodies=tuple(body for body, _ in scenario.people),
            )
        return ScenarioOutput(
            spectra=arrays["spectra"],
            sweep_times_s=arrays["sweep_times_s"],
            range_bin_m=float(arrays["range_bin_m"]),
            truth=scenario.trajectory,
            surface_truth=arrays["surface_truth"],
            hand_truth=arrays.get("hand_truth"),
            true_round_trips=arrays["true_round_trips"],
            config=scenario.config,
            room=scenario.room,
            body=scenario.body,
        )

#: PipelineResult fields the result cache persists. ``subtracted``
#: (per-frame complex spectrograms) is deliberately excluded — a cached
#: result serves re-aggregation runs, which never need spectrograms, and
#: storing them would make this cache as heavy as the spectra cache.
_RESULT_FIELDS = ("tof_m", "raw_tof_m", "motion", "positions")


class ResultCache(NpzLruCache):
    """Content-keyed cache of pipeline results, single- and multi-person.

    Where :class:`SpectraCache` memoizes synthesis, this memoizes
    synthesis *plus tracking*: the per-frame arrays of a
    :class:`~repro.pipeline.PipelineResult` keyed on (scenario content,
    pipeline configuration). Pure re-aggregation runs — rescoring a
    figure grid whose parameters did not change — then skip the
    pipeline entirely.

    Multi-person results are supported at two levels: the ragged
    per-frame ``tracks`` lists of a :class:`PipelineResult` flatten
    through :func:`repro.multi.tracks.tracks_to_arrays` (a stable
    array serialization, so they round-trip bitwise through ``.npz``),
    and whole :class:`~repro.multi.MultiTrack` results store via
    :meth:`get_multi`/:meth:`put_multi` — the format the
    :func:`tracked_multi_scenario` seam uses.
    """

    stats_kind = "results"

    def get(self, key: str):
        """The cached :class:`PipelineResult` for ``key``, or ``None``."""
        from ..multi.tracks import tracks_from_arrays
        from ..pipeline.runner import PipelineResult

        arrays = self._load_arrays(key)
        if arrays is None:
            self._count("misses")
            return None
        self._count("hits")
        fields = {
            name: arrays[name] for name in _RESULT_FIELDS if name in arrays
        }
        tracks = None
        if "track_counts" in arrays:
            tracks = tracks_from_arrays(
                arrays["track_counts"],
                arrays["track_ids_flat"],
                arrays["track_positions_flat"],
            )
        return PipelineResult(
            frame_times_s=arrays["frame_times_s"], tracks=tracks, **fields
        )

    def put(self, key: str, result: Any) -> None:
        """Store a pipeline result under ``key``."""
        from ..multi.tracks import tracks_to_arrays

        arrays = {"frame_times_s": result.frame_times_s}
        for name in _RESULT_FIELDS:
            value = getattr(result, name)
            if value is not None:
                arrays[name] = value
        if result.tracks is not None:
            arrays.update(tracks_to_arrays(result.tracks))
        self._store_arrays(key, arrays)

    def get_multi(self, key: str):
        """The cached :class:`~repro.multi.MultiTrack`, or ``None``."""
        from ..multi.tracks import MultiTrack

        arrays = self._load_arrays(key)
        if arrays is None:
            self._count("misses")
            return None
        self._count("hits")
        return MultiTrack.from_arrays(arrays)

    def put_multi(self, key: str, track: Any) -> None:
        """Store a :class:`~repro.multi.MultiTrack` under ``key``."""
        self._store_arrays(key, track.to_arrays())


def _cache_env() -> tuple[Path, int] | None:
    """Resolved (root, max_bytes) from the environment, or None (off).

    Enabled by ``REPRO_CACHE`` truthy or ``REPRO_CACHE_DIR`` set; an
    explicit ``REPRO_CACHE=0`` wins over a configured directory.
    """
    flag = os.environ.get(CACHE_ENV)
    directory = os.environ.get(CACHE_DIR_ENV)
    if flag is not None and flag.strip().lower() in _FALSY:
        return None
    if flag is None and not directory:
        return None
    root = Path(directory) if directory else Path.home() / ".cache/repro/spectra"
    max_mb = float(os.environ.get(CACHE_MAX_MB_ENV, "2048"))
    return root, int(max_mb * 1e6)


def default_cache() -> SpectraCache | None:
    """The environment-configured spectra cache, or ``None`` (disabled)."""
    resolved = _cache_env()
    if resolved is None:
        return None
    root, max_bytes = resolved
    return SpectraCache(
        root, max_bytes=max_bytes, admission=_default_admission("spectra")
    )


def default_result_cache() -> ResultCache | None:
    """The environment-configured result cache, or ``None`` (disabled).

    Shares the spectra cache's environment switches and root directory,
    living in its ``results/`` subdirectory (entry globs are
    non-recursive, so the two caches never see each other's files).
    """
    resolved = _cache_env()
    if resolved is None:
        return None
    root, max_bytes = resolved
    return ResultCache(
        root / "results",
        max_bytes=max_bytes,
        admission=_default_admission("results"),
    )


def synthesize(scenario: Any) -> Any:
    """``scenario.run()`` through the default cache when one is enabled.

    This is the seam every harness experiment goes through; with the
    cache disabled (the default) it is exactly ``scenario.run()``.
    """
    cache = default_cache()
    if cache is None:
        return scenario.run()
    return cache.run(scenario)


def result_key(scenario: Any, tracker: Any) -> str:
    """Content key of (scenario, pipeline configuration).

    Everything that shapes the single-person pipeline's output goes in:
    the scenario content, the tracker's own system configuration (a
    tracker built with a different config than the scenario's must not
    collide), the solver class with its tunables, and the antenna
    geometry it solves against.
    """
    solver = tracker.solver
    return content_key(
        "pipeline_result.v2",
        scenario_key(scenario),
        tracker.config,
        type(solver).__name__,
        solver.min_y_m,
        getattr(solver, "warm_start", None),
        tracker.array,
    )


def tracked_scenario(scenario: Any, tracker: Any) -> Any:
    """Synthesize + batch-track a scenario, memoized at the result level.

    The seam the single-person harness experiments go through. With the
    cache disabled it is exactly ``tracker.track(synthesize(...))``; with
    it enabled, a re-run whose (scenario, pipeline) content is unchanged
    returns the stored :class:`~repro.pipeline.PipelineResult` without
    synthesizing or tracking anything. A miss still flows through
    :func:`synthesize`, so the spectra cache keeps helping runs that
    changed only pipeline-side parameters.

    Cached results carry no subtracted spectrograms, so the packaged
    :class:`~repro.core.tracker.TrackResult` has empty ``tof_estimates``
    on a hit — experiments that need spectrograms (pointing) keep their
    own path.

    Args:
        scenario: a :class:`~repro.sim.scenario.Scenario`.
        tracker: the :class:`~repro.core.tracker.WiTrack` to run.

    Returns:
        The tracker's :class:`~repro.core.tracker.TrackResult`.
    """
    cache = default_result_cache()
    if cache is None:
        measured = synthesize(scenario)
        return tracker.track(measured.spectra, measured.range_bin_m)
    key = result_key(scenario, tracker)
    result = cache.get(key)
    if result is None:
        measured = synthesize(scenario)
        result = tracker.pipeline(measured.range_bin_m).run_batch(
            measured.spectra
        )
        cache.put(key, result)
    return tracker.package_result(result, scenario.range_bin_m)


def multi_result_key(scenario: Any, tracker: Any) -> str:
    """Content key of (multi scenario, multi pipeline configuration).

    Everything that shapes a :class:`~repro.multi.MultiWiTrack` run's
    output goes in: the scenario content, the tracker's system
    configuration and antenna geometry, cancellation depth, the track
    lifecycle tunables, the ghost gate and bounce-plane images, and the
    solver selection.
    """
    solver = tracker.solver
    return content_key(
        "multi_track.v1",
        scenario_key(scenario),
        tracker.config,
        tracker.array,
        tracker.max_people,
        tracker.num_candidates,
        tracker.track_config,
        tracker.gate,
        tracker.ghost_images,
        type(solver).__name__,
        solver.min_y_m,
        getattr(solver, "warm_start", None),
    )


def tracked_multi_scenario(scenario: Any, tracker: Any) -> Any:
    """Synthesize + batch-track a multi-person scenario, memoized.

    The multi-person mirror of :func:`tracked_scenario`, closing the
    single-person-only caveat the result cache shipped with: a
    re-aggregation run whose (scenario, pipeline) content is unchanged
    returns the stored :class:`~repro.multi.MultiTrack` — dense arrays
    via :meth:`MultiTrack.to_arrays
    <repro.multi.tracks.MultiTrack.to_arrays>` — without synthesizing
    or tracking anything. With the cache disabled it is exactly
    ``tracker.track(synthesize(...))``; a miss still flows through
    :func:`synthesize`, so the spectra cache keeps helping runs that
    changed only pipeline-side parameters.

    Args:
        scenario: a :class:`~repro.multi.MultiScenario`.
        tracker: the :class:`~repro.multi.MultiWiTrack` to run.

    Returns:
        The tracker's :class:`~repro.multi.MultiTrack`.
    """
    cache = default_result_cache()
    if cache is None:
        measured = synthesize(scenario)
        return tracker.track(measured.spectra, measured.range_bin_m)
    key = multi_result_key(scenario, tracker)
    track = cache.get_multi(key)
    if track is None:
        measured = synthesize(scenario)
        track = tracker.track(measured.spectra, measured.range_bin_m)
        cache.put_multi(key, track)
    return track
